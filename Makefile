# Test and benchmark entry points.
#
#   make test-fast    tier-1: everything except the opt-in sweeps (~15s)
#   make test-matrix  the exhaustive scenario-matrix sweeps (+ slow cells)
#   make test-all     both of the above
#   make bench        full hot-path benchmark suite -> BENCH_hotpath.json
#                     (exits non-zero if a speedup gate regresses)
#   make bench-smoke  quick end-to-end check of the benchmark harness
#
# The default pytest run (pytest.ini addopts) equals test-fast; the matrix
# sweeps are the opt-in CI job every scale/perf PR should also run.

PYTEST := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m pytest
PYTHON := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test-fast test-matrix test-all bench bench-smoke

test-fast:
	$(PYTEST) -x -q

test-matrix:
	$(PYTEST) -q -m "matrix or slow" tests/testkit

test-all: test-fast test-matrix

bench:
	$(PYTHON) -m repro.perf

bench-smoke:
	$(PYTEST) -q -m bench tests/perf
