# Test and benchmark entry points.
#
#   make test-fast    tier-1: everything except the opt-in sweeps (~15s)
#   make test-matrix  the exhaustive scenario-matrix sweeps (+ slow cells)
#                     (REPRO_MATRIX_PARALLEL=N shards every matrix sweep's
#                     cells over N worker processes; results are
#                     byte-identical to serial runs)
#   make test-all     both of the above
#   make bench        full hot-path benchmark suite -> BENCH_hotpath.json
#                     (exits non-zero if a speedup gate regresses; the
#                     tracked JSON is only rewritten when gate verdicts or
#                     the benchmark roster change — fresh samples go to the
#                     untracked BENCH_hotpath.latest.json)
#   make bench-smoke  quick end-to-end check of the benchmark harness
#   make bench-gate   validate gates.*.passed in the committed
#                     BENCH_hotpath.json without running benchmarks
#   make test-corpus  replay the committed fuzz reproducers in
#                     tests/corpus (also part of test-fast; named target
#                     for the PR-blocking CI step)
#   make test-workload the workload-engine lane: open-loop determinism,
#                     txpool backpressure, SLO metrics, Prometheus
#                     fallback (also part of test-fast; named CI lane)
#   make test-impairments the lossy-medium lane: wire impairment model,
#                     reliable-delivery sublayer, loss-budget liveness,
#                     impaired-run determinism (also part of test-fast;
#                     named CI lane — see docs/impairments.md)
#   make fuzz         a short local fuzz campaign (SEED=n ITERATIONS=n to
#                     override; see docs/fuzzing.md)
#   make lint         ruff over src/tests/examples (critical rules plus
#                     bugbear and a curated modernisation subset — see
#                     ruff.toml)
#   make analyze      detlint: the determinism & registry-coherence
#                     static analyzer over src/repro (AST-only, < 10s;
#                     PR-blocking in CI — see docs/analysis.md)
#
# The default pytest run (pytest.ini addopts) equals test-fast; the matrix
# sweeps are the opt-in CI job every scale/perf PR should also run.

PYTEST := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python -m pytest
PYTHON := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test-fast test-matrix test-all test-corpus test-recovery test-workload test-impairments fuzz bench bench-smoke bench-gate lint analyze

test-fast:
	$(PYTEST) -x -q

test-corpus:
	$(PYTEST) -q tests/corpus

test-recovery:
	$(PYTEST) -q -m recovery

test-workload:
	$(PYTEST) -q tests/workload

test-impairments:
	$(PYTEST) -q tests/net/test_impairment.py tests/property/test_property_impairment.py \
		tests/fuzz/test_planted_mutants.py::test_retransmission_giveup_mutant_is_found_and_shrunk

SEED ?= 0
ITERATIONS ?= 20
fuzz:
	$(PYTHON) -m repro.cli fuzz --seed $(SEED) --iterations $(ITERATIONS)

lint:
	python -m ruff check src tests examples

analyze:
	$(PYTHON) -m repro.analysis src/repro

test-matrix:
	$(PYTEST) -q -m "matrix or slow" tests/testkit

test-all: test-fast test-matrix

bench:
	$(PYTHON) -m repro.perf

bench-smoke:
	$(PYTEST) -q -m bench tests/perf

bench-gate:
	$(PYTHON) -m repro.perf --gate-check
