"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.adversary import FaultPlan
from repro.core.config import ProtocolConfig
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import make_scheme
from repro.energy.ledger import ClusterEnergyLedger
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.net.network import SimulatedNetwork
from repro.net.topology import ring_kcast_topology
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def rng() -> SeededRNG:
    """A deterministic RNG."""
    return SeededRNG(1234)


@pytest.fixture
def keystore() -> KeyStore:
    """A key store with keys for nodes 0..9."""
    store = KeyStore(seed=7)
    store.generate(range(10))
    return store


@pytest.fixture
def scheme(keystore):
    """An RSA-1024 signature scheme bound to the shared key store."""
    return make_scheme("rsa-1024", keystore=keystore)


@pytest.fixture
def small_config() -> ProtocolConfig:
    """A small protocol configuration (n=5, f=1)."""
    return ProtocolConfig(n=5, f=1, delta=4.0, target_height=3)


@pytest.fixture
def runner() -> ProtocolRunner:
    """A protocol runner with a generous event budget."""
    return ProtocolRunner(max_events=1_000_000)


def make_network(n: int = 5, k: int = 2, seed: int = 3):
    """Helper building (sim, topology, ledger, network) for low-level tests."""
    sim = Simulator()
    topology = ring_kcast_topology(n, k)
    ledger = ClusterEnergyLedger(topology.nodes)
    network = SimulatedNetwork(sim, topology, ledger, rng=SeededRNG(seed), hop_delay=1.0)
    return sim, topology, ledger, network


def honest_spec(protocol: str = "eesmr", n: int = 5, f: int = 1, k: int = 2, blocks: int = 3, seed: int = 5, **kwargs) -> DeploymentSpec:
    """A small honest-run deployment spec."""
    return DeploymentSpec(
        protocol=protocol, n=n, f=f, k=k, target_height=blocks, seed=seed, **kwargs
    )


def faulty_spec(behaviour: str, protocol: str = "eesmr", n: int = 5, f: int = 1, k: int = 2, blocks: int = 3, seed: int = 5, **kwargs) -> DeploymentSpec:
    """A deployment spec whose view-1 leader (node 0) is Byzantine."""
    return DeploymentSpec(
        protocol=protocol,
        n=n,
        f=f,
        k=k,
        target_height=blocks,
        seed=seed,
        fault_plan=FaultPlan(faulty=(0,), behaviour=behaviour),
        **kwargs,
    )
