"""End-to-end benchmark-harness smoke (opt-in: ``make bench-smoke``).

Runs the real before/after suite at smoke scale and checks the report
plumbing.  Speedup *floors* are only asserted by the full ``make bench``
run — smoke-scale workloads are too small for stable ratios.
"""

import json

import pytest

from repro.perf.report import SATURATION_GATES, SPEEDUP_GATES, run_hotpath_suite

pytestmark = pytest.mark.bench


def test_quick_suite_end_to_end(tmp_path):
    report = run_hotpath_suite(quick=True)
    names = [entry.name for entry in report.entries]
    assert names == [
        "event_throughput",
        "flood_fanout",
        "flood_fanout_n100",
        "eesmr_steady_state",
        "matrix_wall_clock",
    ]
    for entry in report.entries:
        assert entry.before_s > 0
        assert entry.after_s > 0
        assert entry.speedup > 0
    path = report.write(tmp_path)
    payload = json.loads(path.read_text())
    assert payload["report"] == "hotpath"
    assert payload["notes"]["quick"] is True
    assert set(payload["gates"]) == set(SPEEDUP_GATES) | set(SATURATION_GATES)
    assert len(payload["entries"]) == 5
    # The quick suite embeds the (virtual-time) saturation sweep too, so
    # the capacity gate carries a real verdict even at smoke scale.
    assert payload["notes"]["saturation"]["max_sustainable_rate"] >= 0.5
    assert payload["gates"]["open_loop_saturation"]["passed"] is True
    # The volatile sidecar is always written alongside the tracked file.
    assert (tmp_path / "BENCH_hotpath.latest.json").exists()
