"""Unit tests for the repro.perf benchmark harness (tier-1, fast)."""

import json

import pytest

from repro.crypto.hashing import canonical_cache
from repro.crypto.signatures import SignatureScheme
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.net.hypergraph import Hypergraph
from repro.net.network import SimulatedNetwork
from repro.perf.benchmarks import BenchResult, bench_event_throughput, bench_flood_fanout
from repro.perf.counters import StageTimer, collect_cache_stats
from repro.perf.legacy import LegacyEventQueue, legacy_mode
from repro.perf.report import SATURATION_GATES, SPEEDUP_GATES, BenchReport
from repro.sim.events import BucketedEventQueue, EventQueue
from repro.sim.scheduler import Simulator
from repro.testkit.trace import TraceRecorder


# ------------------------------------------------------------- BenchResult
def test_bench_result_statistics():
    result = BenchResult(
        name="x", params={}, samples_s=[0.2, 0.1, 0.3], metric_name="ops/s", work_units=100
    )
    assert result.best_s == 0.1
    assert result.mean_s == pytest.approx(0.2)
    assert result.throughput == pytest.approx(1000.0)
    payload = result.to_dict()
    assert payload["best_s"] == 0.1
    assert payload["metric"] == "ops/s"


def test_bench_report_gates_and_writer(tmp_path):
    report = BenchReport(name="hotpath")
    before = BenchResult(name="flood_fanout", params={"n": 8}, samples_s=[0.9], work_units=10)
    after = BenchResult(name="flood_fanout", params={"n": 8}, samples_s=[0.1], work_units=10)
    entry = report.add(before, after)
    assert entry.speedup == pytest.approx(9.0)
    gates = report.gates_passed()
    assert gates["flood_fanout"] is True  # 9x >= 3x floor
    assert gates["eesmr_steady_state"] is False  # missing entry
    path = report.write(tmp_path)
    assert path.name == "BENCH_hotpath.json"
    payload = json.loads(path.read_text())
    assert payload["entries"][0]["speedup"] == 9.0
    assert set(payload["gates"]) == set(SPEEDUP_GATES) | set(SATURATION_GATES)


def test_bench_report_rejects_mismatched_pairs():
    report = BenchReport(name="x")
    a = BenchResult(name="a", params={}, samples_s=[0.1], work_units=1)
    b = BenchResult(name="b", params={}, samples_s=[0.1], work_units=1)
    with pytest.raises(ValueError):
        report.add(a, b)


# ------------------------------------------------------------- legacy mode
def test_legacy_mode_flips_and_restores_every_switch():
    assert canonical_cache.enabled
    assert SignatureScheme.cache_operations
    assert Hypergraph.cache_topology
    assert SimulatedNetwork.gc_floods
    assert SimulatedNetwork.use_compiled_plans
    assert Simulator.queue_factory is BucketedEventQueue
    with legacy_mode():
        assert not canonical_cache.enabled
        assert not SignatureScheme.cache_operations
        assert not Hypergraph.cache_topology
        assert not SimulatedNetwork.gc_floods
        assert not SimulatedNetwork.use_compiled_plans
        assert SimulatedNetwork.eager_annotations
        assert Simulator.queue_factory is LegacyEventQueue
    assert canonical_cache.enabled
    assert SignatureScheme.cache_operations
    assert Hypergraph.cache_topology
    assert SimulatedNetwork.gc_floods
    assert SimulatedNetwork.use_compiled_plans
    assert not SimulatedNetwork.eager_annotations
    assert Simulator.queue_factory is BucketedEventQueue


def test_legacy_mode_restores_on_error():
    with pytest.raises(RuntimeError):
        with legacy_mode():
            raise RuntimeError("boom")
    assert canonical_cache.enabled
    assert Simulator.queue_factory is BucketedEventQueue


def test_legacy_queue_orders_like_optimized_queue():
    jobs = [(3.0, 1), (1.0, 0), (1.0, 5), (2.0, -2), (1.0, 0)]
    orders = []
    for factory in (EventQueue, LegacyEventQueue):
        queue = factory()
        fired = []
        for i, (time, priority) in enumerate(jobs):
            queue.push(time, lambda i=i: fired.append(i), priority=priority)
        while queue:
            queue.pop().callback()
        orders.append(fired)
    assert orders[0] == orders[1]


def test_legacy_mode_is_behaviour_preserving():
    """The determinism contract: legacy and optimized runs are byte-identical."""

    def fingerprint():
        spec = DeploymentSpec(protocol="eesmr", n=5, f=1, k=2, target_height=2, seed=41)
        return ProtocolRunner(recorder=TraceRecorder()).run(spec).trace.fingerprint()

    optimized = fingerprint()
    with legacy_mode():
        legacy = fingerprint()
    assert optimized == legacy


# -------------------------------------------------------------- benchmarks
def test_event_throughput_bench_runs_tiny():
    result = bench_event_throughput(n_events=500, repeats=1)
    assert result.work_units == 500
    assert result.best_s > 0


def test_flood_fanout_bench_verifies_delivery_count():
    result = bench_flood_fanout(n=6, floods=3, payload_bytes=64, repeats=1)
    assert result.work_units == 18
    assert result.best_s > 0


def test_stage_timer_accumulates():
    timer = StageTimer()
    timer.start("a")
    timer.stop("a")
    timer.start("a")
    timer.stop("a")
    assert timer.counts["a"] == 2
    assert timer.totals["a"] >= 0
    with pytest.raises(KeyError):
        timer.stop("never-started")


def test_cache_stats_shape():
    stats = collect_cache_stats()
    assert {"hits", "misses", "identity_entries", "value_entries"} <= set(stats)
