"""EESMR view-change behaviour under faulty leaders."""

import pytest

from repro.core.adversary import FaultPlan
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from tests.conftest import faulty_spec, honest_spec


@pytest.fixture(scope="module")
def silent_leader_run():
    return ProtocolRunner().run(faulty_spec("silent_leader", n=7, f=2, k=3, blocks=4, seed=31))


@pytest.fixture(scope="module")
def equivocating_leader_run():
    spec = DeploymentSpec(
        protocol="eesmr",
        n=7,
        f=2,
        k=3,
        target_height=4,
        seed=32,
        block_interval=6.0,
        fault_plan=FaultPlan(faulty=(0,), behaviour="equivocate", trigger_round=4),
    )
    return ProtocolRunner().run(spec)


def test_silent_leader_triggers_exactly_one_view_change(silent_leader_run):
    assert silent_leader_run.view_changes == 1


def test_silent_leader_liveness_recovers(silent_leader_run):
    """Liveness (Theorem B.5): the new leader finishes the workload."""
    assert silent_leader_run.min_committed_height == 4
    assert silent_leader_run.safety.consistent


def test_silent_leader_every_correct_node_blames(silent_leader_run):
    assert silent_leader_run.blames_sent >= silent_leader_run.spec.n - 1


def test_new_leader_is_round_robin_successor(silent_leader_run):
    snapshots = silent_leader_run.replica_snapshots
    views = {pid: snap["view"] for pid, snap in snapshots.items() if pid != 0}
    assert all(view == 2 for view in views.values())


def test_equivocation_detected_by_all_correct_nodes(equivocating_leader_run):
    assert equivocating_leader_run.equivocations_detected >= equivocating_leader_run.spec.n - 1


def test_equivocation_never_commits_conflicting_blocks(equivocating_leader_run):
    """Commit safety (Lemma B.2): the 4Δ quiet period catches the equivocation."""
    assert equivocating_leader_run.safety.consistent


def test_blocks_before_equivocation_survive_the_view_change(equivocating_leader_run):
    """Unique extensibility (Lemma B.3): committed blocks stay committed."""
    assert equivocating_leader_run.min_committed_height == 4
    assert equivocating_leader_run.view_changes == 1


def test_view_change_more_expensive_than_steady_state():
    """The paper's trade-off: the view change converts implicit votes to explicit ones."""
    runner = ProtocolRunner()
    honest = runner.run(honest_spec(n=7, f=2, k=3, blocks=4, seed=33))
    faulty = runner.run(faulty_spec("silent_leader", n=7, f=2, k=3, blocks=4, seed=33))
    assert faulty.correct_energy_mj > honest.correct_energy_mj
    assert faulty.verify_operations > honest.verify_operations
    assert faulty.sign_operations > honest.sign_operations


def test_crashed_non_leader_does_not_disturb_progress():
    runner = ProtocolRunner()
    spec = DeploymentSpec(
        protocol="eesmr",
        n=7,
        f=2,
        k=3,
        target_height=4,
        seed=34,
        fault_plan=FaultPlan(faulty=(3,), behaviour="crash", crash_time=0.0),
    )
    result = runner.run(spec)
    assert result.view_changes == 0
    assert result.min_committed_height == 4
    assert result.safety.consistent


def test_silent_non_leader_replica_does_not_disturb_progress():
    runner = ProtocolRunner()
    spec = DeploymentSpec(
        protocol="eesmr",
        n=7,
        f=2,
        k=3,
        target_height=4,
        seed=35,
        fault_plan=FaultPlan(faulty=(4,), behaviour="silent"),
    )
    result = runner.run(spec)
    assert result.min_committed_height == 4
    assert result.safety.consistent


def test_two_consecutive_faulty_leaders_are_survived():
    """If leaders of views 1 and 2 are both faulty, a third view change succeeds."""
    runner = ProtocolRunner()
    spec = DeploymentSpec(
        protocol="eesmr",
        n=7,
        f=2,
        k=3,
        target_height=3,
        seed=36,
        fault_plan=FaultPlan(faulty=(0, 1), behaviour="crash", crash_time=0.0),
    )
    result = runner.run(spec)
    assert result.min_committed_height == 3
    assert result.safety.consistent
    assert result.view_changes >= 2


def test_maximum_fault_tolerance_f_less_than_k():
    """With f = k - 1 crashed nodes (the connectivity bound) progress still holds."""
    runner = ProtocolRunner()
    spec = DeploymentSpec(
        protocol="eesmr",
        n=9,
        f=3,
        k=4,
        target_height=3,
        seed=37,
        fault_plan=FaultPlan(faulty=(1, 3, 5), behaviour="crash", crash_time=0.0),
    )
    result = runner.run(spec)
    assert result.min_committed_height == 3
    assert result.safety.consistent
