"""Unit tests for the adversary fault plans and replica classes."""

import pytest

from repro.core.adversary import (
    ALLOWED_BEHAVIOURS,
    BEHAVIOUR_CLASSES,
    CrashReplica,
    EquivocatingLeaderReplica,
    FaultPlan,
    SilentLeaderReplica,
    SilentReplica,
    behaviour_class,
    replica_class_for,
)
from repro.core.eesmr.replica import EesmrReplica


def test_fault_plan_defaults():
    plan = FaultPlan()
    assert plan.faulty == ()
    assert plan.f_actual == 0


def test_replica_class_for_honest_node():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(2,), behaviour="crash"), pid=0)
    assert cls is EesmrReplica
    assert kwargs == {}


def test_replica_class_for_crash():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(2,), behaviour="crash", crash_time=5.0), pid=2)
    assert cls is CrashReplica
    assert kwargs == {"crash_time": 5.0}


def test_replica_class_for_silent_leader():
    cls, kwargs = replica_class_for(
        FaultPlan(faulty=(0,), behaviour="silent_leader", trigger_round=4), pid=0
    )
    assert cls is SilentLeaderReplica
    assert kwargs == {"trigger_round": 4}


def test_replica_class_for_equivocate():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(0,), behaviour="equivocate"), pid=0)
    assert cls is EquivocatingLeaderReplica


def test_replica_class_for_silent():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(1,), behaviour="silent"), pid=1)
    assert cls is SilentReplica
    assert kwargs == {}


def test_unknown_behaviour_raises():
    with pytest.raises(ValueError):
        replica_class_for(FaultPlan(faulty=(1,), behaviour="teleport"), pid=1)


def test_misspelled_behaviour_rejected_at_construction():
    """A typo must fail loudly instead of silently running an honest node."""
    with pytest.raises(ValueError, match="unknown adversary behaviour 'equivocat'"):
        FaultPlan(faulty=(0,), behaviour="equivocat")


def test_every_allowed_behaviour_constructs():
    for behaviour in ALLOWED_BEHAVIOURS:
        plan = FaultPlan(faulty=(1,), behaviour=behaviour)
        cls, _ = replica_class_for(plan, pid=1)
        assert cls is BEHAVIOUR_CLASSES[behaviour]


def test_behaviour_class_lookup_matches_allowed_set():
    assert set(ALLOWED_BEHAVIOURS) == set(BEHAVIOUR_CLASSES)
    with pytest.raises(ValueError):
        behaviour_class("gremlin")


def test_negative_crash_time_rejected():
    with pytest.raises(ValueError, match="crash_time"):
        FaultPlan(faulty=(0,), crash_time=-1.0)
