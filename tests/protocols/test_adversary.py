"""Unit tests for the adversary fault plans and replica classes."""

import pytest

from repro.core.adversary import (
    CrashReplica,
    EquivocatingLeaderReplica,
    FaultPlan,
    SilentLeaderReplica,
    SilentReplica,
    replica_class_for,
)
from repro.core.eesmr.replica import EesmrReplica


def test_fault_plan_defaults():
    plan = FaultPlan()
    assert plan.faulty == ()
    assert plan.f_actual == 0


def test_replica_class_for_honest_node():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(2,), behaviour="crash"), pid=0)
    assert cls is EesmrReplica
    assert kwargs == {}


def test_replica_class_for_crash():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(2,), behaviour="crash", crash_time=5.0), pid=2)
    assert cls is CrashReplica
    assert kwargs == {"crash_time": 5.0}


def test_replica_class_for_silent_leader():
    cls, kwargs = replica_class_for(
        FaultPlan(faulty=(0,), behaviour="silent_leader", trigger_round=4), pid=0
    )
    assert cls is SilentLeaderReplica
    assert kwargs == {"trigger_round": 4}


def test_replica_class_for_equivocate():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(0,), behaviour="equivocate"), pid=0)
    assert cls is EquivocatingLeaderReplica


def test_replica_class_for_silent():
    cls, kwargs = replica_class_for(FaultPlan(faulty=(1,), behaviour="silent"), pid=1)
    assert cls is SilentReplica
    assert kwargs == {}


def test_unknown_behaviour_raises():
    with pytest.raises(ValueError):
        replica_class_for(FaultPlan(faulty=(1,), behaviour="teleport"), pid=1)
