"""EESMR steady-state behaviour (honest leader)."""

import pytest

from repro.eval.runner import ProtocolRunner
from tests.conftest import honest_spec


@pytest.fixture(scope="module")
def honest_run():
    return ProtocolRunner().run(honest_spec(n=7, f=2, k=3, blocks=4, seed=11))


def test_all_correct_nodes_commit_target_height(honest_run):
    assert honest_run.min_committed_height == 4
    assert all(h == 4 for h in honest_run.committed_heights.values())


def test_no_view_change_with_correct_leader(honest_run):
    """Lemma B.1: a correct leader is never blamed."""
    assert honest_run.view_changes == 0
    assert honest_run.blames_sent == 0
    assert honest_run.equivocations_detected == 0


def test_logs_are_safe_and_identical(honest_run):
    assert honest_run.safety.consistent
    assert honest_run.safety.common_prefix_height == 4


def test_only_the_leader_signs_in_steady_state(honest_run):
    """O(1) signatures per block: only the leader produces signatures."""
    # Two signatures per proposal (viewSig + dataSig), 4 proposals.
    assert honest_run.sign_operations == 2 * 4


def test_verification_linear_in_n(honest_run):
    """O(n) verification per block: each non-leader verifies the proposal."""
    expected = 2 * (honest_run.spec.n - 1) * honest_run.committed_blocks
    assert honest_run.verify_operations == expected


def test_communication_one_flood_per_block(honest_run):
    """O(nd) communication per block: each node relays the proposal exactly once."""
    per_block = honest_run.network.physical_transmissions / honest_run.committed_blocks
    assert per_block == pytest.approx(honest_run.spec.n)


def test_commit_latency_is_4_delta_after_processing(honest_run):
    """The commit rule waits 4Δ; total latency stays well below a view change (21Δ)."""
    delta = honest_run.config.delta
    assert honest_run.sim_time >= 4 * delta


def test_leader_consumes_more_energy_than_replicas(honest_run):
    """Fig. 2c: the leader pays for signing, replicas only verify."""
    assert honest_run.leader_energy_per_block_mj > honest_run.replica_energy_per_block_mj


def test_energy_independent_of_n_for_fixed_k():
    """The paper's first observation: per-node steady-state energy depends on k, not n."""
    runner = ProtocolRunner()
    small = runner.run(honest_spec(n=6, f=1, k=2, blocks=3, seed=12))
    large = runner.run(honest_spec(n=12, f=1, k=2, blocks=3, seed=12))
    assert large.replica_energy_per_block_mj == pytest.approx(
        small.replica_energy_per_block_mj, rel=0.15
    )


def test_energy_grows_with_k():
    """Fig. 2c: per-node energy grows with the number of incoming k-cast edges."""
    runner = ProtocolRunner()
    narrow = runner.run(honest_spec(n=9, f=1, k=2, blocks=3, seed=13))
    wide = runner.run(honest_spec(n=9, f=3, k=6, blocks=3, seed=13))
    assert wide.replica_energy_per_block_mj > narrow.replica_energy_per_block_mj
    assert wide.leader_energy_per_block_mj > narrow.leader_energy_per_block_mj


def test_energy_grows_with_block_size():
    """Fig. 2d: bigger payloads cost more energy per SMR."""
    runner = ProtocolRunner()
    small = runner.run(honest_spec(n=7, f=2, k=3, blocks=3, seed=14, command_payload_bytes=16))
    big = runner.run(honest_spec(n=7, f=2, k=3, blocks=3, seed=14, command_payload_bytes=256))
    assert big.leader_energy_per_block_mj > small.leader_energy_per_block_mj


def test_commands_are_committed_in_proposal_order(honest_run):
    snapshots = honest_run.replica_snapshots
    assert all(s["blocks_committed"] == 4 for s in snapshots.values())


def test_block_interval_paces_proposals():
    runner = ProtocolRunner()
    paced = runner.run(honest_spec(n=5, f=1, k=2, blocks=3, seed=15, block_interval=10.0))
    assert paced.min_committed_height == 3
    assert paced.sim_time >= 2 * 10.0
