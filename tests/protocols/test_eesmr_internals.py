"""White-box tests for EESMR replica internals (buffering, locks, certificates)."""

import pytest

from repro.core.client import AckRouter, Client
from repro.core.config import ProtocolConfig
from repro.core.eesmr.replica import EesmrReplica
from repro.core.messages import MessageType, make_message, make_qc
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import make_scheme
from repro.energy.ledger import ClusterEnergyLedger
from repro.net.network import SimulatedNetwork
from repro.net.topology import ring_kcast_topology
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator


def build_cluster(n=5, f=1, k=2, target=3, delta=8.0, seed=9):
    """A hand-wired EESMR cluster (no runner) for white-box manipulation."""
    sim = Simulator()
    topology = ring_kcast_topology(n, k)
    ledger = ClusterEnergyLedger(topology.nodes)
    network = SimulatedNetwork(sim, topology, ledger, rng=SeededRNG(seed), hop_delay=1.0)
    keystore = KeyStore(seed=seed)
    keystore.generate(topology.nodes)
    scheme = make_scheme("rsa-1024", keystore=keystore)
    config = ProtocolConfig(n=n, f=f, delta=delta, target_height=target)
    client = Client(client_id=0, f=f)
    router = AckRouter([client])
    replicas = {}
    for pid in range(n):
        replica = EesmrReplica(sim, pid, config, scheme, network, ledger.meter(pid), router)
        replicas[pid] = replica
        network.register(replica)
    return sim, scheme, config, replicas


def test_initial_state_matches_paper_defaults():
    _, _, _, replicas = build_cluster()
    replica = replicas[1]
    assert replica.v_cur == 1
    assert replica.r_cur == 3
    assert replica.b_lock.is_genesis
    assert replica.b_com.is_genesis
    assert not replica.in_view_change


def test_leader_of_view_one_is_node_zero():
    _, _, _, replicas = build_cluster()
    assert replicas[0].is_leader(1)
    assert not replicas[1].is_leader(1)
    assert replicas[1].is_leader(2)


def test_proposal_from_non_leader_is_ignored():
    sim, scheme, _, replicas = build_cluster()
    replica = replicas[2]
    from repro.core.blocks import make_block

    block = make_block(replica.blocks.genesis, 3, 1, 3, [])
    forged = make_message(scheme, 3, MessageType.PROPOSE, 1, block, round_number=3)
    replica.on_message(3, forged)
    assert replica.b_lock.is_genesis
    assert replica.stats.proposals_received == 0


def test_future_round_proposal_is_buffered_until_current():
    sim, scheme, _, replicas = build_cluster()
    replica = replicas[2]
    from repro.core.blocks import make_block

    first = make_block(replica.blocks.genesis, 0, 1, 3, [])
    second = make_block(first, 0, 1, 4, [])
    msg_round4 = make_message(scheme, 0, MessageType.PROPOSE, 1, second, round_number=4)
    msg_round3 = make_message(scheme, 0, MessageType.PROPOSE, 1, first, round_number=3)
    replica.on_message(0, msg_round4)
    assert replica.r_cur == 3  # buffered, not applied
    replica.on_message(0, msg_round3)
    # Both applied in order once the gap is filled.
    assert replica.r_cur == 5
    assert replica.b_lock.block_hash == second.block_hash


def test_proposal_not_extending_lock_is_rejected():
    sim, scheme, _, replicas = build_cluster()
    replica = replicas[2]
    from repro.core.blocks import make_block

    good = make_block(replica.blocks.genesis, 0, 1, 3, [])
    replica.on_message(0, make_message(scheme, 0, MessageType.PROPOSE, 1, good, round_number=3))
    assert replica.b_lock.block_hash == good.block_hash
    # A round-4 proposal forking from genesis (not extending the lock) is refused.
    fork = make_block(replica.blocks.genesis, 0, 1, 4, [])
    replica.on_message(0, make_message(scheme, 0, MessageType.PROPOSE, 1, fork, round_number=4))
    assert replica.b_lock.block_hash == good.block_hash
    assert replica.r_cur == 4


def test_equivocating_proposals_cancel_commit_timers_and_blame():
    sim, scheme, _, replicas = build_cluster()
    replica = replicas[2]
    from repro.core.blocks import make_block
    from repro.core.types import Command

    block_a = make_block(replica.blocks.genesis, 0, 1, 3, [Command("a")])
    block_b = make_block(replica.blocks.genesis, 0, 1, 3, [Command("b")])
    replica.on_message(0, make_message(scheme, 0, MessageType.PROPOSE, 1, block_a, round_number=3))
    assert len(replica.commit_timers) == 1
    replica.on_message(0, make_message(scheme, 0, MessageType.PROPOSE, 1, block_b, round_number=3))
    assert replica.stats.equivocations_detected == 1
    assert len(replica.commit_timers) == 0
    assert 1 in replica.blamed_views
    assert replica.in_view_change  # equivocation fast path quits the view


def test_blame_quorum_requires_f_plus_one_distinct_signers():
    sim, scheme, config, replicas = build_cluster()
    replica = replicas[3]
    blame_1 = make_message(scheme, 1, MessageType.BLAME, 1, None)
    replica.on_message(1, blame_1)
    assert 1 not in replica.quit_views
    blame_2 = make_message(scheme, 2, MessageType.BLAME, 1, None)
    replica.on_message(2, blame_2)
    # f + 1 = 2 distinct blames -> the replica quits the view.
    assert 1 in replica.quit_views
    assert replica.in_view_change


def test_forged_blame_certificate_is_rejected():
    sim, scheme, config, replicas = build_cluster()
    replica = replicas[3]
    # A "certificate" built from a single blame does not meet the quorum.
    lone_blame = make_message(scheme, 1, MessageType.BLAME, 1, None)
    from repro.core.messages import make_view_qc

    weak_qc = make_view_qc([lone_blame])
    carrier = make_message(scheme, 1, MessageType.BLAME_QC, 1, weak_qc)
    replica.on_message(1, carrier)
    assert 1 not in replica.quit_views


def test_commit_update_votes_only_for_non_conflicting_blocks():
    sim, scheme, _, replicas = build_cluster()
    replica = replicas[2]
    from repro.core.blocks import make_block
    from repro.core.types import Command

    locked = make_block(replica.blocks.genesis, 0, 1, 3, [Command("x")])
    replica.on_message(0, make_message(scheme, 0, MessageType.PROPOSE, 1, locked, round_number=3))
    sent = []
    replica.send = lambda dst, msg: sent.append((dst, msg))  # type: ignore[assignment]
    # A commit update for a conflicting block gets no Certify vote.
    conflicting = make_block(replica.blocks.genesis, 4, 1, 3, [Command("y")])
    replica.store_block(conflicting)
    replica.on_message(4, make_message(scheme, 4, MessageType.COMMIT_UPDATE, 1, conflicting))
    assert sent == []
    # One for the genesis (an ancestor of the lock) is certified.
    replica.on_message(4, make_message(scheme, 4, MessageType.COMMIT_UPDATE, 1, replica.blocks.genesis))
    assert len(sent) == 1
    assert sent[0][0] == 4
    assert sent[0][1].msg_type == MessageType.CERTIFY


def test_describe_snapshot_fields():
    _, _, _, replicas = build_cluster()
    snapshot = replicas[0].describe()
    assert {"pid", "view", "round", "locked_height", "committed_height", "in_view_change"} <= set(snapshot)
