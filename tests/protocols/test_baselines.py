"""Sync HotStuff, OptSync and trusted-baseline protocol behaviour."""

import pytest

from repro.core.adversary import FaultPlan
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from tests.conftest import honest_spec


@pytest.fixture(scope="module")
def shs_run():
    return ProtocolRunner().run(honest_spec(protocol="sync-hotstuff", n=7, f=2, k=3, blocks=4, seed=41))


@pytest.fixture(scope="module")
def eesmr_run():
    return ProtocolRunner().run(honest_spec(protocol="eesmr", n=7, f=2, k=3, blocks=4, seed=41))


def test_sync_hotstuff_commits_and_is_safe(shs_run):
    assert shs_run.min_committed_height == 4
    assert shs_run.safety.consistent
    assert shs_run.view_changes == 0


def test_sync_hotstuff_every_node_signs_votes(shs_run):
    """O(n) signatures per block: every node votes."""
    assert shs_run.sign_operations > 2 * shs_run.committed_blocks * (shs_run.spec.n - 1)


def test_sync_hotstuff_verification_superlinear(shs_run, eesmr_run):
    """Certificate checking makes Sync HotStuff verify far more than EESMR."""
    assert shs_run.verify_operations > 3 * eesmr_run.verify_operations


def test_sync_hotstuff_more_communication_than_eesmr(shs_run, eesmr_run):
    assert shs_run.network.physical_transmissions > eesmr_run.network.physical_transmissions
    assert shs_run.network.physical_bytes > eesmr_run.network.physical_bytes


def test_eesmr_steady_state_cheaper_than_sync_hotstuff(shs_run, eesmr_run):
    """The headline result: EESMR wins the failure-free case."""
    assert eesmr_run.energy_per_block_mj < shs_run.energy_per_block_mj
    assert eesmr_run.leader_energy_per_block_mj < shs_run.leader_energy_per_block_mj


def test_sync_hotstuff_crashed_leader_view_change_recovers():
    runner = ProtocolRunner()
    spec = DeploymentSpec(
        protocol="sync-hotstuff",
        n=7,
        f=2,
        k=3,
        target_height=3,
        seed=42,
        fault_plan=FaultPlan(faulty=(0,), behaviour="crash", crash_time=0.0),
    )
    result = runner.run(spec)
    assert result.min_committed_height == 3
    assert result.safety.consistent
    assert result.view_changes >= 1


def test_sync_hotstuff_view_change_cheaper_than_eesmr_view_change():
    """The other half of the trade-off: EESMR pays more during a view change."""
    runner = ProtocolRunner()
    shs = runner.run(
        DeploymentSpec(
            protocol="sync-hotstuff",
            n=9,
            f=2,
            k=3,
            target_height=3,
            seed=43,
            fault_plan=FaultPlan(faulty=(0,), behaviour="crash", crash_time=0.0),
        )
    )
    eesmr = runner.run(
        DeploymentSpec(
            protocol="eesmr",
            n=9,
            f=2,
            k=3,
            target_height=3,
            seed=43,
            fault_plan=FaultPlan(faulty=(0,), behaviour="silent_leader"),
        )
    )
    assert eesmr.correct_energy_mj > shs.correct_energy_mj


def test_optsync_commits_and_costs_at_least_sync_hotstuff():
    runner = ProtocolRunner()
    opt = runner.run(honest_spec(protocol="optsync", n=8, f=1, k=3, blocks=3, seed=44))
    shs = runner.run(honest_spec(protocol="sync-hotstuff", n=8, f=1, k=3, blocks=3, seed=44))
    assert opt.min_committed_height == 3
    assert opt.safety.consistent
    assert opt.verify_operations >= shs.verify_operations
    assert opt.energy_per_block_mj >= shs.energy_per_block_mj


def test_trusted_baseline_commits_all_blocks():
    result = ProtocolRunner().run(honest_spec(protocol="trusted-baseline", n=6, f=2, k=2, blocks=4, seed=45))
    assert result.min_committed_height == 4
    assert result.safety.consistent


def test_trusted_baseline_energy_dominated_by_uplink_and_signing():
    """The baseline's cost per node is the expensive 4G round trip plus request signing."""
    result = ProtocolRunner().run(honest_spec(protocol="trusted-baseline", n=6, f=2, k=2, blocks=4, seed=46))
    breakdown = result.energy.breakdown
    # The 4G round trips are a macroscopic share of the total energy (far
    # beyond what the same traffic would cost on BLE).
    assert breakdown.communication > 0.3 * breakdown.total
    assert breakdown.communication > 1.0  # Joules


def test_trusted_baseline_no_inter_replica_traffic():
    result = ProtocolRunner().run(honest_spec(protocol="trusted-baseline", n=6, f=2, k=2, blocks=3, seed=47))
    # All traffic is unicasts to/from the control node; no floods at all.
    assert result.network.broadcasts == 0
    assert result.network.unicasts > 0


def test_trusted_baseline_commits_reordered_orders():
    """Retransmission latency on a lossy wire can deliver TB_ORDERs out of
    height order; the replica buffers dangling blocks and commits them once
    their ancestry arrives instead of stranding the suffix forever."""
    from repro.net.impairment import ImpairmentSpec

    spec = DeploymentSpec(
        protocol="trusted-baseline",
        n=5,
        f=1,
        k=2,
        target_height=4,
        medium="ble",
        impairment=ImpairmentSpec(reorder=1.0),
    )
    result = ProtocolRunner().run(spec)
    assert result.min_committed_height == 4
    assert result.safety.consistent
