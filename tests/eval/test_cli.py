"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.eval.runner import PROTOCOLS, DeploymentSpec


def test_run_subcommand_honest(capsys):
    code = main(["run", "-n", "5", "-f", "1", "-k", "2", "--blocks", "2", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "committed blocks    : 2" in out
    assert "safety              : OK" in out


def test_run_subcommand_with_leader_fault(capsys):
    code = main(
        ["run", "-n", "5", "-f", "1", "-k", "2", "--blocks", "1", "--leader-fault", "silent_leader"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "view changes        : 1" in out


def test_run_subcommand_other_protocol(capsys):
    code = main(["run", "--protocol", "sync-hotstuff", "-n", "5", "-f", "1", "-k", "2", "--blocks", "1"])
    assert code == 0
    assert "sync-hotstuff" in capsys.readouterr().out


def test_experiment_subcommand_table(capsys):
    code = main(["experiment", "table2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "rsa-1024" in out


def test_experiment_names_all_callable():
    assert set(EXPERIMENTS) >= {"table1", "table2", "table3", "fig2c", "headline"}


def test_feasibility_subcommand(capsys):
    code = main(["feasibility", "--max-nodes", "16", "--payloads", "512"])
    out = capsys.readouterr().out
    assert code == 0
    assert "payload (B)" in out


def test_run_protocol_choices_derive_from_runner_registry():
    run_parser = next(
        action
        for action in build_parser()._subparsers._group_actions
        if hasattr(action, "choices")
    ).choices["run"]
    protocol_action = next(a for a in run_parser._actions if a.dest == "protocol")
    assert tuple(protocol_action.choices) == PROTOCOLS


def test_run_subcommand_from_spec_file(tmp_path, capsys):
    spec = DeploymentSpec(protocol="eesmr", n=5, f=1, k=2, target_height=2, seed=3)
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    code = main(["run", "--spec", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "committed blocks    : 2" in out
    assert "safety              : OK" in out


def test_matrix_subcommand(tmp_path, capsys):
    dump = tmp_path / "cells.json"
    code = main(
        [
            "matrix",
            "--protocols", "eesmr", "sync-hotstuff",
            "--faults", "none", "crash-leader",
            "--media", "ble",
            "-n", "5", "-f", "1", "-k", "2",
            "--blocks", "2",
            "--dump-specs", str(dump),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cells run           : 4" in out
    assert "invariants          : OK" in out
    specs = json.loads(dump.read_text())
    assert len(specs) == 4
    # Every dumped cell round-trips through the declarative schema.
    for data in specs:
        assert DeploymentSpec.from_dict(data).n == 5


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["teleport"])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])
