"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_run_subcommand_honest(capsys):
    code = main(["run", "-n", "5", "-f", "1", "-k", "2", "--blocks", "2", "--seed", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "committed blocks    : 2" in out
    assert "safety              : OK" in out


def test_run_subcommand_with_leader_fault(capsys):
    code = main(
        ["run", "-n", "5", "-f", "1", "-k", "2", "--blocks", "1", "--leader-fault", "silent_leader"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "view changes        : 1" in out


def test_run_subcommand_other_protocol(capsys):
    code = main(["run", "--protocol", "sync-hotstuff", "-n", "5", "-f", "1", "-k", "2", "--blocks", "1"])
    assert code == 0
    assert "sync-hotstuff" in capsys.readouterr().out


def test_experiment_subcommand_table(capsys):
    code = main(["experiment", "table2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "rsa-1024" in out


def test_experiment_names_all_callable():
    assert set(EXPERIMENTS) >= {"table1", "table2", "table3", "fig2c", "headline"}


def test_feasibility_subcommand(capsys):
    code = main(["feasibility", "--max-nodes", "16", "--payloads", "512"])
    out = capsys.readouterr().out
    assert code == 0
    assert "payload (B)" in out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["teleport"])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])
