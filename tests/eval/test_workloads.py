"""Unit tests for workload generation."""

import pytest

from repro.eval.workloads import (
    SensorReadingWorkload,
    commands_for_run,
    client_for_run,
    fill_txpools,
    generate_commands,
)
from repro.core.txpool import TxPool


class PoolHolder:
    def __init__(self):
        self.txpool = TxPool()

    def submit_commands(self, commands):
        return self.txpool.add_all(commands)


def test_generate_commands_deterministic():
    a = generate_commands(5, seed=3)
    b = generate_commands(5, seed=3)
    assert [c.command_id for c in a] == [c.command_id for c in b]
    assert [c.payload_digest for c in a] == [c.payload_digest for c in b]


def test_generate_commands_respects_payload_size():
    commands = generate_commands(3, payload_size_bytes=128)
    assert all(c.payload_size_bytes == 128 for c in commands)


def test_commands_for_run_includes_surplus():
    commands = commands_for_run(target_height=5, batch_size=2, surplus_blocks=4)
    assert len(commands) == (5 + 4) * 2


def test_commands_for_run_rejects_negative():
    with pytest.raises(ValueError):
        commands_for_run(-1, 1)


def test_fill_txpools_loads_every_replica():
    replicas = [PoolHolder(), PoolHolder()]
    commands = generate_commands(4)
    fill_txpools(replicas, commands)
    assert all(len(r.txpool) == 4 for r in replicas)


def test_client_for_run_uses_f():
    client = client_for_run(f=3)
    assert client.f == 3


def test_sensor_workload_one_reading_per_sensor_per_epoch():
    workload = SensorReadingWorkload(n_sensors=4, reading_bytes=32, seed=9)
    epoch = workload.next_epoch()
    assert len(epoch) == 4
    assert len({c.command_id for c in epoch}) == 4
    assert all(c.payload_size_bytes == 32 for c in epoch)


def test_sensor_workload_epochs_are_distinct():
    workload = SensorReadingWorkload(n_sensors=2, seed=9)
    flat = workload.epochs(3)
    assert len(flat) == 6
    assert len({c.command_id for c in flat}) == 6


def test_sensor_workload_rejects_zero_sensors():
    with pytest.raises(ValueError):
        SensorReadingWorkload(n_sensors=0)
