"""Tests for the per-table / per-figure experiment functions.

These are the library-level checks that the *shapes* reported by the paper
hold in the reproduction; the benchmarks print the full rows/series.
Parameters are scaled down so the whole module stays fast.
"""

import pytest

from repro.eval import experiments as exp


def test_table1_rows_match_paper_values():
    rows = exp.table1_media_energy()
    assert len(rows) == 4
    row_256 = rows[0]
    assert row_256["ble_send_mj"] == pytest.approx(0.73)
    assert row_256["lte_send_mj"] == pytest.approx(494.84)
    assert row_256["wifi_recv_mj"] == pytest.approx(66.66)


def test_table2_rows_cover_all_schemes_and_rsa_wins_verification():
    rows = exp.table2_signature_energy()
    assert len(rows) == 11
    by_name = {row["scheme"]: row for row in rows}
    assert by_name["rsa-1024"]["verify_j"] < min(
        row["verify_j"] for name, row in by_name.items() if row["family"] == "ecdsa"
    )


def test_table3_measured_scaling():
    rows = exp.table3_complexity(system_sizes=((5, 2), (9, 4)), k=2, blocks=2, seed=61)
    by_key = {(r.protocol, r.n): r for r in rows}
    # EESMR: constant signatures per block, transmissions linear in n.
    assert by_key[("eesmr", 5)].signs_per_block == by_key[("eesmr", 9)].signs_per_block
    assert by_key[("eesmr", 9)].transmissions_per_block > by_key[("eesmr", 5)].transmissions_per_block
    # Sync HotStuff: signatures grow with n, verifications grow faster than EESMR's.
    assert by_key[("sync-hotstuff", 9)].signs_per_block > by_key[("sync-hotstuff", 5)].signs_per_block
    assert (
        by_key[("sync-hotstuff", 9)].verifies_per_block
        > by_key[("eesmr", 9)].verifies_per_block
    )


def test_table3_asymptotic_rows_present():
    protocols = [row["protocol"] for row in exp.TABLE3_ASYMPTOTIC]
    assert "EESMR" in protocols and "Sync HotStuff" in protocols
    eesmr = next(row for row in exp.TABLE3_ASYMPTOTIC if row["protocol"] == "EESMR")
    assert eesmr["best_sign"] == "O(1)"
    assert eesmr["worst_block_period"] == "21 Delta"


def test_fig1_region_has_crossover():
    region = exp.fig1_feasible_region(message_sizes=(512, 2048), node_counts=(4, 12, 24, 36))
    assert 0.0 < region.favourable_fraction < 1.0


def test_fig2a_curves_shapes():
    curves = exp.fig2a_kcast_reliability(ks=(1, 7), max_redundancy=8)
    assert set(curves) == {1, 7}
    for k, points in curves.items():
        failures = [p.failure_probability for p in points]
        assert failures == sorted(failures, reverse=True)
    # Larger k fails more often at equal redundancy.
    assert curves[7][2].failure_probability > curves[1][2].failure_probability


def test_fig2b_rows_show_kcast_advantage_shrinking():
    rows = exp.fig2b_unicast_vs_multicast(payloads=(100, 500), k=7)
    small, large = rows[0], rows[1]
    assert small["kcast_send_mj"] < small["unicast_send_dout_k_mj"]
    ratio_small = small["unicast_send_dout_k_mj"] / small["kcast_send_mj"]
    ratio_large = large["unicast_send_dout_k_mj"] / large["kcast_send_mj"]
    assert ratio_large < ratio_small


def test_fig2c_energy_grows_with_k_and_leader_above_replica():
    points = exp.fig2c_leader_vs_replica(n=9, ks=(2, 4), blocks=2, seed=62)
    assert points[0].leader_mj_per_block > points[0].replica_mj_per_block
    assert points[1].replica_mj_per_block > points[0].replica_mj_per_block


def test_fig2d_block_size_ordering():
    series = exp.fig2d_block_sizes(n=7, ks=(2, 3), payloads=(16, 256), blocks=2, seed=63)
    assert series[256][0].leader_mj_per_block > series[16][0].leader_mj_per_block


def test_fig2e_view_changes_cost_more_than_honest_smr():
    points = exp.fig2e_view_change_energy(n=7, fs=(1, 2), blocks=2, seed=64)
    by_key = {(p.scenario, p.f): p for p in points}
    for f in (1, 2):
        assert by_key[("no_progress", f)].mean_correct_mj > by_key[("honest_smr", f)].mean_correct_mj
        assert by_key[("equivocation", f)].mean_correct_mj > by_key[("honest_smr", f)].mean_correct_mj
        assert by_key[("no_progress", f)].view_changes == 1
        assert by_key[("equivocation", f)].view_changes == 1


def test_fig2f_eesmr_below_sync_hotstuff_and_scaling():
    points = exp.fig2f_total_energy_vs_n(ns=(4, 6), ks=(3,), blocks=2, seed=65)
    by_key = {(p.protocol, p.n): p for p in points}
    for n in (4, 6):
        assert by_key[("eesmr", n)].total_mj_per_block < by_key[("sync-hotstuff", n)].total_mj_per_block
    assert by_key[("sync-hotstuff", 6)].total_mj_per_block > by_key[("sync-hotstuff", 4)].total_mj_per_block


def test_fig3_eesmr_wins_honest_case_at_every_f():
    points = exp.fig3_eesmr_vs_sync_hotstuff(n=7, fs=(1, 2), blocks=2, seed=66)
    by_key = {(p.protocol, p.scenario, p.f): p for p in points}
    for f in (1, 2):
        assert (
            by_key[("eesmr", "honest_smr", f)].leader_mj
            < by_key[("sync-hotstuff", "honest_smr", f)].leader_mj
        )


def test_headline_ratios_match_paper_direction():
    ratios = exp.headline_ratios(n=9, f=4, k=5, blocks=2, seed=67)
    assert ratios.steady_state_ratio > 1.5
    assert ratios.view_change_ratio > 1.0
