"""Unit tests for the experiment runner."""

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner, run_protocol
from tests.conftest import honest_spec


def test_spec_validation():
    with pytest.raises(ValueError):
        DeploymentSpec(protocol="pbft")
    with pytest.raises(ValueError):
        DeploymentSpec(protocol="eesmr", n=5, k=5)


def test_build_topology_variants():
    runner = ProtocolRunner()
    ring = runner.build_topology(DeploymentSpec(n=7, k=3, topology="ring-kcast"))
    assert ring.k == 3 and len(ring.nodes) == 7
    full = runner.build_topology(DeploymentSpec(n=5, k=2, topology="fully-connected"))
    assert full.diameter() == 1
    uni = runner.build_topology(DeploymentSpec(n=5, k=2, topology="unicast-ring"))
    assert all(e.degree == 1 for e in uni.edges)
    with pytest.raises(ValueError):
        runner.build_topology(DeploymentSpec(n=5, k=2, topology="torus"))


def test_compute_delta_covers_diameter():
    runner = ProtocolRunner()
    spec = DeploymentSpec(n=9, k=2, hop_delay=1.0)
    topology = runner.build_topology(spec)
    delta = runner.compute_delta(spec, topology)
    assert delta >= topology.diameter() * spec.hop_delay
    explicit = DeploymentSpec(n=9, k=2, delta=42.0)
    assert runner.compute_delta(explicit, topology) == 42.0


def test_run_protocol_convenience_function():
    result = run_protocol(honest_spec(n=5, f=1, k=2, blocks=2, seed=51))
    assert result.committed_blocks == 2
    assert result.safety.consistent


def test_results_are_deterministic_for_same_seed():
    spec = honest_spec(n=6, f=1, k=2, blocks=3, seed=52)
    a = ProtocolRunner().run(spec)
    b = ProtocolRunner().run(spec)
    assert a.correct_energy_mj == pytest.approx(b.correct_energy_mj)
    assert a.network.physical_bytes == b.network.physical_bytes
    assert a.sim_time == pytest.approx(b.sim_time)


def test_different_seeds_change_timing_but_not_outcome():
    a = ProtocolRunner().run(honest_spec(n=6, f=1, k=2, blocks=3, seed=1))
    b = ProtocolRunner().run(honest_spec(n=6, f=1, k=2, blocks=3, seed=2))
    assert a.committed_blocks == b.committed_blocks == 3
    assert a.safety.consistent and b.safety.consistent


def test_charge_sleep_adds_energy():
    base = ProtocolRunner().run(honest_spec(n=5, f=1, k=2, blocks=2, seed=53))
    slept = ProtocolRunner().run(honest_spec(n=5, f=1, k=2, blocks=2, seed=53, charge_sleep=True))
    assert slept.correct_energy_mj > base.correct_energy_mj


def test_result_derived_metrics_consistent():
    result = ProtocolRunner().run(honest_spec(n=5, f=1, k=2, blocks=2, seed=54))
    assert result.correct_energy_mj == pytest.approx(result.correct_energy_j * 1000)
    assert result.energy_per_block_mj == pytest.approx(result.correct_energy_mj / 2)
    assert result.leader_energy_mj > 0
    assert set(result.committed_heights) == set(range(5))


def test_jitter_disabled_gives_deterministic_hop_latency():
    result = ProtocolRunner().run(honest_spec(n=5, f=1, k=2, blocks=2, seed=55, jitter=False))
    assert result.committed_blocks == 2
