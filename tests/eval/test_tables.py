"""Unit tests for plain-text table formatting."""

from repro.eval.tables import format_series, format_table


def test_format_table_aligns_columns():
    text = format_table(["name", "value"], [["a", 1.0], ["longer", 2.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "2.50" in lines[3]


def test_format_table_handles_none_and_ints():
    text = format_table(["a", "b"], [[None, 3]])
    assert "-" in text and "3" in text


def test_format_series():
    text = format_series("EESMR leader", {2: 100.0, 3: 150.5})
    assert text.startswith("EESMR leader:")
    assert "2=100.00mJ" in text
    assert "3=150.50mJ" in text
