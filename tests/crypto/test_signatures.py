"""Unit tests for the simulated signature schemes."""

import pytest

from repro.crypto.keys import KeyStore
from repro.crypto.signatures import available_schemes, make_scheme


@pytest.fixture
def scheme():
    store = KeyStore(seed=3)
    store.generate(range(5))
    return make_scheme("rsa-1024", keystore=store)


def test_sign_then_verify_succeeds(scheme):
    sig = scheme.sign(0, {"block": "abc"})
    assert scheme.verify(1, {"block": "abc"}, sig)


def test_verify_fails_for_tampered_payload(scheme):
    sig = scheme.sign(0, {"block": "abc"})
    assert not scheme.verify(1, {"block": "xyz"}, sig)


def test_verify_fails_for_wrong_scheme_name(scheme):
    other = make_scheme("ecdsa-secp256k1", keystore=scheme.keystore)
    sig = other.sign(0, "payload")
    assert not scheme.verify(1, "payload", sig)


def test_signature_binds_to_signer(scheme):
    sig_a = scheme.sign(0, "payload")
    sig_b = scheme.sign(1, "payload")
    assert sig_a.tag != sig_b.tag
    assert sig_a.signer == 0 and sig_b.signer == 1


def test_forgery_with_wrong_signer_id_fails(scheme):
    """Claiming someone else's identity on a tag you produced must fail."""
    sig = scheme.sign(0, "payload")
    forged = type(sig)(signer=1, scheme=sig.scheme, tag=sig.tag, payload_digest=sig.payload_digest)
    assert not scheme.verify(2, "payload", forged)


def test_operation_counters(scheme):
    scheme.sign(0, "a")
    scheme.sign(0, "b")
    sig = scheme.sign(1, "c")
    scheme.verify(2, "c", sig)
    scheme.verify(3, "c", sig)
    assert scheme.sign_counts[0] == 2
    assert scheme.sign_counts[1] == 1
    assert scheme.total_sign_operations() == 3
    assert scheme.total_verify_operations() == 2


def test_energy_properties_match_table(scheme):
    assert scheme.sign_energy_j == pytest.approx(0.40)
    assert scheme.verify_energy_j == pytest.approx(0.02)


def test_signature_size_matches_scheme(scheme):
    sig = scheme.sign(0, "x")
    assert sig.size_bytes == 128


def test_hmac_scheme_is_not_transferable():
    scheme = make_scheme("hmac-sha256", seed=1)
    assert scheme.spec.transferable is False


def test_rsa_scheme_is_transferable(scheme):
    assert scheme.spec.transferable is True


def test_available_schemes_covers_table():
    names = available_schemes()
    assert "rsa-1024" in names and "ecdsa-secp256k1" in names and "hmac-sha256" in names
    assert len(names) == 11


def test_make_scheme_generates_keys_on_demand():
    scheme = make_scheme("rsa-1024", seed=5)
    scheme.keystore.generate([0, 1])
    sig = scheme.sign(0, "x")
    assert scheme.verify(1, "x", sig)


def test_every_scheme_round_trips():
    store = KeyStore(seed=9)
    store.generate(range(3))
    for name in available_schemes():
        scheme = make_scheme(name, keystore=store)
        sig = scheme.sign(0, {"payload": name})
        assert scheme.verify(1, {"payload": name}, sig), name
