"""Unit tests for hashing with energy accounting."""

import pytest

from repro.crypto.hashing import HashFunction, canonical_bytes, sha256_hex


def test_sha256_hex_deterministic():
    assert sha256_hex({"a": 1, "b": 2}) == sha256_hex({"b": 2, "a": 1})


def test_sha256_hex_differs_for_different_payloads():
    assert sha256_hex("x") != sha256_hex("y")


def test_canonical_bytes_handles_bytes_str_and_objects():
    assert canonical_bytes(b"raw") == b"raw"
    assert canonical_bytes("text") == b"text"
    assert isinstance(canonical_bytes({"k": [1, 2]}), bytes)


def test_hash_energy_grows_linearly_with_size():
    fn = HashFunction()
    small = fn.energy_for_size(100)
    large = fn.energy_for_size(10_100)
    assert large > small
    assert large - small == pytest.approx(10_000 * fn.per_byte_energy_j)


def test_hash_energy_rejects_negative_size():
    with pytest.raises(ValueError):
        HashFunction().energy_for_size(-1)


def test_digest_reports_size_and_energy():
    fn = HashFunction()
    result = fn.digest(b"x" * 64)
    assert result.input_size_bytes == 64
    assert result.energy_joules == pytest.approx(fn.energy_for_size(64))
    assert len(result.digest) == 64  # hex sha256


def test_digest_counters():
    fn = HashFunction()
    fn.digest(b"a")
    fn.digest(b"bc")
    assert fn.invocations == 2
    assert fn.total_bytes == 3


def test_hash_cost_well_below_signature_cost():
    """The paper's ordering: hashing is far cheaper than signing."""
    fn = HashFunction()
    assert fn.energy_for_size(1024) < 0.01  # Joules; RSA-1024 sign is 0.4 J
