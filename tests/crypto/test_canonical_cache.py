"""Flyweight canonicalization cache: safety and hit behaviour.

The cache exists to serialize each message once per run instead of once
per hop×verifier — but it must never trade that for staleness.  The
mutation tests here pin the contract: only *immutable* payloads (frozen
dataclasses by identity, primitive tuples by value) are ever cached;
mutable payloads re-serialize on every call, so a payload mutated after
signing still fails verification.
"""

import gc
from dataclasses import dataclass

import pytest

from repro.crypto.hashing import (
    CanonicalCache,
    canonical_bytes,
    canonical_cache,
    sha256_hex,
)
from repro.crypto.signatures import make_scheme


@dataclass(frozen=True)
class FrozenPayload:
    name: str
    value: int


@pytest.fixture(autouse=True)
def fresh_cache():
    canonical_cache.clear()
    yield
    canonical_cache.clear()


# ----------------------------------------------------------- mutation safety
def test_mutated_after_sign_payload_fails_verification():
    scheme = make_scheme("hmac-sha256")
    scheme.keystore.generate([0, 1])
    payload = {"cmd": "transfer", "amount": 10}
    signature = scheme.sign(0, payload)
    assert scheme.verify(1, payload, signature)
    payload["amount"] = 10_000
    assert not scheme.verify(1, payload, signature)


def test_mutated_list_payload_reserializes():
    payload = [1, 2, 3]
    first = canonical_bytes(payload)
    payload.append(4)
    second = canonical_bytes(payload)
    assert first != second


def test_frozen_wrapper_around_mutable_field_is_never_cached():
    @dataclass(frozen=True)
    class FrozenWithList:
        items: list

    scheme = make_scheme("hmac-sha256")
    scheme.keystore.generate([0, 1])
    payload = FrozenWithList(items=[1, 2, 3])
    signature = scheme.sign(0, payload)
    assert scheme.verify(1, payload, signature)
    payload.items.append(99)
    assert not scheme.verify(1, payload, signature)
    assert canonical_cache.stats()["identity_entries"] == 0


def test_message_with_mutable_data_recomputes_digest_after_mutation():
    from repro.core.messages import MessageType, make_message, verify_message

    scheme = make_scheme("hmac-sha256")
    scheme.keystore.generate([0, 1, 2])
    data = {"balance": 100}
    message = make_message(scheme, 0, MessageType.PROPOSE, 1, data)
    assert verify_message(scheme, 1, message)
    digest_before = message.data_digest
    data["balance"] = 10_000
    assert message.data_digest != digest_before
    assert not verify_message(scheme, 2, message)


def test_frozen_payloads_are_cached_by_identity_not_value():
    a = FrozenPayload("x", 1)
    b = FrozenPayload("x", 1)
    bytes_a = canonical_cache.bytes_for(a)
    hits_before = canonical_cache.hits
    assert canonical_cache.bytes_for(a) is bytes_a
    assert canonical_cache.hits == hits_before + 1
    # An equal-but-distinct instance serializes to equal bytes without
    # sharing the identity entry.
    assert canonical_cache.bytes_for(b) == bytes_a


def test_identity_entries_evicted_when_message_collected():
    cache = CanonicalCache()
    obj = FrozenPayload("gone", 9)
    cache.bytes_for(obj)
    assert cache.stats()["identity_entries"] == 1
    del obj
    gc.collect()
    assert cache.stats()["identity_entries"] == 0


# ------------------------------------------------------------- equivalence
def test_cached_and_uncached_serializations_agree():
    samples = [
        "plain string",
        b"raw bytes",
        ("view", "propose", 3),
        FrozenPayload("msg", 42),
        {"k": [1, 2, {"nested": True}]},
        3.14159,
    ]
    for payload in samples:
        cached_first = canonical_bytes(payload)
        cached_again = canonical_bytes(payload)
        canonical_cache.enabled = False
        try:
            raw = canonical_bytes(payload)
        finally:
            canonical_cache.enabled = True
        assert cached_first == cached_again == raw, payload


def test_digest_matches_sha256_of_canonical_bytes():
    import hashlib

    payload = ("data", "abcdef", 7)
    assert sha256_hex(payload) == hashlib.sha256(canonical_bytes(payload)).hexdigest()
    # Second call is a value-cache hit with the same digest.
    assert sha256_hex(payload) == sha256_hex(("data", "abcdef", 7))


def test_value_cache_hits_across_equal_tuples():
    canonical_cache.bytes_for(("view", "propose", 1))
    hits_before = canonical_cache.hits
    canonical_cache.bytes_for(("view", "propose", 1))
    assert canonical_cache.hits == hits_before + 1


def test_value_cache_distinguishes_equal_but_differently_typed_leaves():
    # 1 == True == 1.0 under dict-key equality, but their canonical JSON
    # differs; the cache key is type-tagged so none of them alias.
    as_int = canonical_bytes(("x", 1))
    as_bool = canonical_bytes(("x", True))
    as_float = canonical_bytes(("x", 1.0))
    assert as_int == b'["x", 1]'
    assert as_bool == b'["x", true]'
    assert as_float == b'["x", 1.0]'
    # And the digests differ accordingly (a signature over one must not
    # verify against another).
    assert len({sha256_hex(("x", 1)), sha256_hex(("x", True)), sha256_hex(("x", 1.0))}) == 3


def test_value_cache_distinguishes_positive_and_negative_zero():
    assert canonical_bytes(("x", 0.0)) == b'["x", 0.0]'
    assert canonical_bytes(("x", -0.0)) == b'["x", -0.0]'
    assert sha256_hex(("x", 0.0)) != sha256_hex(("x", -0.0))


def test_tuples_with_mutable_members_are_not_cached():
    inner = [1, 2]
    payload = ("wrapper", inner)
    first = canonical_bytes(payload)
    inner.append(3)
    assert canonical_bytes(payload) != first
    assert canonical_cache.stats()["value_entries"] == 0


# ----------------------------------------------------- scheme-level memoing
def test_verify_memo_still_counts_every_operation():
    scheme = make_scheme("rsa-1024")
    scheme.keystore.generate([0, 1, 2, 3])
    payload = ("data", "digest", 1)
    signature = scheme.sign(0, payload)
    for verifier in (1, 2, 3):
        assert scheme.verify(verifier, payload, signature)
    assert scheme.verify_counts[1] == 1
    assert scheme.verify_counts[2] == 1
    assert scheme.verify_counts[3] == 1
    assert scheme.total_verify_operations() == 3


def test_sign_memo_returns_identical_tags_and_counts():
    scheme = make_scheme("rsa-1024")
    scheme.keystore.generate([0])
    first = scheme.sign(0, ("view", "propose", 5))
    second = scheme.sign(0, ("view", "propose", 5))
    assert first.tag == second.tag
    assert scheme.sign_counts[0] == 2


def test_forged_tag_rejected_even_after_genuine_verification():
    scheme = make_scheme("hmac-sha256")
    scheme.keystore.generate([0, 1])
    payload = ("data", "real", 1)
    genuine = scheme.sign(0, payload)
    assert scheme.verify(1, payload, genuine)
    from repro.crypto.signatures import Signature

    forged = Signature(
        signer=0, scheme=genuine.scheme, tag="0" * 64, payload_digest=genuine.payload_digest
    )
    assert not scheme.verify(1, payload, forged)


def test_message_level_memo_keys_on_frozen_message_identity():
    from repro.core.messages import MessageType, make_message, verify_message

    scheme = make_scheme("rsa-1024")
    scheme.keystore.generate([0, 1, 2])
    message = make_message(scheme, 0, MessageType.PROPOSE, 1, {"h": 1})
    assert verify_message(scheme, 1, message)
    verify_count_before = scheme.total_verify_operations()
    assert verify_message(scheme, 2, message)
    # The second replica reused the verdict but still booked 2 operations.
    assert scheme.total_verify_operations() == verify_count_before + 2
