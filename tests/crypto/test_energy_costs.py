"""Unit tests for the Table 2 signature energy costs."""

import pytest

from repro.crypto.energy_costs import (
    ECDSA_SECP256K1,
    HMAC_COST,
    RSA_1024,
    RSA_2048,
    SIGNATURE_ENERGY_TABLE,
    best_for_leader_pattern,
    cheapest_verification,
    schemes_by_family,
    signature_cost,
)


def test_table_contains_all_eleven_measured_schemes():
    assert len(SIGNATURE_ENERGY_TABLE) == 11


def test_rsa_1024_values_match_paper():
    assert RSA_1024.sign_joules == pytest.approx(0.40)
    assert RSA_1024.verify_joules == pytest.approx(0.02)


def test_ecdsa_secp256k1_values_match_paper():
    assert ECDSA_SECP256K1.sign_joules == pytest.approx(1.72)
    assert ECDSA_SECP256K1.verify_joules == pytest.approx(3.35)


def test_hmac_symmetric_costs():
    assert HMAC_COST.sign_joules == HMAC_COST.verify_joules == pytest.approx(0.19)


def test_rsa_verification_cheaper_than_all_ecdsa():
    """The paper's key observation motivating RSA for SMR."""
    for cost in schemes_by_family("ecdsa"):
        assert RSA_1024.verify_joules < cost.verify_joules


def test_rsa_is_verify_asymmetric_ecdsa_is_not():
    assert RSA_1024.verify_to_sign_ratio < 1.0
    assert ECDSA_SECP256K1.verify_to_sign_ratio > 1.0


def test_brainpool_more_expensive_than_nist_curves():
    bp = signature_cost("ecdsa-bp160r1")
    nist = signature_cost("ecdsa-secp192r1")
    assert bp.sign_joules > nist.sign_joules
    assert bp.verify_joules > nist.verify_joules


def test_signature_cost_lookup_case_insensitive():
    assert signature_cost("RSA-1024") is RSA_1024


def test_signature_cost_unknown_raises():
    with pytest.raises(KeyError):
        signature_cost("ed25519")


def test_total_for_counts():
    assert RSA_1024.total_for(2, 10) == pytest.approx(2 * 0.40 + 10 * 0.02)


def test_total_for_rejects_negative():
    with pytest.raises(ValueError):
        RSA_1024.total_for(-1, 0)


def test_cheapest_verification_is_rsa_1024():
    assert cheapest_verification().name == "rsa-1024"


def test_best_for_leader_pattern_prefers_rsa_for_many_verifiers():
    best = best_for_leader_pattern(verifiers=12)
    assert best.family == "rsa"


def test_best_for_leader_pattern_zero_verifiers_prefers_cheapest_signer():
    best = best_for_leader_pattern(verifiers=0)
    assert best.name == "hmac-sha256"


def test_rsa_larger_modulus_costs_more():
    assert RSA_2048.sign_joules > RSA_1024.sign_joules
    assert RSA_2048.verify_joules > RSA_1024.verify_joules
