"""Unit tests for the PKI key store."""

import pytest

from repro.crypto.keys import KeyStore


def test_generate_is_idempotent_and_deterministic():
    a = KeyStore(seed=1)
    a.generate(range(4))
    first = a.key_pair(2).secret_key
    a.generate(range(4))
    assert a.key_pair(2).secret_key == first
    b = KeyStore(seed=1)
    b.generate(range(4))
    assert b.key_pair(2).secret_key == first


def test_different_seeds_give_different_keys():
    a = KeyStore(seed=1)
    b = KeyStore(seed=2)
    a.generate([0])
    b.generate([0])
    assert a.key_pair(0).secret_key != b.key_pair(0).secret_key


def test_different_nodes_get_different_keys():
    store = KeyStore(seed=1)
    store.generate([0, 1])
    assert store.key_pair(0).secret_key != store.key_pair(1).secret_key


def test_public_key_differs_from_secret():
    store = KeyStore(seed=1)
    store.generate([0])
    pair = store.key_pair(0)
    assert pair.public_key != pair.secret_key


def test_missing_key_raises():
    with pytest.raises(KeyError):
        KeyStore().key_pair(3)


def test_verify_tag_accepts_owner_signature():
    store = KeyStore(seed=1)
    store.generate([0, 1])
    tag = store.key_pair(0).sign_tag(b"payload")
    assert store.verify_tag(0, b"payload", tag)


def test_verify_tag_rejects_other_signer_or_payload():
    store = KeyStore(seed=1)
    store.generate([0, 1])
    tag = store.key_pair(0).sign_tag(b"payload")
    assert not store.verify_tag(1, b"payload", tag)
    assert not store.verify_tag(0, b"other", tag)


def test_verify_tag_unknown_node_is_false():
    store = KeyStore(seed=1)
    assert store.verify_tag(9, b"x", "00" * 32) is False


def test_known_nodes_sorted():
    store = KeyStore(seed=1)
    store.generate([3, 1, 2])
    assert store.known_nodes() == [1, 2, 3]
