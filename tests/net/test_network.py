"""Unit tests for the simulated flooding network."""

import pytest

from repro.energy.meter import EnergyCategory
from repro.sim.process import Process
from tests.conftest import make_network


class Sink(Process):
    def __init__(self, sim, pid):
        super().__init__(sim, pid)
        self.messages = []

    def on_message(self, sender, message):
        self.messages.append((sender, message, self.sim.now))


def build(n=5, k=2, seed=3):
    sim, topology, ledger, network = make_network(n, k, seed)
    sinks = {pid: Sink(sim, pid) for pid in topology.nodes}
    for sink in sinks.values():
        network.register(sink)
    return sim, topology, ledger, network, sinks


def test_broadcast_reaches_every_node_exactly_once():
    sim, _, _, network, sinks = build()
    network.broadcast(0, "hello")
    sim.run_until_idle()
    for pid, sink in sinks.items():
        assert len(sink.messages) == 1, pid
        assert sink.messages[0][0] == 0
        assert sink.messages[0][1] == "hello"


def test_broadcast_delivery_within_diameter_times_hop_delay():
    sim, topology, _, network, sinks = build(n=9, k=2)
    bound = topology.diameter() * network.hop_delay
    network.broadcast(0, "m")
    sim.run_until_idle()
    for sink in sinks.values():
        assert sink.messages[0][2] <= bound + 1e-9


def test_broadcast_charges_transmit_and_receive_energy():
    sim, _, ledger, network, _ = build()
    network.broadcast(0, "x" * 100)
    sim.run_until_idle()
    for pid in range(5):
        meter = ledger.meter(pid)
        assert meter.breakdown.get(EnergyCategory.TRANSMIT) > 0
        assert meter.breakdown.get(EnergyCategory.RECEIVE) > 0


def test_non_relaying_byzantine_nodes_cannot_partition_below_fault_bound():
    # k=2 ring of 7 tolerates 1 non-relaying fault (f < k); the flood still
    # reaches everyone.
    sim, _, _, network, sinks = build(n=7, k=2)
    network.set_relay_policy(1, lambda origin, message: False)
    network.broadcast(0, "m")
    sim.run_until_idle()
    delivered = [pid for pid, sink in sinks.items() if sink.messages]
    assert sorted(delivered) == list(range(7))


def test_origin_relay_policy_does_not_block_own_broadcast():
    sim, _, _, network, sinks = build(n=5, k=2)
    network.set_relay_policy(0, lambda origin, message: False)
    network.broadcast(0, "m")
    sim.run_until_idle()
    assert all(sink.messages for sink in sinks.values())


def test_isolated_node_receives_nothing():
    sim, _, _, network, sinks = build(n=5, k=2)
    network.isolate(3)
    network.broadcast(0, "m")
    sim.run_until_idle()
    assert sinks[3].messages == []


def test_reconnect_restores_delivery():
    sim, _, _, network, sinks = build(n=5, k=2)
    network.isolate(3)
    network.reconnect(3)
    network.broadcast(0, "m")
    sim.run_until_idle()
    assert sinks[3].messages


def test_isolation_is_refcounted():
    """Regression: two overlapping isolations (e.g. overlapping partition
    windows) must both be undone before the node rejoins."""
    sim, _, _, network, sinks = build(n=5, k=2)
    network.isolate(3)
    network.isolate(3)
    network.reconnect(3)
    network.broadcast(0, "first")
    sim.run_until_idle()
    assert sinks[3].messages == [], "one reconnect must not lift two isolations"
    network.reconnect(3)
    network.broadcast(0, "second")
    sim.run_until_idle()
    assert [m[1] for m in sinks[3].messages] == ["second"]


def test_reconnect_without_isolation_is_a_noop():
    sim, _, _, network, sinks = build(n=5, k=2)
    with pytest.warns(RuntimeWarning, match="reconnect.*without a matching isolate"):
        network.reconnect(3)
    network.isolate(3)
    network.broadcast(0, "m")
    sim.run_until_idle()
    assert sinks[3].messages == [], "a stray reconnect must not pre-cancel an isolation"
    assert network.unbalanced_reconnects == 1
    assert network.recovery_metrics() == {"unbalanced_reconnects": 1}


def test_unbalanced_reconnects_counted_but_warned_once():
    import warnings

    sim, _, _, network, _ = build(n=5, k=2)
    with pytest.warns(RuntimeWarning):
        network.reconnect(1)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise here
        network.reconnect(2)
    assert network.unbalanced_reconnects == 2
    # Balanced pairs never touch the counter.
    network.isolate(4)
    network.reconnect(4)
    assert network.unbalanced_reconnects == 2


def test_relay_denial_is_refcounted_and_restores_base_policy():
    sim, _, _, network, _ = build(n=5, k=2)
    base = lambda origin, message: origin == 0
    network.set_relay_policy(2, base)
    network.deny_relay(2)
    network.deny_relay(2)
    assert network.relay_policies[2](0, "m") is False
    network.allow_relay(2)
    assert network.relay_policies[2](0, "m") is False, "inner denial still active"
    network.allow_relay(2)
    assert network.relay_policies[2] is base
    # With no base policy the entry is removed entirely.
    network.deny_relay(4)
    network.allow_relay(4)
    assert 4 not in network.relay_policies


def test_unbalanced_allow_relay_is_a_noop():
    sim, _, _, network, _ = build(n=5, k=2)
    network.allow_relay(2)
    assert 2 not in network.relay_policies
    network.deny_relay(2)
    assert network.relay_policies[2](0, "m") is False


def test_set_relay_policy_under_active_denial_updates_the_base():
    """A policy installed while a denial window is open becomes the base
    restored when the last window closes — the denial stays on top."""
    sim, _, _, network, _ = build(n=5, k=2)
    network.deny_relay(2)
    replacement = lambda origin, message: True
    network.set_relay_policy(2, replacement)
    assert network.relay_policies[2](0, "m") is False, "denial must stay on top"
    network.allow_relay(2)
    assert network.relay_policies[2] is replacement


def test_unicast_delivers_and_charges_both_endpoints():
    sim, _, ledger, network, sinks = build()
    network.send(0, 3, "direct")
    sim.run_until_idle()
    assert sinks[3].messages == [(0, "direct", pytest.approx(sinks[3].messages[0][2]))]
    assert ledger.meter(0).breakdown.get(EnergyCategory.TRANSMIT) > 0
    assert ledger.meter(3).breakdown.get(EnergyCategory.RECEIVE) > 0
    assert network.stats.unicasts == 1


def test_unicast_to_unknown_destination_rejected():
    sim, _, _, network, _ = build()
    with pytest.raises(ValueError):
        network.send(0, 99, "x")


def test_broadcast_from_unregistered_process_rejected():
    sim, _, _, network, _ = build()
    with pytest.raises(ValueError):
        network.broadcast(99, "x")


def test_multicast_neighbors_is_single_hop():
    sim, topology, _, network, sinks = build(n=7, k=2)
    network.multicast_neighbors(0, "hi")
    sim.run_until_idle()
    delivered = {pid for pid, sink in sinks.items() if sink.messages}
    assert delivered == topology.out_neighbors(0)


def test_stats_count_transmissions_and_bytes():
    sim, _, _, network, _ = build(n=5, k=2)
    network.broadcast(0, "y" * 50)
    sim.run_until_idle()
    # Every node relays once in a flood.
    assert network.stats.physical_transmissions == 5
    assert network.stats.physical_bytes == 5 * 50
    assert network.transmissions_by(0) == 1
    assert network.bytes_sent_by(0) == 50


def test_wire_size_uses_message_attribute():
    class Sized:
        wire_size_bytes = 321

    from repro.net.network import default_wire_size

    assert default_wire_size(Sized()) == 321
    assert default_wire_size("abcd") == 4


def test_duplicate_registration_rejected():
    sim, _, _, network, sinks = build()
    with pytest.raises(ValueError):
        network.register(sinks[0])


def test_recommended_delta_covers_observed_latency():
    sim, topology, _, network, sinks = build(n=9, k=2)
    delta = network.recommended_delta()
    network.broadcast(0, "m")
    sim.run_until_idle()
    worst = max(sink.messages[0][2] for sink in sinks.values())
    assert worst <= delta
