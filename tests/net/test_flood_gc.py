"""Flood-state garbage collection: bounded dedup memory on long runs."""

import pytest

from repro.net.network import SimulatedNetwork
from repro.sim.process import Process
from tests.conftest import make_network


class Sink(Process):
    def __init__(self, sim, pid):
        super().__init__(sim, pid)
        self.messages = []

    def on_message(self, sender, message):
        self.messages.append((sender, message))


def build(n=7, k=2, seed=3):
    sim, topology, ledger, network = make_network(n, k, seed)
    sinks = {pid: Sink(sim, pid) for pid in topology.nodes}
    for sink in sinks.values():
        network.register(sink)
    return sim, topology, ledger, network, sinks


def test_dedup_state_empty_after_run_until_idle():
    sim, _, _, network, sinks = build()
    for i in range(10):
        network.broadcast(i % 7, f"msg-{i}")
    sim.run_until_idle()
    assert network._relayed == {}
    assert network._delivered == {}
    assert network._in_flight == {}
    assert network._single_hop == set()
    assert network.live_floods == 0
    # GC never cost a delivery: every node saw every flood exactly once.
    for sink in sinks.values():
        assert len(sink.messages) == 10


def test_multicast_state_retired_after_quiescence():
    sim, _, _, network, _ = build()
    network.multicast_neighbors(0, "hi")
    sim.run_until_idle()
    assert network.live_floods == 0
    assert network._single_hop == set()


def test_state_retained_when_gc_disabled(monkeypatch):
    sim, _, _, network, _ = build()
    monkeypatch.setattr(SimulatedNetwork, "gc_floods", False)
    for i in range(5):
        network.broadcast(0, f"m{i}")
    sim.run_until_idle()
    assert network.live_floods == 5
    assert len(network._relayed) == 5


def test_gc_preserves_stats_and_deliveries(monkeypatch):
    def run(gc_enabled):
        monkeypatch.setattr(SimulatedNetwork, "gc_floods", gc_enabled)
        sim, _, ledger, network, sinks = build(seed=13)
        for i in range(6):
            network.broadcast(i % 7, "payload-" + "x" * 64)
        sim.run_until_idle()
        stats = network.stats
        return (
            stats.physical_transmissions,
            stats.physical_bytes,
            stats.deliveries,
            dict(stats.per_node_transmissions),
            {pid: meter.total_joules for pid, meter in ledger.meters.items()},
        )

    assert run(True) == run(False)


def test_gc_with_isolated_receiver_still_retires():
    sim, _, _, network, sinks = build()
    network.isolate(3)
    network.broadcast(0, "m")
    sim.run_until_idle()
    assert network.live_floods == 0
    assert sinks[3].messages == []


def test_gc_with_non_relaying_byzantine_node_still_retires():
    sim, _, _, network, sinks = build()
    network.set_relay_policy(1, lambda origin, message: False)
    network.broadcast(0, "m")
    sim.run_until_idle()
    assert network.live_floods == 0
    delivered = [pid for pid, sink in sinks.items() if sink.messages]
    assert sorted(delivered) == list(range(7))


def test_interleaved_floods_retire_independently():
    sim, _, _, network, _ = build()
    network.broadcast(0, "a")
    # Run only the first hop, then start a second flood mid-propagation.
    sim.run(until=0.5)
    network.broadcast(1, "b")
    sim.run_until_idle()
    assert network.live_floods == 0
