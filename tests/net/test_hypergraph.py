"""Unit tests for the hypergraph model (Appendix A)."""

import pytest

from repro.net.hypergraph import HyperEdge, Hypergraph
from repro.net.topology import ring_kcast_topology


def make_triangle():
    """Three nodes, each multicasting to the other two."""
    nodes = [0, 1, 2]
    edges = [HyperEdge.make(i, [j for j in nodes if j != i]) for i in nodes]
    return Hypergraph(nodes=nodes, edges=edges)


def test_hyperedge_rejects_self_loop():
    with pytest.raises(ValueError):
        HyperEdge.make(0, [0, 1])


def test_hyperedge_rejects_empty_receivers():
    with pytest.raises(ValueError):
        HyperEdge.make(0, [])


def test_hypergraph_rejects_unknown_endpoints():
    with pytest.raises(ValueError):
        Hypergraph(nodes=[0, 1], edges=[HyperEdge.make(0, [2])])
    with pytest.raises(ValueError):
        Hypergraph(nodes=[0, 1], edges=[HyperEdge.make(5, [1])])


def test_hypergraph_rejects_duplicate_nodes():
    with pytest.raises(ValueError):
        Hypergraph(nodes=[0, 0, 1])


def test_degrees_on_triangle():
    graph = make_triangle()
    for node in graph.nodes:
        assert graph.d_out(node) == 2
        assert graph.d_in(node) == 2
    assert graph.k == 2
    assert graph.capital_d_in == 2
    assert graph.capital_d_out == 1


def test_ring_kcast_degrees():
    graph = ring_kcast_topology(7, 3)
    for node in graph.nodes:
        assert graph.d_out(node) == 3
        assert graph.d_in(node) == 3
        assert len(graph.out_edges(node)) == 1
        assert len(graph.in_edges(node)) == 3
    assert graph.capital_d_out == 1
    assert graph.capital_d_in == 3
    assert graph.k == 3


def test_out_and_in_neighbors_ring():
    graph = ring_kcast_topology(5, 2)
    assert graph.out_neighbors(0) == {1, 2}
    assert graph.in_neighbors(0) == {3, 4}


def test_strong_connectivity_of_ring():
    graph = ring_kcast_topology(6, 2)
    assert graph.is_strongly_connected()
    assert graph.diameter() == 3


def test_connectivity_after_node_removal():
    graph = ring_kcast_topology(6, 2)
    # Removing one node (f = 1 < k = 2) cannot partition the ring.
    assert graph.is_strongly_connected(exclude=[0])
    # Removing two adjacent nodes (f = 2 = k) can: node 5 loses both of its
    # receivers, which is exactly the Lemma A.5 boundary.
    assert not graph.is_strongly_connected(exclude=[0, 1])
    # A k = 3 ring of 7 survives two adjacent removals (f = 2 < k = 3).
    wider = ring_kcast_topology(7, 3)
    assert wider.is_strongly_connected(exclude=[0, 1])


def test_fault_bound_lemma_a5():
    graph = ring_kcast_topology(7, 3)
    # f < min(d_in, d_out) = 3, so the largest tolerable f is 2.
    assert graph.max_faults_necessary_condition() == 2
    assert graph.satisfies_fault_bound(2)
    assert not graph.satisfies_fault_bound(3)


def test_fault_bound_lemma_a6():
    graph = ring_kcast_topology(7, 3)
    # f < k * min(D_in, D_out) = 3 * 1.
    assert graph.max_faults_kcast_condition() == 2


def test_partition_resistance_exhaustive():
    graph = ring_kcast_topology(7, 3)
    assert graph.is_partition_resistant(2)
    # Removing 3 specific consecutive nodes disconnects a k=3 ring of 7.
    assert not graph.is_partition_resistant(3)


def test_independent_edges_detects_redundant_cover():
    nodes = [0, 1, 2, 3]
    edges = [
        HyperEdge.make(0, [1, 2]),
        HyperEdge.make(0, [2, 3]),
        HyperEdge.make(0, [1, 3]),  # covered by the union of the other two
        HyperEdge.make(1, [0]),
        HyperEdge.make(2, [0]),
        HyperEdge.make(3, [0]),
    ]
    graph = Hypergraph(nodes=nodes, edges=edges)
    assert not graph.has_independent_edges()


def test_independent_edges_accepts_ring():
    assert ring_kcast_topology(7, 3).has_independent_edges()


def test_add_edge_validates():
    graph = ring_kcast_topology(4, 1)
    with pytest.raises(ValueError):
        graph.add_edge(HyperEdge.make(0, [9]))
    graph.add_edge(HyperEdge.make(0, [2]))
    assert graph.d_out(0) == 2


def test_diameter_requires_strong_connectivity():
    nodes = [0, 1, 2]
    edges = [HyperEdge.make(0, [1]), HyperEdge.make(1, [2])]
    graph = Hypergraph(nodes=nodes, edges=edges)
    with pytest.raises(ValueError):
        graph.diameter()


def test_partition_resistance_f_zero_is_connectivity():
    graph = ring_kcast_topology(5, 1)
    assert graph.is_partition_resistant(0)
    assert not graph.is_partition_resistant(1)
