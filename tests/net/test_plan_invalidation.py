"""Compiled dissemination plans: caching, invalidation, trace identity.

The plan compiler memoizes the per-hop flood path (out-edges, radio
costs, relay verdicts, partition-filtered receivers) per (state epoch,
wire size).  These tests pin the two properties the optimization rides
on:

* every mutation that the uncompiled path would observe — relay-policy
  changes, deny/allow windows, partition isolate/heal, topology edge
  mutation — invalidates the compiled plan;
* runs driven through compiled plans are byte-identical to the
  uncompiled path, including when the mutation fires mid-flood-window.
"""

from contextlib import contextmanager

import pytest

from repro.energy.ledger import ClusterEnergyLedger
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.net.hypergraph import HyperEdge
from repro.net.network import SimulatedNetwork
from repro.net.topology import ring_kcast_topology
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator
from repro.testkit.faults import drop_window, partition
from repro.testkit.trace import TraceRecorder


@contextmanager
def compiled_plans(enabled: bool):
    saved = SimulatedNetwork.use_compiled_plans
    SimulatedNetwork.use_compiled_plans = enabled
    try:
        yield
    finally:
        SimulatedNetwork.use_compiled_plans = saved


def build_network(n: int = 6, k: int = 2, seed: int = 3) -> SimulatedNetwork:
    sim = Simulator()
    topology = ring_kcast_topology(n, k)
    ledger = ClusterEnergyLedger(topology.nodes)
    return SimulatedNetwork(sim, topology, ledger, rng=SeededRNG(seed))


# ------------------------------------------------------------ plan caching
def test_plan_is_cached_per_size_within_an_epoch():
    network = build_network()
    first = network._plan_for(128)
    assert network._plan_for(128) is first
    assert network._plan_for(256) is not first


@pytest.mark.parametrize(
    "mutate",
    [
        lambda net: net.set_relay_policy(2, lambda o, m: False),
        lambda net: net.deny_relay(2),
        lambda net: net.isolate(2),
    ],
    ids=["set_relay_policy", "deny_relay", "isolate"],
)
def test_state_mutators_invalidate_the_plan(mutate):
    network = build_network()
    stale = network._plan_for(128)
    mutate(network)
    fresh = network._plan_for(128)
    assert fresh is not stale
    assert fresh.state_epoch > stale.state_epoch


def test_deny_and_allow_each_invalidate():
    network = build_network()
    baseline = network._plan_for(64)
    network.deny_relay(4)
    denied = network._plan_for(64)
    assert denied is not baseline
    relays, policy, _meter, _edges = denied.nodes[4]
    assert relays is False
    network.allow_relay(4)
    healed = network._plan_for(64)
    assert healed is not denied
    relays, policy, _meter, _edges = healed.nodes[4]
    assert relays is True


def test_partition_and_heal_each_invalidate():
    network = build_network()
    baseline = network._plan_for(64)
    assert 5 in baseline.nodes
    network.isolate(5)
    cut = network._plan_for(64)
    assert cut is not baseline
    assert 5 not in cut.nodes  # partitioned: neither relays nor receives
    for _relays, _policy, _meter, edges in cut.nodes.values():
        for _cost, receivers, _detail in edges:
            assert 5 not in receivers
    network.reconnect(5)
    healed = network._plan_for(64)
    assert healed is not cut
    assert 5 in healed.nodes


def test_topology_mutation_invalidates_via_topology_version():
    network = build_network()
    stale = network._plan_for(64)
    version = network.hypergraph.topology_version
    network.hypergraph.add_edge(HyperEdge.make(0, [3]))
    assert network.hypergraph.topology_version > version
    fresh = network._plan_for(64)
    assert fresh is not stale
    assert len(fresh.nodes[0][3]) == len(stale.nodes[0][3]) + 1


def test_dynamic_relay_policies_are_consulted_per_flood():
    """Message-dependent policies cannot be folded into the plan."""
    from repro.sim.process import Process

    class Sink(Process):
        def on_message(self, sender, message):
            pass

    network = build_network()
    seen = []

    def picky(origin, message):
        seen.append(message)
        return message != "drop-me"

    network.set_relay_policy(3, picky)
    plan = network._plan_for(64)
    relays, policy, _meter, _edges = plan.nodes[3]
    assert relays is None
    assert policy is picky
    for pid in network.hypergraph.nodes:
        network.register(Sink(network.sim, pid))
    network.broadcast(0, "fine")
    network.sim.run_until_idle()
    network.broadcast(0, "drop-me")
    network.sim.run_until_idle()
    assert seen == ["fine", "drop-me"]


# ----------------------------------------------------- trace byte-identity
def fingerprint(spec_kwargs):
    spec = DeploymentSpec(**spec_kwargs)
    result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    return result.trace.fingerprint()


BASE = dict(protocol="eesmr", n=5, f=1, k=2, target_height=3, seed=17)


@pytest.mark.parametrize(
    "fault_factory",
    [
        lambda: None,
        # Relay denial opening and lifting mid-run: each transition must
        # invalidate the plan exactly where the uncompiled path re-reads
        # the relay-policy dict.
        lambda: drop_window(3, start=1.0, end=8.0),
        # Partition cut + heal mid-run: receiver filtering must follow.
        lambda: partition(4, start=2.0, heal=10.0),
    ],
    ids=["fault-free", "relay-drop-window", "partition-heal"],
)
def test_compiled_plans_byte_identical_to_uncompiled_path(fault_factory):
    with compiled_plans(False):
        uncompiled = fingerprint({**BASE, "fault_schedule": fault_factory()})
    with compiled_plans(True):
        compiled = fingerprint({**BASE, "fault_schedule": fault_factory()})
    assert compiled == uncompiled


def test_compiled_plans_byte_identical_on_wifi_and_larger_n():
    kwargs = dict(
        protocol="eesmr", n=9, f=2, k=2, target_height=4, seed=99, medium="wifi"
    )
    with compiled_plans(False):
        uncompiled = fingerprint(kwargs)
    with compiled_plans(True):
        compiled = fingerprint(kwargs)
    assert compiled == uncompiled
