"""Unit tests for topology builders."""

import pytest

from repro.net.topology import (
    fully_connected_topology,
    random_kcast_topology,
    ring_kcast_topology,
    star_topology,
    unicast_ring_topology,
)
from repro.sim.rng import SeededRNG


def test_ring_kcast_structure():
    graph = ring_kcast_topology(10, 4)
    assert len(graph.nodes) == 10
    assert len(graph.edges) == 10
    assert graph.out_neighbors(9) == {0, 1, 2, 3}


def test_ring_kcast_invalid_parameters():
    with pytest.raises(ValueError):
        ring_kcast_topology(1, 1)
    with pytest.raises(ValueError):
        ring_kcast_topology(5, 0)
    with pytest.raises(ValueError):
        ring_kcast_topology(5, 5)


def test_fully_connected_every_pair_reachable_one_hop():
    graph = fully_connected_topology(6)
    for node in graph.nodes:
        assert graph.out_neighbors(node) == set(graph.nodes) - {node}
    assert graph.diameter() == 1


def test_unicast_ring_has_singleton_edges():
    graph = unicast_ring_topology(6, 2)
    assert all(edge.degree == 1 for edge in graph.edges)
    assert len(graph.edges) == 12
    assert graph.d_out(0) == 2


def test_star_topology_structure():
    graph = star_topology(5, center=4)
    assert graph.out_neighbors(4) == {0, 1, 2, 3}
    for leaf in range(4):
        assert graph.out_neighbors(leaf) == {4}
    assert graph.is_strongly_connected()


def test_star_topology_invalid_center():
    with pytest.raises(ValueError):
        star_topology(4, center=9)


def test_random_kcast_topology_is_connected_and_deterministic():
    a = random_kcast_topology(8, 3, rng=SeededRNG(5))
    b = random_kcast_topology(8, 3, rng=SeededRNG(5))
    assert a.is_strongly_connected()
    assert [e.receivers for e in a.edges] == [e.receivers for e in b.edges]


def test_random_kcast_respects_k():
    graph = random_kcast_topology(9, 4, rng=SeededRNG(2))
    assert all(edge.degree == 4 for edge in graph.edges)


def test_random_kcast_never_under_provisions_edges():
    """Regression: duplicate sampled receiver sets used to be silently
    skipped, leaving nodes with fewer than edges_per_node out-edges.  With
    n=4, k=1 only three distinct receiver sets exist per node, so duplicate
    samples are near-certain across seeds; every node must still end up
    with exactly the requested number of distinct edges."""
    for seed in range(10):
        graph = random_kcast_topology(4, 1, edges_per_node=3, rng=SeededRNG(seed))
        for node in graph.nodes:
            edges = graph.out_edges(node)
            assert len(edges) == 3, f"seed {seed}: node {node} under-provisioned"
            assert len({e.receivers for e in edges}) == 3


def test_random_kcast_unsatisfiable_request_raises():
    # Only comb(4, 4) = 1 distinct receiver set exists for n=5, k=4.
    with pytest.raises(ValueError, match="unsatisfiable"):
        random_kcast_topology(5, 4, edges_per_node=2)
    with pytest.raises(ValueError):
        random_kcast_topology(5, 2, edges_per_node=0)
