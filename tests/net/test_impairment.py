"""Unit tests for the wire-level impairment model and reliable sublayer.

Covers the spec surface (validation, describe round-trip, the CLI clause
grammar), the model's delivery verdicts (drop → retransmission recovery,
give-up under a zeroed budget, duplicate/jitter counters), per-node
overlays, and the determinism contract: impairment draws come from a
dedicated child stream, so a disabled model leaves delivery byte-identical
and an enabled one is a pure function of the seed.
"""

import math

import pytest

from repro.energy.meter import EnergyCategory
from repro.net.impairment import (
    DEFAULT_MAX_RETRIES,
    ImpairmentSpec,
    compose_loss,
    impairment_from_dict,
    parse_impairment,
)
from tests.net.test_network import build


def impaired_build(spec, n=5, k=2, seed=3):
    sim, topology, ledger, network, sinks = build(n=n, k=k, seed=seed)
    network.configure_impairment(spec)
    return sim, topology, ledger, network, sinks


def delivery_times(sinks):
    return {pid: [t for (_, _, t) in sink.messages] for pid, sink in sinks.items()}


# ------------------------------------------------------------------- spec
def test_spec_validates_probabilities():
    with pytest.raises(ValueError, match="loss"):
        ImpairmentSpec(loss=1.5)
    with pytest.raises(ValueError, match="duplicate"):
        ImpairmentSpec(duplicate=-0.1)
    with pytest.raises(ValueError, match="jitter"):
        ImpairmentSpec(jitter=-1)
    with pytest.raises(ValueError, match="max_retries"):
        ImpairmentSpec(max_retries=-1)
    with pytest.raises(ValueError, match="window"):
        ImpairmentSpec(loss=0.5, start=5.0, end=5.0)


def test_spec_describe_roundtrip_is_fixed_point():
    spec = ImpairmentSpec(loss=0.25, jitter=0.5, start=1.0, end=6.0, max_retries=5)
    entry = spec.describe()
    rebuilt = impairment_from_dict(entry)
    assert rebuilt == spec
    assert rebuilt.describe() == entry
    # Defaults are omitted entirely: a minimal spec has a minimal form.
    assert ImpairmentSpec(loss=0.25).describe() == {"loss": 0.25}
    assert impairment_from_dict(None) is None


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="warp"):
        impairment_from_dict({"loss": 0.5, "warp": 9})


def test_disabled_spec_is_not_enabled():
    assert not ImpairmentSpec().enabled()
    assert ImpairmentSpec(loss=0.5).enabled()
    assert ImpairmentSpec(ble_calibrated=True).enabled()
    # Windows gate activity without affecting enabled().
    windowed = ImpairmentSpec(loss=0.5, start=2.0, end=4.0)
    assert windowed.enabled()
    assert not windowed.active(1.0)
    assert windowed.active(2.0)
    assert not windowed.active(4.0)


def test_compose_loss_combines_independent_events():
    assert compose_loss(0.0, 0.5) == 0.5
    assert compose_loss(0.5, 0.5) == pytest.approx(0.75)
    assert compose_loss(1.0, 0.2) == 1.0


# ---------------------------------------------------------------- grammar
def test_parse_impairment_clauses():
    spec = parse_impairment(["loss:0.4:1:6", "retries:5", "duplicate:0.1"])
    assert spec == ImpairmentSpec(
        loss=0.4, duplicate=0.1, start=1.0, end=6.0, max_retries=5
    )
    assert parse_impairment(["ble"]) == ImpairmentSpec(ble_calibrated=True)
    assert parse_impairment([]) is None


def test_parse_impairment_rejects_bad_clauses():
    with pytest.raises(ValueError, match="unknown impairment kind"):
        parse_impairment(["gremlin:0.5"])
    with pytest.raises(ValueError, match="conflicting"):
        parse_impairment(["loss:0.5:0:2", "jitter:0.5:3:4"])
    with pytest.raises(ValueError, match="window"):
        parse_impairment(["loss:0.5:1"])


# ----------------------------------------------------------- delivery path
def test_disabled_model_leaves_delivery_identical():
    """Configuring a no-op impairment must not perturb delivery times:
    the model draws from its own child stream and a disabled spec never
    draws at all."""
    sim_a, _, _, network_a, sinks_a = build()
    network_a.broadcast(0, "m")
    sim_a.run_until_idle()

    sim_b, _, _, network_b, sinks_b = impaired_build(ImpairmentSpec())
    network_b.broadcast(0, "m")
    sim_b.run_until_idle()

    assert delivery_times(sinks_a) == delivery_times(sinks_b)
    assert network_b.impairment.attempts == 0


def test_loss_drops_are_recovered_by_retransmission():
    spec = ImpairmentSpec(loss=0.4)
    sim, _, _, network, sinks = impaired_build(spec, seed=3)
    for i in range(4):
        network.broadcast(0, f"m{i}")
        sim.run_until_idle()
    imp = network.impairment
    assert imp.dropped > 0, "seed 3 at loss=0.4 must drop at least one hop"
    assert imp.retransmits > 0
    assert imp.giveups == 0
    # Every drop was either retried through or implicitly ACKed: all
    # sinks end up with all four payloads exactly once.
    for pid, sink in sinks.items():
        assert sorted(m for (_, m, _) in sink.messages) == [f"m{i}" for i in range(4)], pid
    assert imp.delivery_ratio() == pytest.approx(1.0 - imp.dropped / imp.attempts)


def test_zero_retry_budget_gives_up_and_loses_deliveries():
    spec = ImpairmentSpec(loss=1.0, max_retries=0)
    sim, _, _, network, sinks = impaired_build(spec)
    network.broadcast(0, "m")
    sim.run_until_idle()
    imp = network.impairment
    assert imp.giveups > 0
    assert imp.retransmits == 0
    # Total loss with no retries: only the origin's local delivery lands.
    delivered = [pid for pid, sink in sinks.items() if sink.messages]
    assert delivered == [0]


def test_retry_budget_exhaustion_gives_up():
    """Persistent total loss burns the whole budget then gives up —
    each chain transmits exactly max_retries retransmissions."""
    spec = ImpairmentSpec(loss=1.0, max_retries=2)
    sim, _, _, network, _ = impaired_build(spec)
    network.broadcast(0, "m")
    sim.run_until_idle()
    imp = network.impairment
    assert imp.giveups > 0
    assert imp.recovered == 0
    assert imp.retransmits == spec.max_retries * imp.giveups


def test_duplicate_delivers_twice_on_the_wire_once_to_the_app():
    spec = ImpairmentSpec(duplicate=1.0)
    sim, _, _, network, sinks = impaired_build(spec)
    network.broadcast(0, "m")
    sim.run_until_idle()
    imp = network.impairment
    assert imp.duplicated > 0
    # The flood dedup set absorbs the duplicates: apps see one copy.
    for sink in sinks.values():
        assert len(sink.messages) == 1


def test_jitter_delays_deliveries():
    sim_a, _, _, network_a, sinks_a = build()
    network_a.broadcast(0, "m")
    sim_a.run_until_idle()

    sim_b, _, _, network_b, sinks_b = impaired_build(ImpairmentSpec(jitter=2.0))
    network_b.broadcast(0, "m")
    sim_b.run_until_idle()

    imp = network_b.impairment
    assert imp.delayed > 0
    base = delivery_times(sinks_a)
    jittered = delivery_times(sinks_b)
    assert sum(t[0] for t in jittered.values() if t) > sum(t[0] for t in base.values() if t)


def test_retransmission_and_ack_energy_are_charged():
    spec = ImpairmentSpec(loss=0.6)
    sim, _, ledger, network, _ = impaired_build(spec, seed=5)
    for i in range(4):
        network.broadcast(0, f"m{i}")
        sim.run_until_idle()
    imp = network.impairment
    assert imp.recovered > 0, "seed 5 at loss=0.6 must recover at least one drop"
    # Retransmissions charge the sender; the ACK charges the receiver's
    # transmit meter (it unicasts the ACK back).
    acked = [pid for pid in range(5) if imp.retransmits_by_node[pid] > 0]
    assert acked
    total_tx = sum(
        ledger.meter(pid).breakdown.get(EnergyCategory.TRANSMIT) for pid in range(5)
    )
    # The same workload over a clean wire costs strictly less transmit
    # energy: every retransmission and ACK is charged.
    sim_c, _, ledger_c, network_c, _ = build(seed=5)
    for i in range(4):
        network_c.broadcast(0, f"m{i}")
        sim_c.run_until_idle()
    clean_tx = sum(
        ledger_c.meter(pid).breakdown.get(EnergyCategory.TRANSMIT) for pid in range(5)
    )
    assert total_tx > clean_tx


# ----------------------------------------------------------------- overlays
def test_node_overlays_push_and_pop():
    sim, _, _, network, sinks = build()
    network.impair_node(3, "loss", 1.0)
    network.broadcast(0, "m")
    sim.run_until_idle()
    imp = network.impairment
    assert imp.drops_by_node[3] > 0
    network.unimpair_node(3, "loss")
    assert not imp.engaged(sim.now)
    network.broadcast(0, "m2")
    sim.run_until_idle()
    # After the pop, node 3 receives cleanly on the first attempt.
    assert "m2" in [m for (_, m, _) in sinks[3].messages]


def test_unbalanced_unimpair_is_a_noop():
    _, _, _, network, _ = build()
    network.unimpair_node(2, "loss")  # no model yet: no-op
    network.impair_node(2, "loss", 0.5)
    network.unimpair_node(2, "loss")
    network.unimpair_node(2, "loss")  # unbalanced: no-op, must not raise
    assert not network.impairment.engaged(0.0)


def test_overlays_compose_with_global_spec():
    sim, _, _, network, _ = impaired_build(ImpairmentSpec(loss=0.5))
    imp = network.impairment
    base = imp.loss_probability(1, None, sim.now)
    assert base == pytest.approx(0.5)
    network.impair_node(1, "loss", 0.5)
    assert imp.loss_probability(1, None, sim.now) == pytest.approx(0.75)
    network.unimpair_node(1, "loss")
    assert imp.loss_probability(1, None, sim.now) == pytest.approx(0.5)


# ------------------------------------------------------------- calibration
def test_ble_calibrated_loss_uses_redundancy_exponent():
    """Fig. 2a calibration: a receiver misses a k-cast advertisement only
    if every one of the r redundant beacons is lost — p_loss ** r."""

    class Cost:
        redundancy = 8

    _, _, _, network, _ = impaired_build(ImpairmentSpec(ble_calibrated=True))
    imp = network.impairment
    p1 = imp.loss_model.receiver_miss_probability(1)
    p8 = imp.loss_probability(1, Cost(), 0.0)
    assert p8 == pytest.approx(p1**8)
    assert 0.0 < p8 < p1 < 1.0


# ------------------------------------------------------------- determinism
def test_impairment_stream_is_deterministic_per_seed():
    def run(seed):
        sim, _, _, network, sinks = impaired_build(
            ImpairmentSpec(loss=0.3, duplicate=0.2, jitter=0.5), seed=seed
        )
        for i in range(3):
            network.broadcast(0, f"m{i}")
            sim.run_until_idle()
        return delivery_times(sinks), network.impairment.stats_dict()

    assert run(3) == run(3)
    times_a, stats_a = run(3)
    times_b, stats_b = run(4)
    assert stats_a != stats_b or times_a != times_b


def test_impairment_metrics_none_without_model():
    _, _, _, network, _ = build()
    assert network.impairment_metrics() is None
    network.configure_impairment(ImpairmentSpec(loss=0.1))
    metrics = network.impairment_metrics()
    assert metrics is not None and metrics["attempts"] == 0


def test_configure_impairment_mirrors_retry_budget():
    _, _, _, network, _ = build()
    assert network.reliability.max_retries == DEFAULT_MAX_RETRIES
    network.configure_impairment(ImpairmentSpec(loss=0.1, max_retries=6))
    assert network.reliability.max_retries == 6
