"""Unit tests for the event queue."""

import pytest

from repro.sim.events import EventQueue


def test_push_and_pop_in_time_order():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while queue:
        queue.pop().callback()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fifo_by_sequence():
    queue = EventQueue()
    order = []
    for i in range(5):
        queue.push(1.0, lambda i=i: order.append(i))
    while queue:
        queue.pop().callback()
    assert order == [0, 1, 2, 3, 4]


def test_priority_breaks_ties_before_sequence():
    queue = EventQueue()
    order = []
    queue.push(1.0, lambda: order.append("low"), priority=5)
    queue.push(1.0, lambda: order.append("high"), priority=0)
    while queue:
        queue.pop().callback()
    assert order == ["high", "low"]


def test_cancel_skips_event():
    queue = EventQueue()
    fired = []
    event = queue.push(1.0, lambda: fired.append("x"))
    queue.push(2.0, lambda: fired.append("y"))
    queue.cancel(event)
    while queue:
        queue.pop().callback()
    assert fired == ["y"]


def test_cancel_updates_length():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert len(queue) == 1
    queue.cancel(event)
    assert len(queue) == 0


def test_double_cancel_does_not_corrupt_count():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_peek_time_ignores_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.peek_time() == 2.0


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(-1.0, lambda: None)


def test_pop_empty_returns_none():
    assert EventQueue().pop() is None


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert not queue
    assert queue.pop() is None


def test_event_active_flag():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert event.active
    event.cancel()
    assert not event.active
