"""Unit tests for seeded randomness helpers."""

import pytest

from repro.sim.rng import SeededRNG, derive_seed


def test_same_seed_same_stream():
    a = SeededRNG(42)
    b = SeededRNG(42)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SeededRNG(1)
    b = SeededRNG(2)
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_derive_seed_is_deterministic_and_label_sensitive():
    assert derive_seed(7, "network") == derive_seed(7, "network")
    assert derive_seed(7, "network") != derive_seed(7, "workload")
    assert derive_seed(7, "network") != derive_seed(8, "network")


def test_child_streams_are_independent_of_sibling_creation():
    root = SeededRNG(99)
    first = root.child("a").random()
    # Creating another child must not perturb the stream of child "a".
    root.child("b")
    assert SeededRNG(99).child("a").random() == first


def test_uniform_within_bounds():
    rng = SeededRNG(5)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_randint_within_bounds():
    rng = SeededRNG(5)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}


def test_chance_extremes():
    rng = SeededRNG(5)
    assert rng.chance(1.0) is True
    assert rng.chance(0.0) is False


def test_sample_returns_distinct_items():
    rng = SeededRNG(5)
    sample = rng.sample(list(range(10)), 4)
    assert len(sample) == 4
    assert len(set(sample)) == 4


def test_shuffle_returns_permutation_without_mutating_input():
    rng = SeededRNG(5)
    original = [1, 2, 3, 4, 5]
    shuffled = rng.shuffle(original)
    assert sorted(shuffled) == original
    assert original == [1, 2, 3, 4, 5]


def test_bytes_length():
    assert len(SeededRNG(5).bytes(16)) == 16


def test_pick_weighted_respects_zero_weight():
    rng = SeededRNG(5)
    picks = {rng.pick_weighted([("a", 0.0), ("b", 1.0)]) for _ in range(50)}
    assert picks == {"b"}


def test_pick_weighted_rejects_nonpositive_total():
    with pytest.raises(ValueError):
        SeededRNG(5).pick_weighted([("a", 0.0)])


def test_exponential_mean_positive():
    rng = SeededRNG(5)
    values = [rng.exponential(2.0) for _ in range(500)]
    assert all(v >= 0 for v in values)
    assert 1.0 < sum(values) / len(values) < 3.5
