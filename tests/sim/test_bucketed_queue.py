"""BucketedEventQueue: ordering equivalence, cancellation, tier migration.

The bucketed queue is the simulator's default; its contract is "exactly
the ``(time, priority, seq)`` total order of :class:`EventQueue`, faster".
Equivalence is checked structurally here and byte-for-byte at the trace
level (both queues drive full protocol runs to identical fingerprints).
"""

import random

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.sim.events import BucketedEventQueue, EventQueue
from repro.sim.scheduler import Simulator
from repro.testkit.trace import TraceRecorder


def drain_order(queue):
    order = []
    while True:
        event = queue.pop()
        if event is None:
            return order
        order.append((event.time, event.priority, event.seq))


def test_orders_identically_to_the_binary_heap():
    rng = random.Random(7)
    jobs = [
        (round(rng.uniform(0.0, 50.0), 2), rng.choice((-1, 0, 0, 0, 2)))
        for _ in range(500)
    ]
    # Deliberate exact ties: the seq tie-break must decide.
    jobs += [(5.0, 0)] * 20
    orders = []
    for factory in (EventQueue, BucketedEventQueue):
        queue = factory()
        for time, priority in jobs:
            queue.push(time, lambda: None, priority=priority)
        orders.append(drain_order(queue))
    assert orders[0] == orders[1]
    assert orders[0] == sorted(orders[0])


def test_interleaved_push_pop_matches_heap():
    """Pushes landing in the *current* bucket while it drains stay ordered."""
    rng = random.Random(23)
    results = []
    for factory in (EventQueue, BucketedEventQueue):
        queue = factory()
        fired = []
        clock = [0.0]

        def make(tag, t):
            def cb():
                clock[0] = t
                fired.append(tag)
                if len(fired) < 400:
                    delta = rng.choice((0.0, 0.1, 0.9, 3.7, 40.0))
                    queue.push(t + delta, make(f"{tag}/{delta}", t + delta))

            return cb

        rng = random.Random(23)  # same stream for both factories
        for i in range(10):
            queue.push(float(i % 4), make(str(i), float(i % 4)))
        while True:
            event = queue.pop()
            if event is None:
                break
            event.callback()
        results.append(fired)
    assert results[0] == results[1]


def test_far_future_events_cross_the_overflow_heap():
    queue = BucketedEventQueue()
    horizon_time = BucketedEventQueue.horizon * BucketedEventQueue.default_width
    times = [horizon_time * 5, 0.5, horizon_time * 3, horizon_time + 1.0, 2.0]
    for t in times:
        queue.push(t, lambda: None)
    assert len(queue._far) >= 2  # the far-future entries start in overflow
    assert [event.time for event in iter(queue.pop, None)] == sorted(times)


def test_cancel_semantics_match_eventqueue():
    for factory in (EventQueue, BucketedEventQueue):
        queue = factory()
        keep = queue.push(1.0, lambda: None)
        drop = queue.push(2.0, lambda: None)
        far = queue.push(10_000.0, lambda: None)
        queue.cancel(drop)
        queue.cancel(drop)  # double cancel: no len corruption
        assert len(queue) == 2
        popped = queue.pop()
        assert popped is keep
        popped.cancel()  # cancel after pop: no len corruption
        assert len(queue) == 1
        queue.cancel(far)
        assert len(queue) == 0
        assert queue.pop() is None


def test_remove_where_preserves_survivor_order():
    queue = BucketedEventQueue()
    labels = ["a", "b", "a", "c", "b", "a"]
    for i, label in enumerate(labels):
        queue.push(float(i % 2), lambda: None, label=label)
    queue.push(9_999.0, lambda: None, label="a")  # overflow-tier entry
    removed = queue.remove_where(lambda event: event.resolved_label() == "a")
    assert removed == 4
    assert len(queue) == 3
    drained = [(event.time, event.resolved_label()) for event in iter(queue.pop, None)]
    assert drained == [(0.0, "b"), (1.0, "b"), (1.0, "c")]


def test_peek_time_skips_cancelled_and_advances_tiers():
    queue = BucketedEventQueue()
    first = queue.push(3.0, lambda: None)
    queue.push(7_000.0, lambda: None)
    assert queue.peek_time() == 3.0
    queue.cancel(first)
    assert queue.peek_time() == 7_000.0
    assert queue.pop().time == 7_000.0
    assert queue.peek_time() is None


def test_clear_resets_every_tier():
    queue = BucketedEventQueue()
    handles = [queue.push(t, lambda: None) for t in (0.1, 5.0, 9_999.0)]
    queue.clear()
    assert len(queue) == 0
    assert queue.pop() is None
    for handle in handles:
        handle.cancel()  # must not corrupt the emptied queue
    assert len(queue) == 0


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        BucketedEventQueue().push(-1.0, lambda: None)


def test_invalid_width_rejected():
    with pytest.raises(ValueError):
        BucketedEventQueue(width=0.0)


@pytest.mark.parametrize("protocol", ["eesmr", "optsync"])
def test_full_runs_byte_identical_across_queue_implementations(protocol):
    """The golden contract: the queue choice is invisible in the trace."""
    fingerprints = []
    saved = Simulator.queue_factory
    try:
        for factory in (EventQueue, BucketedEventQueue):
            Simulator.queue_factory = factory
            spec = DeploymentSpec(protocol=protocol, n=5, f=1, k=2, target_height=3, seed=17)
            result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
            fingerprints.append(result.trace.fingerprint())
    finally:
        Simulator.queue_factory = saved
    assert fingerprints[0] == fingerprints[1]
