"""Unit tests for timers and the timer registry."""

import pytest

from repro.sim.scheduler import Simulator
from repro.sim.timers import Timer, TimerRegistry


def test_timer_fires_after_duration():
    sim = Simulator()
    fired = []
    timer = Timer(sim, "t", lambda: fired.append(sim.now))
    timer.start(4.0)
    sim.run_until_idle()
    assert fired == [4.0]
    assert timer.fired


def test_timer_restart_supersedes_previous_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, "t", lambda: fired.append(sim.now))
    timer.start(4.0)
    sim.run(until=2.0)
    timer.start(4.0)  # re-arm at t=2 -> fires at 6
    sim.run_until_idle()
    assert fired == [6.0]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, "t", lambda: fired.append(1))
    timer.start(4.0)
    timer.cancel()
    sim.run_until_idle()
    assert fired == []
    assert not timer.running


def test_timer_remaining():
    sim = Simulator()
    timer = Timer(sim, "t", lambda: None)
    timer.start(10.0)
    sim.run(until=4.0)
    assert timer.remaining() == pytest.approx(6.0)


def test_timer_negative_duration_rejected():
    timer = Timer(Simulator(), "t", lambda: None)
    with pytest.raises(ValueError):
        timer.start(-1.0)


def test_registry_starts_independent_timers():
    sim = Simulator()
    fired = []
    registry = TimerRegistry(sim, prefix="commit")
    registry.start("a", 2.0, lambda: fired.append("a"))
    registry.start("b", 4.0, lambda: fired.append("b"))
    sim.run_until_idle()
    assert fired == ["a", "b"]


def test_registry_cancel_all():
    sim = Simulator()
    fired = []
    registry = TimerRegistry(sim, prefix="commit")
    registry.start("a", 2.0, lambda: fired.append("a"))
    registry.start("b", 4.0, lambda: fired.append("b"))
    cancelled = registry.cancel_all()
    sim.run_until_idle()
    assert cancelled == 2
    assert fired == []


def test_registry_cancel_single_key():
    sim = Simulator()
    fired = []
    registry = TimerRegistry(sim, prefix="commit")
    registry.start("a", 2.0, lambda: fired.append("a"))
    registry.start("b", 4.0, lambda: fired.append("b"))
    registry.cancel("a")
    sim.run_until_idle()
    assert fired == ["b"]


def test_registry_restart_replaces_callback():
    sim = Simulator()
    fired = []
    registry = TimerRegistry(sim, prefix="commit")
    registry.start("a", 2.0, lambda: fired.append("old"))
    registry.start("a", 3.0, lambda: fired.append("new"))
    sim.run_until_idle()
    assert fired == ["new"]


def test_registry_len_and_contains_count_running_only():
    sim = Simulator()
    registry = TimerRegistry(sim, prefix="commit")
    registry.start("a", 2.0, lambda: None)
    registry.start("b", 3.0, lambda: None)
    assert len(registry) == 2
    assert "a" in registry
    registry.cancel("a")
    assert len(registry) == 1
    assert "a" not in registry
    assert registry.running_keys() == ["b"]
