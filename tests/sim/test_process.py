"""Unit tests for the process abstraction."""

from repro.sim.process import Process
from repro.sim.scheduler import Simulator


class Recorder(Process):
    def __init__(self, sim, pid):
        super().__init__(sim, pid)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


def test_deliver_dispatches_to_on_message():
    sim = Simulator()
    proc = Recorder(sim, 1)
    proc.deliver(2, "hello")
    assert proc.received == [(2, "hello")]
    assert proc.delivered_count == 1


def test_crashed_process_ignores_deliveries():
    sim = Simulator()
    proc = Recorder(sim, 1)
    proc.crash()
    proc.deliver(2, "hello")
    assert proc.received == []
    assert proc.delivered_count == 0


def test_recover_resumes_deliveries():
    sim = Simulator()
    proc = Recorder(sim, 1)
    proc.crash()
    proc.recover()
    proc.deliver(2, "hi")
    assert proc.received == [(2, "hi")]


def test_after_callback_guarded_by_crash():
    sim = Simulator()
    proc = Recorder(sim, 1)
    calls = []
    proc.after(1.0, lambda: calls.append("a"))
    proc.after(2.0, lambda: calls.append("b"))
    sim.run(until=1.5)
    proc.crash()
    sim.run_until_idle()
    assert calls == ["a"]


def test_default_name_and_repr():
    proc = Recorder(Simulator(), 7)
    assert proc.name == "p7"
    assert "Recorder" in repr(proc)


def test_make_timer_is_bound_to_process_name():
    sim = Simulator()
    proc = Recorder(sim, 3)
    fired = []
    timer = proc.make_timer("blame", lambda: fired.append(1))
    assert timer.name == "p3:blame"
    timer.start(1.0)
    sim.run_until_idle()
    assert fired == [1]
