"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.scheduler import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run_until_idle()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_events_execute_in_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run_until_idle()
    assert order == ["a", "b", "c"]


def test_event_can_schedule_followups():
    sim = Simulator()
    times = []

    def first():
        times.append(sim.now)
        sim.schedule(2.0, second)

    def second():
        times.append(sim.now)

    sim.schedule(1.0, first)
    sim.run_until_idle()
    assert times == [1.0, 3.0]


def test_run_until_bound_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run_until_idle()
    assert fired == [1, 10]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_scheduled_event():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run_until_idle()
    assert fired == []


def test_max_events_guard_detects_livelock():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_executed_and_pending_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run_until_idle()
    assert sim.executed_events == 2
    assert sim.pending_events == 0


def test_trace_log_records_labels():
    sim = Simulator(trace=True)
    sim.schedule(1.0, lambda: None, label="first")
    sim.schedule(2.0, lambda: None, label="second")
    sim.run_until_idle()
    assert sim.trace_log == [(1.0, "first"), (2.0, "second")]


def test_step_returns_false_when_idle():
    assert Simulator().step() is False


# ------------------------------------------------------ run_until fast path
def test_run_until_executes_events_up_to_deadline():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.schedule(10.0, lambda: fired.append(10))
    executed = sim.run_until(5.0)
    assert executed == 2
    assert fired == [1, 5]
    assert sim.now == 5.0
    sim.run_until_idle()
    assert fired == [1, 5, 10]


def test_run_until_advances_clock_when_queue_drains_early():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(9.0)
    assert sim.now == 9.0


def test_run_until_records_trace_labels():
    sim = Simulator(trace=True)
    sim.schedule(1.0, lambda: None, label="first")
    sim.schedule(2.0, lambda: None, label=lambda: "lazy")
    sim.run_until(3.0)
    assert sim.trace_log == [(1.0, "first"), (2.0, "lazy")]


def test_run_until_max_events_guard():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run_until(1.0, max_events=50)


def test_run_until_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run_until(5.0)
        except SimulationError as error:
            errors.append(error)

    sim.schedule(1.0, reenter)
    sim.run_until(2.0)
    assert len(errors) == 1


def test_run_with_until_delegates_to_fast_path():
    """run(until=...) and run_until are the same semantics."""
    for driver in (lambda s: s.run(until=5.0), lambda s: s.run_until(5.0)):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        driver(sim)
        assert fired == [1]
        assert sim.now == 5.0


# -------------------------------------- drain bookkeeping and executed count
def test_executed_events_excludes_drained_events():
    sim = Simulator(trace=True)
    sim.schedule(1.0, lambda: None, label="keep")
    sim.schedule(2.0, lambda: None, label="drop")
    sim.schedule(3.0, lambda: None, label="keep")
    assert sim.drain(labels=["drop"]) == 1
    sim.run_until_idle()
    assert sim.executed_events == 2
    assert [label for _, label in sim.trace_log] == ["keep", "keep"]


def test_cancel_after_fallback_drain_still_stops_the_event():
    """Selective drain on a queue without remove_where rebuilds the heap by
    re-pushing survivors; a cancel through the *original* handle must still
    stop the replacement — otherwise the cancelled event fires anyway and
    inflates executed_events (the off-by-one this pins down)."""
    from repro.perf.legacy import LegacyEventQueue

    saved = Simulator.queue_factory
    Simulator.queue_factory = LegacyEventQueue
    try:
        sim = Simulator()
        fired = []
        survivor = sim.schedule(2.0, lambda: fired.append("survivor"), label="keep")
        sim.schedule(1.0, lambda: fired.append("drained"), label="drop")
        assert sim.drain(labels=["drop"]) == 1
        sim.cancel(survivor)
        sim.run_until_idle()
        assert fired == []
        assert sim.executed_events == 0
    finally:
        Simulator.queue_factory = saved


def test_fallback_drain_preserves_survivor_order():
    from repro.perf.legacy import LegacyEventQueue

    saved = Simulator.queue_factory
    Simulator.queue_factory = LegacyEventQueue
    try:
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"), label="keep")
        sim.schedule(1.0, lambda: fired.append("b"), label="keep")
        sim.schedule(1.0, lambda: fired.append("x"), label="drop")
        sim.schedule(1.0, lambda: fired.append("c"), label="keep")
        assert sim.drain(labels=["drop"]) == 1
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]
    finally:
        Simulator.queue_factory = saved
