"""Unit tests for the discrete-event simulator."""

import pytest

from repro.sim.scheduler import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run_until_idle()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_events_execute_in_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run_until_idle()
    assert order == ["a", "b", "c"]


def test_event_can_schedule_followups():
    sim = Simulator()
    times = []

    def first():
        times.append(sim.now)
        sim.schedule(2.0, second)

    def second():
        times.append(sim.now)

    sim.schedule(1.0, first)
    sim.run_until_idle()
    assert times == [1.0, 3.0]


def test_run_until_bound_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run_until_idle()
    assert fired == [1, 10]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run_until_idle()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_scheduled_event():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(event)
    sim.run_until_idle()
    assert fired == []


def test_max_events_guard_detects_livelock():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run_until_idle(max_events=100)


def test_executed_and_pending_counters():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run_until_idle()
    assert sim.executed_events == 2
    assert sim.pending_events == 0


def test_trace_log_records_labels():
    sim = Simulator(trace=True)
    sim.schedule(1.0, lambda: None, label="first")
    sim.schedule(2.0, lambda: None, label="second")
    sim.run_until_idle()
    assert sim.trace_log == [(1.0, "first"), (2.0, "second")]


def test_step_returns_false_when_idle():
    assert Simulator().step() is False
