"""Regression tests for the event-queue cancel/drain fixes and lazy labels."""

from repro.sim.events import EventQueue
from repro.sim.scheduler import Simulator


# ------------------------------------------------------------ cancel fixes
def test_cancel_after_pop_does_not_corrupt_live_count():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    popped = queue.pop()
    assert popped is event
    queue.cancel(event)  # already executed: must be a no-op for len()
    assert len(queue) == 1
    assert queue.pop() is not None
    assert len(queue) == 0


def test_double_cancel_via_event_then_queue():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    queue.cancel(event)
    assert len(queue) == 0
    assert queue.pop() is None


def test_direct_event_cancel_updates_queue_length():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert len(queue) == 1
    event.cancel()  # not via queue.cancel — still must keep len() honest
    assert len(queue) == 0


def test_cancel_after_clear_is_harmless():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.clear()
    event.cancel()
    queue.cancel(event)
    assert len(queue) == 0


def test_pending_events_accurate_after_mixed_cancels():
    sim = Simulator()
    kept = sim.schedule(1.0, lambda: None)
    dropped = sim.schedule(1.0, lambda: None)
    fired = sim.schedule(0.5, lambda: None)
    sim.step()
    sim.cancel(fired)  # cancel of an already-fired event
    sim.cancel(dropped)
    sim.cancel(dropped)  # double cancel
    assert sim.pending_events == 1
    sim.run_until_idle()
    assert sim.pending_events == 0
    assert kept.cancelled is False


# ---------------------------------------------------------- drain determinism
def test_drain_survivors_keep_original_ordering_keys():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("a"), label="keep")
    sim.schedule(1.0, lambda: order.append("victim"), label="kill")
    sim.schedule(1.0, lambda: order.append("b"), label="keep")
    sim.schedule(1.0, lambda: order.append("c"), label="keep")
    removed = sim.drain(labels=["kill"])
    assert removed == 1
    sim.run_until_idle()
    assert order == ["a", "b", "c"]


def test_drain_survivor_handles_stay_cancellable():
    # Before the fix, drain re-pushed *clones* of the survivors: cancelling
    # the original handle (what every Timer holds) no longer stopped the
    # event, so a selective drain silently revived cancelled timers.
    sim = Simulator()
    fired = []
    survivor = sim.schedule(2.0, lambda: fired.append("survivor"))
    sim.schedule(1.0, lambda: fired.append("victim"), label="kill")
    sim.drain(labels=["kill"])
    sim.cancel(survivor)
    sim.run_until_idle()
    assert fired == []
    assert sim.pending_events == 0


def test_drain_interleaves_survivors_and_new_events_deterministically():
    sim = Simulator()
    order = []
    sim.schedule(1.0, lambda: order.append("old-1"))
    sim.schedule(1.0, lambda: order.append("kill-me"), label="kill")
    sim.schedule(1.0, lambda: order.append("old-2"))
    sim.drain(labels=["kill"])
    sim.schedule(1.0, lambda: order.append("new-after-drain"))
    sim.run_until_idle()
    assert order == ["old-1", "old-2", "new-after-drain"]


def test_full_drain_still_clears_everything():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    removed = sim.drain()
    assert removed == 2
    assert sim.pending_events == 0


# --------------------------------------------------------------- lazy labels
def test_callable_labels_resolved_only_when_tracing():
    calls = []

    def lazy_label():
        calls.append(1)
        return "expensive-label"

    sim = Simulator(trace=False)
    sim.schedule(1.0, lambda: None, label=lazy_label)
    sim.run_until_idle()
    assert calls == []

    traced = Simulator(trace=True)
    traced.schedule(1.0, lambda: None, label=lazy_label)
    traced.run_until_idle()
    assert calls == [1]
    assert traced.trace_log == [(1.0, "expensive-label")]


def test_drain_matches_callable_labels():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("x"), label=lambda: "dynamic")
    sim.drain(labels=["dynamic"])
    sim.run_until_idle()
    assert fired == []
