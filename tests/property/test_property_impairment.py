"""Property tests: impaired runs are byte-deterministic per seed.

The lossy-medium resilience contract has two determinism halves: the
impairment model's verdict stream is a pure function of its seed (so a
run under impairments replays byte for byte), and matrix sharding cannot
perturb impaired cells (serial ≡ ``parallel=N``).  Both are pinned here
— at the model level with hypothesis-driven draw sequences, and at the
run level with full traced sessions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.net.impairment import ImpairmentModel, ImpairmentSpec
from repro.sim.rng import SeededRNG
from repro.testkit.scenarios import ScenarioMatrix
from repro.testkit.trace import TraceRecorder


# ------------------------------------------------------------ model level
impairment_specs = st.builds(
    ImpairmentSpec,
    loss=st.floats(0, 0.9),
    duplicate=st.floats(0, 0.9),
    jitter=st.floats(0, 2),
    reorder=st.floats(0, 0.9),
)


@settings(max_examples=60, deadline=None)
@given(
    spec=impairment_specs,
    seed=st.integers(0, 2**31),
    hops=st.lists(st.integers(0, 4), min_size=1, max_size=30),
)
def test_verdict_stream_is_a_pure_function_of_the_seed(spec, seed, hops):
    """Two models with the same (spec, seed) judge the same hop sequence
    identically — verdicts, extra delays, and every counter."""

    def judge_all():
        model = ImpairmentModel(spec, SeededRNG(seed))
        verdicts = [model.judge(receiver, None, 0.0, 1.0) for receiver in hops]
        return verdicts, model.stats_dict()

    assert judge_all() == judge_all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31), hops=st.lists(st.integers(0, 4), min_size=1, max_size=30))
def test_overlay_push_pop_restores_the_clean_verdicts(seed, hops):
    """A pushed-then-popped overlay consumes no draws outside its window:
    with no overlays installed, a disabled spec never touches the RNG,
    so the verdict stream is all clean deliveries."""
    model = ImpairmentModel(ImpairmentSpec(), SeededRNG(seed))
    model.push(2, "loss", 1.0)
    model.pop(2, "loss")
    verdicts = [model.judge(receiver, None, 0.0, 1.0) for receiver in hops]
    assert verdicts == [(False, False, 0.0)] * len(hops)
    assert model.dropped == model.duplicated == model.delayed == 0


# -------------------------------------------------------------- run level
def run_traced(seed, impairment, protocol="eesmr"):
    spec = DeploymentSpec(
        protocol=protocol,
        n=5,
        f=1,
        k=2,
        target_height=3,
        seed=seed,
        impairment=impairment,
    )
    return ProtocolRunner(recorder=TraceRecorder()).run(spec)


@pytest.mark.parametrize(
    "impairment",
    [
        ImpairmentSpec(loss=0.3),
        ImpairmentSpec(loss=0.2, duplicate=0.2, jitter=0.5),
        ImpairmentSpec(ble_calibrated=True),
    ],
    ids=["loss", "mixed", "ble"],
)
def test_impaired_runs_are_byte_identical_per_seed(impairment):
    first = run_traced(17, impairment)
    second = run_traced(17, impairment)
    assert first.trace.canonical_json() == second.trace.canonical_json()
    assert first.trace.fingerprint() == second.trace.fingerprint()
    assert first.deliveries_dropped == second.deliveries_dropped
    assert first.deliveries_retransmitted == second.deliveries_retransmitted


def test_impaired_runs_diverge_across_seeds():
    impairment = ImpairmentSpec(loss=0.3)
    assert (
        run_traced(1, impairment).trace.fingerprint()
        != run_traced(2, impairment).trace.fingerprint()
    )


def test_impairment_perturbs_only_its_own_stream():
    """An impaired run's spec fingerprint section differs, but switching
    the impairment off reproduces the baseline byte for byte — the model
    draws from a child stream, never from the hop-jitter stream."""
    baseline = run_traced(17, None)
    off_again = run_traced(17, None)
    assert baseline.trace.canonical_json() == off_again.trace.canonical_json()
    impaired = run_traced(17, ImpairmentSpec(loss=0.3))
    assert impaired.trace.fingerprint() != baseline.trace.fingerprint()


# ------------------------------------------------------------ matrix level
def test_parallel_matrix_with_impairments_matches_serial():
    matrix = ScenarioMatrix(
        protocols=("eesmr", "sync-hotstuff"),
        fault_names=("none",),
        media=("ble",),
        impairments=("none", "lossy", "ble-calibrated"),
    )
    serial = matrix.run(parallel=1)
    parallel = matrix.run(parallel=2)
    assert serial.cells_run == parallel.cells_run == 6
    assert [o.cell for o in serial.outcomes] == [o.cell for o in parallel.outcomes]
    serial_fps = [o.evidence.trace.fingerprint() for o in serial.outcomes]
    parallel_fps = [o.evidence.trace.fingerprint() for o in parallel.outcomes]
    assert serial_fps == parallel_fps
    serial.assert_clean()
    parallel.assert_clean()
