"""Property-based tests for every topology builder and for
fault-composition window edge cases.

The topology properties pin down exactly what the scenario matrix relies
on when it treats topology as an axis: node/edge counts, in/out degrees,
strong connectivity, and bit-for-bit determinism under a fixed seed.  The
fault-composition properties drive randomly interleaved windows through a
real simulator and assert the shared refcounted state always converges
back to the base configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.net.topology import (
    fully_connected_topology,
    random_kcast_topology,
    ring_kcast_topology,
    star_topology,
    unicast_ring_topology,
)
from repro.sim.rng import SeededRNG
from repro.testkit.faults import FaultSchedule, PartitionWindow, RelayDropWindow
from tests.conftest import make_network


@st.composite
def ring_params(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    return n, k


@st.composite
def random_kcast_params(draw):
    n = draw(st.integers(min_value=3, max_value=9))
    k = draw(st.integers(min_value=1, max_value=n - 2))
    edges = draw(st.integers(min_value=1, max_value=2))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return n, k, edges, seed


# ------------------------------------------------------------------ builders
@given(ring_params())
@settings(max_examples=40, deadline=None)
def test_ring_kcast_counts_degrees_connectivity(params):
    n, k = params
    graph = ring_kcast_topology(n, k)
    assert len(graph.nodes) == n
    assert len(graph.edges) == n
    for node in graph.nodes:
        assert graph.d_out(node) == k
        assert graph.d_in(node) == k
        assert len(graph.out_edges(node)) == 1
    assert graph.is_strongly_connected()


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_fully_connected_counts_degrees_connectivity(n):
    graph = fully_connected_topology(n)
    assert len(graph.nodes) == n
    assert len(graph.edges) == n
    for node in graph.nodes:
        assert graph.d_out(node) == n - 1
        assert graph.d_in(node) == n - 1
    assert graph.is_strongly_connected()
    assert graph.diameter() == 1


@given(ring_params())
@settings(max_examples=40, deadline=None)
def test_unicast_ring_counts_degrees_connectivity(params):
    n, d = params
    graph = unicast_ring_topology(n, d)
    assert len(graph.edges) == n * d
    assert all(edge.degree == 1 for edge in graph.edges)
    for node in graph.nodes:
        assert graph.d_out(node) == d
        assert graph.d_in(node) == d
    assert graph.is_strongly_connected()


@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=11))
@settings(max_examples=40, deadline=None)
def test_star_counts_degrees_connectivity(n, center):
    center = center % n
    graph = star_topology(n, center=center)
    assert len(graph.nodes) == n
    assert len(graph.edges) == n  # one hub multicast + n-1 leaf unicasts
    assert graph.d_out(center) == n - 1
    assert graph.d_in(center) == n - 1
    for leaf in graph.nodes:
        if leaf != center:
            assert graph.out_neighbors(leaf) == {center}
    assert graph.is_strongly_connected()
    if n > 2:
        assert graph.diameter() == 2


@given(random_kcast_params())
@settings(max_examples=25, deadline=None)
def test_random_kcast_provisioning_connectivity_determinism(params):
    n, k, edges_per_node, seed = params
    from math import comb

    if edges_per_node > comb(n - 1, k):
        return  # unsatisfiable by construction; covered by the ValueError test
    try:
        graph = random_kcast_topology(n, k, edges_per_node=edges_per_node, rng=SeededRNG(seed))
    except RuntimeError:
        # Sparse configurations (e.g. k=1 functional graphs) may exhaust the
        # bounded connectivity retries; giving up loudly is the documented
        # behaviour — silent under-provisioning is what must never happen.
        return
    assert len(graph.nodes) == n
    assert len(graph.edges) == n * edges_per_node
    for node in graph.nodes:
        out = graph.out_edges(node)
        assert len(out) == edges_per_node
        assert len({e.receivers for e in out}) == edges_per_node
        assert all(e.degree == k for e in out)
    assert graph.is_strongly_connected()
    # Bit-for-bit determinism under the same seed.
    again = random_kcast_topology(n, k, edges_per_node=edges_per_node, rng=SeededRNG(seed))
    assert [e.receivers for e in graph.edges] == [e.receivers for e in again.edges]


# ------------------------------------------------- fault-composition windows
@st.composite
def window_sets(draw):
    """Up to four windows on one node, arbitrarily overlapping,
    simultaneous-boundary cases included.  Lengths start at 1: zero-length
    windows are rejected at construction (see
    ``test_zero_length_windows_are_rejected_at_construction``)."""
    count = draw(st.integers(min_value=1, max_value=4))
    windows = []
    for _ in range(count):
        start = draw(st.integers(min_value=0, max_value=8))
        length = draw(st.integers(min_value=1, max_value=8))
        windows.append((float(start), float(start + length)))
    return windows


@given(window_sets())
@settings(max_examples=30, deadline=None)
def test_interleaved_drop_windows_always_converge(windows):
    """However drop windows interleave, denial holds exactly while at least
    one window is open, and the node's policy state converges to empty."""
    sim, topology, ledger, network = make_network()
    schedule = FaultSchedule(
        tuple(RelayDropWindow(2, start, end) for start, end in windows)
    )
    schedule.install(sim, network, {})
    horizon = max(end for _, end in windows) + 1.0
    probe = min(
        (s + 0.5 for s, e in windows if e > s + 0.5),
        default=None,
    )
    if probe is not None:
        sim.run(until=probe)
        assert network.relay_policies[2](0, "m") is False
    sim.run(until=horizon)
    assert 2 not in network.relay_policies
    assert 2 not in network._relay_denial_depth


@given(window_sets())
@settings(max_examples=30, deadline=None)
def test_interleaved_partition_windows_always_converge(windows):
    sim, topology, ledger, network = make_network()
    schedule = FaultSchedule(
        tuple(PartitionWindow(3, start, end) for start, end in windows)
    )
    schedule.install(sim, network, {})
    horizon = max(end for _, end in windows) + 1.0
    probe = min(
        (s + 0.5 for s, e in windows if e > s + 0.5),
        default=None,
    )
    if probe is not None:
        sim.run(until=probe)
        assert 3 in network._partition
    sim.run(until=horizon)
    assert 3 not in network._partition


@given(window_sets())
@settings(max_examples=30, deadline=None)
def test_windows_over_byzantine_denial_always_restore_it(windows):
    """Any interleaving of drop windows on a permanently-denying node must
    leave the permanent denial in place afterwards."""
    sim, topology, ledger, network = make_network()
    deny = lambda origin, message: False
    network.set_relay_policy(2, deny)
    schedule = FaultSchedule(
        tuple(RelayDropWindow(2, start, end) for start, end in windows)
    )
    schedule.install(sim, network, {})
    sim.run(until=max(end for _, end in windows) + 1.0)
    assert network.relay_policies[2] is deny
    assert 2 not in network._relay_denial_depth
