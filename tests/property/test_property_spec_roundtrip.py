"""Property tests: the declarative DeploymentSpec schema round-trips.

``DeploymentSpec.to_dict`` is the one schema every surface serialises
through (CLI ``--spec`` files, matrix cell dumps, benchmark manifests);
these properties pin that an arbitrary spec — including composed fault
schedules and the adaptive atoms — survives ``to_dict → json → from_dict``
unchanged, and that validation rejects malformed input early.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adversary import ALLOWED_BEHAVIOURS, FaultPlan
from repro.eval.runner import MEDIA, PROTOCOLS, TOPOLOGIES, DeploymentSpec
from repro.net.impairment import ImpairmentSpec
from repro.testkit import faults
from repro.workload import ClosedLoopPreload, OpenLoopPoisson, TraceReplay


# ------------------------------------------------------------- strategies
fault_atoms = st.one_of(
    st.builds(faults.CrashAt, node=st.integers(0, 9), time=st.floats(0, 10)),
    st.builds(faults.StallAt, node=st.integers(0, 9), round=st.integers(1, 8)),
    st.builds(faults.EquivocateAt, node=st.integers(0, 9), round=st.integers(1, 8)),
    st.builds(faults.SilentFrom, node=st.integers(0, 9)),
    # start tops out strictly below the end/heal floor: degenerate
    # (zero-length) windows are rejected at construction.
    st.builds(
        faults.RelayDropWindow,
        node=st.integers(0, 9),
        start=st.floats(0, 4.5),
        end=st.floats(5, 10),
    ),
    st.builds(
        faults.PartitionWindow,
        node=st.integers(0, 9),
        start=st.floats(0, 4.5),
        heal=st.floats(5, 10),
    ),
    st.builds(
        faults.CrashRecoverWindow,
        node=st.integers(0, 9),
        start=st.floats(0, 4.5),
        heal=st.floats(5, 10),
    ),
    st.builds(
        faults.LeaderFollowingCrash,
        budget=st.integers(1, 3),
        start=st.floats(0, 5),
        interval=st.floats(0.1, 4),
    ),
    # Impairment-window values live in (0, 1]; min_value stays clear of 0.
    st.builds(
        faults.LossWindow,
        node=st.integers(0, 9),
        start=st.floats(0, 4.5),
        end=st.floats(5, 10),
        loss=st.floats(0.05, 1.0),
    ),
    st.builds(
        faults.DuplicateWindow,
        node=st.integers(0, 9),
        start=st.floats(0, 4.5),
        end=st.floats(5, 10),
        probability=st.floats(0.05, 1.0),
    ),
    st.builds(
        faults.JitterWindow,
        node=st.integers(0, 9),
        start=st.floats(0, 4.5),
        end=st.floats(5, 10),
        jitter=st.floats(0.05, 1.0),
    ),
)

# Distinct-node atom tuples (a node may carry at most one Byzantine
# behaviour, which FaultSchedule validates).
schedules = st.lists(fault_atoms, min_size=0, max_size=4).map(
    lambda atoms: faults.FaultSchedule(
        tuple({a.node: a for a in atoms}.values())  # one atom per node
    )
)

fault_plans = st.builds(
    FaultPlan,
    faulty=st.lists(st.integers(0, 9), max_size=3, unique=True).map(tuple),
    behaviour=st.sampled_from(ALLOWED_BEHAVIOURS),
    trigger_round=st.integers(1, 8),
    crash_time=st.floats(0, 10),
)


# Trace entries are drawn with strictly increasing times and distinct ids
# (both validated at TraceReplay construction).
trace_replays = st.lists(
    st.floats(0, 10), min_size=1, max_size=4, unique=True
).map(
    lambda times: TraceReplay(
        entries=tuple(
            (t, f"tr{i}", i % 2, None) for i, t in enumerate(sorted(times))
        )
    )
)

impairments = st.one_of(
    st.none(),
    st.builds(
        ImpairmentSpec,
        loss=st.floats(0, 0.9),
        duplicate=st.floats(0, 0.9),
        jitter=st.floats(0, 2),
        reorder=st.floats(0, 0.9),
        start=st.floats(0, 4.5),
        end=st.floats(5, 10),
        ble_calibrated=st.booleans(),
        max_retries=st.integers(0, 6),
    ),
    st.builds(ImpairmentSpec, ble_calibrated=st.just(True)),
)

workloads = st.one_of(
    st.none(),
    st.builds(ClosedLoopPreload, surplus_blocks=st.integers(0, 8)),
    st.builds(
        OpenLoopPoisson,
        rate=st.floats(0.1, 32),
        clients=st.integers(1, 4),
        duration=st.one_of(st.none(), st.floats(0.5, 20)),
        payload_size_bytes=st.one_of(st.none(), st.integers(1, 512)),
    ),
    trace_replays,
)


@st.composite
def specs(draw):
    n = draw(st.integers(3, 12))
    use_schedule = draw(st.booleans())
    return DeploymentSpec(
        protocol=draw(st.sampled_from(PROTOCOLS)),
        n=n,
        f=draw(st.integers(0, (n - 1) // 2)),
        k=draw(st.integers(1, n - 1)),
        topology=draw(st.sampled_from(TOPOLOGIES)),
        edges_per_node=draw(st.integers(1, 3)),
        topology_seed=draw(st.one_of(st.none(), st.integers(0, 2**31))),
        medium=draw(st.sampled_from(MEDIA)),
        hop_delay=draw(st.floats(0.1, 4)),
        delta=draw(st.one_of(st.none(), st.floats(1, 40))),
        signature_scheme=draw(st.sampled_from(["rsa-1024", "rsa-2048", "ecdsa-p256"])),
        batch_size=draw(st.integers(1, 4)),
        command_payload_bytes=draw(st.integers(1, 512)),
        target_height=draw(st.integers(1, 8)),
        block_interval=draw(st.floats(0, 4)),
        fault_plan=draw(fault_plans),
        fault_schedule=draw(schedules) if use_schedule else None,
        seed=draw(st.integers(0, 2**31)),
        charge_sleep=draw(st.booleans()),
        jitter=draw(st.booleans()),
        workload=draw(workloads),
        txpool_limit=draw(st.one_of(st.none(), st.integers(1, 256))),
        impairment=draw(impairments),
    )


# ------------------------------------------------------------- properties
@settings(max_examples=150, deadline=None)
@given(specs())
def test_spec_roundtrips_through_json(spec):
    encoded = json.dumps(spec.to_dict(), sort_keys=True)
    rebuilt = DeploymentSpec.from_dict(json.loads(encoded))
    assert rebuilt == spec
    # And the re-encoded form is byte-identical (canonical schema).
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == encoded


@settings(max_examples=50, deadline=None)
@given(schedules)
def test_schedule_describe_roundtrips(schedule):
    rebuilt = faults.schedule_from_dict(schedule.describe())
    assert rebuilt == schedule
    assert rebuilt.describe() == schedule.describe()


def test_from_dict_rejects_unknown_fields():
    data = DeploymentSpec().to_dict()
    data["warp_factor"] = 9
    with pytest.raises(ValueError, match="warp_factor"):
        DeploymentSpec.from_dict(data)


def test_fault_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        faults.fault_from_dict({"kind": "Gremlin", "node": 0})


def test_spec_validates_topology_early():
    with pytest.raises(ValueError, match="unknown topology"):
        DeploymentSpec(topology="moebius-strip")


def test_spec_validates_edges_per_node_early():
    with pytest.raises(ValueError, match="edges_per_node"):
        DeploymentSpec(topology="random-kcast", edges_per_node=0)
    # Only random-kcast constrains edges_per_node.
    DeploymentSpec(topology="ring-kcast", edges_per_node=0)
