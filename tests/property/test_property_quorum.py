"""Property-based tests for quorum certificates and signatures."""

from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    MessageType,
    make_message,
    make_qc,
    make_view_qc,
    verify_qc,
    verify_view_qc,
)
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import make_scheme

_STORE = KeyStore(seed=77)
_STORE.generate(range(16))
_SCHEME = make_scheme("rsa-1024", keystore=_STORE)


signers_strategy = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=10, unique=True
)


@given(signers_strategy, st.integers(min_value=1, max_value=5), st.text(min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_qc_verifies_iff_threshold_met(signers, view, digest):
    votes = [make_message(_SCHEME, s, MessageType.CERTIFY, view, digest) for s in signers]
    qc = make_qc(votes)
    assert verify_qc(_SCHEME, 0, qc, threshold=len(signers))
    assert not verify_qc(_SCHEME, 0, qc, threshold=len(signers) + 1)


@given(signers_strategy, st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_view_qc_verifies_regardless_of_payload_mix(signers, view):
    blames = [
        make_message(_SCHEME, s, MessageType.BLAME, view, None if s % 2 else f"proof-{s}")
        for s in signers
    ]
    qc = make_view_qc(blames)
    assert verify_view_qc(_SCHEME, 1, qc, threshold=len(signers))


@given(signers_strategy, st.integers(min_value=1, max_value=5), st.text(min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_qc_signers_are_sorted_and_unique(signers, view, digest):
    votes = [make_message(_SCHEME, s, MessageType.CERTIFY, view, digest) for s in signers]
    qc = make_qc(votes + votes)  # duplicates collapse
    assert list(qc.signers) == sorted(set(signers))
    assert len(qc.signatures) == len(qc.signers)


@given(st.integers(min_value=0, max_value=15), st.binary(min_size=0, max_size=64))
@settings(max_examples=80, deadline=None)
def test_signature_round_trip_any_payload(signer, payload):
    signature = _SCHEME.sign(signer, payload)
    assert _SCHEME.verify(0, payload, signature)
    assert not _SCHEME.verify(0, payload + b"x", signature)


@given(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.binary(min_size=1, max_size=32),
)
@settings(max_examples=80, deadline=None)
def test_signature_not_transferable_across_signers(signer_a, signer_b, payload):
    signature = _SCHEME.sign(signer_a, payload)
    forged = type(signature)(
        signer=signer_b,
        scheme=signature.scheme,
        tag=signature.tag,
        payload_digest=signature.payload_digest,
    )
    if signer_a != signer_b:
        assert not _SCHEME.verify(0, payload, forged)
