"""Property-based end-to-end tests: SMR safety and liveness over random deployments.

These are the reproduction's strongest checks: for randomly drawn system
sizes, k-cast degrees, payloads, seeds and fault behaviours, every run must
preserve Definition 2.1 safety, and runs whose fault count respects the
connectivity bound must also reach the target height (liveness).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.adversary import FaultPlan
from repro.eval.runner import DeploymentSpec, ProtocolRunner

_RUNNER = ProtocolRunner()

_COMMON_SETTINGS = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def honest_specs(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    k = draw(st.integers(min_value=2, max_value=min(4, n - 1)))
    f = draw(st.integers(min_value=0, max_value=min(k - 1, (n - 1) // 2)))
    return DeploymentSpec(
        protocol=draw(st.sampled_from(["eesmr", "sync-hotstuff"])),
        n=n,
        f=f,
        k=k,
        target_height=draw(st.integers(min_value=1, max_value=3)),
        command_payload_bytes=draw(st.sampled_from([16, 64, 128])),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


@st.composite
def faulty_leader_specs(draw):
    n = draw(st.integers(min_value=5, max_value=9))
    k = draw(st.integers(min_value=2, max_value=min(4, n - 1)))
    f = draw(st.integers(min_value=1, max_value=min(k - 1, (n - 1) // 2)))
    behaviour = draw(st.sampled_from(["silent_leader", "equivocate", "crash"]))
    return DeploymentSpec(
        protocol="eesmr",
        n=n,
        f=f,
        k=k,
        target_height=draw(st.integers(min_value=1, max_value=2)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        fault_plan=FaultPlan(faulty=(0,), behaviour=behaviour, trigger_round=3),
    )


@given(honest_specs())
@settings(**_COMMON_SETTINGS)
def test_honest_runs_commit_target_and_stay_safe(spec):
    result = _RUNNER.run(spec)
    assert result.safety.consistent
    assert result.min_committed_height == spec.target_height
    assert result.view_changes == 0


@given(faulty_leader_specs())
@settings(**_COMMON_SETTINGS)
def test_faulty_leader_runs_stay_safe_and_recover(spec):
    result = _RUNNER.run(spec)
    assert result.safety.consistent
    # Liveness: every correct node commits at least the workload target.
    # (After a view change the new leader may anchor one extra block.)
    assert result.min_committed_height >= spec.target_height
    if spec.fault_plan.behaviour in ("silent_leader", "equivocate"):
        assert result.view_changes >= 1
