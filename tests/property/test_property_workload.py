"""Property tests: open-loop arrival streams are a pure function of the spec.

The matrix runs cells in worker processes, so the same property that makes
two in-process builds identical must also hold across a process boundary —
otherwise ``parallel=N`` sweeps would diverge from serial ones.
"""

from concurrent.futures import ProcessPoolExecutor

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.eval.runner import DeploymentSpec
from repro.workload import OpenLoopPoisson, default_open_loop_duration


def open_loop_spec(rate, clients, seed):
    return DeploymentSpec(
        protocol="eesmr",
        n=5,
        f=1,
        k=2,
        target_height=4,
        block_interval=0.5,
        seed=seed,
        workload=OpenLoopPoisson(rate=rate, clients=clients),
    )


def stream_fingerprint(spec):
    """Everything observable about the arrival stream, order-sensitive."""
    return [
        (c.command_id, c.client_id, c.arrival_time, c.payload_digest)
        for c in spec.workload.commands_for(spec)
    ]


def _fingerprint_from_schema(data):
    """Worker entry point: rebuild the spec from its JSON schema first."""
    return stream_fingerprint(DeploymentSpec.from_dict(data))


rates = st.floats(0.1, 16)
seeds = st.integers(0, 2**31)


@settings(max_examples=60, deadline=None)
@given(rate=rates, clients=st.integers(1, 4), seed=seeds)
def test_arrival_stream_is_deterministic_per_seed(rate, clients, seed):
    spec = open_loop_spec(rate, clients, seed)
    first = stream_fingerprint(spec)
    assert first == stream_fingerprint(spec)
    # Arrivals are sorted, unique, and confined to the open-loop window.
    times = [t for (_, _, t, _) in first]
    assert times == sorted(times)
    assert all(0 < t <= default_open_loop_duration(spec) for t in times)
    ids = [i for (i, _, _, _) in first]
    assert len(set(ids)) == len(ids)


@settings(max_examples=30, deadline=None)
@given(rate=rates, seed=seeds)
def test_seed_is_the_only_entropy_source(rate, seed):
    same = stream_fingerprint(open_loop_spec(rate, 2, seed))
    again = stream_fingerprint(open_loop_spec(rate, 2, seed))
    other = stream_fingerprint(open_loop_spec(rate, 2, seed + 1))
    assert same == again
    # A very low rate can draw zero arrivals under either seed; only
    # non-empty streams are expected to differ (arrival times are
    # continuous draws, so a collision is measure-zero).
    assume(same or other)
    assert same != other


def test_arrival_stream_is_invariant_under_matrix_sharding():
    """A worker process rebuilding the spec sees the identical stream."""
    specs = [open_loop_spec(rate, clients, seed) for rate, clients, seed in (
        (2.0, 3, 17),
        (8.0, 1, 17),
        (0.5, 2, 99),
    )]
    local = [stream_fingerprint(s) for s in specs]
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote = list(pool.map(_fingerprint_from_schema, [s.to_dict() for s in specs]))
    assert remote == local
