"""Property tests for the fuzzing loop's algebra.

The shrinker's contract is algebraic, so it is pinned property-style
against a stub detector (a plain predicate — no protocol runs, so
hypothesis can afford hundreds of examples):

* **determinism** — shrinking the same failing schedule twice yields the
  same reproducer, step and evaluation counts included;
* **still fails** — the reproducer fails the same predicate the input
  failed;
* **narrowing** — the reproducer is an ordered subsequence of the input
  in which every surviving atom is at most as strong: identical, a
  narrower window, or a smaller adaptive budget.

Plus the serialisation fixed point the corpus depends on: for any
generated schedule, ``spec.to_dict → from_dict → to_dict`` is identity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.runner import DeploymentSpec
from repro.fuzz import Detection, FuzzConfig, ProtocolVerdict, ScheduleGenerator, Shrinker
from repro.testkit.faults import LeaderFollowingCrash
from repro.testkit.invariants import InvariantReport


class StubDetector:
    """Fails a schedule iff it contains an atom of ``required_kind``."""

    def __init__(self, required_kind):
        self.required_kind = required_kind

    def detect(self, schedule):
        violations = []
        if any(type(a).__name__ == self.required_kind for a in schedule.faults):
            violations = [InvariantReport("agreement", False, "stub")]
        return Detection(
            schedule=schedule, verdicts=[ProtocolVerdict("eesmr", violations=violations)]
        )


@st.composite
def failing_cases(draw):
    """A generated schedule plus a predicate kind it actually contains."""
    seed = draw(st.integers(0, 500))
    schedule = ScheduleGenerator(FuzzConfig(), seed=seed).generate()
    kinds = sorted({type(a).__name__ for a in schedule.faults})
    return schedule, draw(st.sampled_from(kinds))


def atom_is_narrowing_of(shrunk, original):
    """``shrunk`` is ``original`` weakened by the shrinker's moves only."""
    if type(shrunk) is not type(original):
        return False
    if isinstance(shrunk, LeaderFollowingCrash):
        return (
            shrunk.budget <= original.budget
            and shrunk.start == original.start
            and shrunk.interval == original.interval
        )
    window, source = shrunk.impairment(), original.impairment()
    if window is not None and source is not None:
        same_node = getattr(shrunk, "node", None) == getattr(original, "node", None)
        return same_node and source[0] <= window[0] and window[1] <= source[1]
    return shrunk == original


def is_subsequence_narrowing(shrunk_schedule, original_schedule):
    """Every shrunk atom matches, in order, a distinct original atom."""
    index = 0
    originals = original_schedule.faults
    for atom in shrunk_schedule.faults:
        while index < len(originals) and not atom_is_narrowing_of(atom, originals[index]):
            index += 1
        if index >= len(originals):
            return False
        index += 1
    return True


@settings(max_examples=60, deadline=None)
@given(failing_cases())
def test_shrink_is_deterministic(case):
    schedule, kind = case
    first = Shrinker(StubDetector(kind)).shrink(schedule)
    second = Shrinker(StubDetector(kind)).shrink(schedule)
    assert first.describe() == second.describe()


@settings(max_examples=60, deadline=None)
@given(failing_cases())
def test_shrunk_output_still_fails(case):
    schedule, kind = case
    result = Shrinker(StubDetector(kind)).shrink(schedule)
    assert StubDetector(kind).detect(result.schedule).failed
    assert result.failure_key == frozenset({("eesmr", "agreement")})


@settings(max_examples=60, deadline=None)
@given(failing_cases())
def test_shrunk_output_is_a_narrowing_of_the_input(case):
    schedule, kind = case
    result = Shrinker(StubDetector(kind)).shrink(schedule)
    assert len(result.schedule.faults) <= len(schedule.faults)
    assert is_subsequence_narrowing(result.schedule, schedule)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 500))
def test_generated_spec_dict_round_trip_is_a_fixed_point(seed):
    config = FuzzConfig()
    schedule = ScheduleGenerator(config, seed=seed).generate()
    for protocol in ("eesmr", "trusted-baseline"):
        payload = config.spec_for(schedule, protocol).to_dict()
        assert DeploymentSpec.from_dict(payload).to_dict() == payload
