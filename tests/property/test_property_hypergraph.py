"""Property-based tests for the hypergraph fault-tolerance results (Appendix A)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.net.hypergraph import HyperEdge, Hypergraph
from repro.net.topology import ring_kcast_topology


@st.composite
def ring_parameters(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    k = draw(st.integers(min_value=1, max_value=n - 1))
    return n, k


@st.composite
def random_hypergraphs(draw):
    n = draw(st.integers(min_value=3, max_value=8))
    nodes = list(range(n))
    edges = []
    for node in nodes:
        others = [x for x in nodes if x != node]
        edge_count = draw(st.integers(min_value=1, max_value=2))
        for _ in range(edge_count):
            size = draw(st.integers(min_value=1, max_value=len(others)))
            receivers = draw(
                st.lists(st.sampled_from(others), min_size=size, max_size=size, unique=True)
            )
            edges.append(HyperEdge.make(node, receivers))
    return Hypergraph(nodes=nodes, edges=edges)


@given(ring_parameters())
@settings(max_examples=50, deadline=None)
def test_ring_kcast_degree_equals_k(params):
    n, k = params
    graph = ring_kcast_topology(n, k)
    for node in graph.nodes:
        assert graph.d_out(node) == k
        assert graph.d_in(node) == k
    assert graph.max_faults_necessary_condition() == k - 1


@given(ring_parameters())
@settings(max_examples=30, deadline=None)
def test_ring_kcast_is_partition_resistant_below_fault_bound(params):
    n, k = params
    graph = ring_kcast_topology(n, k)
    f = graph.max_faults_necessary_condition()
    f = min(f, n - 2)  # keep at least two nodes alive
    if f >= 1:
        # Exhaustive check is expensive; sample a handful of subsets.
        for removed in itertools.islice(itertools.combinations(graph.nodes, f), 30):
            assert graph.is_strongly_connected(exclude=removed)


@given(random_hypergraphs())
@settings(max_examples=50, deadline=None)
def test_degree_bounded_by_k_times_edges(graph):
    """Lemma A.6's counting step: d_out(p) <= k_max * number of outgoing edges."""
    for node in graph.nodes:
        out_edges = graph.out_edges(node)
        if not out_edges:
            continue
        k_max = max(edge.degree for edge in out_edges)
        assert graph.d_out(node) <= k_max * len(out_edges)


@given(random_hypergraphs())
@settings(max_examples=50, deadline=None)
def test_fault_bound_never_exceeds_smallest_degree(graph):
    bound = graph.max_faults_necessary_condition()
    for node in graph.nodes:
        assert bound <= graph.d_out(node)
        assert bound <= graph.d_in(node)


@given(random_hypergraphs())
@settings(max_examples=50, deadline=None)
def test_in_out_neighbor_duality(graph):
    """p is an out-neighbour of q exactly when q is an in-neighbour of p."""
    for p in graph.nodes:
        for q in graph.out_neighbors(p):
            assert p in graph.in_neighbors(q)


@given(random_hypergraphs(), st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_partition_resistance_implies_lemma_a5_bound(graph, f):
    """Lemma A.5 as a property: surviving any f removals needs f < min degree."""
    f = min(f, len(graph.nodes) - 2)
    if f >= 1 and graph.is_partition_resistant(f):
        assert f <= graph.max_faults_necessary_condition()
