"""Property-based tests for blocks, chains and the block store."""

from hypothesis import given, settings, strategies as st

from repro.core.blocks import BlockStore, make_block
from repro.core.types import Command


@st.composite
def chains(draw, max_length=8):
    """A block store containing a random tree of blocks (chain with forks)."""
    store = BlockStore()
    blocks = [store.genesis]
    length = draw(st.integers(min_value=1, max_value=max_length))
    for i in range(length):
        parent = blocks[draw(st.integers(min_value=0, max_value=len(blocks) - 1))]
        payload = draw(st.integers(min_value=0, max_value=64))
        block = make_block(
            parent,
            proposer=draw(st.integers(min_value=0, max_value=5)),
            view=draw(st.integers(min_value=1, max_value=3)),
            round_number=i + 3,
            commands=[Command(f"c{i}", payload_size_bytes=payload)],
        )
        store.add(block)
        blocks.append(block)
    return store, blocks


@given(chains())
@settings(max_examples=60, deadline=None)
def test_height_is_parent_height_plus_one(data):
    store, blocks = data
    for block in blocks:
        if block.is_genesis:
            continue
        parent = store.get(block.parent_hash)
        assert parent is not None
        assert block.height == parent.height + 1


@given(chains())
@settings(max_examples=60, deadline=None)
def test_every_block_extends_genesis(data):
    store, blocks = data
    for block in blocks:
        assert store.extends(block, store.genesis)
        assert store.has_ancestry(block)


@given(chains())
@settings(max_examples=60, deadline=None)
def test_extends_is_antisymmetric_except_for_equality(data):
    store, blocks = data
    for a in blocks:
        for b in blocks:
            if a.block_hash == b.block_hash:
                assert store.extends(a, b) and store.extends(b, a)
            elif store.extends(a, b) and store.extends(b, a):
                raise AssertionError("two distinct blocks extend each other")


@given(chains())
@settings(max_examples=60, deadline=None)
def test_conflicts_is_symmetric_and_exclusive_with_extends(data):
    store, blocks = data
    for a in blocks:
        for b in blocks:
            assert store.conflicts(a, b) == store.conflicts(b, a)
            if store.conflicts(a, b):
                assert not store.extends(a, b) and not store.extends(b, a)


@given(chains())
@settings(max_examples=60, deadline=None)
def test_chain_is_ordered_by_height_from_genesis(data):
    store, blocks = data
    for block in blocks:
        chain = store.chain(block)
        assert chain[0].is_genesis
        assert [b.height for b in chain] == list(range(len(chain)))
        assert chain[-1].block_hash == block.block_hash


@given(chains())
@settings(max_examples=60, deadline=None)
def test_common_ancestor_extends_into_both_blocks(data):
    store, blocks = data
    for a in blocks:
        for b in blocks:
            ancestor = store.highest_common_ancestor(a, b)
            assert store.extends(a, ancestor)
            assert store.extends(b, ancestor)


@given(st.integers(min_value=0, max_value=512), st.integers(min_value=0, max_value=10))
@settings(max_examples=60, deadline=None)
def test_block_wire_size_monotone_in_payload(payload, extra):
    store = BlockStore()
    small = make_block(store.genesis, 0, 1, 3, [Command("a", payload_size_bytes=payload)])
    large = make_block(store.genesis, 0, 1, 3, [Command("a", payload_size_bytes=payload + extra)])
    assert large.wire_size_bytes >= small.wire_size_bytes
