"""Property-based tests for the radio and energy models."""

from hypothesis import given, settings, strategies as st

from repro.energy.meter import EnergyCategory, EnergyMeter
from repro.radio.ble import BleAdvertisementKCast, fragments_for_payload
from repro.radio.gatt import BleGattUnicast
from repro.radio.media import lte_medium, wifi_medium
from repro.radio.reliability import AdvertisementLossModel


@given(st.integers(min_value=0, max_value=4096))
@settings(max_examples=80, deadline=None)
def test_fragment_count_covers_payload(payload):
    fragments = fragments_for_payload(payload)
    assert fragments * 25 >= payload
    assert (fragments - 1) * 25 < max(payload, 1)


@given(st.integers(min_value=0, max_value=2048), st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_kcast_cost_monotone_in_payload_and_k(payload, k):
    radio = BleAdvertisementKCast()
    cost = radio.transmission_cost(payload, k)
    bigger = radio.transmission_cost(payload + 25, k)
    assert bigger.sender_energy_j >= cost.sender_energy_j
    assert cost.total_energy_j >= cost.sender_energy_j
    assert cost.reliability > 0.99


@given(
    st.floats(min_value=0.05, max_value=0.6),
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=12),
)
@settings(max_examples=80, deadline=None)
def test_kcast_failure_monotone(p_loss, k, redundancy):
    model = AdvertisementLossModel(p_loss)
    failure = model.kcast_failure_probability(k, redundancy)
    assert 0.0 <= failure <= 1.0
    assert model.kcast_failure_probability(k, redundancy + 1) <= failure
    assert model.kcast_failure_probability(k + 1, redundancy) >= failure


@given(st.integers(min_value=0, max_value=4096))
@settings(max_examples=60, deadline=None)
def test_media_costs_monotone_and_ordered(size):
    wifi, lte = wifi_medium(), lte_medium()
    assert wifi.send_energy_j(size) <= wifi.send_energy_j(size + 64)
    assert lte.send_energy_j(size) >= wifi.send_energy_j(size)


@given(st.integers(min_value=0, max_value=2048), st.integers(min_value=0, max_value=12))
@settings(max_examples=60, deadline=None)
def test_gatt_fanout_linear(size, d_out):
    gatt = BleGattUnicast()
    assert gatt.fanout_send_energy_j(size, d_out) == d_out * gatt.send_energy_j(size)


@given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_meter_total_equals_sum_of_charges(charges):
    meter = EnergyMeter(0)
    categories = list(EnergyCategory)
    for i, amount in enumerate(charges):
        meter.charge(categories[i % len(categories)], amount)
    assert abs(meter.total_joules - sum(charges)) < 1e-9
