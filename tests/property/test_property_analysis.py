"""Property-based tests for the Section 4 energy analysis invariants."""

from hypothesis import given, settings, strategies as st

from repro.energy.analysis import (
    compare_protocols,
    energy_fault_bound,
    expected_energy,
    view_change_ratio_bound,
)
from repro.energy.model import CostParameters
from repro.energy.protocol_costs import eesmr_cost_model, sync_hotstuff_cost_model

positive = st.floats(min_value=0.01, max_value=1000.0, allow_nan=False)


@given(positive, positive, positive, positive)
@settings(max_examples=100, deadline=None)
def test_ratio_bound_always_in_unit_interval(best_a, best_b, vc_a, vc_b):
    bound = view_change_ratio_bound(best_a, best_b, vc_a, vc_b)
    assert 0.0 <= bound <= 1.0


@given(positive, positive, positive, positive)
@settings(max_examples=100, deadline=None)
def test_ratio_bound_consistent_with_expected_energy(best_a, best_b, vc_a, vc_b):
    """In the best-case-optimal region, A wins below the bound and loses above it."""
    bound = view_change_ratio_bound(best_a, best_b, vc_a, vc_b)

    def expected(best, vc, nu):
        return (1 - nu) * best + nu * (best + vc)

    eps = 1e-6
    # Strict inequalities: on the equality boundaries the "region" notion of
    # Section 4 degenerates and either protocol may trivially dominate.
    best_case_optimal = best_a < best_b and vc_a > vc_b
    worst_case_optimal = best_a > best_b and vc_a < vc_b
    if best_case_optimal:
        if bound > eps:
            nu = bound * 0.5
            assert expected(best_a, vc_a, nu) <= expected(best_b, vc_b, nu) + 1e-6
        if bound < 1 - eps:
            nu = bound + (1 - bound) * 0.5
            assert expected(best_a, vc_a, nu) >= expected(best_b, vc_b, nu) - 1e-6
    elif worst_case_optimal:
        if bound < 1 - eps:
            nu = bound + (1 - bound) * 0.5
            assert expected(best_a, vc_a, nu) <= expected(best_b, vc_b, nu) + 1e-6
        if bound > eps:
            nu = bound * 0.5
            assert expected(best_a, vc_a, nu) >= expected(best_b, vc_b, nu) - 1e-6


@given(positive, positive, positive)
@settings(max_examples=100, deadline=None)
def test_energy_fault_bound_nonnegative_and_monotone_in_baseline(baseline, best, vc):
    bound = energy_fault_bound(baseline, best, vc)
    assert bound >= 0.0
    assert energy_fault_bound(baseline * 2, best, vc) >= bound


@st.composite
def cost_parameters(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    f = draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    return CostParameters(
        n=n,
        f=f,
        message_bytes=draw(st.integers(min_value=1, max_value=4096)),
        send_per_byte_j=draw(st.floats(min_value=1e-7, max_value=1e-3)),
        recv_per_byte_j=draw(st.floats(min_value=1e-7, max_value=1e-3)),
        sign_j=draw(st.floats(min_value=0.01, max_value=10.0)),
        verify_j=draw(st.floats(min_value=0.001, max_value=10.0)),
        k=draw(st.integers(min_value=1, max_value=max(1, n - 1))),
        d=1,
    )


@given(cost_parameters())
@settings(max_examples=80, deadline=None)
def test_cost_models_positive_and_worst_case_decomposes(params):
    for model in (eesmr_cost_model(), sync_hotstuff_cost_model()):
        best = model.best_case(params)
        vc = model.view_change(params)
        assert best > 0 and vc > 0
        assert abs(model.worst_case(params) - (best + vc)) < 1e-9


@given(cost_parameters(), st.integers(min_value=0, max_value=20))
@settings(max_examples=80, deadline=None)
def test_expected_energy_monotone_in_view_changes(params, units):
    model = eesmr_cost_model()
    units = max(units, 1)
    previous = expected_energy(model, params, units, 0)
    for view_changes in range(1, min(units, 5) + 1):
        current = expected_energy(model, params, units, view_changes)
        assert current >= previous
        previous = current


@given(cost_parameters())
@settings(max_examples=60, deadline=None)
def test_comparison_winner_consistent_with_costs(params):
    comparison = compare_protocols(eesmr_cost_model(), sync_hotstuff_cost_model(), params)
    if comparison.best_a < comparison.best_b:
        assert comparison.best_case_winner == "eesmr"
        assert comparison.a_wins_at_ratio(0.0)
    assert comparison.best_case_advantage >= 1.0
