"""Workload engines: parsing, determinism, serialisation, byte-identity.

The engine contract under test:

* the arrival stream is a pure function of the spec (two builds identical,
  different seeds different);
* ``ClosedLoopPreload()`` is byte-identical to the pre-engine pipeline —
  a spec carrying the explicit default fingerprints exactly like one
  carrying ``workload=None``;
* every engine's ``describe()`` schema round-trips through
  ``workload_from_dict`` and the full ``DeploymentSpec`` JSON schema.
"""

import json

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.testkit.trace import TraceRecorder
from repro.workload import (
    ClosedLoopPreload,
    OpenLoopPoisson,
    TraceReplay,
    default_open_loop_duration,
    parse_workload,
    workload_command_ids,
    workload_from_dict,
)


def open_loop_spec(rate=2.0, seed=17, **overrides):
    overrides.setdefault("workload", OpenLoopPoisson(rate=rate, clients=3))
    return DeploymentSpec(
        protocol="eesmr",
        n=5,
        f=1,
        k=2,
        target_height=4,
        block_interval=0.5,
        seed=seed,
        **overrides,
    )


# ----------------------------------------------------------------- parsing
def test_parse_workload_forms():
    assert isinstance(parse_workload("closed-loop"), ClosedLoopPreload)
    engine = parse_workload("open-loop:2.5")
    assert engine == OpenLoopPoisson(rate=2.5)
    assert parse_workload("open-loop:2.5:7") == OpenLoopPoisson(rate=2.5, clients=7)
    assert parse_workload("open-loop:2.5:7:12.0") == OpenLoopPoisson(
        rate=2.5, clients=7, duration=12.0
    )


def test_parse_workload_trace(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps([{"time": 0.5}, {"time": 1.25, "command_id": "x"}]))
    engine = parse_workload(f"trace:{path}")
    assert isinstance(engine, TraceReplay)
    assert [e[0] for e in engine.entries] == [0.5, 1.25]


@pytest.mark.parametrize(
    "text",
    ["open-loop", "open-loop:", "open-loop:fast", "trace:", "drizzle", ""],
)
def test_parse_workload_rejects_malformed(text):
    with pytest.raises(ValueError):
        parse_workload(text)


# ------------------------------------------------------------- determinism
def test_open_loop_stream_is_deterministic():
    spec = open_loop_spec()
    first = spec.workload.commands_for(spec)
    second = spec.workload.commands_for(spec)
    assert first == second
    assert [c.arrival_time for c in first] == [c.arrival_time for c in second]
    assert [c.payload_digest for c in first] == [c.payload_digest for c in second]


def test_open_loop_streams_differ_across_seeds():
    a = open_loop_spec(seed=17)
    b = open_loop_spec(seed=18)
    assert a.workload.commands_for(a) != b.workload.commands_for(b)


def test_open_loop_arrivals_are_ordered_and_bounded():
    spec = open_loop_spec(rate=8.0)
    commands = spec.workload.commands_for(spec)
    times = [c.arrival_time for c in commands]
    assert times == sorted(times)
    assert all(0 < t <= default_open_loop_duration(spec) for t in times)
    ids = [c.command_id for c in commands]
    assert len(set(ids)) == len(ids)
    assert all(i.startswith("ol") for i in ids)


def test_open_loop_run_is_byte_deterministic():
    spec = open_loop_spec()
    fingerprints = []
    for _ in range(2):
        runner = ProtocolRunner(recorder=TraceRecorder())
        fingerprints.append(runner.run(spec).trace.fingerprint())
    assert fingerprints[0] == fingerprints[1]


def test_open_loop_validation():
    with pytest.raises(ValueError, match="rate"):
        OpenLoopPoisson(rate=0)
    with pytest.raises(ValueError, match="duration"):
        OpenLoopPoisson(rate=1, duration=-1)
    with pytest.raises(ValueError, match="client"):
        OpenLoopPoisson(rate=1, clients=0)


# ----------------------------------------------------- closed-loop identity
def test_explicit_default_preload_fingerprints_like_none():
    """workload=ClosedLoopPreload() is byte-identical to workload=None."""
    base = dict(protocol="eesmr", n=5, f=1, k=2, target_height=3, seed=29)
    plain = DeploymentSpec(**base)
    explicit = DeploymentSpec(workload=ClosedLoopPreload(), **base)
    fps = []
    for spec in (plain, explicit):
        runner = ProtocolRunner(recorder=TraceRecorder())
        fps.append(runner.run(spec).trace.fingerprint())
    assert fps[0] == fps[1]


def test_non_default_surplus_is_visible_in_spec_fingerprint():
    from repro.testkit.trace import spec_fingerprint

    base = dict(protocol="eesmr", n=5, f=1, k=2, target_height=3, seed=29)
    plain = spec_fingerprint(DeploymentSpec(**base))
    tweaked = spec_fingerprint(
        DeploymentSpec(workload=ClosedLoopPreload(surplus_blocks=2), **base)
    )
    assert "workload" not in plain
    assert tweaked["workload"] == {"kind": "closed-loop", "surplus_blocks": 2}


# ------------------------------------------------------------- trace replay
def test_trace_replay_from_file_and_inline_are_equal(tmp_path):
    entries = [
        {"time": 0.25, "command_id": "a", "client_id": 1, "payload_size_bytes": 32},
        {"time": 1.5},
    ]
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(entries))
    from_file = TraceReplay.from_file(str(path))
    inline = TraceReplay(entries=((0.25, "a", 1, 32), (1.5, "tr1", 0, None)))
    assert from_file == inline  # path is provenance, not identity


def test_trace_replay_commands_defer_payload_to_spec():
    engine = TraceReplay(entries=((0.5, "a", 0, None), (1.0, "b", 0, 64)))
    spec = DeploymentSpec(command_payload_bytes=16)
    commands = engine.commands_for(spec)
    assert commands[0].payload_size_bytes == 16
    assert commands[1].payload_size_bytes == 64
    assert [c.arrival_time for c in commands] == [0.5, 1.0]


def test_trace_replay_rejects_bad_entries():
    with pytest.raises(ValueError, match="negative time"):
        TraceReplay(entries=((-1.0, "a", 0, None),))
    with pytest.raises(ValueError, match="duplicate"):
        TraceReplay(entries=((0.0, "a", 0, None), (1.0, "a", 0, None)))
    with pytest.raises(ValueError, match="time"):
        TraceReplay(entries=(("soon", "a"),))


def test_trace_run_commits_only_trace_commands():
    engine = TraceReplay(entries=((0.1, "a", 0, None), (0.6, "b", 0, None)))
    spec = open_loop_spec(workload=engine)
    runner = ProtocolRunner(recorder=TraceRecorder())
    result = runner.run(spec)
    committed = {
        cid for cmds in result.trace.committed_commands.values() for cid in cmds
    }
    assert committed <= {"a", "b"}
    assert result.min_committed_height >= spec.target_height


# ------------------------------------------------------------ serialisation
@pytest.mark.parametrize(
    "engine",
    [
        ClosedLoopPreload(),
        ClosedLoopPreload(surplus_blocks=1),
        OpenLoopPoisson(rate=3.5, clients=4, duration=9.0, payload_size_bytes=128),
        TraceReplay(entries=((0.5, "a", 2, 64), (1.0, "tr1", 0, None))),
    ],
)
def test_describe_roundtrips(engine):
    rebuilt = workload_from_dict(json.loads(json.dumps(engine.describe())))
    assert rebuilt == engine
    assert rebuilt.describe() == engine.describe()


def test_workload_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown workload kind"):
        workload_from_dict({"kind": "chaos-monkey"})


def test_spec_json_roundtrip_with_workload_and_limit():
    spec = open_loop_spec(txpool_limit=32)
    encoded = json.dumps(spec.to_dict(), sort_keys=True)
    rebuilt = DeploymentSpec.from_dict(json.loads(encoded))
    assert rebuilt == spec
    assert json.dumps(rebuilt.to_dict(), sort_keys=True) == encoded


def test_workload_command_ids_defaults_to_preload():
    spec = DeploymentSpec(protocol="eesmr", n=5, f=1, k=2, target_height=3)
    assert workload_command_ids(spec) == ClosedLoopPreload().command_ids(spec)
    ol = open_loop_spec()
    assert workload_command_ids(ol) == {
        c.command_id for c in ol.workload.commands_for(ol)
    }
