"""The open-loop saturation sweep and its BENCH gate.

Everything here is virtual time: the sweep is a pure function of its
parameters, so the knee — and therefore the tracked gate verdict — is
host-independent.
"""

from repro.perf.report import SATURATION_GATES, BenchReport
from repro.perf.saturation import run_saturation_sweep


def small_sweep(**overrides):
    params = dict(rates=(0.25, 2.0), target_height=40)
    params.update(overrides)
    return run_saturation_sweep(**params)


def test_sweep_is_deterministic():
    assert small_sweep().to_dict() == small_sweep().to_dict()


def test_sweep_has_a_knee():
    sweep = small_sweep()
    low, high = sweep.points
    assert low.slo_met and low.dropped == 0
    assert not high.slo_met and high.dropped > 0
    assert high.offered > low.offered
    assert sweep.max_sustainable_rate == 0.25


def test_default_sweep_meets_the_gate_floor():
    """The committed gate verdict: the default sweep sustains the floor."""
    sweep = run_saturation_sweep()
    assert sweep.max_sustainable_rate >= SATURATION_GATES["open_loop_saturation"]


def test_gate_verdict_flows_into_bench_report():
    report = BenchReport(name="hotpath")
    report.notes["saturation"] = small_sweep().to_dict()
    verdict = report.gates_detail()["open_loop_saturation"]
    assert verdict["floor"] == SATURATION_GATES["open_loop_saturation"]
    assert verdict["passed"] is (0.25 >= verdict["floor"])
    assert "max sustainable" in verdict["note"]


def test_gate_fails_when_sweep_is_missing():
    report = BenchReport(name="hotpath")
    verdict = report.gates_detail()["open_loop_saturation"]
    assert verdict["passed"] is False
    assert "missing" in verdict["note"]
