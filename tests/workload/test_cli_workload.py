"""CLI surface of the workload layer: run/matrix flags and spec dumps."""

import json
import warnings

import pytest

from repro.cli import main
from repro.core.txpool import TxPoolOverflowWarning


def run_cli(argv, capsys):
    code = main(argv)
    return code, capsys.readouterr().out


BASE = ["-n", "5", "-f", "1", "-k", "2", "--blocks", "4"]


def test_run_workload_open_loop_prints_slo_metrics(capsys):
    code, out = run_cli(
        ["run", *BASE, "--workload", "open-loop:2:3", "--block-interval", "0.5"],
        capsys,
    )
    assert code == 0
    assert "workload            : open-loop" in out
    assert "offered / committed" in out
    assert "commit latency" in out
    assert "goodput" in out


def test_run_closed_loop_output_is_unchanged(capsys):
    code, out = run_cli(["run", *BASE], capsys)
    assert code == 0
    assert "workload" not in out
    assert "txpool admission" not in out


def test_run_txpool_limit_reports_drops(capsys):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TxPoolOverflowWarning)
        code, out = run_cli(
            [
                "run",
                *BASE,
                "--workload",
                "open-loop:16:3",
                "--block-interval",
                "0.5",
                "--txpool-limit",
                "4",
            ],
            capsys,
        )
    assert code == 0
    assert "txpool admission" in out
    assert "dropped" in out


def test_run_workload_trace_file(tmp_path, capsys):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps([{"time": 0.1}, {"time": 0.7, "command_id": "x"}]))
    code, out = run_cli(
        ["run", *BASE, "--workload", f"trace:{path}", "--block-interval", "0.5"],
        capsys,
    )
    assert code == 0
    assert "workload            : trace" in out


def test_run_rejects_unknown_workload():
    with pytest.raises(ValueError, match="unknown workload"):
        main(["run", *BASE, "--workload", "drizzle"])


def test_matrix_workload_axis(capsys):
    code, out = run_cli(
        [
            "matrix",
            "--protocols",
            "eesmr",
            "--faults",
            "none",
            "--media",
            "ble",
            "--workloads",
            "preload",
            "open-loop",
            "--block-interval",
            "0.5",
        ],
        capsys,
    )
    assert code == 0
    assert "cells run           : 2" in out
    assert "invariants          : OK" in out


def test_matrix_dump_specs_carries_workload_schema(tmp_path, capsys):
    dump = tmp_path / "specs.json"
    code, _ = run_cli(
        [
            "matrix",
            "--protocols",
            "eesmr",
            "--faults",
            "none",
            "--media",
            "ble",
            "--workloads",
            "open-loop:2.5",
            "--block-interval",
            "0.5",
            "--dump-specs",
            str(dump),
        ],
        capsys,
    )
    assert code == 0
    specs = json.loads(dump.read_text())
    assert len(specs) == 1
    assert specs[0]["workload"] == {
        "kind": "open-loop",
        "rate": 2.5,
        "clients": 1,
        "duration": None,
        "payload_size_bytes": None,
    }


def test_run_spec_file_with_workload_section(tmp_path, capsys):
    from repro.eval.runner import DeploymentSpec
    from repro.workload import OpenLoopPoisson

    spec = DeploymentSpec(
        protocol="eesmr",
        n=5,
        f=1,
        k=2,
        target_height=4,
        block_interval=0.5,
        seed=17,
        workload=OpenLoopPoisson(rate=2.0, clients=3),
    )
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    code, out = run_cli(["run", "--spec", str(path)], capsys)
    assert code == 0
    assert "workload            : open-loop" in out
