"""Txpool backpressure: admission verdicts, overload accounting, surfacing.

A bounded pool must stay bounded under open-loop overload, tell duplicates
apart from overflow drops, keep the leader's drain order untouched, and
surface its accounting in run stats and the structured trace — with the
seed's unbounded pools keeping their exact key set (golden fingerprints).
"""

import warnings

import pytest

from repro.core.config import ProtocolConfig
from repro.core.txpool import (
    ADMITTED,
    DUPLICATE,
    OVERFLOW,
    TxPool,
    TxPoolOverflowWarning,
)
from repro.core.types import Command
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.testkit.trace import TraceRecorder
from repro.workload import OpenLoopPoisson


def commands(*ids):
    return [Command(command_id=i) for i in ids]


def overload_spec(limit=4, rate=16.0):
    return DeploymentSpec(
        protocol="eesmr",
        n=5,
        f=1,
        k=2,
        target_height=4,
        block_interval=0.5,
        seed=17,
        workload=OpenLoopPoisson(rate=rate, clients=3),
        txpool_limit=limit,
    )


# ------------------------------------------------------------ pool verdicts
def test_admit_returns_explicit_verdicts():
    pool = TxPool(max_size=2)
    assert pool.admit(Command("a")) == ADMITTED
    assert pool.admit(Command("a")) == DUPLICATE
    assert pool.admit(Command("b")) == ADMITTED
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TxPoolOverflowWarning)
        assert pool.admit(Command("c")) == OVERFLOW


def test_duplicate_and_overflow_are_counted_separately():
    pool = TxPool(max_size=2)
    pool.add_all(commands("a", "b"))
    pool.admit(Command("a"))  # duplicate, not a drop
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TxPoolOverflowWarning)
        pool.admit(Command("c"))  # overflow
        pool.admit(Command("c"))  # still overflow (pool is full, not pending)
    assert pool.duplicates == 1
    assert pool.dropped == 2
    assert pool.admitted == 2
    assert pool.high_watermark == 2
    assert pool.admission_stats() == {
        "admitted": 2,
        "duplicates": 1,
        "dropped": 2,
        "pending": 2,
        "high_watermark": 2,
        "max_size": 2,
    }


def test_first_overflow_warns_once_per_pool():
    pool = TxPool(max_size=1)
    pool.add(Command("a"))
    with pytest.warns(TxPoolOverflowWarning, match="max_size=1"):
        pool.admit(Command("b"))
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        assert pool.admit(Command("c")) == OVERFLOW


def test_bounded_pool_stays_bounded_and_preserves_drain_order():
    pool = TxPool(max_size=3)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TxPoolOverflowWarning)
        pool.add_all(commands("a", "b", "c", "d", "e"))
    assert len(pool) == 3
    # Drain order is arrival order, untouched by the rejected tail.
    assert [c.command_id for c in pool.peek_batch(10)] == ["a", "b", "c"]
    pool.remove(["a"])
    assert pool.add(Command("f"))
    assert [c.command_id for c in pool.peek_batch(10)] == ["b", "c", "f"]


def test_max_size_validation():
    with pytest.raises(ValueError, match="max_size"):
        TxPool(max_size=0)
    TxPool(max_size=None)  # unbounded stays legal


def test_protocol_config_validates_txpool_limit():
    with pytest.raises(ValueError, match="txpool_limit"):
        ProtocolConfig(n=4, f=1, delta=1.0, txpool_limit=0)
    assert ProtocolConfig(n=4, f=1, delta=1.0).txpool_limit is None


def test_deployment_spec_validates_txpool_limit():
    with pytest.raises(ValueError, match="txpool_limit"):
        DeploymentSpec(txpool_limit=0)


# --------------------------------------------------------------- surfacing
def test_overload_run_surfaces_drop_accounting():
    spec = overload_spec()
    runner = ProtocolRunner(recorder=TraceRecorder())
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TxPoolOverflowWarning)
        result = runner.run(spec)
    assert result.commands_dropped > 0
    assert result.txpool_high_watermark == spec.txpool_limit
    # The structured trace carries per-replica drop counters...
    stats = result.trace.replica_stats
    assert any(s.get("commands_dropped", 0) > 0 for s in stats.values())
    # ...and the spec fingerprint records both the workload and the bound.
    assert result.trace.spec["txpool_limit"] == spec.txpool_limit
    assert result.trace.spec["workload"]["kind"] == "open-loop"


def test_default_runs_keep_seed_trace_key_set():
    """Unbounded preload runs must not grow admission keys (golden traces)."""
    spec = DeploymentSpec(protocol="eesmr", n=5, f=1, k=2, target_height=3, seed=29)
    runner = ProtocolRunner(recorder=TraceRecorder())
    result = runner.run(spec)
    assert result.commands_dropped == 0
    for stats in result.trace.replica_stats.values():
        assert "commands_dropped" not in stats
        assert "commands_duplicate" not in stats
    assert "workload" not in result.trace.spec
    assert "txpool_limit" not in result.trace.spec


def test_overload_run_stays_safe_and_live():
    """Backpressure degrades goodput, never safety or leader liveness."""
    spec = overload_spec(limit=2, rate=32.0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TxPoolOverflowWarning)
        result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    assert result.safety.consistent
    assert result.min_committed_height >= spec.target_height
