"""SLO metrics: quantiles, fault windows, exporters, sharding equality.

``MetricsObserver`` numbers are pure functions of the deterministic run:
a serial matrix sweep and a ``parallel=N`` sharded one must report the
identical summaries.  The Prometheus surface is exercised the way CI has
it — without ``prometheus_client`` installed — so the zero-dependency
text exporter and the documented no-op ``export()`` fallback are the
tested paths.
"""

import json

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.session.metrics import (
    HAVE_PROMETHEUS,
    MetricsObserver,
    percentile,
)
from repro.testkit import faults
from repro.testkit.scenarios import ScenarioMatrix
from repro.workload import OpenLoopPoisson


def open_loop_spec(**overrides):
    overrides.setdefault("workload", OpenLoopPoisson(rate=2.0, clients=3))
    base = dict(
        protocol="eesmr",
        n=5,
        f=1,
        k=2,
        target_height=6,
        block_interval=0.5,
        seed=17,
    )
    base.update(overrides)
    return DeploymentSpec(**base)


def run_with_metrics(spec, slo_p99=None):
    metrics = MetricsObserver(slo_p99=slo_p99)
    result = (
        ProtocolRunner().session(spec, observers=(metrics,)).run_to_quiescence().finish()
    )
    return metrics, result


# --------------------------------------------------------------- percentile
def test_percentile_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(values, 0.50) == 3.0
    assert percentile(values, 0.95) == 5.0
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([], 0.5) is None


# ------------------------------------------------------------------ summary
def test_summary_reports_commits_goodput_and_queue_depth():
    metrics, result = run_with_metrics(open_loop_spec())
    summary = metrics.summary()
    overall = summary["overall"]
    assert summary["offered"] > 0
    assert summary["committed_commands"] >= 1
    assert overall["commits"] == summary["committed_commands"]
    assert overall["goodput"] > 0
    assert overall["latency_p50"] is not None
    assert overall["latency_p99"] >= overall["latency_p50"]
    assert summary["queue_high_watermark"] > 0
    # The summary also lands on the RunResult for downstream consumers.
    assert result.metrics == summary


def test_fault_windows_segment_the_run():
    schedule = faults.drop_window(4, start=1.0, end=6.0)
    metrics, _ = run_with_metrics(open_loop_spec(fault_schedule=schedule))
    summary = metrics.summary()
    labels = [window["faults"] for window in summary["windows"]]
    assert len(labels) >= 3  # nominal → windowed → nominal
    assert any("@4" in label for label in labels)
    assert labels[0] == "nominal" and labels[-1] == "nominal"
    # Window edges tile the run exactly.
    edges = [(w["start"], w["end"]) for w in summary["windows"]]
    for (_, prev_end), (start, _) in zip(edges, edges[1:]):
        assert prev_end == start


def test_slo_verdict():
    generous, _ = run_with_metrics(open_loop_spec(), slo_p99=1e9)
    assert generous.summary()["slo_met"] is True
    strict, _ = run_with_metrics(open_loop_spec(), slo_p99=1e-9)
    assert strict.summary()["slo_met"] is False


def test_preload_runs_fall_back_to_run_start_arrivals():
    """Closed-loop commands carry no arrival stamp; latency is from t=0."""
    spec = DeploymentSpec(protocol="eesmr", n=5, f=1, k=2, target_height=3, seed=29)
    metrics, _ = run_with_metrics(spec)
    summary = metrics.summary()
    assert summary["committed_commands"] >= 1
    assert summary["overall"]["latency_p50"] is not None


def test_summary_is_plain_json_safe_data():
    metrics, _ = run_with_metrics(open_loop_spec(), slo_p99=40.0)
    encoded = json.dumps(metrics.summary(), sort_keys=True)
    assert json.loads(encoded) == metrics.summary()


# ----------------------------------------------------------------- sharding
def test_metrics_identical_across_serial_and_parallel_matrix():
    matrix = ScenarioMatrix(
        protocols=("eesmr",),
        fault_names=("none", "crash-leader"),
        media=("ble",),
        workloads=("preload", "open-loop"),
        block_interval=0.5,
    )
    serial = matrix.run(parallel=1)
    parallel = matrix.run(parallel=2)
    assert serial.ok and parallel.ok
    assert [o.cell for o in serial.outcomes] == [o.cell for o in parallel.outcomes]
    for a, b in zip(serial.outcomes, parallel.outcomes):
        assert a.metrics == b.metrics
        assert a.evidence.trace.fingerprint() == b.evidence.trace.fingerprint()
    # Preload cells ride the seed pipeline: no metrics attached.
    assert all(
        (o.metrics is None) == (o.cell.workload == "preload") for o in serial.outcomes
    )


# ---------------------------------------------------------------- exporters
def test_prometheus_text_needs_no_dependency():
    metrics, _ = run_with_metrics(open_loop_spec())
    text = metrics.prometheus_text()
    assert text.startswith("# HELP repro_commit_latency_p50 ")
    for metric in (
        "repro_commit_latency_p99",
        "repro_goodput_commands_per_time",
        "repro_queue_depth_mean",
        "repro_commands_offered_total",
        "repro_commands_dropped_total",
    ):
        assert f"# TYPE {metric} gauge" in text
    assert 'window="overall"' in text
    # Every sample line is "name{labels} value" with a parseable value.
    for line in text.strip().splitlines():
        if line.startswith("#"):
            continue
        _, _, value = line.rpartition(" ")
        float(value)


def test_export_is_noop_without_prometheus_client():
    metrics, _ = run_with_metrics(open_loop_spec())
    registry = metrics.export()
    if HAVE_PROMETHEUS:  # pragma: no cover - dep not installed in CI
        assert registry is not None
    else:
        assert registry is None
