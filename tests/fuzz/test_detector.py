"""Detector tests: verdict shape, skip paths, and failure keys."""

from repro.fuzz import Detection, Detector, FuzzConfig, ProtocolVerdict
from repro.testkit.faults import (
    CrashAt,
    FaultSchedule,
    SilentFrom,
    schedule_from_dict,
)
from repro.testkit.invariants import InvariantReport


def test_honest_run_is_clean_across_all_protocols():
    config = FuzzConfig()
    detection = Detector(config).detect(None)
    assert not detection.failed
    assert [v.protocol for v in detection.verdicts] == list(config.protocols)
    assert all(v.skip_reason is None for v in detection.verdicts)
    assert detection.failure_key() == frozenset()


def test_benign_schedule_is_clean_and_counts_runs():
    config = FuzzConfig(protocols=("eesmr", "trusted-baseline"))
    detector = Detector(config)
    detection = detector.detect(FaultSchedule((CrashAt(4, time=6.0),)))
    assert not detection.failed
    assert detector.runs == 2


def test_quorum_infeasible_schedule_is_skipped_not_run():
    """Three Byzantine nodes need f = 3 under n = 5 — every protocol must
    skip (the shared synchronous config cannot even be built with a
    Byzantine majority), with a reason instead of a crash."""
    config = FuzzConfig(protocols=("eesmr", "trusted-baseline"))
    detector = Detector(config)
    schedule = FaultSchedule((SilentFrom(1), SilentFrom(2), SilentFrom(3)))
    detection = detector.detect(schedule)
    by_protocol = {v.protocol: v for v in detection.verdicts}
    assert "2f < n" in by_protocol["eesmr"].skip_reason
    assert "f < n/2" in by_protocol["trusted-baseline"].skip_reason
    assert detector.runs == 0


def test_topology_infeasible_schedule_skips_only_the_topology_bound_protocols():
    """Adjacent crashes at 0 and 4 disconnect the k = 2 ring (Lemma A.5),
    so eesmr skips — but the trusted baseline's leaves only talk to the
    control hub and still run."""
    config = FuzzConfig(protocols=("eesmr", "trusted-baseline"))
    detector = Detector(config)
    schedule = FaultSchedule((CrashAt(0, time=1.0), CrashAt(4, time=1.0)))
    detection = detector.detect(schedule)
    by_protocol = {v.protocol: v for v in detection.verdicts}
    assert "Lemma A.5" in by_protocol["eesmr"].skip_reason
    assert by_protocol["trusted-baseline"].skip_reason is None
    assert detector.runs == 1


def test_detection_survives_schedule_round_trip():
    """Detecting a schedule rebuilt from its canonical description gives
    the same verdicts — the serialisation the corpus relies on."""
    config = FuzzConfig(protocols=("eesmr",))
    schedule = FaultSchedule((CrashAt(4, time=6.0), SilentFrom(3)))
    rebuilt = schedule_from_dict(schedule.describe())
    first = Detector(config).detect(schedule)
    second = Detector(config).detect(rebuilt)
    assert first.describe() == second.describe()


def test_failure_key_collects_protocol_invariant_pairs():
    detection = Detection(
        schedule=FaultSchedule(),
        verdicts=[
            ProtocolVerdict("eesmr", violations=[InvariantReport("liveness", False, "x")]),
            ProtocolVerdict(
                "optsync",
                violations=[
                    InvariantReport("agreement", False, "y"),
                    InvariantReport("liveness", False, "z"),
                ],
            ),
            ProtocolVerdict("trusted-baseline"),
        ],
    )
    assert detection.failed
    assert detection.failure_key() == frozenset(
        {("eesmr", "liveness"), ("optsync", "agreement"), ("optsync", "liveness")}
    )
