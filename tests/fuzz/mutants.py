"""Planted bugs for the fuzzer meta-tests.

A fuzzer that never finds anything proves nothing — these builders plant
two deliberate, realistic bugs for `test_planted_mutants.py` to hunt.
Each is a :class:`~repro.session.builder.SessionBuilder` subclass that the
:class:`~repro.fuzz.detect.Detector` uses for every run (its
``builder_factory`` hook), so the mutation applies to detection *and* to
every shrink re-verification — the shrinker chases the planted bug
through the same broken build.

* **Mutant A (commit rule)** — honest EESMR replicas are replaced by
  :class:`ForkOnEquivocation`, which reacts to an equivocation proof by
  *committing* one of the twins (chosen by pid parity) instead of blaming.
  Any schedule containing an ``EquivocateAt`` forks the cluster — an
  agreement violation.  The same mutation style as the PR 1 forking-mutant
  meta-test, now found by search instead of by hand.
* **Mutant B (relay restore)** — the network's ``allow_relay`` is made a
  no-op, so every ``RelayDropWindow`` heal leaks its relay denial: windows
  accumulate permanent non-relaying nodes.  Enough windows on distinct
  ring neighbours eventually disconnect a correct node — a liveness
  violation.  This is exactly the class of bug the refcounted
  deny/allow-relay machinery exists to prevent (the PR 3
  composition-window regressions).
* **Mutant C (dropped catch-up QC)** — sync responders stop attaching the
  certificate that covers the suffix tip.  Certificate-requiring
  protocols (Sync HotStuff, OptSync) then refuse every catch-up adoption,
  the recovering node burns its whole retry budget and gives up — and
  because the give-up path outlives ``heal + CATCH_UP_GRACE``, the node's
  window-scoped liveness exemption lapses and the liveness invariant
  fires.  This is the mutant the window-scoped exemption exists to catch:
  under the old permanent-pardon semantics it would have been invisible.
* **Mutant D (retransmission give-up)** — the reliable-delivery
  sublayer's retry budget is zeroed, so every delivery a ``LossWindow``
  drops is abandoned on the spot instead of retried.  Honest retry chains
  straddle short loss windows and recover once loss subsides; the mutant
  leaves the lossy node permanently short of floods, it stalls below the
  target height, and the loss-budget liveness invariant fires once the
  window's bounded allowance expires.  This is the mutant the
  degradation-aware allowance exists to catch: a blanket loss-window
  exemption would have pardoned it forever.
"""

import dataclasses

from repro.core.eesmr.replica import EesmrReplica
from repro.session.builder import MediumStage, ReplicaStage, SessionBuilder


class ForkOnEquivocation(EesmrReplica):
    """Deliberately broken: commits an equivocated round immediately,
    choosing between the twins by pid parity — even and odd nodes commit
    conflicting blocks at the same height."""

    def _handle_equivocation(self, view, first, second):
        self.commit_timers.cancel_all()
        twins = sorted((first.data, second.data), key=lambda block: block.block_hash)
        choice = twins[0] if self.pid % 2 == 0 else twins[1]
        self.store_block(choice)
        self.commit_chain(choice)


class CommitRuleMutantBuilder(SessionBuilder):
    """Mutant A: every *honest* EESMR node runs the broken commit rule.

    Byzantine substitutions from the fault schedule are left intact — the
    schedule still needs an ``EquivocateAt`` to produce the twins the
    broken rule mis-commits.
    """

    def _eesmr_class_for(self, pid):
        cls, kwargs = super()._eesmr_class_for(pid)
        if cls is EesmrReplica:
            return ForkOnEquivocation, kwargs
        return cls, kwargs


class LeakyRelayMutantBuilder(SessionBuilder):
    """Mutant B: relay denials are never popped — window heals leak."""

    def build_medium_stage(self) -> MediumStage:
        stage = super().build_medium_stage()
        stage.network.allow_relay = lambda pid: None
        return stage


class RetransmissionGiveUpMutantBuilder(SessionBuilder):
    """Mutant D: the reliable sublayer never retries — drops are final.

    Replacing the network's :class:`~repro.recovery.reliable.ReliabilityPolicy`
    with a zero retry budget makes every impairment drop take the give-up
    path immediately, exactly the failure mode a silently-exhausted retry
    configuration would produce in deployment.
    """

    def build_medium_stage(self) -> MediumStage:
        stage = super().build_medium_stage()
        stage.network.reliability = dataclasses.replace(
            stage.network.reliability, max_retries=0
        )
        return stage


class DroppedCatchUpQcMutantBuilder(SessionBuilder):
    """Mutant C: sync responders drop the final catch-up certificate.

    Per-instance ``sync_serve_certificates = False`` shadows the class
    attribute, so every ``SYNC_RESPONSE`` ships its block suffix bare.
    Protocols with ``sync_requires_certificate`` never adopt an
    uncertified suffix, so their recovering nodes retry to exhaustion and
    give up past the catch-up grace window.
    """

    def build_replica_stage(self) -> ReplicaStage:
        stage = super().build_replica_stage()
        for replica in stage.replicas.values():
            replica.sync_serve_certificates = False
        return stage
