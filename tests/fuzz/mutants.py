"""Planted bugs for the fuzzer meta-tests.

A fuzzer that never finds anything proves nothing — these builders plant
two deliberate, realistic bugs for `test_planted_mutants.py` to hunt.
Each is a :class:`~repro.session.builder.SessionBuilder` subclass that the
:class:`~repro.fuzz.detect.Detector` uses for every run (its
``builder_factory`` hook), so the mutation applies to detection *and* to
every shrink re-verification — the shrinker chases the planted bug
through the same broken build.

* **Mutant A (commit rule)** — honest EESMR replicas are replaced by
  :class:`ForkOnEquivocation`, which reacts to an equivocation proof by
  *committing* one of the twins (chosen by pid parity) instead of blaming.
  Any schedule containing an ``EquivocateAt`` forks the cluster — an
  agreement violation.  The same mutation style as the PR 1 forking-mutant
  meta-test, now found by search instead of by hand.
* **Mutant B (relay restore)** — the network's ``allow_relay`` is made a
  no-op, so every ``RelayDropWindow`` heal leaks its relay denial: windows
  accumulate permanent non-relaying nodes.  Enough windows on distinct
  ring neighbours eventually disconnect a correct node — a liveness
  violation.  This is exactly the class of bug the refcounted
  deny/allow-relay machinery exists to prevent (the PR 3
  composition-window regressions).
"""

from repro.core.eesmr.replica import EesmrReplica
from repro.session.builder import MediumStage, SessionBuilder


class ForkOnEquivocation(EesmrReplica):
    """Deliberately broken: commits an equivocated round immediately,
    choosing between the twins by pid parity — even and odd nodes commit
    conflicting blocks at the same height."""

    def _handle_equivocation(self, view, first, second):
        self.commit_timers.cancel_all()
        twins = sorted((first.data, second.data), key=lambda block: block.block_hash)
        choice = twins[0] if self.pid % 2 == 0 else twins[1]
        self.store_block(choice)
        self.commit_chain(choice)


class CommitRuleMutantBuilder(SessionBuilder):
    """Mutant A: every *honest* EESMR node runs the broken commit rule.

    Byzantine substitutions from the fault schedule are left intact — the
    schedule still needs an ``EquivocateAt`` to produce the twins the
    broken rule mis-commits.
    """

    def _eesmr_class_for(self, pid):
        cls, kwargs = super()._eesmr_class_for(pid)
        if cls is EesmrReplica:
            return ForkOnEquivocation, kwargs
        return cls, kwargs


class LeakyRelayMutantBuilder(SessionBuilder):
    """Mutant B: relay denials are never popped — window heals leak."""

    def build_medium_stage(self) -> MediumStage:
        stage = super().build_medium_stage()
        stage.network.allow_relay = lambda pid: None
        return stage
