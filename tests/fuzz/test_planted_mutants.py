"""Meta-tests: the fuzzer must *find* deliberately planted bugs.

Mirrors the PR 1 forking-mutant meta-test, but the bug is found by search
instead of by a hand-written scenario: each test plants a mutation (via
the detector's ``builder_factory`` hook), runs the closed loop under a
fixed seed budget, and asserts that

* a finding appears within the budget,
* the shrunk reproducer is minimal (≤ 3 atoms, and only atoms of the
  kind that actually triggers the bug survive shrinking), and
* the honest control — the *same* config and seed with the stock
  builder — stays clean, so the finding is attributable to the mutation.

Seeds and budgets are fixed: the whole loop is deterministic, so these
are exact regression tests, not statistical ones.
"""

import pytest
from mutants import (
    CommitRuleMutantBuilder,
    DroppedCatchUpQcMutantBuilder,
    LeakyRelayMutantBuilder,
    RetransmissionGiveUpMutantBuilder,
)

from repro.fuzz import FuzzConfig, Fuzzer

#: Budget the ISSUE-style acceptance is phrased in: the fuzzer must find
#: each planted bug within this many generated schedules.
SEED_BUDGET = 10

#: eesmr-only keeps each iteration to a single protocol run — the mutants
#: are both planted in the EESMR build path.
COMMIT_RULE_CONFIG = FuzzConfig(protocols=("eesmr",))
#: Re-pinned whenever new kinds join the generator's default draw set (the
#: draw stream shifts) — last for the LossWindow/DuplicateWindow/JitterWindow
#: impairment atoms; seed 7 draws an equivocation within budget.
COMMIT_RULE_SEED = 7

#: The relay-leak only compounds across drop windows, so the hunt draws
#: from that one atom kind (the generator's ``kinds`` knob exists for
#: exactly this sort of targeted campaign).
LEAKY_RELAY_CONFIG = FuzzConfig(protocols=("eesmr",), kinds=("RelayDropWindow",))
LEAKY_RELAY_SEED = 1

#: The dropped-QC mutant only bites certificate-requiring protocols, and
#: the hunt draws crash-recover windows (partitions are excluded because a
#: leader partition forks stock Sync HotStuff — see the promoted
#: ``leader-partition-fork`` differential cell — which would dirty the
#: honest control).
DROPPED_QC_CONFIG = FuzzConfig(protocols=("sync-hotstuff",), kinds=("CrashRecoverWindow",))
DROPPED_QC_SEED = 0

#: The give-up mutant only bites under dropped deliveries, so the hunt
#: draws loss windows; seed 2 lands a window the mutant cannot survive
#: (an early drop the victim never gets back) within the budget.
GIVEUP_CONFIG = FuzzConfig(protocols=("eesmr",), kinds=("LossWindow",))
GIVEUP_SEED = 2


def test_commit_rule_mutant_is_found_and_shrunk():
    fuzzer = Fuzzer(COMMIT_RULE_CONFIG, seed=COMMIT_RULE_SEED, builder_factory=CommitRuleMutantBuilder)
    report = fuzzer.run(SEED_BUDGET)
    assert report.findings, "the broken commit rule must be found within the seed budget"
    shrunk = report.findings[0].shrunk
    atoms = shrunk.schedule.describe()
    assert len(atoms) <= 3
    # Shrinking strips everything but the trigger: the twins the broken
    # rule mis-commits come from an equivocating leader.
    assert {atom["kind"] for atom in atoms} == {"EquivocateAt"}
    assert ("eesmr", "agreement") in shrunk.failure_key


def test_leaky_relay_mutant_is_found_and_shrunk():
    fuzzer = Fuzzer(LEAKY_RELAY_CONFIG, seed=LEAKY_RELAY_SEED, builder_factory=LeakyRelayMutantBuilder)
    report = fuzzer.run(SEED_BUDGET)
    assert report.findings, "the leaked relay denial must be found within the seed budget"
    shrunk = report.findings[0].shrunk
    atoms = shrunk.schedule.describe()
    assert len(atoms) <= 3
    assert {atom["kind"] for atom in atoms} == {"RelayDropWindow"}
    # One leaked denial keeps the ring connected (k = 2 tolerates it);
    # the failure needs windows on at least two distinct nodes.
    assert len({atom["node"] for atom in atoms}) >= 2
    assert ("eesmr", "liveness") in shrunk.failure_key


@pytest.mark.recovery
def test_dropped_catch_up_qc_mutant_is_found_and_shrunk():
    """A responder that drops the final catch-up QC strands every
    recovering Sync HotStuff node past its grace window — the
    window-scoped liveness invariant must catch it within the budget."""
    fuzzer = Fuzzer(
        DROPPED_QC_CONFIG, seed=DROPPED_QC_SEED, builder_factory=DroppedCatchUpQcMutantBuilder
    )
    report = fuzzer.run(SEED_BUDGET)
    assert report.findings, "the dropped catch-up QC must be found within the seed budget"
    shrunk = report.findings[0].shrunk
    atoms = shrunk.schedule.describe()
    assert len(atoms) <= 3
    assert {atom["kind"] for atom in atoms} == {"CrashRecoverWindow"}
    assert ("sync-hotstuff", "liveness") in shrunk.failure_key


def test_retransmission_giveup_mutant_is_found_and_shrunk():
    """A reliable sublayer whose retry budget silently reads zero strands
    the lossy node — the loss-budget liveness invariant (a bounded
    allowance, not a blanket loss-window exemption) must catch it."""
    fuzzer = Fuzzer(
        GIVEUP_CONFIG, seed=GIVEUP_SEED, builder_factory=RetransmissionGiveUpMutantBuilder
    )
    report = fuzzer.run(SEED_BUDGET)
    assert report.findings, "the zeroed retry budget must be found within the seed budget"
    shrunk = report.findings[0].shrunk
    atoms = shrunk.schedule.describe()
    assert len(atoms) <= 3
    assert {atom["kind"] for atom in atoms} == {"LossWindow"}
    assert ("eesmr", "loss-budget-liveness") in shrunk.failure_key


def test_honest_controls_are_clean():
    """The stock builder under the exact same configs and seeds finds
    nothing — the meta-tests above fire because of the mutations."""
    for config, seed in (
        (COMMIT_RULE_CONFIG, COMMIT_RULE_SEED),
        (LEAKY_RELAY_CONFIG, LEAKY_RELAY_SEED),
        (DROPPED_QC_CONFIG, DROPPED_QC_SEED),
        (GIVEUP_CONFIG, GIVEUP_SEED),
    ):
        report = Fuzzer(config, seed=seed).run(SEED_BUDGET)
        assert not report.failed, [f.detection.describe() for f in report.findings]
