"""Meta-tests: the fuzzer must *find* deliberately planted bugs.

Mirrors the PR 1 forking-mutant meta-test, but the bug is found by search
instead of by a hand-written scenario: each test plants a mutation (via
the detector's ``builder_factory`` hook), runs the closed loop under a
fixed seed budget, and asserts that

* a finding appears within the budget,
* the shrunk reproducer is minimal (≤ 3 atoms, and only atoms of the
  kind that actually triggers the bug survive shrinking), and
* the honest control — the *same* config and seed with the stock
  builder — stays clean, so the finding is attributable to the mutation.

Seeds and budgets are fixed: the whole loop is deterministic, so these
are exact regression tests, not statistical ones.
"""

from mutants import CommitRuleMutantBuilder, LeakyRelayMutantBuilder

from repro.fuzz import FuzzConfig, Fuzzer

#: Budget the ISSUE-style acceptance is phrased in: the fuzzer must find
#: each planted bug within this many generated schedules.
SEED_BUDGET = 10

#: eesmr-only keeps each iteration to a single protocol run — the mutants
#: are both planted in the EESMR build path.
COMMIT_RULE_CONFIG = FuzzConfig(protocols=("eesmr",))
COMMIT_RULE_SEED = 2

#: The relay-leak only compounds across drop windows, so the hunt draws
#: from that one atom kind (the generator's ``kinds`` knob exists for
#: exactly this sort of targeted campaign).
LEAKY_RELAY_CONFIG = FuzzConfig(protocols=("eesmr",), kinds=("RelayDropWindow",))
LEAKY_RELAY_SEED = 1


def test_commit_rule_mutant_is_found_and_shrunk():
    fuzzer = Fuzzer(COMMIT_RULE_CONFIG, seed=COMMIT_RULE_SEED, builder_factory=CommitRuleMutantBuilder)
    report = fuzzer.run(SEED_BUDGET)
    assert report.findings, "the broken commit rule must be found within the seed budget"
    shrunk = report.findings[0].shrunk
    atoms = shrunk.schedule.describe()
    assert len(atoms) <= 3
    # Shrinking strips everything but the trigger: the twins the broken
    # rule mis-commits come from an equivocating leader.
    assert {atom["kind"] for atom in atoms} == {"EquivocateAt"}
    assert ("eesmr", "agreement") in shrunk.failure_key


def test_leaky_relay_mutant_is_found_and_shrunk():
    fuzzer = Fuzzer(LEAKY_RELAY_CONFIG, seed=LEAKY_RELAY_SEED, builder_factory=LeakyRelayMutantBuilder)
    report = fuzzer.run(SEED_BUDGET)
    assert report.findings, "the leaked relay denial must be found within the seed budget"
    shrunk = report.findings[0].shrunk
    atoms = shrunk.schedule.describe()
    assert len(atoms) <= 3
    assert {atom["kind"] for atom in atoms} == {"RelayDropWindow"}
    # One leaked denial keeps the ring connected (k = 2 tolerates it);
    # the failure needs windows on at least two distinct nodes.
    assert len({atom["node"] for atom in atoms}) >= 2
    assert ("eesmr", "liveness") in shrunk.failure_key


def test_honest_controls_are_clean():
    """The stock builder under the exact same configs and seeds finds
    nothing — the meta-tests above fire because of the mutations."""
    for config, seed in (
        (COMMIT_RULE_CONFIG, COMMIT_RULE_SEED),
        (LEAKY_RELAY_CONFIG, LEAKY_RELAY_SEED),
    ):
        report = Fuzzer(config, seed=seed).run(SEED_BUDGET)
        assert not report.failed, [f.detection.describe() for f in report.findings]
