"""Shrinker unit tests against a stub detector.

The stub judges schedules with a plain predicate (no protocol runs), so
these tests pin the shrinker's *mechanics* — which pass fires, what is
kept, how the failure key narrows — deterministically and fast.  The
planted-mutant tests exercise the same shrinker against the real
detector.
"""

import pytest

from repro.fuzz import Detection, ProtocolVerdict, Shrinker
from repro.fuzz.generator import TIME_QUANTUM
from repro.testkit.faults import (
    CrashAt,
    CrashRecoverWindow,
    EquivocateAt,
    FaultSchedule,
    LeaderFollowingCrash,
    PartitionWindow,
    RelayDropWindow,
)
from repro.testkit.invariants import InvariantReport


class StubDetector:
    """Fails a schedule iff ``predicate(schedule)`` holds."""

    def __init__(self, predicate, key=("eesmr", "agreement")):
        self.predicate = predicate
        self.key = key
        self.runs = 0

    def detect(self, schedule):
        self.runs += 1
        violations = []
        if self.predicate(schedule):
            violations = [InvariantReport(self.key[1], False, "stub")]
        return Detection(
            schedule=schedule, verdicts=[ProtocolVerdict(self.key[0], violations=violations)]
        )


def has_kind(kind):
    return lambda schedule: any(type(a).__name__ == kind for a in schedule.faults)


def test_refuses_to_shrink_a_passing_schedule():
    shrinker = Shrinker(StubDetector(lambda s: False))
    with pytest.raises(ValueError, match="does not fail"):
        shrinker.shrink(FaultSchedule((CrashAt(1, time=1.0),)))


def test_drop_atom_pass_removes_everything_irrelevant():
    schedule = FaultSchedule(
        (CrashAt(1, time=1.0), EquivocateAt(0, round=2), CrashAt(3, time=4.0))
    )
    result = Shrinker(StubDetector(has_kind("EquivocateAt"))).shrink(schedule)
    assert [type(a).__name__ for a in result.schedule.faults] == ["EquivocateAt"]
    assert result.failure_key == frozenset({("eesmr", "agreement")})


def test_narrow_window_pass_halves_down_to_the_quantum():
    """A failure that only needs *a* window (any width) shrinks to the
    minimum window width, on the grid."""
    schedule = FaultSchedule((RelayDropWindow(2, 0.0, 8.0),))
    result = Shrinker(StubDetector(has_kind("RelayDropWindow"))).shrink(schedule)
    (atom,) = result.schedule.faults
    start, end = atom.impairment()
    assert end - start == pytest.approx(TIME_QUANTUM)
    assert (start / TIME_QUANTUM) == int(start / TIME_QUANTUM)


def test_narrowing_respects_a_predicate_that_needs_the_late_half():
    """If the bug needs the window to cover t = 7.5, narrowing keeps
    containing it — the shrinker never accepts a candidate that stops
    failing."""

    def needs_late(schedule):
        for atom in schedule.faults:
            if isinstance(atom, PartitionWindow) and atom.start <= 7.5 < atom.heal:
                return True
        return False

    schedule = FaultSchedule((PartitionWindow(0, 0.0, 8.0),))
    result = Shrinker(StubDetector(needs_late)).shrink(schedule)
    (atom,) = result.schedule.faults
    assert atom.start <= 7.5 < atom.heal
    assert atom.heal - atom.start < 8.0  # it did narrow


def test_victim_pass_steps_adaptive_budgets_to_one():
    schedule = FaultSchedule((LeaderFollowingCrash(budget=2, start=1.0, interval=1.0),))
    result = Shrinker(StubDetector(has_kind("LeaderFollowingCrash"))).shrink(schedule)
    (atom,) = result.schedule.faults
    assert atom.budget == 1


def test_shrink_is_deterministic():
    schedule = FaultSchedule(
        (RelayDropWindow(1, 0.0, 8.0), CrashAt(3, time=2.0), PartitionWindow(4, 1.0, 6.0))
    )
    predicate = has_kind("RelayDropWindow")
    first = Shrinker(StubDetector(predicate)).shrink(schedule)
    second = Shrinker(StubDetector(predicate)).shrink(schedule)
    assert first.describe() == second.describe()


def test_evaluation_budget_is_respected():
    schedule = FaultSchedule(
        (RelayDropWindow(1, 0.0, 8.0), PartitionWindow(4, 0.0, 8.0), CrashAt(3, time=2.0))
    )
    detector = StubDetector(lambda s: True)
    result = Shrinker(detector, max_evaluations=5).shrink(schedule)
    assert result.evaluations <= 5
    # One detect() per evaluation plus the initial detection shrink() ran.
    assert detector.runs == result.evaluations + 1


def test_rejects_candidates_whose_failure_is_a_different_bug():
    """Dropping the window makes the stub fail with a *different* key;
    the shrinker must not hop onto that other bug."""

    class TwoBugDetector:
        def detect(self, schedule):
            if has_kind("RelayDropWindow")(schedule):
                verdicts = [
                    ProtocolVerdict(
                        "eesmr", violations=[InvariantReport("liveness", False, "w")]
                    )
                ]
            else:
                verdicts = [
                    ProtocolVerdict(
                        "optsync", violations=[InvariantReport("agreement", False, "o")]
                    )
                ]
            return Detection(schedule=schedule, verdicts=verdicts)

    schedule = FaultSchedule((RelayDropWindow(1, 0.0, 4.0), CrashAt(3, time=2.0)))
    result = Shrinker(TwoBugDetector()).shrink(schedule)
    # The window (the original bug's trigger) survives; the crash is gone.
    assert [type(a).__name__ for a in result.schedule.faults] == ["RelayDropWindow"]
    assert result.failure_key == frozenset({("eesmr", "liveness")})


def test_narrow_pass_handles_crash_recover_windows():
    """The narrowing pass treats a crash-recover window like any other
    impairment window: halves it down to the quantum, on the grid."""
    schedule = FaultSchedule((CrashRecoverWindow(2, 0.0, 8.0),))
    result = Shrinker(StubDetector(has_kind("CrashRecoverWindow"))).shrink(schedule)
    (atom,) = result.schedule.faults
    start, heal = atom.impairment()
    assert heal - start == pytest.approx(TIME_QUANTUM)
    assert (start / TIME_QUANTUM) == int(start / TIME_QUANTUM)
