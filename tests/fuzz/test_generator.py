"""Generator tests: determinism, and the Lemma A.5 feasibility gate.

The rejection tests do not trust the generator's own ``feasibility()``
verdict — they re-derive the conditions independently (quorum bound from
``max_byzantine``, strong connectivity from the topology object) for
every emitted schedule, so a gate that silently stopped checking would be
caught here.
"""

import pytest

from repro.eval.runner import ProtocolRunner
from repro.fuzz import FuzzConfig, ScheduleGenerator
from repro.fuzz.generator import TIME_QUANTUM
from repro.testkit.faults import FaultSchedule, LeaderFollowingCrash


def describe_all(generator, iterations):
    return [schedule.describe() for schedule in generator.schedules(iterations)]


# ------------------------------------------------------------------ determinism
def test_same_seed_same_schedule_stream():
    config = FuzzConfig()
    first = describe_all(ScheduleGenerator(config, seed=7), 12)
    second = describe_all(ScheduleGenerator(config, seed=7), 12)
    assert first == second


def test_different_seeds_diverge():
    config = FuzzConfig()
    first = describe_all(ScheduleGenerator(config, seed=7), 12)
    second = describe_all(ScheduleGenerator(config, seed=8), 12)
    assert first != second


def test_times_land_on_the_quantum_grid():
    for schedule in ScheduleGenerator(FuzzConfig(), seed=3).schedules(15):
        for atom in schedule.describe():
            for key in ("time", "start", "end", "heal", "interval"):
                if key in atom:
                    quanta = atom[key] / TIME_QUANTUM
                    assert quanta == int(quanta), (atom, key)


# ------------------------------------------------------------------ feasibility
def test_emitted_schedules_satisfy_lemma_a5_independently():
    """Every emitted schedule passes an *independent* re-derivation of the
    feasibility conditions: 2f < n over the worst-case Byzantine count
    (adaptive budgets included), and correct-node strong connectivity
    under every concurrently impaired set."""
    config = FuzzConfig(kinds=("RelayDropWindow", "PartitionWindow", "SilentFrom", "LeaderFollowingCrash"))
    generator = ScheduleGenerator(config, seed=11)
    runner = ProtocolRunner()
    for schedule in generator.schedules(20):
        worst = schedule.max_byzantine()
        assert 2 * worst < config.n
        topology = runner.build_topology(config.spec_for(schedule, "eesmr"))
        bound = topology.max_faults_necessary_condition()
        for impaired in schedule.concurrent_impairment_sets():
            assert topology.is_strongly_connected(exclude=impaired), impaired
        dynamic = schedule.dynamic_budget()
        if dynamic:
            static_worst = max(
                (len(s) for s in schedule.concurrent_impairment_sets()), default=0
            )
            assert dynamic + static_worst <= bound


def test_adaptive_budgets_are_charged_against_the_quorum_bound():
    """With n = 4 a budget-2 adaptive atom would mean f = 2 and 2f >= n,
    so the generator must reject those draws and only emit budget-1
    atoms — the budget accounting half of the Lemma A.5 gate."""
    config = FuzzConfig(n=4, kinds=("LeaderFollowingCrash",), max_adaptive_budget=2)
    generator = ScheduleGenerator(config, seed=5)
    schedules = list(generator.schedules(15))
    for schedule in schedules:
        for atom in schedule.faults:
            assert isinstance(atom, LeaderFollowingCrash)
            assert atom.budget == 1
    assert generator.rejected > 0, "some budget-2 draws must have been rejected"


def test_rejection_reasons_name_the_lemma():
    """The gate's verdict for an over-budget schedule cites the bound."""
    config = FuzzConfig(n=4)
    generator = ScheduleGenerator(config, seed=0)
    reason = generator.feasibility(
        FaultSchedule((LeaderFollowingCrash(budget=2, start=0.0, interval=1.0),))
    )
    assert reason is not None
    assert "2f < n" in reason or "Lemma A.5" in reason


def test_generator_gives_up_after_max_attempts():
    """A config whose draws are (deterministically) infeasible on the
    first attempt raises rather than spinning: seed 1's first draw under
    n = 4 is a budget-2 adaptive atom, and max_attempts = 1 forbids a
    redraw."""
    config = FuzzConfig(
        n=4, kinds=("LeaderFollowingCrash",), max_adaptive_budget=2, max_attempts=1
    )
    generator = ScheduleGenerator(config, seed=1)
    with pytest.raises(RuntimeError, match="no feasible schedule"):
        generator.generate()
    assert generator.rejected == 1


# ------------------------------------------------------------------ config
def test_config_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="unknown fault kinds"):
        FuzzConfig(kinds=("CrashAt", "NotAFault"))


def test_spec_provisions_f_for_the_adaptive_budget():
    config = FuzzConfig(n=7)
    schedule = FaultSchedule((LeaderFollowingCrash(budget=2, start=0.0, interval=1.0),))
    assert config.spec_for(schedule, "eesmr").f == 2
    assert config.spec_for(None, "eesmr").f == 1


# ------------------------------------------------------------------ window grid
WINDOWED_KINDS = ("RelayDropWindow", "PartitionWindow", "CrashRecoverWindow")


@pytest.mark.parametrize("kind", WINDOWED_KINDS)
def test_generated_windows_are_never_degenerate(kind):
    """Regression for the zero-length-window rejection: every window the
    generator emits — for each windowed atom kind separately — spans at
    least one quantum, so construction-time validation never fires on a
    generated schedule."""
    generator = ScheduleGenerator(FuzzConfig(kinds=(kind,)), seed=4)
    atoms = [atom for s in generator.schedules(25) for atom in s.describe()]
    assert atoms, "the kinds-restricted generator must emit something"
    for atom in atoms:
        assert atom["kind"] == kind
        start, end = atom["start"], atom.get("end", atom.get("heal"))
        assert end - start >= TIME_QUANTUM - 1e-9, atom


def test_default_kinds_include_crash_recover_windows():
    """CrashRecoverWindow is part of the default fuzzing grammar (the
    nightly core leg runs with no ``--kinds`` filter)."""
    from repro.fuzz.generator import DEFAULT_KINDS

    assert "CrashRecoverWindow" in DEFAULT_KINDS
    kinds = {
        atom["kind"]
        for s in ScheduleGenerator(FuzzConfig(), seed=2).schedules(60)
        for atom in s.describe()
    }
    assert "CrashRecoverWindow" in kinds
