"""Session lifecycle: step/pause/resume determinism and the runner shim.

The redesign's core contract: however a run is *driven* — one shot,
event by event, in time slices, or paused on a predicate and resumed —
the resulting trace is byte-for-byte identical.  ``run_protocol`` stays a
thin shim over a session, so the golden fingerprints hold through every
path here.
"""

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner, run_protocol
from repro.session import Session, SessionBuilder, TopologyStage
from repro.session.builder import build_topology, compute_delta
from repro.sim.scheduler import SimulationError
from repro.testkit.trace import TraceRecorder


def small_spec(**kwargs) -> DeploymentSpec:
    kwargs.setdefault("protocol", "eesmr")
    return DeploymentSpec(n=5, f=1, k=2, target_height=3, seed=17, **kwargs)


def oneshot_fingerprint(spec: DeploymentSpec) -> str:
    return ProtocolRunner(recorder=TraceRecorder()).run(spec).trace.fingerprint()


@pytest.mark.parametrize("protocol", ["eesmr", "sync-hotstuff", "optsync", "trusted-baseline"])
def test_single_stepped_run_matches_oneshot_fingerprint(protocol):
    spec = small_spec(protocol=protocol)
    reference = oneshot_fingerprint(spec)

    session = Session.from_spec(small_spec(protocol=protocol), recorder=TraceRecorder())
    steps = 0
    while session.step():
        steps += 1
    result = session.finish()
    assert steps > 0
    assert result.trace.fingerprint() == reference
    assert session.sim.executed_events == steps


def test_time_sliced_run_matches_oneshot_fingerprint():
    spec = small_spec()
    reference = oneshot_fingerprint(spec)

    session = Session.from_spec(small_spec(), recorder=TraceRecorder())
    # Resume from arbitrary pause points: 1-unit slices, then quiescence.
    for _ in range(5):
        session.run_until(deadline=session.now + 1.0)
    result = session.run().finish()
    assert result.trace.fingerprint() == reference


def test_pause_on_predicate_inspect_resume():
    spec = small_spec()
    reference = oneshot_fingerprint(spec)

    session = Session.from_spec(small_spec(), recorder=TraceRecorder())
    session.run_until(pred=lambda s: max(r.committed_height for r in s.replicas.values()) >= 1)

    snapshot = session.inspect()
    assert max(snapshot["committed_heights"].values()) >= 1
    # Paused mid-run: the chain is not finished and the queue is live.
    assert snapshot["pending_events"] > 0
    assert min(snapshot["committed_heights"].values()) < spec.target_height
    assert snapshot["total_joules"] > 0

    result = session.run().finish()
    assert result.trace.fingerprint() == reference
    assert result.min_committed_height == spec.target_height


def test_run_until_requires_deadline_or_predicate():
    session = Session.from_spec(small_spec())
    with pytest.raises(ValueError):
        session.run_until()


def test_run_protocol_is_a_session_shim():
    spec = small_spec()
    via_shim = run_protocol(spec)
    via_session = Session.from_spec(small_spec()).run().finish()
    assert via_shim.committed_heights == via_session.committed_heights
    assert via_shim.sim_time == via_session.sim_time
    assert via_shim.energy.correct_total_joules == via_session.energy.correct_total_joules


def test_finish_is_idempotent():
    session = Session.from_spec(small_spec())
    result = session.run().finish()
    assert session.finish() is result
    assert session.result is result


def test_start_is_idempotent_and_implicit():
    session = Session.from_spec(small_spec())
    session.start()
    before = session.sim.pending_events
    session.start()
    assert session.sim.pending_events == before
    assert session.started


def test_session_exposes_live_substrates():
    session = Session.from_spec(small_spec())
    assert set(session.replicas) == set(range(5))
    assert session.config.n == 5
    assert session.topology.nodes == list(range(5))
    assert session.delta == compute_delta(session.spec, session.topology)
    assert session.control is None and session.control_id is None


def test_trusted_baseline_session_has_control_node():
    session = Session.from_spec(small_spec(protocol="trusted-baseline"))
    assert session.control is not None
    assert session.control_id == 5
    result = session.run().finish()
    assert result.safety.consistent


def test_max_events_budget_enforced():
    session = Session.from_spec(small_spec(), max_events=10)
    with pytest.raises(SimulationError):
        session.run()


# ---------------------------------------------------------- stage overrides
def test_stage_override_by_subclass():
    class FullyConnectedBuilder(SessionBuilder):
        def build_topology_stage(self):
            spec = self.spec
            topology = build_topology(
                DeploymentSpec(
                    protocol=spec.protocol, n=spec.n, f=spec.f, k=spec.k,
                    topology="fully-connected", seed=spec.seed,
                )
            )
            self.topology_stage = TopologyStage(topology, compute_delta(spec, topology))
            return self.topology_stage

    session = FullyConnectedBuilder(small_spec()).build()
    # Every node k-casts to all others in a fully connected hypergraph.
    assert session.topology.diameter() == 1
    result = session.run().finish()
    assert result.safety.consistent
    assert result.min_committed_height == 3


def test_stage_override_by_preassigned_artifact():
    spec = small_spec()
    builder = SessionBuilder(spec)
    topology = build_topology(spec)
    builder.topology_stage = TopologyStage(topology, delta=99.0)
    session = builder.build()
    assert session.delta == 99.0
    assert session.config.delta == 99.0


def test_stages_are_individually_runnable_and_cached():
    builder = SessionBuilder(small_spec())
    top = builder.build_topology_stage()
    assert builder.topology_stage is top
    medium = builder.build_medium_stage()
    assert medium.network.hypergraph is top.topology
    session = builder.build()
    assert session.topology is top.topology
    assert session.network is medium.network
