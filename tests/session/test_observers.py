"""The observer protocol: ordering, hook coverage, and the adapters.

Observers registered on a session fire in registration order, see every
commit / view change / fault window / event exactly once, and cannot
perturb the run (fingerprints are pinned with and without observers).
"""

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.session import (
    CallbackObserver,
    EnergyTimelineObserver,
    ObserverBus,
    PerfObserver,
    Session,
    SessionObserver,
)
from repro.testkit import faults
from repro.testkit.trace import TraceRecorder


def spec_with(**kwargs) -> DeploymentSpec:
    kwargs.setdefault("protocol", "eesmr")
    return DeploymentSpec(n=5, f=1, k=2, target_height=3, seed=17, **kwargs)


class RecordingObserver(SessionObserver):
    """Records every hook invocation as (hook, payload) tuples."""

    def __init__(self, name: str, journal: list) -> None:
        self.name = name
        self.journal = journal

    def on_session_start(self, session) -> None:
        self.journal.append((self.name, "start", None))

    def on_event(self, time, label) -> None:
        self.journal.append((self.name, "event", (time, label)))

    def on_block_commit(self, pid, block, view, time) -> None:
        self.journal.append((self.name, "commit", (pid, block.height, view, time)))

    def on_view_change(self, pid, view, time) -> None:
        self.journal.append((self.name, "view-change", (pid, view, time)))

    def on_fault_window(self, node, kind, active, time) -> None:
        self.journal.append((self.name, "fault", (node, kind, active, time)))

    def on_session_end(self, session, result) -> None:
        self.journal.append((self.name, "end", None))


def test_observers_fire_in_registration_order():
    journal: list = []
    first = RecordingObserver("first", journal)
    second = RecordingObserver("second", journal)
    session = Session.from_spec(spec_with(), observers=[first, second])
    session.run().finish()
    assert journal, "observers never fired"
    # Per hook invocation, 'first' always precedes 'second' with an
    # identical payload.
    firsts = [(h, p) for n, h, p in journal if n == "first"]
    seconds = [(h, p) for n, h, p in journal if n == "second"]
    assert firsts == seconds
    assert journal[0] == ("first", "start", None)
    assert journal[1] == ("second", "start", None)
    assert journal[-1] == ("second", "end", None)


def test_block_commit_hook_counts_match_result():
    journal: list = []
    observer = RecordingObserver("o", journal)
    session = Session.from_spec(spec_with(), observers=[observer])
    result = session.run().finish()
    commits = [p for _, h, p in journal if h == "commit"]
    per_node = {}
    for pid, height, _view, _time in commits:
        per_node[pid] = per_node.get(pid, 0) + 1
    assert per_node == {
        pid: height for pid, height in result.committed_heights.items() if height
    }
    # Commit times are monotone per node and heights are sequential.
    for pid in per_node:
        heights = [h for p, h, _v, _t in commits if p == pid]
        assert heights == sorted(heights)


def test_view_change_hook_fires_on_leader_crash():
    journal: list = []
    observer = RecordingObserver("o", journal)
    session = Session.from_spec(
        spec_with(fault_schedule=faults.crash_at(0, time=0.0)), observers=[observer]
    )
    result = session.run().finish()
    view_changes = [p for _, h, p in journal if h == "view-change"]
    assert result.view_changes >= 1
    assert len(view_changes) >= result.view_changes
    assert all(view == 2 for _pid, view, _t in view_changes)


def test_fault_window_hook_sees_open_and_close_edges():
    journal: list = []
    observer = RecordingObserver("o", journal)
    session = Session.from_spec(
        spec_with(fault_schedule=faults.drop_window(4, start=1.0, end=8.0)),
        observers=[observer],
    )
    session.run().finish()
    edges = [p for _, h, p in journal if h == "fault"]
    assert (4, "relay-deny", True, 1.0) in edges
    assert (4, "relay-deny", False, 8.0) in edges


def test_event_hook_sees_every_traced_event():
    journal: list = []
    observer = RecordingObserver("o", journal)
    recorder = TraceRecorder()
    session = Session.from_spec(spec_with(), observers=[observer], recorder=recorder)
    result = session.run().finish()
    events = [p for _, h, p in journal if h == "event"]
    assert events == [tuple(e) for e in result.trace.events]


def test_observers_do_not_perturb_the_run():
    reference = (
        ProtocolRunner(recorder=TraceRecorder()).run(spec_with()).trace.fingerprint()
    )
    journal: list = []
    session = Session.from_spec(
        spec_with(),
        observers=[RecordingObserver("o", journal), PerfObserver(), EnergyTimelineObserver()],
        recorder=TraceRecorder(),
    )
    assert session.run().finish().trace.fingerprint() == reference


def test_callback_observer_and_bus_overrides():
    seen = []
    observer = CallbackObserver(on_view_change=lambda pid, view, t: seen.append((pid, view)))
    bus = ObserverBus([observer])
    assert bus.overrides("on_view_change")
    assert not bus.overrides("on_event")
    with pytest.raises(ValueError):
        CallbackObserver(on_teleport=lambda: None)

    session = Session.from_spec(
        spec_with(fault_schedule=faults.crash_at(0, time=0.0)), observers=[observer]
    )
    session.run().finish()
    assert seen and all(view == 2 for _pid, view in seen)


def test_unobserved_session_installs_no_hot_path_hooks():
    session = Session.from_spec(spec_with(), recorder=TraceRecorder())
    assert session.sim.event_observer is None
    assert session.network.fault_observer is None
    assert all(r.hooks is None for r in session.replicas.values())


def test_perf_observer_summary():
    perf = PerfObserver()
    session = Session.from_spec(spec_with(), observers=[perf])
    result = session.run().finish()
    summary = perf.summary()
    assert summary["events"] == session.sim.executed_events
    assert sum(summary["events_by_prefix"].values()) == summary["events"]
    assert summary["commits_by_node"] == {
        pid: h for pid, h in result.committed_heights.items() if h
    }


def test_energy_timeline_observer_is_monotone():
    energy = EnergyTimelineObserver()
    session = Session.from_spec(spec_with(), observers=[energy])
    result = session.run().finish()
    joules = [j for _, _, j in energy.samples]
    assert joules == sorted(joules)
    assert joules[0] == 0.0
    assert joules[-1] == pytest.approx(session.ledger.total_joules())
    assert energy.joules_between(0.0, result.sim_time) == pytest.approx(joules[-1])


def test_trace_recorder_is_an_observer():
    recorder = TraceRecorder()
    assert isinstance(recorder, SessionObserver)
    session = Session.from_spec(spec_with(), observers=[recorder])
    result = session.run().finish()
    assert result.trace is not None
    assert result.trace.committed_heights[1] == 3
