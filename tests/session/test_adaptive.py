"""The adaptive leader-following adversary, end to end.

The first mobile adversary: built on the session's steppable run control,
it crashes whichever node the rotation currently makes leader, follows
the resulting view change to the successor, and strikes again until its
budget is spent.  The victim set is decided mid-run and recorded back
onto the schedule, so Byzantine/liveness accounting, the invariant
battery and the scenario matrix all see the realised adversary.
"""

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.session import LeaderFollowingController, Session
from repro.testkit import faults
from repro.testkit.faults import LeaderFollowingCrash, leader_following_crash
from repro.testkit.scenarios import ADAPTIVE_FAULTS, FAULT_LIBRARY, ScenarioMatrix
from repro.testkit.trace import TraceRecorder


def adaptive_spec(budget: int = 1, protocol: str = "eesmr", **kwargs) -> DeploymentSpec:
    kwargs.setdefault("n", 7)
    kwargs.setdefault("f", 2)
    kwargs.setdefault("k", 3)
    kwargs.setdefault("topology", "fully-connected")
    kwargs.setdefault("target_height", 3)
    kwargs.setdefault("seed", 5)
    # Space proposals over virtual time so a mid-run strike interrupts
    # the workload instead of arriving after the chain is already out.
    kwargs.setdefault("block_interval", 2.0)
    return DeploymentSpec(
        protocol=protocol,
        fault_schedule=leader_following_crash(budget=budget, start=1.0, interval=1.0),
        **kwargs,
    )


def test_strikes_the_initial_leader_and_forces_a_view_change():
    spec = adaptive_spec(budget=1)
    result = ProtocolRunner().run(spec)
    assert spec.byzantine_nodes == (0,)
    assert result.view_changes >= 1
    assert result.safety.consistent
    assert result.min_committed_height == spec.target_height


def test_budget_two_follows_the_rotation_to_the_next_leader():
    spec = adaptive_spec(budget=2)
    result = ProtocolRunner().run(spec)
    # The adversary retargeted: first the view-1 leader, then whichever
    # node the rotation installed next.
    assert spec.byzantine_nodes == (0, 1)
    assert result.view_changes >= 2
    assert result.safety.consistent
    correct = [h for pid, h in result.committed_heights.items() if pid not in (0, 1)]
    assert all(h == spec.target_height for h in correct)


@pytest.mark.parametrize("protocol", ["sync-hotstuff", "optsync"])
def test_adaptive_adversary_works_against_baselines(protocol):
    spec = adaptive_spec(budget=1, protocol=protocol, block_interval=0.0)
    result = ProtocolRunner().run(spec)
    assert spec.byzantine_nodes == (0,)
    assert result.view_changes >= 1
    assert result.safety.consistent
    assert result.min_committed_height == spec.target_height


def test_adaptive_runs_are_deterministic():
    first = ProtocolRunner(recorder=TraceRecorder()).run(adaptive_spec(budget=2))
    second = ProtocolRunner(recorder=TraceRecorder()).run(adaptive_spec(budget=2))
    assert first.trace.fingerprint() == second.trace.fingerprint()


def test_victims_recorded_on_schedule_accounting():
    spec = adaptive_spec(budget=2)
    schedule = spec.fault_schedule
    assert schedule.byzantine_nodes() == ()
    assert schedule.max_byzantine() == 2
    assert schedule.dynamic_budget() == 2
    ProtocolRunner().run(spec)
    assert schedule.byzantine_nodes() == (0, 1)
    assert schedule.liveness_exempt_nodes() == (0, 1)
    atom = schedule.faults[0]
    assert atom.victims == (0, 1)
    # The declarative description stays static: re-deploying the schedule
    # elsewhere starts with a fresh victim set.
    description = schedule.describe()
    assert description == [
        {"kind": "LeaderFollowingCrash", "node": -1, "budget": 2, "start": 1.0, "interval": 1.0}
    ]
    rebuilt = faults.schedule_from_dict(description)
    assert rebuilt.byzantine_nodes() == ()


def test_rerunning_the_same_schedule_does_not_accumulate_victims():
    spec = adaptive_spec(budget=1)
    first = ProtocolRunner().run(spec)
    assert spec.byzantine_nodes == (0,)
    assert first.safety.consistent
    # Re-driving the *same* spec starts a fresh campaign: the controller
    # resets the atom's victims at session start, so a node honest in the
    # second run is never excluded from its safety/liveness accounting.
    second = ProtocolRunner().run(spec)
    assert spec.byzantine_nodes == (0,)
    assert second.safety.consistent
    assert second.committed_heights == first.committed_heights


def test_controller_retires_when_nothing_will_run_again():
    spec = adaptive_spec(budget=2, target_height=1, block_interval=0.0)
    session = Session.from_spec(spec)
    assert len(session.controllers) == 1
    assert isinstance(session.controllers[0], LeaderFollowingController)
    session.run().finish()
    controller = session.controllers[0]
    # The run quiesced before the budget was spent; the controller must
    # report done rather than spin the loop forever.
    assert controller.next_wakeup(session) is None


def test_atom_validation():
    with pytest.raises(ValueError):
        LeaderFollowingCrash(budget=0)
    with pytest.raises(ValueError):
        LeaderFollowingCrash(interval=0.0)
    with pytest.raises(ValueError):
        LeaderFollowingCrash(start=-1.0)


# ------------------------------------------------------------- matrix axis
def test_adaptive_fault_is_a_library_entry():
    assert set(ADAPTIVE_FAULTS) <= set(FAULT_LIBRARY)
    schedule = FAULT_LIBRARY["adaptive-leader-crash"](5)
    assert schedule.dynamic_budget() == 1


def test_adaptive_cell_runs_green_under_the_full_invariant_battery():
    matrix = ScenarioMatrix(
        protocols=("eesmr", "sync-hotstuff"),
        fault_names=("adaptive-leader-crash",),
        media=("ble",),
        block_interval=2.0,
    )
    report = matrix.run()
    assert report.cells_run == 2
    assert report.ok, report.failures()
    for outcome in report.outcomes:
        assert outcome.spec.fault_schedule.byzantine_nodes() == (0,)


def test_adaptive_cells_shard_byte_identically_and_pickle_victims():
    matrix = ScenarioMatrix(
        protocols=("eesmr", "sync-hotstuff"),
        fault_names=("adaptive-leader-crash",),
        media=("ble",),
        block_interval=2.0,
    )
    serial = matrix.run(parallel=1)
    parallel = matrix.run(parallel=2)
    assert serial.ok and parallel.ok
    assert [o.evidence.trace.fingerprint() for o in serial.outcomes] == [
        o.evidence.trace.fingerprint() for o in parallel.outcomes
    ]
    # Victims recorded in the worker travel back with the cell outcome.
    assert all(
        o.spec.fault_schedule.byzantine_nodes() == (0,) for o in parallel.outcomes
    )


def test_budget_two_adaptive_cell_infeasible_on_the_ring_but_not_dense():
    matrix = ScenarioMatrix(
        protocols=("eesmr",),
        fault_names=("adaptive-leader-crash-f2",),
        media=("ble",),
        topologies=("ring-kcast", "fully-connected"),
        n=7,
        k=2,
        block_interval=2.0,
    )
    report = matrix.run()
    assert report.cells_run == 1
    assert report.cells_skipped == 1
    skip = report.skipped[0]
    assert skip.cell.topology == "ring-kcast"
    assert "adaptive budget 2" in skip.reason
    assert report.ok, report.failures()
