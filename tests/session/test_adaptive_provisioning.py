"""Budget-aware provisioning: adaptive schedules must fit the spec's f.

An adaptive atom decides its victims mid-run, so a spec that provisions
``f`` below the schedule's worst-case Byzantine count (static targets
plus adaptive budgets) would run with quorum sizes sized for a smaller
adversary than the one actually deployed — and any resulting "violation"
would be a provisioning artifact, not a finding.  The session builder now
rejects such specs at the fault stage with an actionable message; the
fuzzer's ``FuzzConfig.spec_for`` provisions ``f = max_byzantine()`` so
generated schedules never trip it.
"""

import pytest

from repro.eval.runner import DeploymentSpec
from repro.session import Session
from repro.testkit.faults import CrashAt, leader_following_crash


def spec_with(budget: int, f: int) -> DeploymentSpec:
    return DeploymentSpec(
        protocol="eesmr",
        n=7,
        f=f,
        k=3,
        topology="fully-connected",
        target_height=3,
        seed=5,
        block_interval=2.0,
        fault_schedule=leader_following_crash(budget=budget, start=1.0, interval=1.0),
    )


def test_underprovisioned_adaptive_budget_is_rejected_at_build_time():
    with pytest.raises(ValueError, match="raise f to at least 2"):
        Session.from_spec(spec_with(budget=2, f=1))


def test_static_atoms_count_against_the_budget_too():
    schedule = leader_following_crash(budget=1, start=1.0, interval=1.0).add(
        CrashAt(6, time=2.0)
    )
    spec = DeploymentSpec(
        protocol="eesmr",
        n=7,
        f=1,
        k=3,
        topology="fully-connected",
        target_height=3,
        seed=5,
        block_interval=2.0,
        fault_schedule=schedule,
    )
    with pytest.raises(ValueError, match="adaptive\n?.*budget included"):
        Session.from_spec(spec)


def test_correctly_provisioned_adaptive_spec_builds_and_runs():
    session = Session.from_spec(spec_with(budget=2, f=2))
    result = session.run_to_quiescence().finish()
    assert result.safety.consistent
