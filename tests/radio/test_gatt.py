"""Unit tests for the BLE GATT unicast model and the Fig. 2b crossover."""

import pytest

from repro.radio.ble import BleAdvertisementKCast
from repro.radio.gatt import BleGattUnicast


def test_unicast_cost_has_connection_overhead():
    gatt = BleGattUnicast()
    zero = gatt.transmission_cost(0)
    assert zero.sender_energy_j == pytest.approx(gatt.connection_overhead_mj / 1000.0)


def test_unicast_cost_grows_with_payload():
    gatt = BleGattUnicast()
    assert gatt.send_energy_j(500) > gatt.send_energy_j(100)
    assert gatt.recv_energy_j(500) > gatt.recv_energy_j(100)


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        BleGattUnicast().transmission_cost(-1)


def test_fanout_energy_linear_in_d_out():
    """The paper: energy of emulating a k-cast with unicasts grows linearly with k."""
    gatt = BleGattUnicast()
    single = gatt.send_energy_j(200)
    assert gatt.fanout_send_energy_j(200, 7) == pytest.approx(7 * single)
    with pytest.raises(ValueError):
        gatt.fanout_send_energy_j(200, -1)


def test_fanout_duration_serialised():
    gatt = BleGattUnicast()
    assert gatt.fanout_duration_s(7) == pytest.approx(7 * gatt.connection_time_s)


def test_kcast_beats_seven_unicasts_for_small_payloads():
    """Fig. 2b: the k-cast wins at small payloads for k = 7."""
    kcast = BleAdvertisementKCast()
    gatt = BleGattUnicast()
    payload = 100
    assert kcast.send_energy_j(payload, k=7) < gatt.fanout_send_energy_j(payload, 7)


def test_unicast_advantage_improves_with_payload():
    """Fig. 2b: the unicast alternative catches up as the payload grows."""
    kcast = BleAdvertisementKCast()
    gatt = BleGattUnicast()

    def ratio(payload: int) -> float:
        return gatt.fanout_send_energy_j(payload, 7) / kcast.send_energy_j(payload, k=7)

    assert ratio(500) < ratio(100)


def test_single_unicast_always_cheaper_than_kcast7():
    kcast = BleAdvertisementKCast()
    gatt = BleGattUnicast()
    for payload in (100, 300, 500):
        assert gatt.send_energy_j(payload) < kcast.send_energy_j(payload, k=7)
