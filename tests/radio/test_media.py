"""Unit tests for the Table 1 media energy models."""

import pytest

from repro.radio.media import (
    TABLE1_MEDIA_ENERGY_MJ,
    LinearMediumModel,
    MediumUnicastAdapter,
    ble_link_medium,
    lte_medium,
    make_medium,
    wifi_medium,
)


def test_table1_has_four_measured_sizes():
    assert [row.message_size_bytes for row in TABLE1_MEDIA_ENERGY_MJ] == [256, 512, 1024, 2048]


def test_table1_values_match_paper_for_256_bytes():
    row = TABLE1_MEDIA_ENERGY_MJ[0]
    assert row.ble_send_mj == pytest.approx(0.73)
    assert row.lte_send_mj == pytest.approx(494.84)
    assert row.wifi_send_mj == pytest.approx(81.20)


def test_tabulated_model_reproduces_measured_points():
    wifi = wifi_medium()
    assert wifi.send_energy_j(512) == pytest.approx(153.98 / 1000.0)
    assert wifi.recv_energy_j(2048) == pytest.approx(423.58 / 1000.0)


def test_tabulated_model_interpolates_between_points():
    wifi = wifi_medium()
    mid = wifi.send_energy_j(768)
    assert 153.98 / 1000.0 < mid < 310.54 / 1000.0


def test_tabulated_model_extrapolates_above_table():
    lte = lte_medium()
    assert lte.send_energy_j(4096) > lte.send_energy_j(2048)


def test_tabulated_model_scales_below_table():
    ble = ble_link_medium()
    assert 0 < ble.send_energy_j(64) < ble.send_energy_j(256)


def test_media_ordering_ble_cheapest_lte_most_expensive():
    """The paper: BLE is ~2 orders below WiFi and ~3 below 4G."""
    ble, wifi, lte = ble_link_medium(), wifi_medium(), lte_medium()
    for size in (256, 1024, 2048):
        assert ble.send_energy_j(size) < wifi.send_energy_j(size) < lte.send_energy_j(size)
    assert lte.send_energy_j(1024) / ble.send_energy_j(1024) > 500


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        wifi_medium().send_energy_j(-1)


def test_linear_medium_model():
    model = LinearMediumModel("toy", 0.001, 0.00001, 0.0005, 0.000005)
    assert model.send_energy_j(100) == pytest.approx(0.002)
    assert model.recv_energy_j(100) == pytest.approx(0.001)
    assert model.roundtrip_energy_j(100) == pytest.approx(0.003)


def test_make_medium_registry():
    assert make_medium("wifi").name == "wifi"
    assert make_medium("4g-lte").name == "4g-lte"
    with pytest.raises(KeyError):
        make_medium("satellite")


def test_unicast_adapter_wraps_medium_costs():
    adapter = MediumUnicastAdapter(lte_medium())
    cost = adapter.transmission_cost(512)
    assert cost.sender_energy_j == pytest.approx(989.68 / 1000.0)
    assert cost.receiver_energy_j == pytest.approx(139.08 / 1000.0)
    assert cost.duration_s > 0
