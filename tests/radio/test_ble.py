"""Unit tests for the BLE advertisement k-cast model."""

import pytest

from repro.radio.ble import (
    BLE_ADVERTISEMENT_PAYLOAD_BYTES,
    BleAdvertisementKCast,
    fragments_for_payload,
)


def test_fragmentation_respects_gap_limit():
    assert BLE_ADVERTISEMENT_PAYLOAD_BYTES == 25
    assert fragments_for_payload(0) == 1
    assert fragments_for_payload(25) == 1
    assert fragments_for_payload(26) == 2
    assert fragments_for_payload(250) == 10


def test_fragmentation_rejects_negative_payload():
    with pytest.raises(ValueError):
        fragments_for_payload(-1)


def test_paper_operating_point_25_bytes_k7():
    """~5.3 mJ sender / ~9.98 mJ receiver per 25-byte message at 99.99 %, k=7."""
    radio = BleAdvertisementKCast()
    sender_mj, receiver_mj = radio.message_energy_25b(7)
    assert sender_mj == pytest.approx(5.3, rel=0.01)
    assert receiver_mj == pytest.approx(9.98, rel=0.01)


def test_transmission_cost_scales_with_fragments():
    radio = BleAdvertisementKCast()
    small = radio.transmission_cost(25, 7)
    large = radio.transmission_cost(250, 7)
    assert large.fragments == 10 * small.fragments
    assert large.sender_energy_j == pytest.approx(10 * small.sender_energy_j)


def test_transmission_cost_redundancy_grows_with_k():
    radio = BleAdvertisementKCast()
    assert radio.redundancy_for(7) >= radio.redundancy_for(1)
    assert radio.transmission_cost(25, 7).sender_energy_j >= radio.transmission_cost(25, 1).sender_energy_j


def test_transmission_reliability_meets_target():
    radio = BleAdvertisementKCast()
    cost = radio.transmission_cost(25, 7)
    assert cost.reliability >= 0.9999 * 0.999  # single-fragment four nines


def test_total_energy_accounts_for_all_receivers():
    radio = BleAdvertisementKCast()
    cost = radio.transmission_cost(25, 4)
    assert cost.total_receiver_energy_j == pytest.approx(4 * cost.per_receiver_energy_j)
    assert cost.total_energy_j == pytest.approx(cost.sender_energy_j + cost.total_receiver_energy_j)


def test_invalid_k_rejected():
    with pytest.raises(ValueError):
        BleAdvertisementKCast().transmission_cost(25, 0)


def test_duration_follows_200ms_per_fragment():
    radio = BleAdvertisementKCast()
    assert radio.transmission_cost(25, 7).duration_s == pytest.approx(0.2)
    assert radio.transmission_cost(100, 7).duration_s == pytest.approx(0.8)


def test_medium_api_send_recv():
    radio = BleAdvertisementKCast()
    assert radio.send_energy_j(25, k=7) == pytest.approx(5.3 / 1000.0, rel=0.01)
    assert radio.recv_energy_j(25, k=7) == pytest.approx(9.98 / 1000.0, rel=0.01)
