"""Unit tests for the k-cast reliability model (Fig. 2a)."""

import pytest

from repro.radio.reliability import FOUR_NINES, AdvertisementLossModel


def test_invalid_loss_probability_rejected():
    with pytest.raises(ValueError):
        AdvertisementLossModel(0.0)
    with pytest.raises(ValueError):
        AdvertisementLossModel(1.0)


def test_receiver_miss_probability_decreases_with_redundancy():
    model = AdvertisementLossModel(0.25)
    misses = [model.receiver_miss_probability(r) for r in range(1, 6)]
    assert all(a > b for a, b in zip(misses, misses[1:]))
    assert misses[0] == pytest.approx(0.25)
    assert misses[1] == pytest.approx(0.0625)


def test_kcast_failure_increases_with_k():
    model = AdvertisementLossModel(0.25)
    assert model.kcast_failure_probability(1, 3) < model.kcast_failure_probability(7, 3)


def test_kcast_failure_decreases_exponentially_with_redundancy():
    """The paper observes exponentially decreasing failure rates."""
    model = AdvertisementLossModel(0.25)
    failures = [model.kcast_failure_probability(7, r) for r in range(1, 9)]
    ratios = [failures[i + 1] / failures[i] for i in range(len(failures) - 1)]
    assert all(r < 0.5 for r in ratios[1:])


def test_redundancy_for_four_nines_matches_calibration():
    model = AdvertisementLossModel()
    redundancy_k7 = model.redundancy_for_reliability(7, FOUR_NINES)
    assert redundancy_k7 == 8
    # Fewer receivers need less redundancy.
    assert model.redundancy_for_reliability(1, FOUR_NINES) <= redundancy_k7


def test_redundancy_for_reliability_monotone_in_k():
    model = AdvertisementLossModel()
    values = [model.redundancy_for_reliability(k, FOUR_NINES) for k in (1, 3, 5, 7)]
    assert values == sorted(values)


def test_redundancy_for_unreachable_target_raises():
    model = AdvertisementLossModel(0.9)
    with pytest.raises(ValueError):
        model.redundancy_for_reliability(7, 0.999999999, max_redundancy=2)


def test_invalid_arguments_rejected():
    model = AdvertisementLossModel()
    with pytest.raises(ValueError):
        model.kcast_failure_probability(0, 1)
    with pytest.raises(ValueError):
        model.receiver_miss_probability(0)
    with pytest.raises(ValueError):
        model.redundancy_for_reliability(3, 1.5)


def test_tradeoff_curve_energy_grows_linearly():
    model = AdvertisementLossModel()
    curve = model.tradeoff_curve(7, 0.6625, 1.2475, max_redundancy=8)
    assert len(curve) == 8
    assert curve[0].sender_energy_mj == pytest.approx(0.6625)
    assert curve[7].sender_energy_mj == pytest.approx(8 * 0.6625)
    assert curve[7].failure_probability < curve[0].failure_probability
    # The four-nines point: ~5.3 mJ at the sender, as measured in the paper.
    assert curve[7].reliability >= FOUR_NINES
    assert curve[7].sender_energy_mj == pytest.approx(5.3, rel=0.01)


def test_reliability_point_properties():
    model = AdvertisementLossModel()
    point = model.tradeoff_curve(3, 1.0, 2.0, max_redundancy=1)[0]
    assert point.failure_percent == pytest.approx(point.failure_probability * 100)
    assert point.reliability == pytest.approx(1 - point.failure_probability)
