"""End-to-end catch-up tests: every protocol family recovers after a heal.

The recovery lane (``make test-recovery`` / ``pytest -m recovery``) runs
these alongside the default tier-1 sweep.  Each test builds a full
session through the PR 5 front door, lets a node miss blocks behind a
:class:`~repro.testkit.faults.PartitionWindow` or
:class:`~repro.testkit.faults.CrashRecoverWindow`, and asserts that the
catch-up protocol restores it to the full target height — within the
grace window, over the normal medium, with the observer lifecycle intact.
"""

import pytest

from repro.eval.runner import PROTOCOLS, DeploymentSpec
from repro.recovery import RecoveryObserver, RecoveryPolicy
from repro.session.builder import SessionBuilder
from repro.testkit import faults
from repro.testkit.faults import CATCH_UP_GRACE

pytestmark = pytest.mark.recovery


def run_with_recovery(schedule, protocol, seed=11, target_height=5, n=5):
    spec = DeploymentSpec(
        protocol=protocol,
        n=n,
        f=1,
        k=2,
        target_height=target_height,
        block_interval=2.0,
        seed=seed,
        fault_schedule=schedule,
    )
    observer = RecoveryObserver()
    session = SessionBuilder(spec, observers=[observer]).build()
    session.run_to_quiescence()
    return spec, session, observer


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_partitioned_node_catches_up_to_full_target(protocol):
    schedule = faults.partition(3, start=1.0, heal=7.0)
    spec, session, observer = run_with_recovery(schedule, protocol)
    heights = {pid: r.committed_height for pid, r in session.replicas.items()}
    assert heights[3] == spec.target_height, heights
    kinds = observer.kinds_for(3)
    assert kinds[0] == "sync_started"
    assert "sync_request" in kinds
    assert observer.caught_up_nodes() == (3,)
    assert observer.gave_up_nodes() == ()


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_crash_recovered_node_catches_up_to_full_target(protocol):
    schedule = faults.crash_recover(2, start=1.0, heal=7.5)
    spec, session, observer = run_with_recovery(schedule, protocol, seed=12)
    heights = {pid: r.committed_height for pid, r in session.replicas.items()}
    assert heights[2] == spec.target_height, heights
    assert observer.caught_up_nodes() == (2,)
    assert observer.gave_up_nodes() == ()


@pytest.mark.parametrize("protocol", ("eesmr", "sync-hotstuff"))
def test_catch_up_after_quiescence_lands_inside_the_grace_window(protocol):
    """The retry/backoff defaults are coupled to CATCH_UP_GRACE: with the
    workload already finished at heal time (a fixed deficit, no moving
    target), a working sync closes the gap before the exemption lapses."""
    heal = 28.0  # both protocols quiesce before t=26 at this operating point
    schedule = faults.partition(3, start=1.0, heal=heal)
    spec, session, observer = run_with_recovery(schedule, protocol)
    assert session.replicas[3].committed_height == spec.target_height
    caught = [e for e in observer.events_for(3) if e[2] == "caught_up"]
    assert caught, observer.events
    assert caught[0][0] <= heal + CATCH_UP_GRACE
    # With the run outliving the grace window, the healed node is no
    # longer liveness-exempt — the invariant genuinely checked it.
    if session.now > heal + CATCH_UP_GRACE:
        assert schedule.liveness_exempt_nodes(end_time=session.now) == ()


def test_recovery_event_stream_is_deterministic_per_seed():
    """Same spec, same seed → byte-identical recovery lifecycle, including
    the jittered backoff delays (all randomness flows through SeededRNG)."""
    schedule = faults.partition(3, start=1.0, heal=7.0)
    runs = []
    for _ in range(2):
        _, _, observer = run_with_recovery(schedule, "eesmr")
        runs.append(observer.events)
    assert runs[0] == runs[1]
    # A different seed perturbs at least the jittered delays.
    _, _, other = run_with_recovery(schedule, "eesmr", seed=13)
    assert other.events  # still recovers; exact stream may legitimately differ


def test_overlapping_partitions_defer_sync_to_the_last_heal():
    """A node inside two overlapping partition windows must not begin
    soliciting until the *last* window heals (refcounted isolation): the
    first window's controller retires silently at its heal."""
    schedule = faults.partition(4, start=1.0, heal=6.0).add(
        faults.PartitionWindow(4, 3.0, 9.0)
    )
    spec, session, observer = run_with_recovery(schedule, "eesmr")
    requests = [e for e in observer.events_for(4) if e[2] in ("sync_started", "sync_request")]
    assert requests, "the surviving controller must still run catch-up"
    assert all(t >= 9.0 for t, *_ in requests), requests
    assert session.replicas[4].committed_height == spec.target_height
    assert observer.caught_up_nodes() == (4,)


def test_broken_catch_up_gives_up_and_forfeits_the_exemption():
    """When no responder will certify the suffix, the recovering node burns
    its retries, emits ``gave_up``, and the run outlives the grace window —
    so the window-scoped exemption lapses and liveness genuinely fails.
    This is the detection path the planted dropped-QC mutant rides.

    The node reboots after the workload quiesces, so no live protocol
    certificates can paper over the dropped sync certs."""

    class NoCertBuilder(SessionBuilder):
        def build_replica_stage(self):
            stage = super().build_replica_stage()
            for replica in stage.replicas.values():
                replica.sync_serve_certificates = False
            return stage

    schedule = faults.crash_recover(2, start=1.0, heal=28.0)
    spec = DeploymentSpec(
        protocol="sync-hotstuff",
        n=5,
        f=1,
        k=2,
        target_height=5,
        block_interval=2.0,
        seed=12,
        fault_schedule=schedule,
    )
    observer = RecoveryObserver()
    session = NoCertBuilder(spec, observers=[observer]).build()
    session.run_to_quiescence()
    assert session.replicas[2].committed_height < spec.target_height
    kinds = observer.kinds_for(2)
    assert kinds[-1] == "gave_up"
    retries = [e for e in observer.events_for(2) if e[2] == "sync_retry"]
    assert len(retries) == RecoveryPolicy().max_retries
    # The give-up path is slower than the grace window by design: the
    # healed node is held to the target it never reached.
    assert session.now > 28.0 + CATCH_UP_GRACE
    assert schedule.liveness_exempt_nodes(end_time=session.now) == ()


def test_sync_traffic_rides_the_metered_medium():
    """Catch-up requests/responses are ordinary unicasts: they appear in
    the network's physical accounting and charge radio energy, so recovery
    is never free in the paper's cost model."""
    schedule = faults.partition(3, start=1.0, heal=7.0)
    baseline_spec = DeploymentSpec(
        protocol="eesmr", n=5, f=1, k=2, target_height=5, block_interval=2.0, seed=11
    )
    baseline = SessionBuilder(baseline_spec).build()
    baseline.run_to_quiescence()
    _, session, observer = run_with_recovery(schedule, "eesmr")
    assert any(e[2] == "sync_request" for e in observer.events)
    assert (
        session.network.stats.unicasts > baseline.network.stats.unicasts
    ), "sync round trips must show up as extra metered unicasts"
