"""Unit tests for the retry/backoff policy."""

import pytest

from repro.recovery import RecoveryPolicy
from repro.sim.rng import SeededRNG

pytestmark = pytest.mark.recovery


def test_defaults_are_coupled_to_the_grace_window():
    """A working sync (one or two round trips) finishes inside the 8 s
    grace; a broken one (full retry ladder) always overruns it — the
    property the planted-mutant detection depends on."""
    from repro.testkit.faults import CATCH_UP_GRACE

    policy = RecoveryPolicy()
    rng = SeededRNG(7)
    two_round_trips = 2 * policy.request_timeout + policy.backoff(0, rng)
    assert two_round_trips < CATCH_UP_GRACE
    rng = SeededRNG(7)
    give_up_floor = (policy.max_retries + 1) * policy.request_timeout + sum(
        policy.backoff_base * policy.backoff_factor**i for i in range(policy.max_retries)
    )
    assert give_up_floor > CATCH_UP_GRACE


def test_backoff_grows_exponentially_with_bounded_jitter():
    policy = RecoveryPolicy(jitter=0.25)
    rng = SeededRNG(3)
    delays = [policy.backoff(i, rng) for i in range(4)]
    for i, delay in enumerate(delays):
        base = policy.backoff_base * policy.backoff_factor**i
        assert base <= delay < base * 1.25
    assert delays == sorted(delays)


def test_backoff_is_deterministic_per_seed():
    policy = RecoveryPolicy()
    a = [policy.backoff(i, SeededRNG(9).child("x")) for i in range(3)]
    b = [policy.backoff(i, SeededRNG(9).child("x")) for i in range(3)]
    assert a == b


def test_zero_jitter_is_exact():
    policy = RecoveryPolicy(jitter=0.0)
    assert policy.backoff(2, SeededRNG(1)) == policy.backoff_base * policy.backoff_factor**2


@pytest.mark.parametrize(
    "kwargs",
    [
        {"request_timeout": 0.0},
        {"request_timeout": -1.0},
        {"max_retries": -1},
        {"backoff_base": -0.5},
        {"backoff_factor": 0.5},
        {"jitter": -0.1},
        {"jitter": 1.0},
    ],
)
def test_invalid_parameters_are_rejected(kwargs):
    with pytest.raises(ValueError):
        RecoveryPolicy(**kwargs)
