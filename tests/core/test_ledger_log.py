"""Unit tests for committed logs and the cross-node safety checker."""

import pytest

from repro.core.blocks import BlockStore, make_block
from repro.core.ledger import CommittedLog, SafetyChecker, SafetyViolation
from repro.core.types import Command


def build_chain(store, length, proposer=0, view=1, tag=""):
    parent = store.genesis
    blocks = []
    for i in range(length):
        block = make_block(parent, proposer, view, i + 3, [Command(f"{tag}c{i}")])
        store.add(block)
        blocks.append(block)
        parent = block
    return blocks


def test_commit_appends_ancestors_in_order():
    store = BlockStore()
    blocks = build_chain(store, 3)
    log = CommittedLog(0, store)
    newly = log.commit(blocks[2], now=10.0, view=1)
    assert [b.height for b in newly] == [1, 2, 3]
    assert log.highest_height == 3
    assert len(log) == 3


def test_commit_is_idempotent():
    store = BlockStore()
    blocks = build_chain(store, 2)
    log = CommittedLog(0, store)
    log.commit(blocks[1], now=1.0, view=1)
    assert log.commit(blocks[1], now=2.0, view=1) == []


def test_commit_conflicting_block_raises():
    store = BlockStore()
    blocks = build_chain(store, 2)
    fork = make_block(blocks[0], 9, 2, 4, [Command("fork")])
    store.add(fork)
    log = CommittedLog(0, store)
    log.commit(blocks[1], now=1.0, view=1)
    with pytest.raises(SafetyViolation):
        log.commit(fork, now=2.0, view=2)


def test_committed_command_ids_linearized():
    store = BlockStore()
    blocks = build_chain(store, 3)
    log = CommittedLog(0, store)
    log.commit(blocks[2], now=1.0, view=1)
    assert log.committed_command_ids() == ["c0", "c1", "c2"]


def test_commit_latency_lookup():
    store = BlockStore()
    blocks = build_chain(store, 1)
    log = CommittedLog(0, store)
    log.commit(blocks[0], now=16.0, view=1)
    assert log.commit_latency(blocks[0].block_hash, proposed_at=4.0) == pytest.approx(12.0)
    assert log.commit_latency("missing", proposed_at=0.0) is None


def test_safety_checker_consistent_logs():
    store = BlockStore()
    blocks = build_chain(store, 3)
    logs = {}
    for pid in range(3):
        log = CommittedLog(pid, store)
        log.commit(blocks[2], now=1.0, view=1)
        logs[pid] = log
    report = SafetyChecker(logs).check()
    assert report.consistent
    assert report.common_prefix_height == 3


def test_safety_checker_detects_conflict():
    store = BlockStore()
    blocks = build_chain(store, 2)
    fork_store = BlockStore()
    fork_blocks = build_chain(fork_store, 2, proposer=9, tag="f")
    log_a = CommittedLog(0, store)
    log_a.commit(blocks[1], now=1.0, view=1)
    log_b = CommittedLog(1, fork_store)
    log_b.commit(fork_blocks[1], now=1.0, view=1)
    checker = SafetyChecker({0: log_a, 1: log_b})
    report = checker.check()
    assert not report.consistent
    with pytest.raises(SafetyViolation):
        checker.assert_safe()


def test_safety_checker_ignores_faulty_nodes():
    store = BlockStore()
    blocks = build_chain(store, 2)
    fork_store = BlockStore()
    fork_blocks = build_chain(fork_store, 2, proposer=9, tag="f")
    log_a = CommittedLog(0, store)
    log_a.commit(blocks[1], now=1.0, view=1)
    log_bad = CommittedLog(1, fork_store)
    log_bad.commit(fork_blocks[1], now=1.0, view=1)
    report = SafetyChecker({0: log_a, 1: log_bad}, faulty=[1]).check()
    assert report.consistent


def test_safety_checker_prefix_with_lagging_node():
    store = BlockStore()
    blocks = build_chain(store, 3)
    fast = CommittedLog(0, store)
    fast.commit(blocks[2], now=1.0, view=1)
    slow = CommittedLog(1, store)
    slow.commit(blocks[0], now=1.0, view=1)
    checker = SafetyChecker({0: fast, 1: slow})
    report = checker.check()
    assert report.consistent
    assert report.common_prefix_height == 1
    assert checker.min_committed_height() == 1


def test_block_at_returns_none_when_missing():
    log = CommittedLog(0, BlockStore())
    assert log.block_at(5) is None
