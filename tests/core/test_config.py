"""Unit tests for protocol configuration."""

import pytest

from repro.core.config import ProtocolConfig, round_robin_leader


def test_round_robin_leader_cycles_from_view_one():
    leader = round_robin_leader(4)
    assert [leader(v) for v in range(1, 6)] == [0, 1, 2, 3, 0]


def test_round_robin_rejects_nonpositive_n():
    with pytest.raises(ValueError):
        round_robin_leader(0)


def test_config_validation():
    with pytest.raises(ValueError):
        ProtocolConfig(n=1, f=0, delta=1.0)
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, f=2, delta=1.0)  # needs f < n/2
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, f=-1, delta=1.0)
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, f=1, delta=0.0)
    with pytest.raises(ValueError):
        ProtocolConfig(n=4, f=1, delta=1.0, target_height=0)


def test_quorum_is_f_plus_one():
    config = ProtocolConfig(n=7, f=3, delta=1.0)
    assert config.quorum == 4


def test_default_leader_schedule_is_round_robin():
    config = ProtocolConfig(n=5, f=2, delta=1.0)
    assert config.leader_of(1) == 0
    assert config.leader_of(6) == 0
    assert config.leader_of(3) == 2


def test_custom_leader_schedule():
    config = ProtocolConfig(n=5, f=2, delta=1.0, leader_schedule=lambda v: 4)
    assert config.leader_of(1) == 4
    assert config.leader_of(99) == 4


def test_maximum_fault_tolerance_accepted():
    # f can be anything strictly below n/2.
    config = ProtocolConfig(n=13, f=6, delta=1.0)
    assert config.quorum == 7
