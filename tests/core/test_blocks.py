"""Unit tests for blocks and the block store."""

import pytest

from repro.core.blocks import GENESIS, Block, BlockStore, make_block, make_genesis
from repro.core.types import Command


def chain_of(length, store=None, proposer=0, view=1):
    """Build a linear chain of the given length on top of genesis."""
    store = store or BlockStore()
    parent = store.genesis
    blocks = []
    for i in range(length):
        block = make_block(parent, proposer, view, i + 3, [Command(f"c{i}")])
        store.add(block)
        blocks.append(block)
        parent = block
    return store, blocks


def test_genesis_properties():
    genesis = make_genesis()
    assert genesis.is_genesis
    assert genesis.height == 0
    assert genesis.block_hash == GENESIS.block_hash


def test_block_hash_deterministic_and_content_sensitive():
    a = make_block(GENESIS, 1, 1, 3, [Command("x")])
    b = make_block(GENESIS, 1, 1, 3, [Command("x")])
    c = make_block(GENESIS, 1, 1, 3, [Command("y")])
    assert a.block_hash == b.block_hash
    assert a.block_hash != c.block_hash


def test_block_hash_depends_on_parent():
    a = make_block(GENESIS, 1, 1, 3, [])
    b = make_block(a, 1, 1, 4, [])
    forged = Block(parent_hash="0" * 64, height=2, view=1, round=4, proposer=1)
    assert b.block_hash != forged.block_hash


def test_make_block_increments_height():
    a = make_block(GENESIS, 1, 1, 3, [])
    b = make_block(a, 1, 1, 4, [])
    assert a.height == 1 and b.height == 2
    assert b.parent_hash == a.block_hash


def test_negative_height_rejected():
    with pytest.raises(ValueError):
        Block(parent_hash="x", height=-1, view=1, round=1, proposer=0)


def test_wire_size_grows_with_commands():
    empty = make_block(GENESIS, 1, 1, 3, [])
    loaded = make_block(GENESIS, 1, 1, 3, [Command("c", payload_size_bytes=100)])
    assert loaded.wire_size_bytes > empty.wire_size_bytes


def test_store_chain_and_ancestry():
    store, blocks = chain_of(4)
    assert store.has_ancestry(blocks[-1])
    chain = store.chain(blocks[-1])
    assert chain[0].is_genesis
    assert [b.height for b in chain] == [0, 1, 2, 3, 4]


def test_store_missing_parent_breaks_ancestry():
    store = BlockStore()
    orphan = Block(parent_hash="f" * 64, height=5, view=1, round=7, proposer=0)
    store.add(orphan)
    assert not store.has_ancestry(orphan)
    with pytest.raises(KeyError):
        store.chain(orphan)


def test_extends_along_chain():
    store, blocks = chain_of(4)
    assert store.extends(blocks[3], blocks[0])
    assert store.extends(blocks[3], store.genesis)
    assert store.extends(blocks[2], blocks[2])
    assert not store.extends(blocks[0], blocks[3])


def test_conflicts_between_forks():
    store, blocks = chain_of(2)
    fork = make_block(blocks[0], 9, 2, 4, [Command("fork")])
    store.add(fork)
    assert store.conflicts(fork, blocks[1])
    assert not store.conflicts(fork, blocks[0])
    assert not store.conflicts(blocks[1], blocks[1])


def test_highest_common_ancestor():
    store, blocks = chain_of(3)
    fork = make_block(blocks[0], 9, 2, 4, [Command("fork")])
    store.add(fork)
    assert store.highest_common_ancestor(fork, blocks[2]).block_hash == blocks[0].block_hash
    assert store.highest_common_ancestor(blocks[2], blocks[1]).block_hash == blocks[1].block_hash


def test_store_contains_and_get():
    store, blocks = chain_of(1)
    assert blocks[0].block_hash in store
    assert store.get(blocks[0].block_hash) is blocks[0]
    assert store.get("missing") is None
    assert len(store) == 2  # genesis + one block


def test_iter_ancestors_stops_at_genesis():
    store, blocks = chain_of(3)
    ancestors = list(store.iter_ancestors(blocks[2]))
    assert ancestors[0] is blocks[2]
    assert ancestors[-1].is_genesis


def test_short_hash_prefix():
    block = make_block(GENESIS, 1, 1, 3, [])
    assert block.block_hash.startswith(block.short_hash())
    assert len(block.short_hash()) == 10
