"""Unit tests for clients and the f+1-ack acceptance rule."""

from repro.core.client import Acknowledgement, AckRouter, Client, CommandFactory


def ack(replica, command_id="c0-0", height=1, block_hash="h1"):
    return Acknowledgement(replica=replica, command_id=command_id, height=height, block_hash=block_hash)


def test_command_factory_generates_unique_ids():
    factory = CommandFactory(client_id=3)
    commands = factory.batch(5)
    assert len({c.command_id for c in commands}) == 5
    assert all(c.client_id == 3 for c in commands)


def test_client_accepts_after_f_plus_one_matching_acks():
    client = Client(client_id=0, f=2)
    [command] = client.create_commands(1)
    assert not client.is_accepted(command.command_id)
    assert client.on_ack(ack(0, command.command_id)) is False
    assert client.on_ack(ack(1, command.command_id)) is False
    assert client.on_ack(ack(2, command.command_id)) is True
    assert client.is_accepted(command.command_id)


def test_duplicate_acks_from_same_replica_do_not_count_twice():
    client = Client(client_id=0, f=2)
    [command] = client.create_commands(1)
    client.on_ack(ack(0, command.command_id))
    client.on_ack(ack(0, command.command_id))
    assert not client.is_accepted(command.command_id)


def test_acks_for_different_positions_do_not_mix():
    client = Client(client_id=0, f=1)
    [command] = client.create_commands(1)
    client.on_ack(ack(0, command.command_id, height=1, block_hash="a"))
    client.on_ack(ack(1, command.command_id, height=2, block_hash="b"))
    assert not client.is_accepted(command.command_id)
    client.on_ack(ack(2, command.command_id, height=1, block_hash="a"))
    assert client.is_accepted(command.command_id)


def test_stats_and_unaccepted():
    client = Client(client_id=0, f=0)
    commands = client.create_commands(3)
    client.on_ack(ack(0, commands[0].command_id))
    stats = client.stats()
    assert stats.submitted == 3
    assert stats.accepted == 1
    assert stats.pending == 2
    assert set(client.unaccepted_ids()) == {commands[1].command_id, commands[2].command_id}


def test_ack_router_routes_to_owning_client():
    client = Client(client_id=0, f=0)
    [command] = client.create_commands(1)
    router = AckRouter([client])
    router.route(replica=4, command=command, height=2, block_hash="bh")
    assert client.is_accepted(command.command_id)


def test_ack_router_ignores_unknown_client():
    client = Client(client_id=0, f=0)
    other_command = CommandFactory(client_id=9).next_command()
    router = AckRouter([client])
    router.route(replica=1, command=other_command, height=1, block_hash="x")
    assert client.stats().accepted == 0
    assert len(router.clients()) == 1
