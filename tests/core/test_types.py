"""Unit tests for core value types."""

import pytest

from repro.core.types import Batch, Command


def test_command_wire_size_includes_payload_and_header():
    command = Command(command_id="c1", payload_size_bytes=100)
    assert command.wire_size_bytes == 100 + 12


def test_command_rejects_negative_payload():
    with pytest.raises(ValueError):
        Command(command_id="c1", payload_size_bytes=-1)


def test_batch_size_and_ids():
    batch = Batch((Command("a", payload_size_bytes=10), Command("b", payload_size_bytes=20)))
    assert len(batch) == 2
    assert batch.command_ids == ("a", "b")
    assert batch.wire_size_bytes == (10 + 12) + (20 + 12)


def test_empty_batch():
    batch = Batch()
    assert len(batch) == 0
    assert batch.wire_size_bytes == 0
    assert batch.command_ids == ()
