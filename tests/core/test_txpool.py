"""Unit tests for the transaction pool."""

import pytest

from repro.core.txpool import TxPool
from repro.core.types import Command


def commands(*ids):
    return [Command(command_id=i) for i in ids]


def test_add_and_len():
    pool = TxPool()
    assert pool.add_all(commands("a", "b", "c")) == 3
    assert len(pool) == 3
    assert "a" in pool


def test_duplicates_are_rejected():
    pool = TxPool()
    pool.add(Command("a"))
    assert pool.add(Command("a")) is False
    assert len(pool) == 1


def test_peek_batch_preserves_arrival_order_and_does_not_remove():
    pool = TxPool()
    pool.add_all(commands("a", "b", "c"))
    batch = pool.peek_batch(2)
    assert [c.command_id for c in batch] == ["a", "b"]
    assert len(pool) == 3


def test_peek_batch_larger_than_pool():
    pool = TxPool()
    pool.add_all(commands("a"))
    assert len(pool.peek_batch(10)) == 1


def test_peek_batch_negative_rejected():
    with pytest.raises(ValueError):
        TxPool().peek_batch(-1)


def test_remove_committed_commands():
    pool = TxPool()
    pool.add_all(commands("a", "b", "c"))
    assert pool.remove(["a", "c", "zzz"]) == 2
    assert pool.pending_ids() == ["b"]


def test_max_size_drops_overflow():
    pool = TxPool(max_size=2)
    assert pool.add_all(commands("a", "b", "c")) == 2
    assert pool.dropped == 1
    assert len(pool) == 2


def test_clear():
    pool = TxPool()
    pool.add_all(commands("a", "b"))
    pool.clear()
    assert len(pool) == 0
