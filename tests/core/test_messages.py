"""Unit tests for protocol messages and quorum certificates."""

import pytest

from repro.core.blocks import GENESIS, make_block
from repro.core.messages import (
    MessageType,
    make_message,
    make_qc,
    make_view_qc,
    message_data_digest,
    verify_message,
    verify_qc,
    verify_view_qc,
)


def signed(scheme, sender, data="payload", msg_type=MessageType.CERTIFY, view=1):
    return make_message(scheme, sender, msg_type, view, data)


def test_make_message_signs_view_and_data(scheme):
    message = signed(scheme, 0)
    assert message.view_sig is not None and message.data_sig is not None
    assert verify_message(scheme, 1, message)


def test_verify_rejects_tampered_data(scheme):
    message = signed(scheme, 0, data="payload")
    tampered = type(message)(
        msg_type=message.msg_type,
        view=message.view,
        round=message.round,
        sender=message.sender,
        data="other",
        view_sig=message.view_sig,
        data_sig=message.data_sig,
    )
    assert not verify_message(scheme, 1, tampered)


def test_verify_rejects_sender_spoofing(scheme):
    message = signed(scheme, 0)
    spoofed = type(message)(
        msg_type=message.msg_type,
        view=message.view,
        round=message.round,
        sender=3,
        data=message.data,
        view_sig=message.view_sig,
        data_sig=message.data_sig,
    )
    assert not verify_message(scheme, 1, spoofed)


def test_verify_rejects_missing_signature(scheme):
    message = signed(scheme, 0)
    unsigned = type(message)(
        msg_type=message.msg_type,
        view=message.view,
        round=message.round,
        sender=0,
        data=message.data,
        view_sig=None,
        data_sig=None,
    )
    assert not verify_message(scheme, 1, unsigned)


def test_matches_helper(scheme):
    message = signed(scheme, 0, view=4)
    assert message.matches(MessageType.CERTIFY, 4)
    assert not message.matches(MessageType.BLAME, 4)
    assert not message.matches(MessageType.CERTIFY, 5)


def test_wire_size_includes_signatures_and_payload(scheme):
    small = signed(scheme, 0, data="x")
    block = make_block(GENESIS, 0, 1, 3, [])
    large = make_message(scheme, 0, MessageType.PROPOSE, 1, block)
    assert small.wire_size_bytes >= 16 + 1 + 2 * 128
    assert large.wire_size_bytes > small.wire_size_bytes


def test_data_digest_stable_for_blocks(scheme):
    block = make_block(GENESIS, 0, 1, 3, [])
    assert message_data_digest(block) == block.block_hash


def test_make_qc_from_matching_messages(scheme):
    votes = [signed(scheme, i, data="h") for i in range(3)]
    qc = make_qc(votes)
    assert qc.size == 3
    assert qc.signers == (0, 1, 2)
    assert verify_qc(scheme, 9, qc, threshold=3)


def test_make_qc_deduplicates_signers(scheme):
    votes = [signed(scheme, 0, data="h"), signed(scheme, 0, data="h"), signed(scheme, 1, data="h")]
    qc = make_qc(votes)
    assert qc.size == 2


def test_make_qc_rejects_mixed_types_or_digests(scheme):
    with pytest.raises(ValueError):
        make_qc([signed(scheme, 0, data="a"), signed(scheme, 1, data="b")])
    with pytest.raises(ValueError):
        make_qc(
            [
                signed(scheme, 0, data="a", msg_type=MessageType.CERTIFY),
                signed(scheme, 1, data="a", msg_type=MessageType.VOTE),
            ]
        )
    with pytest.raises(ValueError):
        make_qc([])


def test_verify_qc_fails_below_threshold(scheme):
    votes = [signed(scheme, i, data="h") for i in range(2)]
    qc = make_qc(votes)
    assert not verify_qc(scheme, 9, qc, threshold=3)


def test_verify_qc_fails_for_wrong_digest(scheme):
    votes = [signed(scheme, i, data="h") for i in range(3)]
    qc = make_qc(votes)
    forged = type(qc)(
        cert_type=qc.cert_type,
        view=qc.view,
        digest=message_data_digest("other"),
        signers=qc.signers,
        signatures=qc.signatures,
    )
    assert not verify_qc(scheme, 9, forged, threshold=3)


def test_view_qc_aggregates_view_signatures(scheme):
    blames = [make_message(scheme, i, MessageType.BLAME, 2, None) for i in range(3)]
    qc = make_view_qc(blames)
    assert qc.cert_type == MessageType.BLAME
    assert verify_view_qc(scheme, 5, qc, threshold=3)


def test_view_qc_tolerates_heterogeneous_payloads(scheme):
    blames = [
        make_message(scheme, 0, MessageType.BLAME, 2, None),
        make_message(scheme, 1, MessageType.BLAME, 2, "proof-a"),
        make_message(scheme, 2, MessageType.BLAME, 2, "proof-b"),
    ]
    qc = make_view_qc(blames)
    assert verify_view_qc(scheme, 5, qc, threshold=3)


def test_view_qc_rejects_wrong_view_on_verify(scheme):
    blames = [make_message(scheme, i, MessageType.BLAME, 2, None) for i in range(3)]
    qc = make_view_qc(blames)
    forged = type(qc)(
        cert_type=qc.cert_type,
        view=3,
        digest=qc.digest,
        signers=qc.signers,
        signatures=qc.signatures,
    )
    assert not verify_view_qc(scheme, 5, forged, threshold=3)


def test_qc_wire_size_counts_signatures(scheme):
    votes = [signed(scheme, i, data="h") for i in range(3)]
    qc = make_qc(votes)
    assert qc.wire_size_bytes >= 3 * 128
    assert qc.matches(MessageType.CERTIFY, 1)
