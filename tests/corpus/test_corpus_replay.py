"""Replay every committed corpus entry — the fuzzer's regression lane.

Each ``*.json`` file next to this test is a shrunk reproducer that once
demonstrated something (a planted-mutant bug, or a live differential
finding); replaying them on every run pins the behaviour in the recorded
direction:

* ``expect: "clean"`` — the bug was planted in a mutant (or since
  fixed): the honest code must satisfy every invariant on this schedule;
* ``expect: "violation"`` — a live finding (e.g. the Sync HotStuff
  leader-partition fork): the run must still fail, and with the recorded
  invariants — if it stops reproducing, the entry is stale and should be
  flipped to ``clean`` with the fix that did it.

The corpus is grown by ``repro fuzz --out tests/corpus`` (live findings)
or by adding schedules to ``regenerate.py`` (curated entries).
"""

from pathlib import Path

import pytest

from repro.fuzz import Corpus
from repro.fuzz.corpus import replay_entry

ENTRIES = Corpus(Path(__file__).resolve().parent).entries()


def test_corpus_is_not_empty():
    assert ENTRIES, "the committed corpus must hold at least one reproducer"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.path.stem for entry in ENTRIES]
)
def test_corpus_entry_replays_in_the_recorded_direction(entry):
    reports, failing = replay_entry(entry)
    failed_names = {report.name for report in failing}
    if entry.expect == "clean":
        assert not failing, [report.detail for report in failing]
    else:
        assert failing, f"{entry.path.name} no longer reproduces; flip it to clean?"
        protocol = entry.spec["protocol"]
        recorded = {
            invariant
            for proto, invariant in entry.found.get("failures", [])
            if proto == protocol
        }
        assert recorded <= failed_names, (
            f"{entry.path.name} fails, but not with the recorded invariants "
            f"{sorted(recorded)} (got {sorted(failed_names)})"
        )
