"""Regenerate the committed reproducer corpus, byte for byte.

Run from the repo root::

    PYTHONPATH=src python tests/corpus/regenerate.py

Every entry here came out of a real fuzz campaign (``repro fuzz`` or the
planted-mutant meta-tests); this script rebuilds them from their recorded
schedules so the committed files stay canonical (content-hashed names,
sorted-key JSON) if the corpus schema ever changes.  Entry files are
what CI replays — see ``test_corpus_replay.py``.
"""

from pathlib import Path

from repro.fuzz import FuzzConfig, Corpus
from repro.testkit.faults import schedule_from_dict

ROOT = Path(__file__).resolve().parent

#: The fuzzer's standard deployment (n=5 ring-k2 over BLE, spaced blocks).
CONFIG = FuzzConfig()


def spec_dict(schedule_entries, protocol):
    schedule = schedule_from_dict(schedule_entries) if schedule_entries else None
    return CONFIG.spec_for(schedule, protocol).to_dict()


#: A partitioned *leader*: fuzz seed 1 found that a 0.25 s partition of
#: node 0 forks Sync HotStuff — its 2Δ commit-by-timeout fires while the
#: rest of the cluster view-changes past it.  A synchronous protocol is
#: only safe while the synchrony assumption holds; the partition breaks
#: it, and the fuzzer's shrinker narrowed the break to a single quantum.
LEADER_PARTITION = [{"kind": "PartitionWindow", "node": 0, "start": 7.0, "heal": 7.25}]

#: Mutant A's shrunk reproducer (see tests/fuzz/mutants.py): one
#: equivocating leader.  On main the honest commit rule blames instead of
#: committing a twin, so the replay must be clean.
EQUIVOCATING_LEADER = [
    {"kind": "EquivocateAt", "node": 0, "round": 2, "baseline_failstop": 1.0}
]

#: Mutant B's shrunk reproducer: two short relay-drop windows on adjacent
#: ring nodes.  On main each heal restores the relay policy (refcounted),
#: so liveness holds; under the leaked-allow_relay mutant the denials
#: accumulated and disconnected the ring.
ADJACENT_DROP_WINDOWS = [
    {"kind": "RelayDropWindow", "node": 1, "start": 4.75, "end": 5.0},
    {"kind": "RelayDropWindow", "node": 2, "start": 0.5, "end": 0.75},
]

#: Mutant D's shrunk reproducer: one short loss window over a receiver
#: just as the first block floods.  On main the reliable sublayer retries
#: the dropped hop and the node catches up inside its loss-budget
#: allowance; under the zeroed-retry mutant the drop was final and the
#: loss-budget liveness invariant fired once the allowance expired.
LOSSY_RECEIVER = [
    {"kind": "LossWindow", "node": 3, "start": 0.25, "end": 0.75, "loss": 0.5}
]


def regenerate() -> None:
    corpus = Corpus(ROOT)
    corpus.add(
        spec_dict(LEADER_PARTITION, "sync-hotstuff"),
        expect="violation",
        found={
            "seed": 1,
            "iteration": 0,
            "failures": [["sync-hotstuff", "agreement"]],
            "source": "repro fuzz --seed 1",
        },
        note="leader partition breaks the synchrony assumption; "
        "commit-by-timeout forks Sync HotStuff",
        slug="shs-leader-partition",
    )
    corpus.add(
        spec_dict(LEADER_PARTITION, "eesmr"),
        expect="clean",
        found={"seed": 1, "source": "repro fuzz --seed 1 (differential control)"},
        note="the same leader partition under EESMR: the 4Δ quiet-period "
        "commit survives where the baseline forks",
        slug="eesmr-leader-partition",
    )
    corpus.add(
        spec_dict(EQUIVOCATING_LEADER, "eesmr"),
        expect="clean",
        found={
            "seed": 2,
            "mutant": "CommitRuleMutantBuilder",
            "failures": [["eesmr", "agreement"]],
            "source": "tests/fuzz/test_planted_mutants.py",
        },
        note="mutant A reproducer: forks the broken commit rule, clean on main",
        slug="eesmr-equivocating-leader",
    )
    corpus.add(
        spec_dict(ADJACENT_DROP_WINDOWS, "eesmr"),
        expect="clean",
        found={
            "seed": 1,
            "mutant": "LeakyRelayMutantBuilder",
            "failures": [["eesmr", "liveness"]],
            "source": "tests/fuzz/test_planted_mutants.py",
        },
        note="mutant B reproducer: starves liveness when relay heals leak, "
        "clean on main",
        slug="eesmr-adjacent-drop-windows",
    )
    corpus.add(
        spec_dict(LOSSY_RECEIVER, "eesmr"),
        expect="clean",
        found={
            "seed": 2,
            "mutant": "RetransmissionGiveUpMutantBuilder",
            "failures": [
                ["eesmr", "liveness"],
                ["eesmr", "loss-budget-liveness"],
            ],
            "source": "tests/fuzz/test_planted_mutants.py",
        },
        note="mutant D reproducer: a zeroed retry budget strands the lossy "
        "receiver past its loss-budget allowance, clean on main",
        slug="eesmr-lossy-receiver",
    )
    for entry in Corpus(ROOT).entries():
        print(f"{entry.path.name}: expect={entry.expect}")


if __name__ == "__main__":
    regenerate()
