"""Unit tests for per-node energy metering."""

import pytest

from repro.energy.meter import EnergyBreakdown, EnergyCategory, EnergyMeter, total_energy


def test_charges_accumulate_per_category():
    meter = EnergyMeter(0)
    meter.charge_transmit(0.5)
    meter.charge_transmit(0.25)
    meter.charge_verify(0.1)
    assert meter.breakdown.get(EnergyCategory.TRANSMIT) == pytest.approx(0.75)
    assert meter.breakdown.get(EnergyCategory.VERIFY) == pytest.approx(0.1)
    assert meter.total_joules == pytest.approx(0.85)
    assert meter.total_millijoules == pytest.approx(850.0)


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        EnergyMeter(0).charge_transmit(-0.1)


def test_sleep_charge_uses_power_draw():
    meter = EnergyMeter(0, sleep_power_w=0.0003)
    meter.charge_sleep(1000.0)
    assert meter.breakdown.get(EnergyCategory.SLEEP) == pytest.approx(0.3)
    with pytest.raises(ValueError):
        meter.charge_sleep(-1.0)


def test_breakdown_groups():
    breakdown = EnergyBreakdown()
    breakdown.add(EnergyCategory.TRANSMIT, 1.0)
    breakdown.add(EnergyCategory.RECEIVE, 2.0)
    breakdown.add(EnergyCategory.SIGN, 0.5)
    breakdown.add(EnergyCategory.VERIFY, 0.25)
    breakdown.add(EnergyCategory.HASH, 0.05)
    assert breakdown.communication == pytest.approx(3.0)
    assert breakdown.cryptography == pytest.approx(0.8)
    assert breakdown.total == pytest.approx(3.8)


def test_breakdown_merge_is_non_destructive():
    a = EnergyBreakdown({EnergyCategory.SIGN: 1.0})
    b = EnergyBreakdown({EnergyCategory.SIGN: 2.0, EnergyCategory.HASH: 0.5})
    merged = a.merged_with(b)
    assert merged.get(EnergyCategory.SIGN) == pytest.approx(3.0)
    assert a.get(EnergyCategory.SIGN) == pytest.approx(1.0)


def test_breakdown_as_dict_keys_are_strings():
    breakdown = EnergyBreakdown({EnergyCategory.SIGN: 1.0})
    assert breakdown.as_dict() == {"sign": 1.0}


def test_marks_measure_intervals():
    meter = EnergyMeter(0)
    meter.charge_sign(0.4)
    meter.mark("before-vc")
    meter.charge_verify(0.02)
    meter.charge_receive(0.1)
    assert meter.since_mark("before-vc") == pytest.approx(0.12)
    with pytest.raises(KeyError):
        meter.since_mark("unknown")


def test_trace_records_events():
    meter = EnergyMeter(0, trace=True)
    meter.charge_transmit(0.1, time=5.0, detail="kcast")
    assert len(meter.events) == 1
    assert meter.events[0].time == 5.0
    assert meter.events[0].detail == "kcast"


def test_reset_clears_everything():
    meter = EnergyMeter(0, trace=True)
    meter.charge_transmit(0.1)
    meter.mark("m")
    meter.reset()
    assert meter.total_joules == 0.0
    assert meter.events == []


def test_snapshot_is_independent_copy():
    meter = EnergyMeter(0)
    meter.charge_sign(0.4)
    snap = meter.snapshot()
    meter.charge_sign(0.4)
    assert snap.total == pytest.approx(0.4)
    assert meter.total_joules == pytest.approx(0.8)


def test_total_energy_excludes_requested_nodes():
    meters = [EnergyMeter(i) for i in range(3)]
    for meter in meters:
        meter.charge_sign(1.0)
    assert total_energy(meters) == pytest.approx(3.0)
    assert total_energy(meters, exclude={1}) == pytest.approx(2.0)
