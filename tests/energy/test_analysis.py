"""Unit tests for the Section 4 decision rules."""

import math

import pytest

from repro.crypto.energy_costs import RSA_1024
from repro.energy.analysis import (
    breakeven_blocks,
    compare_protocols,
    energy_fault_bound,
    expected_energy,
    view_change_ratio_bound,
)
from repro.energy.model import parameters_from_components
from repro.energy.protocol_costs import (
    eesmr_cost_model,
    sync_hotstuff_cost_model,
    trusted_baseline_cost_model,
)
from repro.radio.media import lte_medium, wifi_medium


def params(n=10, f=4, m=256, k=3):
    return parameters_from_components(
        n=n, f=f, message_bytes=m, medium=wifi_medium(), signature=RSA_1024,
        external_medium=lte_medium(), k=k, d=k,
    )


def test_ratio_bound_better_both_phases_is_one():
    assert view_change_ratio_bound(1.0, 2.0, 3.0, 3.0) == 1.0
    assert view_change_ratio_bound(1.0, 2.0, 2.0, 3.0) == 1.0


def test_ratio_bound_worse_both_phases_is_zero():
    assert view_change_ratio_bound(2.0, 1.0, 4.0, 3.0) == 0.0


def test_ratio_bound_best_case_optimal_tradeoff():
    # A saves 1 J in the best case, pays 4 J extra per view change:
    # it wins while fewer than 1/4 of units suffer view changes.
    assert view_change_ratio_bound(1.0, 2.0, 7.0, 3.0) == pytest.approx(0.25)


def test_ratio_bound_clamped_to_unit_interval():
    assert 0.0 <= view_change_ratio_bound(1.0, 100.0, 7.0, 3.0) <= 1.0


def test_energy_fault_bound_formula():
    # (baseline - best) / (best + view_change)
    assert energy_fault_bound(10.0, 2.0, 6.0) == pytest.approx(1.0)
    assert energy_fault_bound(1.0, 2.0, 6.0) == 0.0
    with pytest.raises(ValueError):
        energy_fault_bound(1.0, 0.0, 0.0)


def test_breakeven_blocks():
    # Gain 1 J per good block, pay 4 J extra per view change, 2 view changes.
    assert breakeven_blocks(1.0, 2.0, 7.0, 3.0, view_changes=2) == pytest.approx(8.0)
    assert breakeven_blocks(2.0, 1.0, 7.0, 3.0, view_changes=2) == math.inf
    assert breakeven_blocks(1.0, 2.0, 3.0, 7.0, view_changes=2) == 0.0
    with pytest.raises(ValueError):
        breakeven_blocks(1.0, 2.0, 3.0, 4.0, view_changes=-1)


def test_expected_energy_interpolates_between_cases():
    model = eesmr_cost_model()
    point = params()
    all_good = expected_energy(model, point, 10, 0)
    some_bad = expected_energy(model, point, 10, 3)
    assert some_bad > all_good
    assert all_good == pytest.approx(10 * model.best_case(point))
    with pytest.raises(ValueError):
        expected_energy(model, point, 5, 6)


def test_compare_eesmr_vs_sync_hotstuff_is_best_case_optimal():
    comparison = compare_protocols(eesmr_cost_model(), sync_hotstuff_cost_model(), params())
    assert comparison.best_case_winner == "eesmr"
    assert comparison.best_case_advantage > 1.0
    assert 0.0 < comparison.max_view_change_ratio <= 1.0
    # With no view changes EESMR must win; at 100 % view changes it must not.
    assert comparison.a_wins_at_ratio(0.0)
    assert not comparison.a_wins_at_ratio(1.0)


def test_compare_a_wins_at_ratio_threshold_consistency():
    comparison = compare_protocols(eesmr_cost_model(), sync_hotstuff_cost_model(), params())
    bound = comparison.max_view_change_ratio
    if bound < 1.0:
        assert comparison.a_wins_at_ratio(max(0.0, bound - 0.01))
        assert not comparison.a_wins_at_ratio(min(1.0, bound + 0.01))


def test_compare_with_trusted_baseline_small_vs_large_n():
    """Fig. 1's qualitative content: EESMR wins for small n, loses for large n."""
    small = compare_protocols(eesmr_cost_model(), trusted_baseline_cost_model(), params(n=4, f=1, k=3))
    large = compare_protocols(
        eesmr_cost_model(), trusted_baseline_cost_model(), params(n=36, f=17, k=35)
    )
    assert small.best_case_winner == "eesmr"
    assert large.best_case_winner == "trusted-baseline"


def test_a_wins_at_ratio_validates_input():
    comparison = compare_protocols(eesmr_cost_model(), sync_hotstuff_cost_model(), params())
    with pytest.raises(ValueError):
        comparison.a_wins_at_ratio(1.5)
