"""Unit tests for the cluster energy ledger."""

import pytest

from repro.energy.ledger import ClusterEnergyLedger
from repro.energy.meter import EnergyCategory


def make_ledger():
    ledger = ClusterEnergyLedger(range(4))
    ledger.meter(0).charge_sign(0.4)
    ledger.meter(0).charge_transmit(0.1)
    ledger.meter(1).charge_receive(0.2)
    ledger.meter(2).charge_receive(0.3)
    ledger.meter(3).charge_verify(0.05)
    return ledger


def test_total_and_exclusion():
    ledger = make_ledger()
    assert ledger.total_joules() == pytest.approx(1.05)
    assert ledger.total_joules(exclude=[0]) == pytest.approx(0.55)


def test_per_node_totals():
    ledger = make_ledger()
    per_node = ledger.per_node_joules()
    assert per_node[0] == pytest.approx(0.5)
    assert per_node[3] == pytest.approx(0.05)


def test_combined_breakdown():
    ledger = make_ledger()
    combined = ledger.combined_breakdown()
    assert combined.get(EnergyCategory.RECEIVE) == pytest.approx(0.5)
    assert combined.get(EnergyCategory.SIGN) == pytest.approx(0.4)


def test_category_totals_with_exclusion():
    ledger = make_ledger()
    assert ledger.category_joules(EnergyCategory.RECEIVE) == pytest.approx(0.5)
    assert ledger.category_joules(EnergyCategory.RECEIVE, exclude=[1]) == pytest.approx(0.3)


def test_report_separates_leader_and_faulty():
    ledger = make_ledger()
    report = ledger.report(leader=0, faulty=[3])
    assert report.leader_joules == pytest.approx(0.5)
    assert report.correct_total_joules == pytest.approx(1.0)
    assert report.total_joules == pytest.approx(1.05)
    assert report.mean_replica_joules == pytest.approx((0.2 + 0.3) / 2)
    assert report.correct_total_millijoules == pytest.approx(1000.0)


def test_meter_created_lazily_for_new_node():
    ledger = ClusterEnergyLedger([0])
    meter = ledger.meter(7)
    assert meter.node_id == 7
    assert 7 in ledger.meters


def test_reset_zeroes_all_meters():
    ledger = make_ledger()
    ledger.reset()
    assert ledger.total_joules() == 0.0


def test_node_ids_sorted():
    ledger = ClusterEnergyLedger([3, 1, 2])
    assert ledger.node_ids() == [1, 2, 3]
