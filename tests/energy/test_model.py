"""Unit tests for the Section 4 cost-parameter framework."""

import pytest

from repro.crypto.energy_costs import RSA_1024
from repro.energy.model import (
    CostFunction,
    CostParameters,
    LinearCostModel,
    parameters_from_components,
)
from repro.radio.media import lte_medium, wifi_medium


def make_params(**overrides):
    defaults = dict(
        n=10,
        f=4,
        message_bytes=256,
        send_per_byte_j=1e-4,
        recv_per_byte_j=5e-5,
        sign_j=0.4,
        verify_j=0.02,
        k=3,
        d=3,
    )
    defaults.update(overrides)
    return CostParameters(**defaults)


def test_parameter_validation():
    with pytest.raises(ValueError):
        make_params(n=0)
    with pytest.raises(ValueError):
        make_params(f=10)
    with pytest.raises(ValueError):
        make_params(message_bytes=-1)


def test_send_and_recv_cost_linear_in_size():
    params = make_params(send_base_j=0.001)
    assert params.send_cost(0) == pytest.approx(0.001)
    assert params.send_cost(1000) == pytest.approx(0.001 + 0.1)
    assert params.recv_cost(1000) == pytest.approx(0.05)


def test_external_medium_defaults_to_local():
    params = make_params()
    assert params.ext_send_cost(100) == pytest.approx(params.send_cost(100))


def test_external_medium_when_set():
    params = make_params(ext_send_per_byte_j=1e-3, ext_send_base_j=0.01)
    assert params.ext_send_cost(100) == pytest.approx(0.01 + 0.1)


def test_with_message_bytes_and_with_n_copies():
    params = make_params()
    bigger = params.with_message_bytes(1024)
    assert bigger.message_bytes == 1024
    assert params.message_bytes == 256
    larger = params.with_n(20)
    assert larger.n == 20 and larger.f == params.f


def test_parameters_from_components_extracts_slopes():
    params = parameters_from_components(
        n=8,
        f=3,
        message_bytes=512,
        medium=wifi_medium(),
        signature=RSA_1024,
        external_medium=lte_medium(),
        k=2,
    )
    assert params.sign_j == pytest.approx(0.4)
    assert params.verify_j == pytest.approx(0.02)
    # 4G per-byte cost is much larger than WiFi per-byte cost.
    assert params.ext_send_per_byte_j > params.send_per_byte_j
    assert params.signature_bytes == 128
    assert params.k == 2


def test_parameters_from_components_accepts_scheme_name():
    params = parameters_from_components(
        n=4, f=1, message_bytes=64, medium=wifi_medium(), signature="hmac-sha256"
    )
    assert params.sign_j == pytest.approx(0.19)


def test_linear_cost_model_matches_formula():
    model = LinearCostModel(c1=1, c2=2, c3=0, c4=0, c5=0, c6=3, c7=4)
    params = make_params()
    expected = 1 * 256 + 2 * 10 + 3 * 0.4 + 4 * 10 * 0.02
    assert model(params) == pytest.approx(expected)


def test_linear_cost_model_as_cost_function_sweep():
    fn = LinearCostModel(c1=1).as_cost_function()
    sweep = fn.sweep(make_params(), [10, 20])
    assert sweep[20] == pytest.approx(2 * sweep[10])


def test_cost_function_clamps_tiny_negative_noise():
    fn = CostFunction("noise", lambda p: -1e-15)
    assert fn(make_params()) == 0.0
