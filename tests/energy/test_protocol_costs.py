"""Unit tests for the analytic per-protocol cost models."""

import pytest

from repro.crypto.energy_costs import RSA_1024
from repro.energy.model import parameters_from_components
from repro.energy.protocol_costs import (
    cost_model,
    eesmr_cost_model,
    optsync_cost_model,
    sync_hotstuff_cost_model,
    trusted_baseline_cost_model,
)
from repro.radio.media import lte_medium, wifi_medium


def params(n=10, f=4, m=256, k=3):
    return parameters_from_components(
        n=n,
        f=f,
        message_bytes=m,
        medium=wifi_medium(),
        signature=RSA_1024,
        external_medium=lte_medium(),
        k=k,
        d=k,
    )


def test_registry_lookup():
    assert cost_model("eesmr").name == "eesmr"
    with pytest.raises(KeyError):
        cost_model("pbft")


def test_all_costs_positive():
    point = params()
    for factory in (eesmr_cost_model, sync_hotstuff_cost_model, optsync_cost_model):
        model = factory()
        assert model.best_case(point) > 0
        assert model.view_change(point) > 0
    assert trusted_baseline_cost_model().best_case(point) > 0
    assert trusted_baseline_cost_model().view_change(point) == 0.0


def test_eesmr_best_case_cheaper_than_baselines():
    point = params()
    eesmr = eesmr_cost_model().best_case(point)
    assert eesmr < sync_hotstuff_cost_model().best_case(point)
    assert eesmr < optsync_cost_model().best_case(point)


def test_optsync_at_least_as_expensive_as_sync_hotstuff():
    point = params()
    assert optsync_cost_model().best_case(point) >= sync_hotstuff_cost_model().best_case(point)


def test_eesmr_view_change_more_expensive_than_sync_hotstuff():
    """The trade-off the paper quantifies: EESMR pays more during a view change."""
    point = params()
    assert eesmr_cost_model().view_change(point) > sync_hotstuff_cost_model().view_change(point)


def test_worst_case_is_best_plus_view_change():
    point = params()
    model = eesmr_cost_model()
    assert model.worst_case(point) == pytest.approx(
        model.best_case(point) + model.view_change(point)
    )


def test_evaluate_returns_all_three_components():
    result = eesmr_cost_model().evaluate(params())
    assert set(result) == {"best_case", "view_change", "worst_case"}


def test_costs_grow_with_message_size():
    model = eesmr_cost_model()
    assert model.best_case(params(m=2048)) > model.best_case(params(m=128))


def test_costs_grow_with_n():
    for factory in (eesmr_cost_model, sync_hotstuff_cost_model, trusted_baseline_cost_model):
        model = factory()
        assert model.best_case(params(n=30, f=14)) > model.best_case(params(n=6, f=2))


def test_sync_hotstuff_grows_faster_with_n_than_eesmr():
    """Table 3: certificate-based protocols pay O(n^2) verification."""
    small, large = params(n=6, f=2), params(n=30, f=14)
    eesmr_growth = eesmr_cost_model().best_case(large) / eesmr_cost_model().best_case(small)
    shs_growth = sync_hotstuff_cost_model().best_case(large) / sync_hotstuff_cost_model().best_case(small)
    assert shs_growth > eesmr_growth


def test_baseline_independent_of_local_medium_k():
    baseline = trusted_baseline_cost_model()
    assert baseline.best_case(params(k=1)) == pytest.approx(baseline.best_case(params(k=5)))
