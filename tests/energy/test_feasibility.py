"""Unit tests for the Fig. 1 feasible-region analysis."""

import numpy as np
import pytest

from repro.energy.feasibility import feasible_region


@pytest.fixture(scope="module")
def region():
    return feasible_region(
        message_sizes=(256, 1024, 4096),
        node_counts=tuple(range(4, 41, 4)),
    )


def test_grid_shape(region):
    assert region.difference.shape == (3, 10)
    assert list(region.message_sizes) == [256, 1024, 4096]


def test_region_contains_both_signs(region):
    """Fig. 1 shows a genuine feasible region: EESMR wins somewhere, loses somewhere."""
    assert np.any(region.difference < 0)
    assert np.any(region.difference > 0)
    assert 0.0 < region.favourable_fraction < 1.0


def test_eesmr_favourable_for_small_n(region):
    assert region.is_favourable(1024, 4)


def test_baseline_favourable_for_large_n(region):
    assert not region.is_favourable(1024, 40)


def test_crossover_monotone_meaning(region):
    """At the crossover n, smaller systems favour EESMR and larger ones do not."""
    crossover = region.crossover_n(1024)
    assert crossover is not None
    assert region.is_favourable(1024, crossover - 4)
    assert not region.is_favourable(1024, crossover + 4)


def test_summary_rows_cover_all_sizes(region):
    rows = region.summary_rows()
    assert [row["message_bytes"] for row in rows] == [256, 1024, 4096]
    for row in rows:
        assert row["min_difference_j"] <= row["max_difference_j"]
        assert 0.0 <= row["favourable_fraction"] <= 1.0


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        feasible_region(message_sizes=(), node_counts=(4,))


def test_fixed_k_region_all_favourable():
    """With cheap one-hop k=1 local traffic, EESMR beats the 4G baseline everywhere."""
    region = feasible_region(message_sizes=(256, 1024), node_counts=(4, 8, 16), k=1)
    assert region.favourable_fraction == 1.0
