"""The suppression grammar: parsing, targeting, and the meta-rules."""

from __future__ import annotations

import textwrap

from repro.analysis.suppressions import parse_suppressions


def test_trailing_suppression_covers_its_own_line() -> None:
    sheet = parse_suppressions(
        "x = compute()  # detlint: ok ordered-iteration — order feeds a set\n"
    )
    (sup,) = sheet.suppressions
    assert sup.line == 1
    assert sup.target_line == 1
    assert sup.rules == ("ordered-iteration",)
    assert sup.reason == "order feeds a set"


def test_standalone_suppression_covers_the_next_line() -> None:
    source = textwrap.dedent(
        """\
        def f():
            # detlint: ok rng-stream-discipline — test-only fallback stream
            return SeededRNG(0)
        """
    )
    (sup,) = parse_suppressions(source).suppressions
    assert sup.line == 2
    assert sup.target_line == 3


def test_multiple_rules_and_ascii_dash() -> None:
    sheet = parse_suppressions(
        "y = f()  # detlint: ok no-wall-clock, ordered-iteration -- both benign here\n"
    )
    (sup,) = sheet.suppressions
    assert sup.rules == ("no-wall-clock", "ordered-iteration")
    assert sup.covers(1, "no-wall-clock")
    assert sup.covers(1, "ordered-iteration")
    assert not sup.covers(1, "slots-discipline")


def test_star_covers_every_rule() -> None:
    (sup,) = parse_suppressions("z = g()  # detlint: ok * — generated code\n").suppressions
    assert sup.covers(1, "anything-at-all")


def test_missing_reason_is_malformed() -> None:
    sheet = parse_suppressions("x = f()  # detlint: ok ordered-iteration\n")
    assert sheet.suppressions == []
    (line, message) = sheet.malformed[0]
    assert line == 1
    assert "reason is mandatory" in message


def test_unknown_marker_form_is_malformed() -> None:
    sheet = parse_suppressions("x = f()  # detlint: disable=foo\n")
    assert sheet.suppressions == []
    assert len(sheet.malformed) == 1


def test_grammar_inside_strings_and_docstrings_is_ignored() -> None:
    source = textwrap.dedent(
        '''\
        """Docs quoting the grammar: # detlint: ok rule — reason."""

        EXAMPLE = "# detlint: bad marker inside a string"
        '''
    )
    sheet = parse_suppressions(source)
    assert sheet.suppressions == []
    assert sheet.malformed == []


def test_module_override_comment_is_not_a_suppression() -> None:
    sheet = parse_suppressions("# detlint-module: repro.energy.fixture\n")
    assert sheet.suppressions == []
    assert sheet.malformed == []


def test_match_marks_used_and_unused_reports_the_rest() -> None:
    source = (
        "a = f()  # detlint: ok no-wall-clock — measured, never stored\n"
        "b = g()  # detlint: ok ordered-iteration — membership only\n"
    )
    sheet = parse_suppressions(source)
    assert sheet.match(1, "no-wall-clock") is not None
    assert sheet.match(1, "ordered-iteration") is None  # wrong rule for line 1
    unused = sheet.unused()
    assert [s.line for s in unused] == [2]


def test_untokenizable_source_yields_no_suppressions() -> None:
    # The unterminated triple-quote swallows the marker and then raises
    # TokenError at EOF; the sheet must come back empty, not explode.
    sheet = parse_suppressions("'''unterminated\n# detlint: ok x — y\n")
    assert sheet.suppressions == []
    assert sheet.malformed == []
