"""The analyzer engine and CLI: scoping, suppression flow, exit codes.

Temporary trees are written under ``tmp_path`` so the suppression
machinery is exercised end to end (finding → inline suppression →
meta-rules) without touching the shipped fixtures.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro import cli
from repro.analysis import Analyzer, analyze, main

FIXTURES = Path(__file__).parent / "fixtures"

#: A module with one rng-stream-discipline violation on line 2.
VIOLATION = "def stream():\n    return SeededRNG(99)\n"

#: The same module with the violation suppressed inline.
SUPPRESSED = (
    "def stream():\n"
    "    # detlint: ok rng-stream-discipline — fixture exercising suppression flow\n"
    "    return SeededRNG(99)\n"
)


def _write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


# ------------------------------------------------------------------ engine API
def test_findings_surface_and_exit_via_report(tmp_path: Path) -> None:
    path = _write(tmp_path, "mod.py", VIOLATION)
    report = analyze([path], root=tmp_path)
    assert not report.ok
    (finding,) = report.findings
    assert finding.rule == "rng-stream-discipline"
    assert (finding.path, finding.line) == ("mod.py", 2)


def test_inline_suppression_silences_and_is_counted(tmp_path: Path) -> None:
    path = _write(tmp_path, "mod.py", SUPPRESSED)
    report = analyze([path], root=tmp_path)
    assert report.ok, report.render_human()
    assert report.suppressed == 1


def test_unused_suppression_is_reported_on_full_runs(tmp_path: Path) -> None:
    path = _write(
        tmp_path,
        "mod.py",
        "X = 1  # detlint: ok no-wall-clock — nothing here reads the clock\n",
    )
    report = analyze([path], root=tmp_path)
    (finding,) = report.findings
    assert finding.rule == "unused-suppression"
    # A scoped --select run cannot audit use, so it must stay quiet.
    scoped = analyze([path], select=["no-wall-clock"], root=tmp_path)
    assert scoped.ok


def test_malformed_suppression_is_reported(tmp_path: Path) -> None:
    path = _write(tmp_path, "mod.py", "X = 1  # detlint: ok no-wall-clock\n")
    report = analyze([path], root=tmp_path)
    (finding,) = report.findings
    assert finding.rule == "bad-suppression"


def test_ignore_skips_rules_and_meta_rules(tmp_path: Path) -> None:
    _write(tmp_path, "mod.py", VIOLATION + "Y = 2  # detlint: ok nope\n")
    report = analyze(
        [tmp_path],
        ignore=["rng-stream-discipline", "bad-suppression", "unused-suppression"],
        root=tmp_path,
    )
    assert report.ok, report.render_human()


def test_unknown_rule_raises_key_error(tmp_path: Path) -> None:
    _write(tmp_path, "mod.py", VIOLATION)
    with pytest.raises(KeyError):
        analyze([tmp_path], select=["no-such-rule"], root=tmp_path)


def test_pycache_directories_are_skipped(tmp_path: Path) -> None:
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    _write(cache, "stale.py", VIOLATION)
    _write(tmp_path, "mod.py", "X = 1\n")
    report = Analyzer(root=tmp_path).run([tmp_path])
    assert report.files_analyzed == 1
    assert report.ok


# ------------------------------------------------------------------------ CLI
def test_cli_exit_codes(tmp_path: Path, capsys) -> None:
    bad = _write(tmp_path, "bad.py", VIOLATION)
    good = _write(tmp_path, "good.py", "X = 1\n")
    assert main([str(good)]) == 0
    assert "detlint: clean" in capsys.readouterr().out
    assert main([str(bad)]) == 1
    assert "rng-stream-discipline" in capsys.readouterr().out
    assert main([str(tmp_path / "missing.py")]) == 2
    assert main([str(good), "--select", "no-such-rule"]) == 2


def test_cli_json_format(tmp_path: Path, capsys) -> None:
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    (finding,) = payload["findings"]
    assert finding["rule"] == "rng-stream-discipline"
    assert finding["line"] == 2
    assert "rng-stream-discipline" in payload["rules_run"]


def test_cli_list_rules(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in (
        "no-unseeded-randomness",
        "no-wall-clock",
        "ordered-iteration",
        "rng-stream-discipline",
        "registry-coherence",
        "observer-signature-drift",
        "slots-discipline",
        "no-float-accumulation-order",
        "bad-suppression",
        "unused-suppression",
    ):
        assert rule in out


def test_repro_analyze_subcommand_matches_module_entry(tmp_path: Path, capsys) -> None:
    bad = _write(tmp_path, "bad.py", VIOLATION)
    assert cli.main(["analyze", str(bad)]) == 1
    via_subcommand = capsys.readouterr().out
    assert main([str(bad)]) == 1
    via_module = capsys.readouterr().out
    assert via_subcommand == via_module
    assert cli.main(["analyze", "--list-rules"]) == 0


# ------------------------------------- regression: the shipped suppressions
def test_shipped_rng_fallback_suppressions_still_fire_when_removed(tmp_path: Path) -> None:
    """The two SeededRNG(0) fallbacks in net/ are suppressed, not invisible.

    PR 10 triaged them as constructor conveniences (every session build
    injects a spec-derived stream); this pins both halves of that triage:
    the suppression comment is present, and stripping it re-fires the
    rule — i.e. the suppression is load-bearing, not stale.
    """
    repo_src = Path(__file__).resolve().parents[2] / "src"
    for relpath in ("repro/net/network.py", "repro/net/topology.py"):
        source = (repo_src / relpath).read_text(encoding="utf-8")
        assert "# detlint: ok rng-stream-discipline" in source, relpath
        stripped = "\n".join(
            line
            for line in source.splitlines()
            if "# detlint: ok rng-stream-discipline" not in line
        )
        path = _write(tmp_path, Path(relpath).name, stripped)
        report = analyze([path], select=["rng-stream-discipline"], root=tmp_path)
        assert not report.ok, f"{relpath}: suppression no longer covers a finding"
        assert {f.rule for f in report.findings} == {"rng-stream-discipline"}
