"""Per-rule fixture battery: every rule fires on its planted file and
stays silent on its clean counterpart.

The fixtures under ``fixtures/`` are analyzed, never imported — each is
a miniature module planted with exactly the violations its rule hunts
(see the inline ``# finding:`` markers) plus a clean twin written the
way the real tree should be written.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze, default_registry

FIXTURES = Path(__file__).parent / "fixtures"

#: (fixture slug, rule name, findings expected from the planted file).
CASES = [
    ("randomness", "no-unseeded-randomness", 4),
    ("wallclock", "no-wall-clock", 4),
    ("ordering", "ordered-iteration", 4),
    ("rng_discipline", "rng-stream-discipline", 3),
    ("registries", "registry-coherence", 9),
    ("observers", "observer-signature-drift", 5),
    ("slots", "slots-discipline", 3),
    ("floats", "no-float-accumulation-order", 3),
]


def _run(path: Path, rule: str):
    return analyze([path], select=[rule], root=FIXTURES)


@pytest.mark.parametrize("slug,rule,expected", CASES, ids=[c[1] for c in CASES])
def test_planted_fixture_fires(slug: str, rule: str, expected: int) -> None:
    report = _run(FIXTURES / f"planted_{slug}.py", rule)
    assert len(report.findings) == expected, report.render_human()
    assert {f.rule for f in report.findings} == {rule}
    # Findings are anchored: real line numbers, 1-based columns.
    assert all(f.line >= 1 and f.column >= 1 for f in report.findings)


@pytest.mark.parametrize("slug,rule,expected", CASES, ids=[c[1] for c in CASES])
def test_clean_fixture_is_silent(slug: str, rule: str, expected: int) -> None:
    report = _run(FIXTURES / f"clean_{slug}.py", rule)
    assert report.ok, report.render_human()
    assert report.findings == []


def test_every_shipped_rule_has_a_fixture_pair() -> None:
    """Adding a checker without a planted/clean pair fails here."""
    covered = {rule for _, rule, _ in CASES}
    assert set(default_registry().names()) == covered
    for slug, _, _ in CASES:
        assert (FIXTURES / f"planted_{slug}.py").is_file()
        assert (FIXTURES / f"clean_{slug}.py").is_file()


def test_findings_sort_and_render() -> None:
    report = _run(FIXTURES / "planted_ordering.py", "ordered-iteration")
    lines = [f.line for f in report.findings]
    assert lines == sorted(lines)
    rendered = report.findings[0].render()
    assert rendered.startswith("planted_ordering.py:")
    assert "[ordered-iteration]" in rendered
