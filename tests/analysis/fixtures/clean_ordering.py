"""Clean counterpart for ordered-iteration: sets are sorted before use."""


def schedule(nodes):
    pending = {node for node in nodes if node % 2}
    for node in sorted(pending):
        emit(node)
    order = sorted(pending)
    labels = [str(node) for node in sorted(pending)]
    joined = ",".join(sorted({"a", "b", "c"}))
    by_name = {"a": 1, "b": 2}
    for key in by_name:  # dicts iterate in insertion order: not flagged
        emit(key)
    return order, labels, joined


def emit(node):
    return node
