# detlint-module: repro.energy.fixture_clean
"""Clean counterpart for no-float-accumulation-order: defined sum order."""


def total_energy(per_node):
    drawn = {cost for cost in per_node}
    return sum(sorted(drawn))


def weighted(per_node):
    drawn = [cost * 2.0 for cost in per_node]
    return sum(drawn)


def ledger_total(by_node):
    return sum(by_node[node] for node in by_node)  # dict order is insertion order
