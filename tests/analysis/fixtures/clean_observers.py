"""Clean counterpart for observer-signature-drift: bus and hooks agree."""


class SessionObserver:
    def on_event(self, time, label):
        pass

    def on_block_commit(self, pid, block, view, time):
        pass

    def on_session_end(self, session, result):
        pass


OBSERVER_HOOKS = (
    "on_event",
    "on_block_commit",
    "on_session_end",
)


class ObserverBus:
    def __init__(self):
        self._observers = []

    def event(self, time, label):
        for observer in self._observers:
            observer.on_event(time, label)

    def block_commit(self, pid, block, view, time):
        for observer in self._observers:
            observer.on_block_commit(pid, block, view, time)

    def session_end(self, session, result):
        for observer in self._observers:
            observer.on_session_end(session, result)


def emit(bus: ObserverBus):
    bus.event(1.0, "label")
    bus.block_commit(0, object(), 1, 2.0)
