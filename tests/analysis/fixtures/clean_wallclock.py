"""Clean counterpart for no-wall-clock: perf counters are allowlisted."""

import time


def measure(work) -> float:
    start = time.perf_counter()
    work()
    return time.perf_counter() - start


def virtual_now(sim) -> float:
    return sim.now
