"""Planted violations for ordered-iteration (never imported)."""


def schedule(nodes):
    pending = {node for node in nodes if node % 2}
    for node in pending:  # finding: for-loop over a set
        emit(node)
    order = list(pending)  # finding: list() materialises hash order
    labels = [str(node) for node in pending]  # finding: comprehension over a set
    joined = ",".join({"a", "b", "c"})  # finding: join over a set display
    return order, labels, joined


def emit(node):
    return node
