"""Planted violations for registry-coherence (never imported).

A self-contained mini copy of the repo's three registries, each broken
in one of the ways the rule is meant to catch at PR time.
"""

from dataclasses import dataclass


class Fault:
    def describe(self):
        return {}


@dataclass
class CrashAt(Fault):
    at: float = 0.0


@dataclass
class ForgottenAtom(Fault):  # finding: leaf atom missing from FAULT_KINDS
    at: float = 0.0


class PlainAtom(Fault):  # finding: registered but not a @dataclass
    pass


@dataclass
class SneakyAtom(Fault):
    _hidden: int = 0  # finding: underscore field drops out of the round trip


class NotAFault:
    pass


FAULT_KINDS = {  # finding: NotAFault is not a Fault subclass
    "CrashAt": CrashAt,
    "PlainAtom": PlainAtom,
    "SneakyAtom": SneakyAtom,
    "NotAFault": NotAFault,
}


class WorkloadEngine:
    kind = "base"


class GoodEngine(WorkloadEngine):
    kind = "good"


class StealthEngine(WorkloadEngine):  # finding: unregistered + never deserialised
    kind = "stealth"


WORKLOAD_KINDS = {"good": GoodEngine}


def workload_from_dict(data):
    if data["kind"] == GoodEngine.kind:
        return GoodEngine()
    raise ValueError(data["kind"])


@dataclass
class ImpairmentSpec:
    loss: float = 0.0
    extra: int = 0  # finding: missing from _SPEC_KEYS

    def describe(self):
        return {"loss": self.loss}  # finding: never emits 'extra'


_SPEC_KEYS = frozenset(("loss", "ghost"))  # finding: 'ghost' is not a field
