"""Clean counterpart for no-unseeded-randomness: seeded streams only."""

from repro.sim.rng import SeededRNG, derive_seed


def draw(seed: int) -> float:
    rng = SeededRNG(derive_seed(seed, "fixture", "draw"))
    return rng.random()


def request_id(rng: SeededRNG) -> int:
    return rng.child("request-id").randrange(2**63)
