"""Planted violations for slots-discipline (never imported)."""


class Event:  # finding: hot-path class without __slots__
    def __init__(self, time, label):
        self.time = time
        self.label = label


class TimerEvent(Event):  # finding: subclass also needs its own __slots__
    pass


class DisseminationPlan:  # finding: hot-path class without __slots__
    def __init__(self, hops):
        self.hops = hops
