"""Planted violations for no-unseeded-randomness (never imported)."""

import os
import random  # finding: import of the stdlib random module
import uuid
from secrets import token_bytes  # finding: OS entropy


def draw() -> float:
    return random.random()


def entropy() -> bytes:
    return os.urandom(8) + token_bytes(4)  # finding: os.urandom


def request_id() -> str:
    return str(uuid.uuid4())  # finding: uuid.uuid4
