"""Planted violations for rng-stream-discipline (never imported)."""

import random

from repro.sim.rng import SeededRNG


def improvised_stream():
    return SeededRNG(42)  # finding: hard-coded root seed


def rewind(rng):
    rng.seed(7)  # finding: in-place re-seed of a shared stream
    return rng


def raw_generator():
    return random.Random(3)  # finding: bypasses the seeded wrapper
