"""Planted violations for observer-signature-drift (never imported).

A self-contained mini observer protocol whose bus drifted from the
hook signatures in every way the rule is meant to catch.
"""


class SessionObserver:
    def on_event(self, time, label):
        pass

    def on_block_commit(self, pid, block, view, time):
        pass

    def on_session_end(self, session, result):
        pass


OBSERVER_HOOKS = (
    "on_event",
    "on_block_commit",
    "on_teardown",  # finding: SessionObserver does not define on_teardown
    # finding: on_session_end is missing from this tuple
)


class ObserverBus:
    def __init__(self):
        self._observers = []

    def event(self, time, label):
        for observer in self._observers:
            observer.on_event(time, label)

    def block_commit(self, pid, block):
        for observer in self._observers:
            observer.on_block_commit(pid, block)  # finding: hook takes 4 args

    def session_end(self, session, result):
        for observer in self._observers:
            observer.on_missing(session, result)  # finding: undefined hook


def emit(bus: ObserverBus):
    bus.event("only-one-arg")  # finding: dispatch takes 2 args
