"""Clean counterpart for registry-coherence: a coherent mini registry.

Also exercises the exemptions: intermediate bases (WindowFault) and
underscore-prefixed helpers (_ProbeAtom) may stay unregistered.
"""

from dataclasses import dataclass


class Fault:
    def describe(self):
        return {}


class WindowFault(Fault):
    """Intermediate base — exempt because CrashAt inherits from it."""


@dataclass
class CrashAt(WindowFault):
    at: float = 0.0


@dataclass
class StallAt(Fault):
    at: float = 0.0
    duration: float = 1.0


class _ProbeAtom(Fault):
    """Underscore-prefixed test helper — exempt from registration."""


FAULT_KINDS = {
    "CrashAt": CrashAt,
    "StallAt": StallAt,
}


class WorkloadEngine:
    kind = "base"


class GoodEngine(WorkloadEngine):
    kind = "good"


WORKLOAD_KINDS = {"good": GoodEngine}


def workload_from_dict(data):
    if data["kind"] == GoodEngine.kind:
        return GoodEngine()
    raise ValueError(data["kind"])


@dataclass
class ImpairmentSpec:
    loss: float = 0.0
    jitter: float = 0.0

    def describe(self):
        return {"loss": self.loss, "jitter": self.jitter}


_SPEC_KEYS = frozenset(("loss", "jitter"))
