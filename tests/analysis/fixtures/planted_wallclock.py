"""Planted violations for no-wall-clock (never imported)."""

import time
from datetime import datetime
from time import monotonic  # finding: from-import of a wall-clock reader


def stamp() -> float:
    return time.time()  # finding: wall-clock read


def tick() -> float:
    return time.monotonic() + monotonic()  # finding: wall-clock read


def today() -> str:
    return datetime.now().isoformat()  # finding: wall-clock read
