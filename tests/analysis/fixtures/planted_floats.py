# detlint-module: repro.energy.fixture_planted
"""Planted violations for no-float-accumulation-order (never imported).

The magic comment above scopes this fixture into the energy path, where
float sums feed the conservation invariant.
"""


def total_energy(per_node):
    drawn = {cost for cost in per_node}
    return sum(drawn)  # finding: sum over a set


def weighted(per_node):
    drawn = {cost for cost in per_node}
    return sum(cost * 2.0 for cost in drawn)  # finding: generator over a set


def display_total():
    return sum({0.1, 0.2, 0.3})  # finding: sum over a set display
