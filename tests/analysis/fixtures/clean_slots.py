"""Clean counterpart for slots-discipline: every hot class is slotted."""


class Event:
    __slots__ = ("time", "label")

    def __init__(self, time, label):
        self.time = time
        self.label = label


class TimerEvent(Event):
    __slots__ = ()


class DisseminationPlan:
    __slots__ = ("hops",)

    def __init__(self, hops):
        self.hops = hops


class ColdRecord:  # not a hot-path class: a __dict__ is fine here
    def __init__(self, note):
        self.note = note
