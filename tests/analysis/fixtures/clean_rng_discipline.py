"""Clean counterpart for rng-stream-discipline: derived streams only."""

from repro.sim.rng import SeededRNG, derive_seed


def derived_stream(spec_seed: int) -> SeededRNG:
    return SeededRNG(derive_seed(spec_seed, "fixture", "stream"))


def child_stream(rng: SeededRNG) -> SeededRNG:
    return rng.child("fixture-child")
