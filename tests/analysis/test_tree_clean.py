"""Meta-test: the shipped tree passes its own static analyzer.

This is the PR-blocking contract ``make analyze`` enforces in CI,
pinned here so ``make test-fast`` catches a regression before the CI
round trip: every rule runs, every suppression carries its reason and
covers a live finding, and the pass stays inside its CI time budget.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import Analyzer, default_registry

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"

#: ci.yml treats the analyzer as a < 10 s gate; leave generous headroom
#: for slow CI runners while still catching an accidental O(n^2) pass.
CI_BUDGET_SECONDS = 10.0


def test_shipped_tree_is_detlint_clean() -> None:
    start = time.perf_counter()
    report = Analyzer(root=REPO_ROOT).run([SRC])
    elapsed = time.perf_counter() - start
    assert report.ok, "\n" + report.render_human()
    assert report.files_analyzed > 50
    assert set(report.rules_run) == set(default_registry().names())
    assert len(report.rules_run) >= 8
    assert elapsed < CI_BUDGET_SECONDS


def test_suppression_inventory_is_small_and_justified() -> None:
    """Suppressions are a budget, not a convenience.

    Every one must sit in the net/ fallback triage from PR 10; growing
    the inventory is a deliberate act that updates this pin alongside an
    inline reason.
    """
    report = Analyzer(root=REPO_ROOT).run([SRC])
    assert report.ok
    assert report.suppressed == 2
