"""Meta-test: a deliberately broken protocol must be *caught* by the testkit.

A checker that never fires is worthless.  This test wires a mutated EESMR
replica — one that ignores the 4Δ quiet-period rule and immediately
commits a pid-dependent choice among equivocating proposals — into a real
deployment under an equivocating leader, and asserts that the fork it
produces is detected by both the :class:`SafetyChecker` and the
testkit's agreement invariant.
"""

import pytest

from repro.core.adversary import EquivocatingLeaderReplica, FaultPlan
from repro.core.client import AckRouter
from repro.core.config import ProtocolConfig
from repro.core.eesmr.replica import EesmrReplica
from repro.core.ledger import SafetyChecker
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import make_scheme
from repro.energy.ledger import ClusterEnergyLedger
from repro.eval.runner import DeploymentSpec
from repro.eval.workloads import client_for_run, commands_for_run, fill_txpools
from repro.net.network import SimulatedNetwork
from repro.net.topology import ring_kcast_topology
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator
from repro.testkit.invariants import AgreementInvariant, Evidence, InvariantViolation
from repro.testkit.trace import TraceRecorder


class ForkingReplica(EesmrReplica):
    """Deliberately broken: commits an equivocated round without the quiet
    period, choosing between the twins by pid parity — so even and odd
    nodes commit conflicting blocks at the same height."""

    def _handle_equivocation(self, view, first, second):
        self.commit_timers.cancel_all()
        twins = sorted((first.data, second.data), key=lambda block: block.block_hash)
        choice = twins[0] if self.pid % 2 == 0 else twins[1]
        self.store_block(choice)
        self.commit_chain(choice)


def run_broken_deployment():
    """An EESMR deployment of ForkingReplicas under an equivocating leader."""
    spec = DeploymentSpec(
        protocol="eesmr",
        n=5,
        f=1,
        k=2,
        target_height=3,
        seed=3,
        fault_plan=FaultPlan(faulty=(0,), behaviour="equivocate", trigger_round=3),
    )
    sim = Simulator(trace=True)
    rng = SeededRNG(spec.seed)
    topology = ring_kcast_topology(spec.n, spec.k)
    ledger = ClusterEnergyLedger(topology.nodes)
    network = SimulatedNetwork(sim, topology, ledger, rng=rng.child("network"))
    keystore = KeyStore(seed=spec.seed)
    keystore.generate(topology.nodes)
    scheme = make_scheme(spec.signature_scheme, keystore=keystore)
    config = ProtocolConfig(n=spec.n, f=spec.f, delta=4.0, target_height=spec.target_height)
    ack_router = AckRouter([client_for_run(spec.f, seed=spec.seed)])

    replicas = {}
    for pid in range(spec.n):
        cls = EquivocatingLeaderReplica if pid == 0 else ForkingReplica
        kwargs = {"trigger_round": 3} if pid == 0 else {}
        replicas[pid] = cls(
            sim, pid, config, scheme, network, ledger.meter(pid), ack_router, **kwargs
        )
        network.register(replicas[pid])

    fill_txpools(replicas.values(), commands_for_run(spec.target_height, 1, seed=spec.seed))
    for replica in replicas.values():
        replica.start()
    # Stop before the view change completes: the fork has already happened
    # once the twins are flooded, and running further only piles recovery
    # traffic (and local safety explosions) on top of it.
    sim.run(until=10.0)

    safety = SafetyChecker(
        {pid: r.log for pid, r in replicas.items()}, faulty=spec.fault_plan.faulty
    ).check()
    trace = TraceRecorder().capture(
        spec, config, sim, ledger, network, scheme, replicas, safety
    )
    return spec, trace, safety


def test_broken_protocol_forks_and_is_caught():
    spec, trace, safety = run_broken_deployment()
    # The mutation really forked: the run is NOT consistent.
    assert not safety.consistent
    assert safety.details, "the safety checker should name the conflicting heights"
    # ... and the testkit's agreement invariant catches it.
    evidence = Evidence(spec=spec, result=None, trace=trace, label="forking-mutant")
    with pytest.raises(InvariantViolation, match="agreement"):
        AgreementInvariant().check(evidence)


def test_honest_control_run_passes_the_same_invariant():
    """The same harness with the mutation removed stays clean — the checker
    fires because of the mutation, not because of the harness."""
    from repro.eval.runner import ProtocolRunner

    spec = DeploymentSpec(
        protocol="eesmr",
        n=5,
        f=1,
        k=2,
        target_height=3,
        seed=3,
        fault_plan=FaultPlan(faulty=(0,), behaviour="equivocate", trigger_round=3),
    )
    result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    assert result.safety.consistent
    AgreementInvariant().check(Evidence(spec=spec, result=result, trace=result.trace))
