"""Sharded matrix execution: determinism, picklability, env-driven knob.

``ScenarioMatrix.run(parallel=N)`` shards cells over a process pool.
Cells are independent seeded runs, so the only things that could diverge
are merge order and pickling — both pinned here: a parallel report must
be identical to a serial one cell for cell, byte for byte.
"""

import pickle

import pytest

from repro.sim.scheduler import SimulationError
from repro.testkit.scenarios import (
    CellOutcome,
    ScenarioCell,
    ScenarioMatrix,
    SkippedCell,
)

SMALL = dict(
    protocols=("eesmr", "sync-hotstuff"),
    fault_names=("none", "crash-leader"),
    media=("ble",),
)


def test_parallel_run_is_byte_identical_to_serial():
    matrix = ScenarioMatrix(**SMALL)
    serial = matrix.run(parallel=1)
    parallel = matrix.run(parallel=2)
    assert serial.cells_run == parallel.cells_run
    assert serial.ok and parallel.ok
    assert [o.cell for o in serial.outcomes] == [o.cell for o in parallel.outcomes]
    serial_fps = [o.evidence.trace.fingerprint() for o in serial.outcomes]
    parallel_fps = [o.evidence.trace.fingerprint() for o in parallel.outcomes]
    assert serial_fps == parallel_fps


def test_parallel_run_records_skips_and_differentials_like_serial():
    matrix = ScenarioMatrix(
        protocols=("eesmr",), fault_names=("none", "two-crashes"), media=("ble",)
    )
    serial = matrix.run(parallel=1)
    parallel = matrix.run(parallel=2)
    assert [s.cell for s in serial.skipped] == [s.cell for s in parallel.skipped]
    assert [s.reason for s in serial.skipped] == [s.reason for s in parallel.skipped]
    assert serial.differential_failures == parallel.differential_failures
    parallel.assert_clean()


def test_cell_outcome_and_skipped_cell_are_picklable():
    matrix = ScenarioMatrix(**SMALL)
    outcome = matrix.run_cell(ScenarioCell("eesmr", "crash-leader", "ble"))
    clone = pickle.loads(pickle.dumps(outcome))
    assert isinstance(clone, CellOutcome)
    assert clone.ok == outcome.ok
    assert clone.cell == outcome.cell
    assert clone.evidence.trace.fingerprint() == outcome.evidence.trace.fingerprint()
    assert [r.name for r in clone.reports] == [r.name for r in outcome.reports]

    skip = SkippedCell(ScenarioCell("eesmr", "two-crashes", "ble"), "because")
    assert pickle.loads(pickle.dumps(skip)) == skip


def test_parallel_default_reads_environment_knob(monkeypatch):
    matrix = ScenarioMatrix(protocols=("eesmr",), fault_names=("none",), media=("ble",))
    monkeypatch.setenv("REPRO_MATRIX_PARALLEL", "2")
    report = matrix.run()  # parallel=None -> env
    assert report.cells_run == 1
    report.assert_clean()
    monkeypatch.setenv("REPRO_MATRIX_PARALLEL", "")
    assert matrix.run().cells_run == 1  # empty value falls back to serial


def test_parallel_worker_failure_propagates():
    """A cell that raises inside a worker must surface, not vanish."""
    matrix = ScenarioMatrix(**SMALL, max_events=1)  # guaranteed livelock trip
    with pytest.raises(SimulationError, match="max_events"):
        matrix.run(parallel=2)


@pytest.mark.matrix
def test_parallel_full_default_matrix_matches_serial():
    """The canonical 36-cell sweep, sharded, against its serial twin."""
    matrix = ScenarioMatrix()
    serial = matrix.run(parallel=1)
    parallel = matrix.run(parallel=2)
    assert serial.cells_run == parallel.cells_run == 36
    serial_fps = {
        o.cell.label(): o.evidence.trace.fingerprint() for o in serial.outcomes
    }
    parallel_fps = {
        o.cell.label(): o.evidence.trace.fingerprint() for o in parallel.outcomes
    }
    assert serial_fps == parallel_fps
    parallel.assert_clean()


@pytest.mark.matrix
def test_parallel_matrix_large_n_operating_point():
    """An n=100 operating point: feasible, clean, and deterministic under
    sharding — the growth direction this PR's compiled plans pay for."""
    matrix = ScenarioMatrix(
        protocols=("eesmr",),
        fault_names=("none", "crash-leader"),
        media=("ble",),
        n=100,
        f=2,
        k=4,
        target_height=2,
        seed=11,
    )
    serial = matrix.run(parallel=1)
    parallel = matrix.run(parallel=2)
    assert serial.cells_run == parallel.cells_run == 2
    assert [o.evidence.trace.fingerprint() for o in serial.outcomes] == [
        o.evidence.trace.fingerprint() for o in parallel.outcomes
    ]
    serial.assert_clean()
    parallel.assert_clean()
