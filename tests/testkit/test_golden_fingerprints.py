"""Golden trace fingerprints: the determinism contract for perf PRs.

These SHA-256 fingerprints were captured from the *pre-optimization* code
(the PR-1 testkit) for fixed specs and seeds.  Every hot-path optimization
since — flyweight serialization, tuple event heap, flood-state GC, lazy
annotations, verification memoization — must keep these runs byte-for-byte
identical: the canonical trace covers the full event schedule (times and
labels), per-node energy, network counters, committed chains and QC
validity, so any behavioural drift shows up here.

If a future PR changes these values *intentionally* (a protocol or model
change, not an optimization), update the constants and say why in the PR.
"""

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.testkit.trace import TraceRecorder

#: (spec kwargs) -> fingerprint captured before the hot-path overhaul.
GOLDEN = {
    "eesmr": "4bf9fdc196cc1ccaad4d3ee468375357c6fe59e100217f1fd1d8f047f988d780",
    "sync-hotstuff": "14eb88043bfd9b8da28365adb81cfaafc1e74798eb081f725230f7df6731222e",
    "optsync": "786c3cb8cc9a6035fc97a0bd782f61289b3b21036771484bdcb6f7fc808913d2",
    "trusted-baseline": "555289c6003a8157677d0e0cbb0719c27dc5cd3ae97d27fd9728ffa8e13942de",
}

GOLDEN_WIFI_N9 = "2e0dfed421d6cbfb067ae1eaf4cf134f5c0e66653495780e07d8eaebc088d566"


def run_fingerprint(**kwargs) -> str:
    spec = DeploymentSpec(n=5, f=1, k=2, target_height=3, **kwargs)
    result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    return result.trace.fingerprint()


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_traces_byte_identical_to_pre_optimization_runs(protocol):
    assert run_fingerprint(protocol=protocol, seed=17) == GOLDEN[protocol]


def test_larger_wifi_run_matches_golden_fingerprint():
    spec = DeploymentSpec(
        protocol="eesmr", n=9, f=2, k=2, target_height=4, seed=99, medium="wifi"
    )
    result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    assert result.trace.fingerprint() == GOLDEN_WIFI_N9
