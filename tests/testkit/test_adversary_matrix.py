"""Every adversary behaviour under every protocol.

The paper's three adversarial scenarios (stalling leader, equivocating
leader, silent relays) plus fail-stop, crossed with the three replicated
protocols.  Each cell asserts the *kind* of view change the behaviour must
trigger and that safety and liveness are never violated.

For the baseline protocols Byzantine leader behaviours are modelled as
fail-stop (as in the seed experiment runner), so their expected view
change is always the crash-style one.
"""

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.testkit.faults import FaultSchedule, crash_at, equivocate_at, silent, stall_at
from repro.testkit.invariants import Evidence, assert_all
from repro.testkit.trace import TraceRecorder

REPLICATED = ("eesmr", "sync-hotstuff", "optsync")

#: behaviour name -> (schedule builder, leader fault?)
BEHAVIOURS = {
    "crash": (lambda n: crash_at(0, time=0.0), True),
    "silent_leader": (lambda n: stall_at(0, round_number=4), True),
    "equivocate": (lambda n: equivocate_at(0, round_number=4), True),
    "silent": (lambda n: silent(n - 1), False),
}


def run_behaviour(protocol: str, behaviour: str):
    builder, _ = BEHAVIOURS[behaviour]
    spec = DeploymentSpec(
        protocol=protocol, n=5, f=1, k=2, target_height=3, seed=7,
        fault_schedule=builder(5),
    )
    result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    return spec, result


@pytest.mark.parametrize("protocol", REPLICATED)
@pytest.mark.parametrize("behaviour", sorted(BEHAVIOURS))
def test_behaviour_preserves_safety_and_liveness(protocol, behaviour):
    spec, result = run_behaviour(protocol, behaviour)
    assert result.safety.consistent, f"{protocol}×{behaviour} violated safety"
    assert result.min_committed_height >= spec.target_height
    assert_all(Evidence(spec=spec, result=result, trace=result.trace))


@pytest.mark.parametrize("protocol", REPLICATED)
@pytest.mark.parametrize("behaviour", ["crash", "silent_leader", "equivocate"])
def test_leader_faults_trigger_exactly_one_view_change(protocol, behaviour):
    _, result = run_behaviour(protocol, behaviour)
    assert result.view_changes == 1, (
        f"{protocol}×{behaviour}: expected one view change, saw {result.view_changes}"
    )


@pytest.mark.parametrize("protocol", REPLICATED)
def test_silent_replica_never_forces_a_view_change(protocol):
    _, result = run_behaviour(protocol, "silent")
    assert result.view_changes == 0


def test_eesmr_equivocation_takes_the_byzantine_view_change():
    _, result = run_behaviour("eesmr", "equivocate")
    assert result.equivocations_detected > 0
    assert result.blames_sent > 0  # blames carry the equivocation proof


@pytest.mark.parametrize("behaviour", ["crash", "silent_leader"])
def test_eesmr_no_progress_takes_the_crash_style_view_change(behaviour):
    _, result = run_behaviour("eesmr", behaviour)
    assert result.equivocations_detected == 0
    assert result.blames_sent >= 2  # an f+1 blame certificate was formed


@pytest.mark.parametrize("protocol", ("sync-hotstuff", "optsync"))
@pytest.mark.parametrize("behaviour", ["silent_leader", "equivocate"])
def test_baselines_model_byzantine_leaders_as_fail_stop(protocol, behaviour):
    _, result = run_behaviour(protocol, behaviour)
    # No equivocation is ever observed because the node simply stops.
    assert result.equivocations_detected == 0
    assert result.view_changes == 1


def test_optsync_recovers_from_leader_fail_stop_regression():
    """Regression for the new-view livelock: an OptSync leader fail-stop used
    to spin view changes forever because no non-leader node held a
    certificate (3n/4+1 quorum, partial vote forwarding) and the new leader
    refused to extend its own lock."""
    spec, result = run_behaviour("optsync", "crash")
    assert result.view_changes >= 1
    assert result.min_committed_height >= spec.target_height
    assert result.sim_time < 200.0  # quiesces promptly instead of livelocking
