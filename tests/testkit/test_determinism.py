"""Seed-determinism regression: identical spec + seed ⇒ byte-identical runs.

Every scale and performance PR regresses against this: if a change makes
two same-seed runs diverge — in the event trace, the metrics, or the
safety report — it has introduced nondeterminism into the simulation.
"""

import pytest

from repro.eval.runner import PROTOCOLS, DeploymentSpec, ProtocolRunner
from repro.testkit.faults import crash_at, equivocate_at
from repro.testkit.trace import TraceRecorder


def run_traced(**kwargs):
    spec = DeploymentSpec(n=5, f=1, k=2, target_height=3, **kwargs)
    return ProtocolRunner(recorder=TraceRecorder()).run(spec)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_same_seed_produces_byte_identical_traces(protocol):
    first = run_traced(protocol=protocol, seed=17)
    second = run_traced(protocol=protocol, seed=17)
    assert first.trace.canonical_json() == second.trace.canonical_json()
    assert first.trace.fingerprint() == second.trace.fingerprint()


def test_same_seed_produces_identical_metrics_and_safety():
    first = run_traced(protocol="eesmr", seed=23)
    second = run_traced(protocol="eesmr", seed=23)
    assert first.energy.per_node_joules == second.energy.per_node_joules
    assert first.energy.correct_total_joules == second.energy.correct_total_joules
    assert first.network.physical_transmissions == second.network.physical_transmissions
    assert first.network.physical_bytes == second.network.physical_bytes
    assert first.sim_time == second.sim_time
    assert first.committed_heights == second.committed_heights
    assert first.safety.consistent == second.safety.consistent
    assert first.safety.common_prefix_height == second.safety.common_prefix_height
    assert first.safety.details == second.safety.details


def test_determinism_holds_under_fault_schedules():
    for schedule_factory in (lambda: crash_at(0, time=0.0), lambda: equivocate_at(0, 4)):
        first = run_traced(protocol="eesmr", seed=31, fault_schedule=schedule_factory())
        second = run_traced(protocol="eesmr", seed=31, fault_schedule=schedule_factory())
        assert first.trace.fingerprint() == second.trace.fingerprint()


def test_different_seeds_diverge():
    first = run_traced(protocol="eesmr", seed=1)
    second = run_traced(protocol="eesmr", seed=2)
    assert first.trace.fingerprint() != second.trace.fingerprint()


def test_different_media_diverge():
    first = run_traced(protocol="eesmr", seed=5, medium="ble")
    second = run_traced(protocol="eesmr", seed=5, medium="wifi")
    assert first.trace.fingerprint() != second.trace.fingerprint()
