"""Unit tests for the FaultSchedule DSL."""

import pytest

from repro.core.adversary import FaultPlan
from repro.testkit.faults import (
    CrashAt,
    CrashRecoverWindow,
    EquivocateAt,
    FaultSchedule,
    PartitionWindow,
    RelayDropWindow,
    SilentFrom,
    StallAt,
    crash_at,
    crash_recover,
    drop_window,
    equivocate_at,
    no_faults,
    partition,
    silent,
    stall_at,
)

from tests.conftest import make_network


def test_empty_schedule():
    schedule = no_faults()
    assert len(schedule) == 0
    assert schedule.byzantine_nodes() == ()
    assert schedule.perturbed_nodes() == ()
    assert schedule.replica_behaviour(0) is None
    assert schedule.failstop_time(0) is None


def test_crash_at_maps_to_crash_behaviour():
    schedule = crash_at(2, time=5.0)
    assert schedule.byzantine_nodes() == (2,)
    assert schedule.replica_behaviour(2) == ("crash", {"crash_time": 5.0})
    assert schedule.replica_behaviour(1) is None
    assert schedule.failstop_time(2) == 5.0


def test_stall_and_equivocate_carry_trigger_round():
    assert stall_at(0, round_number=6).replica_behaviour(0) == (
        "silent_leader",
        {"trigger_round": 6},
    )
    assert equivocate_at(0, round_number=4).replica_behaviour(0) == (
        "equivocate",
        {"trigger_round": 4},
    )


def test_silent_fails_stop_baselines_immediately():
    schedule = silent(3)
    assert schedule.replica_behaviour(3) == ("silent", {})
    assert schedule.failstop_time(3) == 0.0


def test_environmental_faults_are_not_byzantine():
    schedule = drop_window(1, start=1.0, end=2.0).add(PartitionWindow(2, 0.0, 3.0))
    assert schedule.byzantine_nodes() == ()
    assert schedule.perturbed_nodes() == (1, 2)
    assert schedule.replica_behaviour(1) is None
    assert schedule.failstop_time(1) is None


def test_composition_preserves_all_faults():
    schedule = crash_at(0, 1.0).add(SilentFrom(4), RelayDropWindow(2, 0.0, 5.0))
    assert schedule.byzantine_nodes() == (0, 4)
    assert schedule.perturbed_nodes() == (0, 2, 4)
    assert len(schedule) == 3


def test_two_byzantine_behaviours_on_one_node_rejected():
    with pytest.raises(ValueError):
        FaultSchedule((CrashAt(1, 0.0), SilentFrom(1)))


def test_invalid_windows_rejected():
    with pytest.raises(ValueError):
        RelayDropWindow(0, start=5.0, end=1.0)
    with pytest.raises(ValueError):
        PartitionWindow(0, start=5.0, heal=1.0)


def test_non_fault_member_rejected():
    with pytest.raises(TypeError):
        FaultSchedule(("crash",))


def test_to_fault_plan_round_trip():
    plan = equivocate_at(0, round_number=5).to_fault_plan()
    assert plan == FaultPlan(faulty=(0,), behaviour="equivocate", trigger_round=5)
    assert no_faults().to_fault_plan() == FaultPlan()


def test_describe_is_deterministic_and_json_friendly():
    import json

    schedule = crash_at(0, 1.5).add(RelayDropWindow(3, 2.0, 4.0))
    description = schedule.describe()
    assert description == schedule.describe()
    assert json.dumps(description)  # serialisable
    assert description[0]["kind"] == "CrashAt"
    assert description[1] == {"kind": "RelayDropWindow", "node": 3, "start": 2.0, "end": 4.0}


def test_drop_window_toggles_relay_policy():
    sim, topology, ledger, network = make_network()
    schedule = drop_window(2, start=1.0, end=3.0)
    schedule.install(sim, network, {})
    assert 2 not in network.relay_policies
    sim.run(until=1.5)
    assert 2 in network.relay_policies
    assert network.relay_policies[2](0, "message") is False
    sim.run(until=3.5)
    assert 2 not in network.relay_policies


def test_partition_window_isolates_and_heals():
    sim, topology, ledger, network = make_network()
    schedule = partition(1, start=0.5, heal=2.0)
    schedule.install(sim, network, {})
    sim.run(until=1.0)
    assert 1 in network._partition
    sim.run(until=2.5)
    assert 1 not in network._partition


def test_byzantine_faults_never_relay():
    """As in the seed runner's worst case, a Byzantine node's relay policy
    is denied from t=0 even if its misbehaviour triggers later."""
    sim, topology, ledger, network = make_network()
    crash_at(0, time=2.0).add(SilentFrom(3)).install(sim, network, {})
    assert network.relay_policies[0](1, "message") is False
    assert network.relay_policies[3](1, "message") is False


def test_drop_window_restores_a_composed_permanent_policy():
    """A drop window on a node that already has a deny policy (from a
    composed Byzantine fault) must not clobber it when the window closes."""
    sim, topology, ledger, network = make_network()
    schedule = FaultSchedule((CrashAt(2, time=0.0), RelayDropWindow(2, 1.0, 3.0)))
    schedule.install(sim, network, {})
    sim.run(until=5.0)
    assert 2 in network.relay_policies
    assert network.relay_policies[2](0, "message") is False


def test_overlapping_partition_windows_do_not_heal_early():
    """Regression: two overlapping partition windows on one node.  Before
    isolation was refcounted, the first window's heal at t=5 reconnected the
    node while the second window ([2, 10)) was still open."""
    sim, topology, ledger, network = make_network()
    schedule = partition(3, start=1.0, heal=5.0).add(PartitionWindow(3, 2.0, 10.0))
    schedule.install(sim, network, {})
    sim.run(until=6.0)
    assert 3 in network._partition, "first heal must not lift the second window"
    sim.run(until=10.5)
    assert 3 not in network._partition


def test_interleaved_drop_windows_do_not_lift_denial_early():
    """Regression: interleaved relay-drop windows [1, 5) + [2, 10).  Before
    the denial state was shared and refcounted, the first window's close at
    t=5 restored `None` and the node relayed again while the second window
    was still active."""
    sim, topology, ledger, network = make_network()
    schedule = drop_window(2, start=1.0, end=5.0).add(RelayDropWindow(2, 2.0, 10.0))
    schedule.install(sim, network, {})
    sim.run(until=6.0)
    assert 2 in network.relay_policies, "denial must persist until the last window closes"
    assert network.relay_policies[2](0, "message") is False
    sim.run(until=10.5)
    assert 2 not in network.relay_policies


def test_zero_length_windows_are_rejected_at_construction():
    """Degenerate windows (end == start, or end < start) used to install as
    silent no-ops; every windowed atom now rejects them up front."""
    with pytest.raises(ValueError, match="degenerate drop window"):
        drop_window(2, start=3.0, end=3.0)
    with pytest.raises(ValueError, match="degenerate drop window"):
        RelayDropWindow(2, 5.0, 4.0)
    with pytest.raises(ValueError, match="degenerate partition window"):
        PartitionWindow(2, 3.0, 3.0)
    with pytest.raises(ValueError, match="degenerate partition window"):
        PartitionWindow(2, 6.0, 2.0)
    with pytest.raises(ValueError, match="degenerate crash-recover window"):
        CrashRecoverWindow(2, 3.0, 3.0)
    with pytest.raises(ValueError, match="degenerate crash-recover window"):
        CrashRecoverWindow(2, 6.0, 2.0)


def test_simultaneous_window_off_and_on_events():
    """Back-to-back windows [1, 5) and [5, 9): at t=5 the first closes and
    the second opens; the node must be denied throughout [1, 9)."""
    sim, topology, ledger, network = make_network()
    schedule = drop_window(2, start=1.0, end=5.0).add(RelayDropWindow(2, 5.0, 9.0))
    schedule.install(sim, network, {})
    sim.run(until=5.5)
    assert 2 in network.relay_policies
    assert network.relay_policies[2](0, "message") is False
    sim.run(until=9.5)
    assert 2 not in network.relay_policies


def test_same_node_byzantine_plus_interleaved_windows():
    """Windows stacked on a Byzantine node always restore the permanent
    Byzantine denial, never an intermediate window state."""
    sim, topology, ledger, network = make_network()
    schedule = FaultSchedule(
        (CrashAt(2, time=0.0), RelayDropWindow(2, 1.0, 4.0), RelayDropWindow(2, 2.0, 6.0))
    )
    schedule.install(sim, network, {})
    for until in (3.0, 5.0, 7.0):
        sim.run(until=until)
        assert network.relay_policies[2](0, "message") is False
    assert 2 not in network._relay_denial_depth


def test_liveness_exempt_nodes_distinguish_fault_classes():
    """Byzantine and partitioned nodes are exempt from liveness; a node
    perturbed only by relay-drop windows keeps committing and is not."""
    schedule = (
        crash_at(0, 1.0)
        .add(PartitionWindow(2, 0.0, 3.0))
        .add(RelayDropWindow(3, 1.0, 2.0))
    )
    assert schedule.perturbed_nodes() == (0, 2, 3)
    assert schedule.liveness_exempt_nodes() == (0, 2)
    # A drop window on an otherwise-Byzantine node stays exempt.
    stacked = crash_at(1, 0.0).add(RelayDropWindow(1, 1.0, 2.0))
    assert stacked.liveness_exempt_nodes() == (1,)


def test_concurrent_impairment_sets():
    schedule = (
        crash_at(0, time=2.0)  # Byzantine: impaired for the whole run
        .add(RelayDropWindow(2, 1.0, 5.0))
        .add(PartitionWindow(3, 4.0, 8.0))
        .add(RelayDropWindow(4, 9.0, 9.5))  # disjoint tail window
    )
    sets = schedule.concurrent_impairment_sets()
    assert frozenset({0, 2}) in sets  # during [1, 4)
    assert frozenset({0, 2, 3}) in sets  # during [4, 5)
    assert frozenset({0, 4}) in sets  # during [9, 9.5)
    assert no_faults().concurrent_impairment_sets() == []


# ------------------------------------------------ recovery-bearing atoms
def test_crash_recover_window_is_correct_not_byzantine():
    schedule = crash_recover(2, start=1.0, heal=4.0)
    assert schedule.byzantine_nodes() == ()
    assert schedule.perturbed_nodes() == (2,)
    assert schedule.max_byzantine() == 0
    assert schedule.replica_behaviour(2) is None
    assert schedule.failstop_time(2) is None


def test_crash_recover_window_powers_the_node_off_and_on():
    sim, topology, ledger, network = make_network()
    crash_recover(3, start=2.0, heal=6.0).install(sim, network, {})
    sim.run(until=3.0)
    assert 3 in network._partition
    sim.run(until=6.5)
    assert 3 not in network._partition


def test_recovery_bearing_atoms_yield_controllers():
    from repro.recovery.controller import RecoveryController
    from repro.testkit.faults import CrashRecoverWindow as CRW

    for atom in (PartitionWindow(1, 0.0, 3.0), CRW(1, 0.0, 3.0)):
        controller = atom.controller()
        assert isinstance(controller, RecoveryController)
        assert controller.fault is atom
    schedule = partition(0, 1.0, 2.0).add(CRW(1, 0.0, 3.0))
    assert len(schedule.controllers()) == 2


def test_liveness_exemption_is_window_scoped():
    """Partition/crash-recover exemptions lapse at heal + CATCH_UP_GRACE;
    Byzantine exemptions never do; drop windows never exempt at all."""
    from repro.testkit.faults import CATCH_UP_GRACE

    schedule = (
        crash_at(0, 1.0)
        .add(PartitionWindow(2, 0.0, 3.0))
        .add(CrashRecoverWindow(1, 0.0, 4.0))
        .add(RelayDropWindow(3, 1.0, 2.0))
    )
    # Legacy no-argument call: every recovering node stays exempt
    # (feasibility checks and short runs rely on this).
    assert schedule.liveness_exempt_nodes() == (0, 1, 2)
    # Before any grace window lapses, everything is still exempt.
    assert schedule.liveness_exempt_nodes(end_time=2.0) == (0, 1, 2)
    # Node 2's grace ends at 3 + CATCH_UP_GRACE, node 1's at 4 + grace.
    assert schedule.liveness_exempt_nodes(end_time=3.0 + CATCH_UP_GRACE) == (0, 1)
    assert schedule.liveness_exempt_nodes(end_time=4.0 + CATCH_UP_GRACE) == (0,)
    # The Byzantine crash is exempt forever.
    assert schedule.liveness_exempt_nodes(end_time=1e9) == (0,)


def test_crash_recover_narrowing_stays_inside_the_window():
    atom = CrashRecoverWindow(2, 1.0, 9.0)
    narrowed = atom.narrowed(2.0, 5.0)
    assert (narrowed.start, narrowed.heal) == (2.0, 5.0)
    assert narrowed.node == 2
    with pytest.raises(ValueError):
        atom.narrowed(0.5, 5.0)
    with pytest.raises(ValueError):
        atom.narrowed(2.0, 9.5)


def test_crash_recover_rejects_malformed_fields():
    with pytest.raises(ValueError, match="must be a number"):
        CrashRecoverWindow(1, True, 5.0)
    with pytest.raises(ValueError, match="must be a number"):
        CrashRecoverWindow(1, 0.0, "soon")
    with pytest.raises(ValueError, match="cannot be negative"):
        CrashRecoverWindow(1, -1.0, 5.0)
