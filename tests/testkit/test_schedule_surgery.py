"""The schedule surgery API the shrinker is built on.

``FaultSchedule.without_atom`` / ``replace_atom`` and the per-atom
``narrowed`` / ``with_budget`` constructors are the shrinker's only
mutation primitives — these tests pin their contracts (immutability,
bounds checks, window-containment validation) independently of any
shrinking run.
"""

import pytest

from repro.testkit.faults import (
    CrashAt,
    EquivocateAt,
    FaultSchedule,
    LeaderFollowingCrash,
    PartitionWindow,
    RelayDropWindow,
)


@pytest.fixture
def schedule():
    return FaultSchedule(
        (CrashAt(1, time=2.0), RelayDropWindow(2, 1.0, 5.0), EquivocateAt(0, round=2))
    )


# ---------------------------------------------------------------- without_atom
def test_without_atom_removes_exactly_one(schedule):
    smaller = schedule.without_atom(1)
    assert [type(a).__name__ for a in smaller.faults] == ["CrashAt", "EquivocateAt"]
    # The original is untouched (immutability).
    assert len(schedule.faults) == 3


def test_without_atom_bounds_checked(schedule):
    for index in (-1, 3):
        with pytest.raises(IndexError, match="out of range"):
            schedule.without_atom(index)


# ---------------------------------------------------------------- replace_atom
def test_replace_atom_swaps_in_place(schedule):
    replaced = schedule.replace_atom(0, CrashAt(1, time=4.0))
    assert replaced.faults[0].time == 4.0
    assert schedule.faults[0].time == 2.0
    assert replaced.faults[1:] == schedule.faults[1:]


def test_replace_atom_bounds_checked(schedule):
    with pytest.raises(IndexError, match="out of range"):
        schedule.replace_atom(5, CrashAt(0, time=0.0))


# -------------------------------------------------------------------- narrowed
def test_relay_drop_window_narrows_within_itself():
    atom = RelayDropWindow(2, 1.0, 5.0)
    narrowed = atom.narrowed(2.0, 3.0)
    assert (narrowed.start, narrowed.end) == (2.0, 3.0)
    assert narrowed.node == 2
    assert (atom.start, atom.end) == (1.0, 5.0)


def test_partition_window_narrows_within_itself():
    atom = PartitionWindow(3, 0.0, 10.0)
    narrowed = atom.narrowed(4.0, 6.0)
    assert (narrowed.start, narrowed.heal) == (4.0, 6.0)


def test_narrowed_rejects_windows_outside_the_original():
    atom = RelayDropWindow(2, 1.0, 5.0)
    for start, end in ((0.5, 3.0), (2.0, 6.0), (0.0, 9.0)):
        with pytest.raises(ValueError, match="not inside"):
            atom.narrowed(start, end)


def test_windowless_atoms_cannot_narrow():
    with pytest.raises(TypeError, match="CrashAt has no window to narrow"):
        CrashAt(1, time=2.0).narrowed(0.0, 1.0)


# ----------------------------------------------------------------- with_budget
def test_with_budget_steps_down():
    atom = LeaderFollowingCrash(budget=2, start=1.0, interval=1.0)
    smaller = atom.with_budget(1)
    assert smaller.budget == 1
    assert (smaller.start, smaller.interval) == (atom.start, atom.interval)
    assert atom.budget == 2


def test_with_budget_still_validates():
    atom = LeaderFollowingCrash(budget=2, start=1.0, interval=1.0)
    with pytest.raises(ValueError):
        atom.with_budget(0)
