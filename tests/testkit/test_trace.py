"""Tests for the TraceRecorder and RunTrace value object."""

import json

import pytest

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.testkit.trace import TraceRecorder, spec_fingerprint
from repro.testkit.faults import crash_at

from tests.conftest import honest_spec


def record(spec, record_events=True):
    runner = ProtocolRunner(recorder=TraceRecorder(record_events=record_events))
    return runner.run(spec)


def test_runner_without_recorder_has_no_trace(runner):
    result = runner.run(honest_spec())
    assert result.trace is None


def test_trace_captures_committed_logs_and_energy():
    result = record(honest_spec())
    trace = result.trace
    assert set(trace.committed_heights) == {0, 1, 2, 3, 4}
    for pid in range(5):
        assert trace.committed_heights[pid] == 3
        assert len(trace.committed_chain[pid]) == 3
        assert trace.committed_chain[pid][0][0] == 1  # first entry is height 1
        assert len(trace.committed_commands[pid]) == 3
    assert trace.energy_total_j == pytest.approx(sum(trace.energy_per_node_j.values()))
    assert trace.energy_total_j > 0
    assert trace.network["broadcasts"] > 0
    assert trace.safety["consistent"] is True


def test_trace_records_simulator_events():
    result = record(honest_spec())
    trace = result.trace
    assert trace.events, "event trace should be populated"
    assert trace.executed_events == len(trace.events)
    times = [time for time, _ in trace.events]
    assert times == sorted(times)
    assert any("net:" in label for _, label in trace.events)


def test_record_events_false_skips_event_log():
    result = record(honest_spec(), record_events=False)
    assert result.trace.events == []
    assert result.trace.executed_events > 0


def test_trace_harvests_view_change_certificates():
    spec = honest_spec(fault_schedule=crash_at(0, time=0.0))
    result = record(spec)
    assert result.view_changes == 1
    assert result.trace.qcs, "a view change must leave quorum certificates behind"
    quorum = spec.f + 1
    for qc in result.trace.qcs:
        assert qc.valid
        assert len(set(qc.signers)) >= quorum


def test_canonical_json_is_valid_and_sorted():
    trace = record(honest_spec()).trace
    encoded = trace.canonical_json()
    decoded = json.loads(encoded)
    assert decoded["spec"]["protocol"] == "eesmr"
    assert encoded == json.dumps(decoded, sort_keys=True, separators=(",", ":"))


def test_fingerprint_reflects_content():
    trace = record(honest_spec()).trace
    fingerprint = trace.fingerprint()
    trace.energy_total_j += 1.0
    assert trace.fingerprint() != fingerprint


def test_spec_fingerprint_includes_faults_and_medium():
    spec = honest_spec(medium="wifi", fault_schedule=crash_at(1, time=2.0))
    description = spec_fingerprint(spec)
    assert description["medium"] == "wifi"
    assert description["faults"] == [{"kind": "CrashAt", "node": 1, "time": 2.0}]
    legacy = spec_fingerprint(honest_spec())
    assert legacy["faults"]["faulty"] == []
