"""Regression tests for the ``schedule_from_dict`` error path.

Before the fuzzer PR, a bad entry in a serialised schedule raised a bare
``ValueError`` with no indication of *which* entry was at fault — painful
exactly when it matters, i.e. when a hand-edited corpus file or an
external reproducer fails to load.  Now every entry error is wrapped with
the offending index, and adaptive atoms deserialised from JSON re-run the
same static-field validation the constructor applies.
"""

import pytest

from repro.testkit.faults import (
    LeaderFollowingCrash,
    fault_from_dict,
    schedule_from_dict,
)


def test_unknown_kind_names_the_offending_entry_index():
    entries = [
        {"kind": "CrashAt", "node": 1, "time": 2.0},
        {"kind": "Bogus", "node": 0},
    ]
    with pytest.raises(ValueError, match=r"fault entry 1: .*unknown fault kind"):
        schedule_from_dict(entries)


def test_invalid_field_names_the_offending_entry_index():
    entries = [
        {"kind": "PartitionWindow", "node": 0, "start": 5.0, "heal": 1.0},
        {"kind": "CrashAt", "node": 1, "time": 2.0},
    ]
    with pytest.raises(ValueError, match="fault entry 0"):
        schedule_from_dict(entries)


def test_error_chains_to_the_original_cause():
    try:
        schedule_from_dict([{"kind": "Bogus"}])
    except ValueError as error:
        assert isinstance(error.__cause__, (ValueError, TypeError))
    else:
        pytest.fail("expected ValueError")


def test_round_trip_is_a_fixed_point():
    entries = [
        {"kind": "CrashAt", "node": 1, "time": 2.0},
        {"kind": "RelayDropWindow", "node": 2, "start": 1.0, "end": 3.5},
        {"kind": "LeaderFollowingCrash", "budget": 2, "start": 0.5, "interval": 1.0},
    ]
    schedule = schedule_from_dict(entries)
    assert schedule.describe() == schedule_from_dict(schedule.describe()).describe()


# ------------------------------------------------------- adaptive re-validation
def test_adaptive_atom_from_json_revalidates_budget_type():
    """JSON happily carries ``"budget": "2"`` or ``true`` — deserialising
    must reject them just like the constructor does."""
    for bad in ("2", True, None, 2.0):
        with pytest.raises(ValueError, match="adaptive budget must be an int"):
            fault_from_dict(
                {"kind": "LeaderFollowingCrash", "budget": bad, "start": 0.0, "interval": 1.0}
            )


def test_adaptive_atom_from_json_revalidates_numeric_fields():
    for field in ("start", "interval"):
        payload = {"kind": "LeaderFollowingCrash", "budget": 1, "start": 0.0, "interval": 1.0}
        payload[field] = "soon"
        with pytest.raises(ValueError, match=f"adaptive {field} must be a number"):
            fault_from_dict(payload)


def test_adaptive_atom_from_json_still_range_checks():
    with pytest.raises(ValueError, match="budget"):
        fault_from_dict(
            {"kind": "LeaderFollowingCrash", "budget": 0, "start": 0.0, "interval": 1.0}
        )


def test_adaptive_validation_errors_carry_the_entry_index():
    entries = [
        {"kind": "CrashAt", "node": 1, "time": 2.0},
        {"kind": "LeaderFollowingCrash", "budget": "2", "start": 0.0, "interval": 1.0},
    ]
    with pytest.raises(ValueError, match="fault entry 1: .*adaptive budget"):
        schedule_from_dict(entries)


def test_valid_adaptive_atom_round_trips():
    atom = LeaderFollowingCrash(budget=2, start=1.5, interval=0.5)
    rebuilt = fault_from_dict(atom.describe())
    assert isinstance(rebuilt, LeaderFollowingCrash)
    assert rebuilt.describe() == atom.describe()
