"""Tests for the invariant battery: passing runs pass, doctored runs fail."""

import copy

import pytest

from repro.eval.runner import ProtocolRunner
from repro.testkit.invariants import (
    DEFAULT_INVARIANTS,
    AgreementInvariant,
    EnergyConservationInvariant,
    Evidence,
    InvariantViolation,
    LivenessInvariant,
    MonotoneVirtualTimeInvariant,
    QuorumCertificateInvariant,
    assert_all,
    check_all,
)
from repro.testkit.trace import TraceRecorder
from repro.testkit.faults import crash_at, silent

from tests.conftest import honest_spec


@pytest.fixture
def evidence():
    spec = honest_spec()
    result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    return Evidence(spec=spec, result=result, trace=result.trace, label="unit")


def doctored(evidence):
    """A deep copy whose trace can be tampered with safely."""
    return Evidence(
        spec=evidence.spec,
        result=evidence.result,
        trace=copy.deepcopy(evidence.trace),
        label=evidence.label,
    )


def test_honest_run_satisfies_every_invariant(evidence):
    assert_all(evidence)
    reports = check_all(evidence)
    assert len(reports) == len(DEFAULT_INVARIANTS)
    assert all(report.ok for report in reports)


def test_faulty_runs_satisfy_every_invariant():
    for schedule in (crash_at(0, time=0.0), silent(4)):
        spec = honest_spec(fault_schedule=schedule)
        result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
        assert_all(Evidence(spec=spec, result=result, trace=result.trace))


def test_agreement_detects_forked_chain(evidence):
    bad = doctored(evidence)
    bad.trace.committed_chain[1][0] = [1, "f" * 64]  # node 1 forked at height 1
    with pytest.raises(InvariantViolation, match="conflicting commits at height 1"):
        AgreementInvariant().check(bad)


def test_agreement_detects_divergent_command_logs(evidence):
    bad = doctored(evidence)
    bad.trace.committed_commands[2] = ["rogue-command"] + bad.trace.committed_commands[2][1:]
    with pytest.raises(InvariantViolation, match="diverge"):
        AgreementInvariant().check(bad)


def test_agreement_trusts_the_safety_checker_verdict(evidence):
    bad = doctored(evidence)
    bad.trace.safety["consistent"] = False
    bad.trace.safety["details"] = ["height 1: conflicting commits"]
    with pytest.raises(InvariantViolation, match="fork"):
        AgreementInvariant().check(bad)


def test_liveness_detects_stalled_node(evidence):
    bad = doctored(evidence)
    bad.trace.committed_heights[3] = 1
    with pytest.raises(InvariantViolation, match="node 3 stalled"):
        LivenessInvariant().check(bad)


def test_liveness_detects_foreign_commands(evidence):
    bad = doctored(evidence)
    bad.trace.committed_commands[0][0] = "not-from-the-workload"
    with pytest.raises(InvariantViolation, match="outside the workload"):
        LivenessInvariant().check(bad)


def test_liveness_respects_explicit_floor(evidence):
    relaxed = doctored(evidence)
    relaxed.trace.committed_heights[3] = 1
    LivenessInvariant(min_height=1).check(relaxed)


def test_quorum_invariant_detects_underfull_certificate(evidence):
    spec = honest_spec(fault_schedule=crash_at(0, time=0.0))
    result = ProtocolRunner(recorder=TraceRecorder()).run(spec)
    good = Evidence(spec=spec, result=result, trace=result.trace)
    QuorumCertificateInvariant().check(good)
    bad = doctored(good)
    assert bad.trace.qcs
    bad.trace.qcs[0].signers = [0]
    with pytest.raises(InvariantViolation, match="distinct signers"):
        QuorumCertificateInvariant().check(bad)
    bad2 = doctored(good)
    bad2.trace.qcs[0].valid = False
    with pytest.raises(InvariantViolation, match="invalid"):
        QuorumCertificateInvariant().check(bad2)


def test_monotone_time_detects_backwards_event(evidence):
    bad = doctored(evidence)
    bad.trace.events.append([bad.trace.events[-1][0] - 1.0, "time-travel"])
    with pytest.raises(InvariantViolation, match="time went backwards"):
        MonotoneVirtualTimeInvariant().check(bad)


def test_monotone_time_detects_truncated_quiescence(evidence):
    bad = doctored(evidence)
    bad.trace.sim_time = bad.trace.events[-1][0] - 1.0
    with pytest.raises(InvariantViolation, match="quiescence"):
        MonotoneVirtualTimeInvariant().check(bad)


def test_energy_conservation_detects_negative_meter(evidence):
    bad = doctored(evidence)
    bad.trace.energy_per_node_j[0] = -0.5
    with pytest.raises(InvariantViolation, match="negative meter"):
        EnergyConservationInvariant().check(bad)


def test_energy_conservation_detects_ledger_mismatch(evidence):
    bad = doctored(evidence)
    bad.trace.energy_total_j += 1.0
    with pytest.raises(InvariantViolation, match="cluster ledger"):
        EnergyConservationInvariant().check(bad)


def test_energy_conservation_detects_breakdown_leak(evidence):
    bad = doctored(evidence)
    bad.trace.energy_breakdown_j["transmit"] += 0.25
    with pytest.raises(InvariantViolation, match="breakdown"):
        EnergyConservationInvariant().check(bad)


def test_check_all_folds_violations_into_reports(evidence):
    bad = doctored(evidence)
    bad.trace.committed_heights[3] = 0
    reports = check_all(bad)
    failed = [report for report in reports if not report.ok]
    assert [report.name for report in failed] == ["liveness"]
    assert "stalled" in failed[0].detail
