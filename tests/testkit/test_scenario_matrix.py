"""Scenario-matrix tests.

The tier-1 (fast) tests check the enumeration, a representative slice of
cells, and the differential machinery.  The exhaustive sweeps — every
protocol × every fault schedule × every medium — run under the ``matrix``
marker (``make test-matrix`` / ``pytest -m matrix``).
"""

import pytest

from repro.eval.runner import MEDIA, PROTOCOLS
from repro.testkit.scenarios import (
    ALL_FAULTS,
    DEFAULT_FAULTS,
    FAULT_LIBRARY,
    MatrixReport,
    ScenarioCell,
    ScenarioMatrix,
)
from repro.testkit.invariants import InvariantViolation


def test_default_matrix_covers_at_least_36_cells():
    cells = ScenarioMatrix().cells()
    assert len(cells) >= 36
    combos = {(c.protocol, c.fault, c.medium) for c in cells}
    assert len(combos) == len(cells), "cells must be distinct (protocol, fault, medium) points"
    assert {c.protocol for c in cells} == set(PROTOCOLS)
    assert {c.medium for c in cells} == set(MEDIA)
    assert {c.fault for c in cells} == set(DEFAULT_FAULTS)


def test_fault_library_has_the_papers_scenarios_and_more():
    assert {"none", "crash-leader", "stall-leader", "equivocate-leader", "silent-relay"} <= set(
        FAULT_LIBRARY
    )
    assert len(ALL_FAULTS) >= 7


def test_unknown_fault_name_rejected():
    with pytest.raises(ValueError, match="unknown fault schedules"):
        ScenarioMatrix(fault_names=("none", "gremlins"))


def test_representative_cells_pass_all_invariants():
    """A cheap slice touching every protocol, a Byzantine fault and a
    non-BLE medium, kept fast enough for tier-1."""
    matrix = ScenarioMatrix()
    for cell in (
        ScenarioCell("eesmr", "equivocate-leader", "ble"),
        ScenarioCell("sync-hotstuff", "crash-leader", "wifi"),
        ScenarioCell("optsync", "crash-leader", "4g-lte"),
        ScenarioCell("trusted-baseline", "none", "ble"),
    ):
        outcome = matrix.run_cell(cell)
        assert outcome.ok, f"{cell.label()}: {[r.detail for r in outcome.violations()]}"
        assert len(outcome.reports) == 5


def test_cells_are_deterministic_per_seed():
    matrix = ScenarioMatrix()
    cell = ScenarioCell("eesmr", "crash-leader", "ble")
    first = matrix.run_cell(cell)
    second = matrix.run_cell(cell)
    assert first.evidence.trace.fingerprint() == second.evidence.trace.fingerprint()


def test_differential_check_flags_divergent_logs():
    matrix = ScenarioMatrix()
    outcomes = [
        matrix.run_cell(ScenarioCell("eesmr", "none", "ble")),
        matrix.run_cell(ScenarioCell("sync-hotstuff", "none", "ble")),
    ]
    assert matrix._differential_check(outcomes) == []
    # Tamper with one protocol's committed log: the checker must object.
    log = outcomes[1].evidence.trace.committed_commands
    for pid in log:
        log[pid] = ["tampered-command"] + log[pid][1:]
    failures = matrix._differential_check(outcomes)
    assert failures and "differential" in failures[0]


def test_matrix_report_assert_clean_raises_with_cell_labels():
    report = MatrixReport()
    report.differential_failures = ["differential: something diverged"]
    with pytest.raises(InvariantViolation, match="scenario-matrix failures"):
        report.assert_clean()


@pytest.mark.matrix
def test_full_default_matrix_36_cells():
    """The canonical 4 protocols × 3 faults × 3 media sweep."""
    report = ScenarioMatrix().run()
    assert report.cells_run == 36
    report.assert_clean()


@pytest.mark.matrix
def test_extended_matrix_every_fault_in_the_library():
    report = ScenarioMatrix(fault_names=ALL_FAULTS).run()
    assert report.cells_run == len(PROTOCOLS) * len(ALL_FAULTS) * len(MEDIA)
    report.assert_clean()


@pytest.mark.matrix
def test_matrix_on_fully_connected_topology():
    report = ScenarioMatrix(topologies=("fully-connected",), k=4).run()
    assert report.cells_run == 36
    report.assert_clean()


@pytest.mark.matrix
@pytest.mark.slow
def test_matrix_at_larger_scale():
    """n=7, f=2 — a second operating point of the feasibility analysis."""
    report = ScenarioMatrix(n=7, f=2, k=3, seed=41).run()
    assert report.cells_run == 36
    report.assert_clean()
