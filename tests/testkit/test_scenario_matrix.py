"""Scenario-matrix tests.

The tier-1 (fast) tests check the enumeration, a representative slice of
cells, and the differential machinery.  The exhaustive sweeps — every
protocol × every fault schedule × every medium — run under the ``matrix``
marker (``make test-matrix`` / ``pytest -m matrix``).
"""

import pytest

from repro.eval.runner import MEDIA, PROTOCOLS
from repro.testkit.scenarios import (
    ALL_FAULTS,
    COMPOSED_FAULTS,
    DEFAULT_FAULTS,
    FAULT_LIBRARY,
    MATRIX_TOPOLOGIES,
    MatrixReport,
    ScenarioCell,
    ScenarioMatrix,
    SkippedCell,
)
from repro.testkit.invariants import InvariantViolation


def test_default_matrix_covers_at_least_36_cells():
    cells = ScenarioMatrix().cells()
    assert len(cells) >= 36
    combos = {(c.protocol, c.fault, c.medium) for c in cells}
    assert len(combos) == len(cells), "cells must be distinct (protocol, fault, medium) points"
    assert {c.protocol for c in cells} == set(PROTOCOLS)
    assert {c.medium for c in cells} == set(MEDIA)
    assert {c.fault for c in cells} == set(DEFAULT_FAULTS)


def test_fault_library_has_the_papers_scenarios_and_more():
    assert {"none", "crash-leader", "stall-leader", "equivocate-leader", "silent-relay"} <= set(
        FAULT_LIBRARY
    )
    assert len(ALL_FAULTS) >= 7


def test_fault_library_has_composed_multi_fault_schedules():
    """The f>1 slice: every composed entry injects more than one fault."""
    assert len(COMPOSED_FAULTS) >= 3
    assert set(COMPOSED_FAULTS) <= set(FAULT_LIBRARY)
    for name in COMPOSED_FAULTS:
        schedule = FAULT_LIBRARY[name](5)
        assert len(schedule) >= 2, name
    # At least two entries put several nodes under *Byzantine* control.
    multi_byzantine = [
        name for name in COMPOSED_FAULTS if len(FAULT_LIBRARY[name](5).byzantine_nodes()) >= 2
    ]
    assert len(multi_byzantine) >= 2


def test_build_spec_raises_f_to_the_byzantine_count():
    matrix = ScenarioMatrix()  # matrix-wide f=1
    spec = matrix.build_spec(ScenarioCell("eesmr", "crash-leader+silent-relay", "ble"))
    assert spec.f == 2
    assert len(spec.byzantine_nodes) == 2
    honest = matrix.build_spec(ScenarioCell("eesmr", "none", "ble"))
    assert honest.f == 1


def test_unknown_fault_name_rejected():
    with pytest.raises(ValueError, match="unknown fault schedules"):
        ScenarioMatrix(fault_names=("none", "gremlins"))


def test_representative_cells_pass_all_invariants():
    """A cheap slice touching every protocol, a Byzantine fault and a
    non-BLE medium, kept fast enough for tier-1."""
    matrix = ScenarioMatrix()
    for cell in (
        ScenarioCell("eesmr", "equivocate-leader", "ble"),
        ScenarioCell("sync-hotstuff", "crash-leader", "wifi"),
        ScenarioCell("optsync", "crash-leader", "4g-lte"),
        ScenarioCell("trusted-baseline", "none", "ble"),
    ):
        outcome = matrix.run_cell(cell)
        assert outcome.ok, f"{cell.label()}: {[r.detail for r in outcome.violations()]}"
        assert len(outcome.reports) == 6


def test_cells_are_deterministic_per_seed():
    matrix = ScenarioMatrix()
    cell = ScenarioCell("eesmr", "crash-leader", "ble")
    first = matrix.run_cell(cell)
    second = matrix.run_cell(cell)
    assert first.evidence.trace.fingerprint() == second.evidence.trace.fingerprint()


def test_differential_check_flags_divergent_logs():
    matrix = ScenarioMatrix()
    outcomes = [
        matrix.run_cell(ScenarioCell("eesmr", "none", "ble")),
        matrix.run_cell(ScenarioCell("sync-hotstuff", "none", "ble")),
    ]
    assert matrix._differential_check(outcomes) == []
    # Tamper with one protocol's committed log: the checker must object.
    log = outcomes[1].evidence.trace.committed_commands
    for pid in log:
        log[pid] = ["tampered-command"] + log[pid][1:]
    failures = matrix._differential_check(outcomes)
    assert failures and "differential" in failures[0]


def test_matrix_report_assert_clean_raises_with_cell_labels():
    report = MatrixReport()
    report.differential_failures = ["differential: something diverged"]
    with pytest.raises(InvariantViolation, match="scenario-matrix failures"):
        report.assert_clean()


def test_infeasible_cell_skipped_with_lemma_a5_reason():
    """Adjacent crashes at 0 and n-1 exceed the k=2 ring's fault bound; the
    matrix must skip the cell with an explanatory reason, not fail it."""
    matrix = ScenarioMatrix()
    reason = matrix.cell_feasibility(ScenarioCell("eesmr", "two-crashes", "ble"))
    assert reason is not None and "Lemma A.5" in reason
    # The same schedule is feasible on a denser topology...
    dense = ScenarioMatrix(topologies=("fully-connected",))
    assert dense.cell_feasibility(
        ScenarioCell("eesmr", "two-crashes", "ble", "fully-connected")
    ) is None
    # ...and for the trusted baseline, whose leaves only talk to the hub.
    assert matrix.cell_feasibility(ScenarioCell("trusted-baseline", "two-crashes", "ble")) is None


def test_quorum_bound_infeasibility_reason():
    """Two Byzantine nodes at n=4 break 2f < n: skip, don't fail."""
    matrix = ScenarioMatrix(n=4)
    reason = matrix.cell_feasibility(ScenarioCell("eesmr", "crash-leader+silent-relay", "ble"))
    assert reason is not None and "honest-majority" in reason


def test_run_records_skips_and_stays_clean():
    matrix = ScenarioMatrix(
        protocols=("eesmr",), fault_names=("none", "two-crashes"), media=("ble",)
    )
    report = matrix.run()
    assert report.cells_run == 1
    assert report.cells_skipped == 1
    assert isinstance(report.skipped[0], SkippedCell)
    assert "Lemma A.5" in report.skipped[0].reason
    assert "two-crashes" in report.skip_reasons()[0]
    report.assert_clean()  # skips are not failures


def test_matrix_topologies_include_star_and_random_kcast():
    assert {"star", "random-kcast"} <= set(MATRIX_TOPOLOGIES)


def test_unconstructible_topology_skips_instead_of_crashing():
    """An unsatisfiable random-kcast request (only comb(4,4)=1 distinct
    receiver set, 2 asked) must skip the cell with a reason, not blow up
    the whole sweep."""
    matrix = ScenarioMatrix(
        protocols=("eesmr", "trusted-baseline"),
        fault_names=("none", "crash-leader"),
        media=("ble",),
        topologies=("random-kcast",),
        k=4,
        edges_per_node=2,
    )
    report = matrix.run()
    # The eesmr cells (fault-free included) are skipped; trusted-baseline
    # never builds the cell topology (it always runs the control star).
    assert report.cells_run == 2
    assert report.cells_skipped == 2
    assert all("cannot be built" in skip.reason for skip in report.skipped)
    report.assert_clean()


def test_star_and_random_kcast_cells_pass_all_invariants():
    """One representative cell per new topology axis, fast enough for tier-1."""
    for topology, fault in (("star", "crash-leader"), ("random-kcast", "none")):
        matrix = ScenarioMatrix(topologies=(topology,))
        cell = ScenarioCell("eesmr", fault, "ble", topology)
        assert matrix.cell_feasibility(cell) is None
        outcome = matrix.run_cell(cell)
        assert outcome.ok, f"{cell.label()}: {[r.detail for r in outcome.violations()]}"


def test_random_kcast_cells_deterministic_per_seed():
    matrix = ScenarioMatrix(topologies=("random-kcast",), edges_per_node=2)
    cell = ScenarioCell("eesmr", "none", "ble", "random-kcast")
    first = matrix.run_cell(cell)
    second = matrix.run_cell(cell)
    assert first.evidence.trace.fingerprint() == second.evidence.trace.fingerprint()


def test_composed_fault_cell_passes_with_degraded_window_liveness():
    """equivocate+drop-window: recovery runs through the degraded window and
    the drop node — which keeps receiving — is still held to full liveness."""
    matrix = ScenarioMatrix()
    outcome = matrix.run_cell(ScenarioCell("eesmr", "equivocate+drop-window", "ble"))
    assert outcome.ok, [r.detail for r in outcome.violations()]
    drop_node = matrix.n - 2
    assert outcome.evidence.trace.committed_heights[drop_node] >= matrix.target_height


def test_impairment_axis_multiplies_cells_and_labels():
    matrix = ScenarioMatrix(
        protocols=("eesmr",),
        fault_names=("none",),
        media=("ble",),
        impairments=("none", "lossy"),
    )
    cells = matrix.cells()
    assert len(cells) == 2
    assert {c.impairment for c in cells} == {"none", "lossy"}
    labels = sorted(c.label() for c in cells)
    # Only non-default impairments tag the label.
    assert labels[0] == "eesmr×none×ble×ring-kcast"
    assert labels[1] == "eesmr×none×ble×ring-kcast×lossy"
    spec = matrix.build_spec(next(c for c in cells if c.impairment == "lossy"))
    assert spec.impairment is not None and spec.impairment.loss == 0.2


def test_unknown_impairment_name_rejected():
    with pytest.raises(ValueError, match="unknown impairment"):
        ScenarioMatrix(impairments=("gremlin-field",))


def test_uncoverable_loss_cell_skips_with_reason():
    """Unbounded loss whose residual exceeds the retry budget's coverage
    can never satisfy liveness: the cell must be skipped, not failed."""
    matrix = ScenarioMatrix(
        protocols=("eesmr",),
        fault_names=("none",),
        media=("ble",),
        impairments=("loss:0.9",),
    )
    report = matrix.run()
    assert report.cells_run == 0
    assert report.cells_skipped == 1
    assert "loss" in report.skipped[0].reason
    report.assert_clean()


def test_ble_operating_point_all_protocols_safe_and_live():
    """The Fig. 2a calibrated BLE point: per-beacon loss ≈ 0.2475, and the
    k-cast redundancy of 8 leaves a residual miss probability of
    0.2475**8 ≈ 1.4e-5.  Every protocol must commit safely and stay live
    with the calibrated impairment switched on."""
    from repro.net.impairment import AdvertisementLossModel

    model = AdvertisementLossModel()
    assert model.receiver_miss_probability(1) == pytest.approx(0.2475, abs=1e-4)
    assert model.receiver_miss_probability(8) == pytest.approx(0.2475**8)

    matrix = ScenarioMatrix(
        fault_names=("none",), media=("ble",), impairments=("ble-calibrated",)
    )
    report = matrix.run()
    assert report.cells_run == 4
    report.assert_clean()
    for outcome in report.outcomes:
        # The impairment was engaged (every hop judged), and the stats
        # section made it into the trace.
        stats = outcome.evidence.trace.network["impairments"]
        assert stats["attempts"] > 0, outcome.cell.label()
        assert outcome.evidence.trace.committed_heights, outcome.cell.label()


@pytest.mark.matrix
def test_full_default_matrix_36_cells():
    """The canonical 4 protocols × 3 faults × 3 media sweep."""
    report = ScenarioMatrix().run()
    assert report.cells_run == 36
    report.assert_clean()


@pytest.mark.matrix
def test_extended_matrix_every_fault_in_the_library():
    """Every library entry (composed schedules included) on every protocol
    and medium; infeasible (topology, fault) pairs are skipped with reasons."""
    report = ScenarioMatrix(fault_names=ALL_FAULTS).run()
    total = len(PROTOCOLS) * len(ALL_FAULTS) * len(MEDIA)
    assert report.cells_run + report.cells_skipped == total
    # Two library entries are deliberately infeasible on the default k=2
    # ring for the replicated protocols: `two-crashes` (adjacent victims)
    # and `adaptive-leader-crash-f2` (budget 2 with adversarial placement).
    assert report.cells_run >= total - 2 * len(MEDIA) * (len(PROTOCOLS) - 1)
    for skip in report.skipped:
        assert skip.reason  # every skip is explained
    report.assert_clean()


@pytest.mark.matrix
def test_matrix_on_fully_connected_topology():
    report = ScenarioMatrix(topologies=("fully-connected",), k=4).run()
    assert report.cells_run == 36
    report.assert_clean()


@pytest.mark.matrix
def test_matrix_on_star_topology():
    """The star axis: every protocol floods through the relay hub."""
    report = ScenarioMatrix(topologies=("star",), fault_names=ALL_FAULTS, media=("ble",)).run()
    assert report.cells_run >= 40
    report.assert_clean()


@pytest.mark.matrix
def test_matrix_on_random_kcast_topology():
    """The seeded random-hypergraph axis, dense enough to tolerate faults."""
    report = ScenarioMatrix(
        topologies=("random-kcast",), edges_per_node=2, k=3, media=("ble",),
        fault_names=DEFAULT_FAULTS + ("crash-leader+silent-relay", "stacked-drop-windows"),
    ).run()
    assert report.cells_run >= 16
    report.assert_clean()


@pytest.mark.matrix
def test_matrix_composed_faults_across_topologies():
    """The f>1 slice swept over three topology axes at once."""
    report = ScenarioMatrix(
        fault_names=COMPOSED_FAULTS,
        media=("ble",),
        topologies=("ring-kcast", "fully-connected", "star"),
        k=2,
    ).run()
    total = len(PROTOCOLS) * len(COMPOSED_FAULTS) * 3
    assert report.cells_run + report.cells_skipped == total
    # two-crashes is infeasible on the k=2 ring for the quorum protocols
    # but runs everywhere else.
    assert 0 < report.cells_skipped < total / 2
    report.assert_clean()


@pytest.mark.matrix
@pytest.mark.slow
def test_matrix_at_larger_scale():
    """n=7, f=2 — a second operating point of the feasibility analysis."""
    report = ScenarioMatrix(n=7, f=2, k=3, seed=41).run()
    assert report.cells_run == 36
    report.assert_clean()


@pytest.mark.matrix
def test_matrix_large_n_operating_point():
    """n=40 cells — the larger operating points the PR-2 speedups paid for."""
    report = ScenarioMatrix(
        protocols=("eesmr", "sync-hotstuff"),
        fault_names=("none", "crash-leader+silent-relay", "stacked-drop-windows"),
        media=("ble",),
        n=40,
        f=2,
        k=4,
        target_height=2,
        seed=11,
    ).run()
    assert report.cells_run == 6
    report.assert_clean()


@pytest.mark.matrix
def test_matrix_large_n_random_kcast():
    """A second n=40 point on the seeded random-hypergraph axis."""
    report = ScenarioMatrix(
        protocols=("eesmr",),
        fault_names=("none", "crash-leader"),
        media=("ble",),
        topologies=("random-kcast",),
        n=40,
        k=4,
        edges_per_node=2,
        target_height=2,
        seed=11,
    ).run()
    assert report.cells_run == 2
    report.assert_clean()


# ------------------------------------------------- recovery-bearing cells
@pytest.mark.recovery
def test_promoted_corpus_pair_splits_the_protocols():
    """The first corpus → matrix promotion: the PR 6 differential finding
    (corpus entries ``shs-leader-partition`` / ``eesmr-leader-partition``)
    as the permanent named cell ``leader-partition-fork``.  A 0.25 s leader
    partition right at the commit boundary forks Sync HotStuff (its
    commit-by-timeout rests on synchrony) while EESMR's relay-everything
    dissemination absorbs it — so the pair is asserted *differentially*
    here and excluded from the all-protocol sweep."""
    matrix = ScenarioMatrix(
        protocols=("eesmr", "sync-hotstuff"),
        fault_names=("leader-partition-fork",),
        media=("ble",),
        block_interval=2.0,
        seed=29,
    )
    report = matrix.run()
    assert not report.skipped
    by_protocol = {o.cell.protocol: o for o in report.outcomes}
    assert by_protocol["eesmr"].ok, [r.detail for r in by_protocol["eesmr"].violations()]
    shs = by_protocol["sync-hotstuff"]
    assert not shs.ok, "the promoted schedule must still fork Sync HotStuff"
    assert "agreement" in {r.name for r in shs.violations()}


def test_differential_faults_are_excluded_from_the_full_sweep():
    from repro.testkit.scenarios import DIFFERENTIAL_FAULTS

    assert set(DIFFERENTIAL_FAULTS) <= set(FAULT_LIBRARY)
    assert not set(DIFFERENTIAL_FAULTS) & set(ALL_FAULTS)
    assert "leader-partition-fork" in DIFFERENTIAL_FAULTS


@pytest.mark.recovery
@pytest.mark.parametrize("fault", ("partition-heal", "crash-recover"))
@pytest.mark.parametrize("protocol", ("eesmr", "sync-hotstuff"))
def test_healed_cells_assert_post_heal_liveness(protocol, fault):
    """Recovery-bearing cells don't just pass the battery: the healed node
    demonstrably commits the *full* target after the heal — catch-up is a
    checked obligation, not an exemption."""
    matrix = ScenarioMatrix(block_interval=2.0)
    outcome = matrix.run_cell(ScenarioCell(protocol, fault, "ble"))
    assert outcome.ok, [r.detail for r in outcome.violations()]
    healed_node = matrix.n - 1
    assert outcome.evidence.trace.committed_heights[healed_node] >= matrix.target_height


@pytest.mark.matrix
def test_recovery_cells_across_all_protocols_and_media():
    """The full recovery slice: every protocol × every medium × every
    recovery-bearing schedule, battery-clean, with the healed node at
    full height in every cell."""
    recovery_faults = (
        "partition-heal",
        "crash-recover",
        "rolling-partitions",
        "overlapping-partitions",
    )
    matrix = ScenarioMatrix(fault_names=recovery_faults, block_interval=2.0)
    report = matrix.run()
    assert not report.skipped
    report.assert_clean()
    for outcome in report.outcomes:
        heights = outcome.evidence.trace.committed_heights
        # >= : rolling schedules can legitimately overshoot the target
        # while the last window heals.
        assert heights[matrix.n - 1] >= matrix.target_height, outcome.cell.label()
