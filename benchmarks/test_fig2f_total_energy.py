"""Figure 2f: total correct-node energy per SMR vs n, EESMR vs Sync HotStuff."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig2f_total_energy_vs_n(benchmark):
    points = run_once(benchmark, exp.fig2f_total_energy_vs_n, ns=(4, 5, 6, 7, 8, 9), ks=(3, 5), blocks=3)
    print("\nFigure 2f — total correct-node energy per SMR (mJ):")
    by_key = {(p.protocol, p.k, p.n): p for p in points}
    rows = []
    for n in (4, 5, 6, 7, 8, 9):
        row = [n]
        for protocol in ("eesmr", "sync-hotstuff"):
            for k in (3, 5):
                point = by_key.get((protocol, k, n))
                row.append(point.total_mj_per_block if point else None)
        rows.append(row)
    print(format_table(["n", "EESMR k=3", "EESMR k=5", "SyncHS k=3", "SyncHS k=5"], rows))
    # Shapes: EESMR below Sync HotStuff at every point; both grow with n
    # (totals sum over nodes) but Sync HotStuff grows faster.
    for (protocol, k, n), point in by_key.items():
        if protocol == "eesmr" and ("sync-hotstuff", k, n) in by_key:
            assert point.total_mj_per_block < by_key[("sync-hotstuff", k, n)].total_mj_per_block
    eesmr_growth = by_key[("eesmr", 3, 9)].total_mj_per_block / by_key[("eesmr", 3, 4)].total_mj_per_block
    shs_growth = by_key[("sync-hotstuff", 3, 9)].total_mj_per_block / by_key[("sync-hotstuff", 3, 4)].total_mj_per_block
    assert shs_growth > eesmr_growth
