"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper via
:mod:`repro.eval.experiments`, times it with pytest-benchmark (a single
round — the interesting output is the data, not the wall-clock), prints
the rows/series in the same shape the paper reports, and asserts the
qualitative claims that the reproduction is expected to preserve.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
