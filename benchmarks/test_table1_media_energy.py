"""Table 1: per-message energy of BLE, 4G LTE and WiFi."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_table1_media_energy(benchmark):
    rows = run_once(benchmark, exp.table1_media_energy)
    print("\nTable 1 — energy per message (mJ):")
    print(
        format_table(
            ["size (B)", "BLE send", "BLE recv", "BLE mcast", "4G send", "4G recv", "WiFi send", "WiFi recv"],
            [
                [
                    r["message_size_bytes"],
                    r["ble_send_mj"],
                    r["ble_recv_mj"],
                    r["ble_multicast_mj"],
                    r["lte_send_mj"],
                    r["lte_recv_mj"],
                    r["wifi_send_mj"],
                    r["wifi_recv_mj"],
                ]
                for r in rows
            ],
        )
    )
    # Shape checks from the paper: BLE is ~2 orders of magnitude below WiFi
    # and ~3 below 4G, and every column grows with message size.
    for row in rows:
        assert row["wifi_send_mj"] / row["ble_send_mj"] > 50
        assert row["lte_send_mj"] / row["ble_send_mj"] > 500
    sends = [r["ble_send_mj"] for r in rows]
    assert sends == sorted(sends)
