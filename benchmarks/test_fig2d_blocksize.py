"""Figure 2d: EESMR leader energy per SMR for different block sizes."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig2d_block_sizes(benchmark):
    series = run_once(
        benchmark, exp.fig2d_block_sizes, n=15, ks=(2, 3, 4, 5, 6, 7), payloads=(16, 128, 256), blocks=3
    )
    print("\nFigure 2d — EESMR leader energy per SMR vs k and block size (mJ):")
    ks = [p.k for p in series[16]]
    rows = []
    for k_index, k in enumerate(ks):
        rows.append([k] + [series[payload][k_index].leader_mj_per_block for payload in (16, 128, 256)])
    print(format_table(["k", "|b|=16 B", "|b|=128 B", "|b|=256 B"], rows))
    # Shapes: monotone in k for every block size, and monotone in block size for every k.
    for payload, points in series.items():
        leader = [p.leader_mj_per_block for p in points]
        assert leader == sorted(leader), f"not monotone in k for payload {payload}"
    for k_index in range(len(ks)):
        assert (
            series[16][k_index].leader_mj_per_block
            < series[128][k_index].leader_mj_per_block
            < series[256][k_index].leader_mj_per_block
        )
