"""Figure 2b: reliable k-casts vs equivalent GATT unicasts."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig2b_unicast_vs_multicast(benchmark):
    rows = run_once(benchmark, exp.fig2b_unicast_vs_multicast, payloads=(100, 200, 300, 400, 500), k=7)
    print("\nFigure 2b — unicast vs 99.99% k-cast energy (mJ), k = 7:")
    print(
        format_table(
            ["payload (B)", "UC send d=1", "UC send d=7", "UC recv d=1", "k-cast send", "k-cast recv"],
            [
                [r["payload_bytes"], r["unicast_send_dout1_mj"], r["unicast_send_dout_k_mj"], r["unicast_recv_din1_mj"], r["kcast_send_mj"], r["kcast_recv_mj"]]
                for r in rows
            ],
        )
    )
    # k-cast beats 7 unicasts at small payloads; the advantage shrinks with size.
    assert rows[0]["kcast_send_mj"] < rows[0]["unicast_send_dout_k_mj"]
    first_ratio = rows[0]["unicast_send_dout_k_mj"] / rows[0]["kcast_send_mj"]
    last_ratio = rows[-1]["unicast_send_dout_k_mj"] / rows[-1]["kcast_send_mj"]
    assert last_ratio < first_ratio
    # A single unicast is always cheaper than a 7-cast (the paper's d_out=1 series).
    for r in rows:
        assert r["unicast_send_dout1_mj"] < r["kcast_send_mj"]
