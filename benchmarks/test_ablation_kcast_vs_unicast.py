"""Ablation: running EESMR over k-cast hyper-edges vs equivalent unicast edges.

The hypergraph model exists because a single wireless multicast can replace
d_out unicasts; this ablation runs the same protocol over (a) the ring
k-cast topology and (b) a unicast ring with the same connectivity, and
compares the radio energy.
"""

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def _run_both():
    runner = ProtocolRunner()
    kcast = runner.run(
        DeploymentSpec(protocol="eesmr", n=9, f=2, k=3, topology="ring-kcast", target_height=3, seed=72)
    )
    unicast = runner.run(
        DeploymentSpec(protocol="eesmr", n=9, f=2, k=3, topology="unicast-ring", target_height=3, seed=72)
    )
    return kcast, unicast


def test_ablation_kcast_vs_unicast(benchmark):
    kcast, unicast = run_once(benchmark, _run_both)
    print("\nAblation — EESMR over k-casts vs unicast edges (n = 9, degree 3):")
    print(
        format_table(
            ["topology", "total mJ/block", "physical tx/block", "safe"],
            [
                ["ring k-cast", kcast.energy_per_block_mj, kcast.network.physical_transmissions / 3, kcast.safety.consistent],
                ["unicast ring", unicast.energy_per_block_mj, unicast.network.physical_transmissions / 3, unicast.safety.consistent],
            ],
        )
    )
    assert kcast.safety.consistent and unicast.safety.consistent
    assert kcast.committed_blocks == unicast.committed_blocks == 3
    # One multicast replaces three unicasts: the unicast deployment transmits
    # roughly k times more often per flood.
    assert unicast.network.physical_transmissions > 2 * kcast.network.physical_transmissions
    # The transmit-side energy advantage of the k-cast deployment.
    from repro.energy.meter import EnergyCategory

    kcast_tx = kcast.energy.breakdown.get(EnergyCategory.TRANSMIT)
    unicast_tx = unicast.energy.breakdown.get(EnergyCategory.TRANSMIT)
    assert unicast_tx > kcast_tx
