"""Ablation: signature scheme used inside EESMR (RSA-1024 vs ECDSA vs HMAC).

The paper argues for verification-efficient RSA in the one-signer /
many-verifiers pattern of SMR; this ablation measures how the protocol's
per-block energy shifts when the scheme is swapped.
"""

from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.eval.tables import format_table

from benchmarks.conftest import run_once

SCHEMES = ("rsa-1024", "ecdsa-secp256k1", "hmac-sha256")


def _run_all():
    runner = ProtocolRunner()
    results = {}
    for scheme in SCHEMES:
        spec = DeploymentSpec(
            protocol="eesmr", n=9, f=2, k=3, target_height=3, signature_scheme=scheme, seed=71
        )
        results[scheme] = runner.run(spec)
    return results


def test_ablation_signature_scheme(benchmark):
    results = run_once(benchmark, _run_all)
    print("\nAblation — EESMR per-block energy by signature scheme (n = 9, k = 3):")
    rows = [
        [
            scheme,
            result.energy_per_block_mj,
            result.leader_energy_per_block_mj,
            result.energy.breakdown.cryptography * 1000 / max(1, result.committed_blocks),
        ]
        for scheme, result in results.items()
    ]
    print(format_table(["scheme", "total mJ/block", "leader mJ/block", "crypto mJ/block"], rows))
    for result in results.values():
        assert result.safety.consistent and result.committed_blocks == 3
    # ECDSA's expensive verification dominates: it must be the costliest option.
    assert results["ecdsa-secp256k1"].energy_per_block_mj > results["rsa-1024"].energy_per_block_mj
    # HMAC signing is cheaper than RSA signing, so the leader gets cheaper,
    # even though HMAC forfeits transferable authentication.
    assert results["hmac-sha256"].leader_energy_per_block_mj < results["rsa-1024"].leader_energy_per_block_mj
