"""Figure 2a: BLE k-cast failure rate vs energy (redundancy)."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig2a_kcast_reliability(benchmark):
    curves = run_once(benchmark, exp.fig2a_kcast_reliability, ks=(1, 3, 7), max_redundancy=10)
    print("\nFigure 2a — k-cast failure rate vs energy:")
    rows = []
    for k, points in curves.items():
        for p in points:
            rows.append([k, p.redundancy, p.sender_energy_mj, p.receiver_energy_mj, f"{p.failure_percent:.4f}%"])
    print(format_table(["k", "redundancy", "sender mJ", "receiver mJ", "failure"], rows))
    # Shapes: failure decreases with energy, larger k needs more energy for
    # the same reliability, and the paper's four-nines operating point for
    # k = 7 costs ~5.3 mJ (sender) / ~9.98 mJ (receiver).
    for k, points in curves.items():
        failures = [p.failure_probability for p in points]
        assert failures == sorted(failures, reverse=True)
    four_nines_k7 = next(p for p in curves[7] if p.reliability >= 0.9999)
    assert abs(four_nines_k7.sender_energy_mj - 5.3) < 0.3
    assert abs(four_nines_k7.receiver_energy_mj - 9.98) < 0.5
    four_nines_k1 = next(p for p in curves[1] if p.reliability >= 0.9999)
    assert four_nines_k1.sender_energy_mj <= four_nines_k7.sender_energy_mj
