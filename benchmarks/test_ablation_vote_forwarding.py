"""Ablation: Sync HotStuff vote dissemination — partial forwarding vs full flooding.

The paper measures Sync HotStuff with "partially implemented vote
forwarding" (a simplification in its favour).  This ablation quantifies how
much that favour is worth by also running the textbook variant where every
vote is flooded network-wide, which is the O(n^2 d) behaviour of Table 3.
"""

import pytest

from repro.core.baselines.sync_hotstuff import SyncHotStuffReplica
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def _run_both():
    runner = ProtocolRunner()
    spec = DeploymentSpec(protocol="sync-hotstuff", n=9, f=2, k=3, target_height=3, seed=73)
    partial = runner.run(spec)
    original_mode = SyncHotStuffReplica.vote_forwarding
    SyncHotStuffReplica.vote_forwarding = "full"
    try:
        full = runner.run(spec)
    finally:
        SyncHotStuffReplica.vote_forwarding = original_mode
    return partial, full


def test_ablation_vote_forwarding(benchmark):
    partial, full = run_once(benchmark, _run_both)
    print("\nAblation — Sync HotStuff vote forwarding (n = 9, k = 3):")
    print(
        format_table(
            ["vote forwarding", "total mJ/block", "physical tx/block"],
            [
                ["partial (paper's setup)", partial.energy_per_block_mj, partial.network.physical_transmissions / 3],
                ["full flooding (textbook)", full.energy_per_block_mj, full.network.physical_transmissions / 3],
            ],
        )
    )
    assert partial.safety.consistent and full.safety.consistent
    assert partial.committed_blocks == full.committed_blocks == 3
    # Full flooding costs substantially more — the simplification indeed
    # favours Sync HotStuff, as the paper acknowledges.
    assert full.energy_per_block_mj > 1.5 * partial.energy_per_block_mj
    assert full.network.physical_transmissions > 2 * partial.network.physical_transmissions
