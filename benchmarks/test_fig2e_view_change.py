"""Figure 2e: EESMR view-change energy (equivocation / no progress / honest)."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig2e_view_change_energy(benchmark):
    points = run_once(benchmark, exp.fig2e_view_change_energy, n=15, fs=(1, 2, 3, 4, 5, 6), blocks=2)
    print("\nFigure 2e — energy per view change vs f (n = 15, k = f + 1, mJ):")
    by_key = {(p.scenario, p.f): p for p in points}
    rows = []
    for f in (1, 2, 3, 4, 5, 6):
        rows.append(
            [
                f,
                by_key[("equivocation", f)].mean_correct_mj,
                by_key[("no_progress", f)].mean_correct_mj,
                by_key[("honest_smr", f)].mean_correct_mj,
            ]
        )
    print(format_table(["f", "equivocation VC", "no-progress VC", "honest SMR"], rows))
    # Shapes: both view-change scenarios cost (much) more than honest SMR and
    # grow with f; every scenario completed exactly one view change.
    for f in (1, 2, 3, 4, 5, 6):
        assert by_key[("no_progress", f)].mean_correct_mj > 2 * by_key[("honest_smr", f)].mean_correct_mj
        assert by_key[("equivocation", f)].mean_correct_mj > 2 * by_key[("honest_smr", f)].mean_correct_mj
        assert by_key[("no_progress", f)].view_changes == 1
        assert by_key[("equivocation", f)].view_changes == 1
    assert by_key[("no_progress", 6)].mean_correct_mj > by_key[("no_progress", 1)].mean_correct_mj
    assert by_key[("equivocation", 6)].mean_correct_mj > by_key[("equivocation", 1)].mean_correct_mj
