"""Section 5.7 headline: EESMR vs Sync HotStuff steady-state and view-change ratios."""

from repro.eval import experiments as exp

from benchmarks.conftest import run_once


def test_headline_ratios(benchmark):
    ratios = run_once(benchmark, exp.headline_ratios, n=13, f=6, k=7, blocks=3)
    print("\nSection 5.7 headline numbers (n = 13, k = 7):")
    print(f"  EESMR steady state        : {ratios.eesmr_steady_mj_per_block:.1f} mJ/block")
    print(f"  Sync HotStuff steady state: {ratios.sync_hotstuff_steady_mj_per_block:.1f} mJ/block")
    print(f"  steady-state ratio        : {ratios.steady_state_ratio:.2f}x  (paper: ~2.85x)")
    print(f"  EESMR view change         : {ratios.eesmr_view_change_mj:.1f} mJ")
    print(f"  Sync HotStuff view change : {ratios.sync_hotstuff_view_change_mj:.1f} mJ")
    print(f"  view-change ratio         : {ratios.view_change_ratio:.2f}x  (paper: ~2.05x)")
    # The qualitative claims: Sync HotStuff is several times more energy
    # hungry in the steady state, while EESMR costs more during a view change.
    assert ratios.steady_state_ratio > 2.0
    assert ratios.view_change_ratio > 1.2
    # And the factors stay within the same order of magnitude as the paper's.
    assert ratios.steady_state_ratio < 10.0
    assert ratios.view_change_ratio < 6.0
