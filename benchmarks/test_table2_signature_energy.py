"""Table 2: signing/verification energy per signature scheme."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_table2_signature_energy(benchmark):
    rows = run_once(benchmark, exp.table2_signature_energy)
    print("\nTable 2 — signature energy (J):")
    print(
        format_table(
            ["scheme", "parameters", "sign (J)", "verify (J)"],
            [[r["scheme"], r["parameters"], r["sign_j"], r["verify_j"]] for r in rows],
        )
    )
    by_name = {r["scheme"]: r for r in rows}
    # RSA-1024 is the verification-cheapest scheme — the paper's pick for SMR.
    assert min(rows, key=lambda r: r["verify_j"])["scheme"] == "rsa-1024"
    # ECDSA verification is more expensive than its signing; RSA is the reverse.
    assert by_name["ecdsa-secp256k1"]["verify_j"] > by_name["ecdsa-secp256k1"]["sign_j"]
    assert by_name["rsa-1024"]["verify_j"] < by_name["rsa-1024"]["sign_j"]
