"""Figure 2c: EESMR leader vs replica energy per SMR as k grows (n = 15)."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig2c_leader_vs_replica(benchmark):
    points = run_once(
        benchmark, exp.fig2c_leader_vs_replica, n=15, ks=(2, 3, 4, 5, 6, 7), payload_bytes=16, blocks=3
    )
    print("\nFigure 2c — EESMR energy per SMR, |b| = 16 B, n = 15 (mJ):")
    print(
        format_table(
            ["k", "leader", "replica (mean)", "all correct nodes"],
            [[p.k, p.leader_mj_per_block, p.replica_mj_per_block, p.total_mj_per_block] for p in points],
        )
    )
    # Shapes: energy grows with k (k incoming edges), leader slightly above replicas.
    leaders = [p.leader_mj_per_block for p in points]
    replicas = [p.replica_mj_per_block for p in points]
    assert leaders == sorted(leaders)
    assert replicas == sorted(replicas)
    for p in points:
        assert p.leader_mj_per_block > p.replica_mj_per_block
