"""Figure 3: leader energy to tolerate f faults, EESMR vs Sync HotStuff (n = 13)."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig3_eesmr_vs_sync_hotstuff(benchmark):
    points = run_once(benchmark, exp.fig3_eesmr_vs_sync_hotstuff, n=13, fs=(1, 2, 3, 4, 5, 6), blocks=2)
    by_key = {(p.protocol, p.scenario, p.f): p for p in points}
    print("\nFigure 3 — leader energy vs f (n = 13, k = f + 1, mJ):")
    rows = []
    for f in (1, 2, 3, 4, 5, 6):
        rows.append(
            [
                f,
                by_key[("eesmr", "honest_smr", f)].leader_mj,
                by_key[("sync-hotstuff", "honest_smr", f)].leader_mj,
                by_key[("eesmr", "view_change", f)].leader_mj,
                by_key[("sync-hotstuff", "view_change", f)].leader_mj,
            ]
        )
    print(format_table(["f", "EESMR honest", "SyncHS honest", "EESMR VC", "SyncHS VC"], rows))
    for f in (1, 2, 3, 4, 5, 6):
        # Honest case: EESMR beats Sync HotStuff at every fault level.
        assert (
            by_key[("eesmr", "honest_smr", f)].leader_mj
            < by_key[("sync-hotstuff", "honest_smr", f)].leader_mj
        )
        # View change: the ordering flips — EESMR pays for its cheap steady state.
        assert (
            by_key[("eesmr", "view_change", f)].leader_mj
            > by_key[("sync-hotstuff", "view_change", f)].leader_mj
        )
    # Energy grows with f (k = f + 1 incoming edges).
    eesmr_honest = [by_key[("eesmr", "honest_smr", f)].leader_mj for f in (1, 6)]
    assert eesmr_honest[1] > eesmr_honest[0]
