"""Figure 1: feasible region of EESMR (WiFi) vs the trusted baseline (4G)."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_fig1_feasible_region(benchmark):
    region = run_once(
        benchmark,
        exp.fig1_feasible_region,
        message_sizes=tuple(range(256, 4096 + 1, 512)),
        node_counts=tuple(range(4, 41, 4)),
    )
    print("\nFigure 1 — EESMR minus trusted-baseline energy (negative = EESMR wins):")
    print(
        format_table(
            ["payload (B)", "crossover n", "min diff (J)", "max diff (J)", "EESMR-favourable"],
            [
                [r["message_bytes"], r["crossover_n"], r["min_difference_j"], r["max_difference_j"], f"{r['favourable_fraction']:.0%}"]
                for r in region.summary_rows()
            ],
        )
    )
    # The region genuinely has two sides, EESMR winning at small n.
    assert 0.0 < region.favourable_fraction < 1.0
    assert region.is_favourable(1024, 4)
    assert not region.is_favourable(1024, 40)
