"""Table 3: best-case complexity comparison, measured from protocol runs."""

from repro.eval import experiments as exp
from repro.eval.tables import format_table

from benchmarks.conftest import run_once


def test_table3_complexity(benchmark):
    rows = run_once(
        benchmark, exp.table3_complexity, system_sizes=((7, 3), (13, 6)), k=3, blocks=3
    )
    print("\nTable 3 — measured per-block operation counts (steady state):")
    print(
        format_table(
            ["protocol", "n", "tx/block", "bytes/block", "signs/block", "verifies/block"],
            [
                [r.protocol, r.n, r.transmissions_per_block, r.bytes_per_block, r.signs_per_block, r.verifies_per_block]
                for r in rows
            ],
        )
    )
    print("\nTable 3 — asymptotic claims (as printed in the paper):")
    print(
        format_table(
            ["protocol", "best comm", "best sign", "best verify", "block period", "worst comm"],
            [
                [r["protocol"], r["best_communication"], r["best_sign"], r["best_verify"], r["best_block_period"], r["worst_communication"]]
                for r in exp.TABLE3_ASYMPTOTIC
            ],
        )
    )
    by_key = {(r.protocol, r.n): r for r in rows}
    # EESMR: O(1) signing, O(n) verification, O(nd) communication.
    assert by_key[("eesmr", 7)].signs_per_block == by_key[("eesmr", 13)].signs_per_block
    assert by_key[("eesmr", 13)].verifies_per_block > by_key[("eesmr", 7)].verifies_per_block
    # Certificate-based baselines sign per node and verify quadratically.
    assert by_key[("sync-hotstuff", 13)].signs_per_block > by_key[("sync-hotstuff", 7)].signs_per_block
    assert (
        by_key[("sync-hotstuff", 13)].verifies_per_block
        / by_key[("eesmr", 13)].verifies_per_block
        > 3
    )
