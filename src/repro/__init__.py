"""repro: a reproduction of "EESMR: Energy Efficient BFT — SMR for the masses".

The package is organised by substrate:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.net` — hypergraph network model, topologies and the
  bounded-synchronous flooding transport;
* :mod:`repro.radio` — communication-medium energy models (BLE k-casts,
  GATT unicasts, WiFi, 4G LTE);
* :mod:`repro.crypto` — signature schemes with measured energy costs;
* :mod:`repro.energy` — per-node energy metering plus the paper's
  analytical energy framework (Section 4);
* :mod:`repro.core` — the EESMR protocol and the baselines it is compared
  against (Sync HotStuff, OptSync, trusted control node);
* :mod:`repro.eval` — experiment runner, workloads and the per-table /
  per-figure experiment implementations;
* :mod:`repro.session` — the one front door for experiments: staged
  deployment construction, observer hooks, steppable run control and
  adaptive adversaries.

Quickstart::

    from repro import DeploymentSpec, run_protocol

    result = run_protocol(DeploymentSpec(protocol="eesmr", n=7, f=2, k=3))
    print(result.committed_blocks, result.energy_per_block_mj)
"""

from repro.core import (
    Block,
    Command,
    EesmrReplica,
    FaultPlan,
    OptSyncReplica,
    ProtocolConfig,
    SafetyChecker,
    SyncHotStuffReplica,
    TrustedBaselineReplica,
)
from repro.energy import (
    EnergyMeter,
    compare_protocols,
    eesmr_cost_model,
    energy_fault_bound,
    feasible_region,
    sync_hotstuff_cost_model,
    trusted_baseline_cost_model,
    view_change_ratio_bound,
)
from repro.eval import DeploymentSpec, ProtocolRunner, RunResult, run_protocol
from repro.net import Hypergraph, HyperEdge, ring_kcast_topology
from repro.radio import BleAdvertisementKCast, BleGattUnicast
from repro.session import Session, SessionBuilder, SessionObserver
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Block",
    "Command",
    "EesmrReplica",
    "FaultPlan",
    "OptSyncReplica",
    "ProtocolConfig",
    "SafetyChecker",
    "SyncHotStuffReplica",
    "TrustedBaselineReplica",
    "EnergyMeter",
    "compare_protocols",
    "eesmr_cost_model",
    "energy_fault_bound",
    "feasible_region",
    "sync_hotstuff_cost_model",
    "trusted_baseline_cost_model",
    "view_change_ratio_bound",
    "DeploymentSpec",
    "ProtocolRunner",
    "RunResult",
    "run_protocol",
    "Hypergraph",
    "HyperEdge",
    "ring_kcast_topology",
    "Session",
    "SessionBuilder",
    "SessionObserver",
    "BleAdvertisementKCast",
    "BleGattUnicast",
    "Simulator",
    "__version__",
]
