"""Retry/backoff policy for catch-up state transfer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SeededRNG


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunable parameters of one recovery campaign.

    The defaults are coupled to :data:`repro.testkit.faults.CATCH_UP_GRACE`
    (8 s): a *working* catch-up completes well inside the grace window
    (one or two request round-trips at ``request_timeout`` each), while a
    *broken* one burns through every retry — over 20 s of virtual time —
    so the run outlives the grace period, the node's liveness exemption
    lapses, and the liveness invariant fails.  That coupling is what makes
    the planted drop-the-final-QC mutant detectable.
    """

    #: Virtual time to wait for a useful response before declaring one
    #: attempt timed out.  Must exceed a unicast round trip (2 hops of at
    #: most ``hop_delay`` each).
    request_timeout: float = 2.5
    #: Retries after the initial attempt before giving up.
    max_retries: int = 4
    #: Backoff before retry ``i`` (0-based) is
    #: ``base * factor**i * (1 + jitter_draw)``.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    #: Jitter draws uniformly from ``[0, jitter)`` — deterministic per
    #: seed via the campaign's :class:`~repro.sim.rng.SeededRNG`.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive, got {self.request_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff base/factor out of range: {self.backoff_base}/{self.backoff_factor}"
            )
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, retry_index: int, rng: SeededRNG) -> float:
        """The jittered delay before 0-based retry ``retry_index``."""
        base = self.backoff_base * self.backoff_factor**retry_index
        return base * (1.0 + rng.uniform(0.0, self.jitter))
