"""Retry/backoff policy of the reliable-delivery sublayer.

When a wire-level impairment (:mod:`repro.net.impairment`) drops a hop
delivery, the sending node does not learn about it instantly: the
reliable sublayer models a per-message ACK timeout, after which the
sender retransmits with exponential backoff and seeded jitter — the same
state-machine shape as :class:`repro.recovery.policy.RecoveryPolicy`,
but per physical hop delivery rather than per catch-up request.  Each
retransmission charges full radio energy through the existing ledger;
after ``max_retries`` failed copies the sender gives up and the loss
becomes the protocol's problem (and the loss-budget liveness invariant's
evidence — see ``docs/impairments.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SeededRNG


@dataclass(frozen=True)
class ReliabilityPolicy:
    """Tunable parameters of per-hop reliable delivery.

    The defaults are coupled to the loss-budget liveness allowance the
    same way :class:`~repro.recovery.policy.RecoveryPolicy` is coupled to
    ``CATCH_UP_GRACE``: a *working* retransmission chain recovers a
    dropped delivery within a couple of ACK timeouts, comfortably inside
    a :class:`~repro.testkit.faults.LossWindow`'s bounded latency
    allowance, while a chain that gives up early (the planted
    retransmission-giveup mutant) leaves the receiver permanently behind
    and the invariant fails it once the allowance lapses.
    """

    #: Virtual time to wait for the per-message ACK before declaring one
    #: copy lost.  Must exceed a delivery + ACK round trip (2 hops of at
    #: most ``hop_delay`` each).
    ack_timeout: float = 2.0
    #: Retransmissions after the initial copy before giving up.
    max_retries: int = 3
    #: Backoff before retry ``i`` (0-based) is
    #: ``base * factor**i * (1 + jitter_draw)``.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    #: Jitter draws uniformly from ``[0, jitter)`` — deterministic per
    #: seed via the impairment model's :class:`~repro.sim.rng.SeededRNG`.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError(f"ack_timeout must be positive, got {self.ack_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff base/factor out of range: {self.backoff_base}/{self.backoff_factor}"
            )
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff(self, retry_index: int, rng: SeededRNG) -> float:
        """The jittered delay before 0-based retry ``retry_index``."""
        base = self.backoff_base * self.backoff_factor**retry_index
        return base * (1.0 + rng.uniform(0.0, self.jitter))

    def retry_delay(self, retry_index: int, rng: SeededRNG) -> float:
        """Total delay before 0-based retry ``retry_index`` fires: the ACK
        timeout that detected the loss plus the jittered backoff."""
        return self.ack_timeout + self.backoff(retry_index, rng)
