"""Partition catch-up and crash-recovery state transfer.

A node that exits a :class:`~repro.testkit.faults.PartitionWindow` (or
reboots after a :class:`~repro.testkit.faults.CrashRecoverWindow`) is no
longer pardoned from liveness forever: a :class:`RecoveryController`
wakes at the heal time and drives block/QC catch-up from live peers —
per-request timeouts, bounded retries, exponential backoff with
deterministic seeded jitter, and peer rotation on failure — over the
normal dissemination medium, so radio and crypto energy accounting stays
honest.  The replica-side serve/adopt handlers live on
:class:`~repro.core.replica_base.BaseReplica`; the liveness invariant
holds the healed node to the full target once
``heal + CATCH_UP_GRACE`` has passed (see
:meth:`~repro.testkit.faults.FaultSchedule.liveness_exempt_nodes`).

See ``docs/recovery.md`` for the protocol and parameters.
"""

from repro.recovery.controller import RecoveryController
from repro.recovery.observer import RecoveryObserver
from repro.recovery.policy import RecoveryPolicy
from repro.recovery.reliable import ReliabilityPolicy

__all__ = [
    "RecoveryController",
    "RecoveryObserver",
    "RecoveryPolicy",
    "ReliabilityPolicy",
]
