"""Observer that collects catch-up lifecycle events off the session bus."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.session.observers import SessionObserver

#: Chronological record of one bus dispatch: (time, node, event, detail).
RecoveryEvent = Tuple[float, int, str, dict]


class RecoveryObserver(SessionObserver):
    """Record every ``on_recovery`` dispatch for later assertion/analysis.

    Register it on a :class:`~repro.session.builder.SessionBuilder` (or an
    :class:`~repro.session.observers.ObserverBus`) and read ``events``
    after the run; the helpers below slice the record the ways tests
    usually need.  Event names and detail payloads are documented on
    :meth:`~repro.session.observers.SessionObserver.on_recovery`.
    """

    def __init__(self) -> None:
        self.events: List[RecoveryEvent] = []

    def on_recovery(self, node: int, event: str, detail: dict, time: float) -> None:
        self.events.append((time, node, event, dict(detail)))

    # -------------------------------------------------------------- queries
    def events_for(self, node: int) -> List[RecoveryEvent]:
        """The chronological record restricted to one node."""
        return [e for e in self.events if e[1] == node]

    def kinds_for(self, node: int) -> List[str]:
        """Just the event names for one node, in order."""
        return [e[2] for e in self.events if e[1] == node]

    def counts(self) -> Dict[str, int]:
        """Event-name histogram across all nodes."""
        out: Dict[str, int] = {}
        for _, _, event, _ in self.events:
            out[event] = out.get(event, 0) + 1
        return dict(sorted(out.items()))

    def caught_up_nodes(self) -> Tuple[int, ...]:
        """Nodes that emitted ``caught_up`` at least once, sorted."""
        return tuple(sorted({n for _, n, e, _ in self.events if e == "caught_up"}))

    def gave_up_nodes(self) -> Tuple[int, ...]:
        """Nodes that emitted ``gave_up``, sorted."""
        return tuple(sorted({n for _, n, e, _ in self.events if e == "gave_up"}))

    def summary(self) -> dict:
        """A JSON-safe snapshot: counts plus terminal outcomes per node."""
        return {
            "counts": self.counts(),
            "caught_up": list(self.caught_up_nodes()),
            "gave_up": list(self.gave_up_nodes()),
        }
