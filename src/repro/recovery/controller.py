"""The session controller that drives catch-up for one recovering atom.

One :class:`RecoveryController` is attached per recovery-bearing fault
atom (:class:`~repro.testkit.faults.PartitionWindow`,
:class:`~repro.testkit.faults.CrashRecoverWindow`) through the existing
``FaultSchedule.controllers()`` → ``SessionBuilder`` → ``Session``
plumbing; no new builder surface is needed.  Determinism follows the
adaptive-adversary contract (:mod:`repro.session.adaptive`): wake-ups at
virtual times derived from fixed parameters and seeded draws, decisions
that are pure functions of session state.
"""

from __future__ import annotations

from typing import List, Optional

from repro.recovery.policy import RecoveryPolicy
from repro.sim.rng import SeededRNG, derive_seed


class RecoveryController:
    """Drive one node's catch-up after its partition heals (or it reboots).

    Lifecycle (all transitions surfaced via ``session.bus.recovery`` as
    ``sync_started`` / ``sync_request`` / ``sync_timeout`` / ``sync_retry``
    / ``caught_up`` / ``gave_up`` events):

    * sleep until the atom's ``heal`` time;
    * at heal, retire immediately if the node is still cut off by an
      overlapping window (that window's own controller owns recovery
      after the *last* heal) or dark from a composed crash fault;
    * while the node trails the highest committed height among live
      peers, solicit a rotating peer with per-request timeout and
      exponential seeded-jitter backoff, up to ``max_retries`` retries,
      then give up (bounded);
    * while the node is caught up but the run is still busy, keep
      watching quietly — a deficit appearing later (e.g. a flood it
      missed mid-sync) re-solicits with a fresh retry budget, which is
      the graceful re-solicit-after-quiescence degradation path.
    """

    def __init__(self, fault, policy: Optional[RecoveryPolicy] = None) -> None:
        self.fault = fault
        self.policy = policy or RecoveryPolicy()
        self._phase = "waiting"  # waiting -> monitoring -> done
        self._wake = float(fault.heal)
        self._awaiting = False
        self._attempt = 0
        self._started = False
        self._rng: Optional[SeededRNG] = None
        self._peers: List[int] = []
        self._cursor = 0

    # ------------------------------------------------------------- protocol
    def on_attach(self, session) -> None:
        self._phase = "waiting"
        self._wake = float(self.fault.heal)
        self._awaiting = False
        self._attempt = 0
        self._started = False
        # One deterministic stream per (run seed, recovering node):
        # peer-rotation order and backoff jitter replay exactly per seed.
        self._rng = SeededRNG(derive_seed(session.spec.seed, "recovery", self.fault.node))
        self._peers = self._rng.shuffle(
            [pid for pid in sorted(session.replicas) if pid != self.fault.node]
        )
        self._cursor = 0
        replica = session.replicas.get(self.fault.node)
        if replica is not None:
            replica._sync_confirmations.clear()

    def next_wakeup(self, session) -> Optional[float]:
        if self._phase == "done":
            return None
        return max(self._wake, session.now)

    def on_wakeup(self, session) -> None:
        node = self.fault.node
        replica = session.replicas.get(node)
        if replica is None:
            self._phase = "done"
            return
        if self._phase == "waiting":
            if session.network.is_partitioned(node) or replica.crashed:
                # Still cut off by an overlapping window (its controller
                # takes over at the last heal), or dark from a composed
                # crash fault — either way catch-up is not ours to run.
                self._phase = "done"
                return
            self._phase = "monitoring"
            self._step(session, replica)
            return
        if self._phase == "monitoring":
            self._step(session, replica)

    # --------------------------------------------------------------- states
    def _step(self, session, replica) -> None:
        node = self.fault.node
        target = self._live_target(session)
        if replica.committed_height >= target:
            if self._started:
                session.bus.recovery(
                    node,
                    "caught_up",
                    {"height": replica.committed_height, "attempts": self._attempt},
                    session.now,
                )
                self._started = False
            self._attempt = 0
            self._awaiting = False
            if session.idle:
                self._phase = "done"
                return
            # The run is still busy; keep watching for a late deficit.
            self._wake = session.now + self.policy.request_timeout
            return
        if self._awaiting:
            # The outstanding attempt did not close the gap in time.
            session.bus.recovery(
                node,
                "sync_timeout",
                {"attempt": self._attempt, "height": replica.committed_height},
                session.now,
            )
            if self._attempt > self.policy.max_retries:
                session.bus.recovery(
                    node,
                    "gave_up",
                    {
                        "attempts": self._attempt,
                        "height": replica.committed_height,
                        "target": target,
                    },
                    session.now,
                )
                self._phase = "done"
                return
            delay = self.policy.backoff(self._attempt - 1, self._rng)
            session.bus.recovery(
                node,
                "sync_retry",
                {"attempt": self._attempt, "delay": delay},
                session.now,
            )
            self._awaiting = False
            self._wake = session.now + delay
            return
        # Not awaiting: fire the next solicitation.
        if not self._started:
            session.bus.recovery(
                node,
                "sync_started",
                {
                    "height": replica.committed_height,
                    "target": target,
                    "peers": len(self._peers),
                },
                session.now,
            )
            self._started = True
        self._attempt += 1
        peer = self._next_peer(session)
        if peer is not None:
            session.bus.recovery(
                node,
                "sync_request",
                {"peer": peer, "attempt": self._attempt, "height": replica.committed_height},
                session.now,
            )
            replica.request_sync(peer)
        self._awaiting = True
        self._wake = session.now + self.policy.request_timeout

    # -------------------------------------------------------------- helpers
    def _live_target(self, session) -> int:
        """Highest committed height among live, connected peers."""
        best = 0
        for pid, replica in session.replicas.items():
            if pid == self.fault.node or replica.crashed:
                continue
            if session.network.is_partitioned(pid):
                continue
            if replica.committed_height > best:
                best = replica.committed_height
        return best

    def _next_peer(self, session) -> Optional[int]:
        """The next live, connected peer in the seeded rotation."""
        for _ in range(len(self._peers)):
            peer = self._peers[self._cursor % len(self._peers)]
            self._cursor += 1
            replica = session.replicas.get(peer)
            if replica is None or replica.crashed:
                continue
            if session.network.is_partitioned(peer):
                continue
            return peer
        return None
