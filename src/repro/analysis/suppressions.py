"""Per-line suppression comments for the determinism analyzer.

Grammar (one comment per line, trailing or standalone)::

    # detlint: ok <rule>[, <rule>...] — <reason>

* ``<rule>`` is a registered rule name, or ``*`` to cover every rule;
* the reason is mandatory — a suppression that does not say *why* the
  contract may be relaxed here is itself reported (``bad-suppression``);
* a trailing comment covers findings on its own line; a standalone
  comment line covers the line below it (for statements that do not fit
  a trailing comment);
* ``--`` is accepted in place of the em dash.

Suppressions are tracked: one that matches no finding is reported as
``unused-suppression`` (only when the full rule set ran — a scoped
``--select`` run cannot tell an unused suppression from an unselected
rule).  This keeps the suppression inventory honest as findings get
fixed for real.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

#: Meta-rules emitted by the suppression machinery itself.
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"

_MARKER = re.compile(r"#\s*detlint\s*:")
_GRAMMAR = re.compile(
    r"#\s*detlint\s*:\s*ok\s+"
    r"(?P<rules>(?:[\w*-]+)(?:\s*,\s*[\w*-]+)*)"
    r"\s*(?:—|--)\s*"
    r"(?P<reason>\S.*?)\s*$"
)


@dataclass
class Suppression:
    """One parsed ``detlint: ok`` comment."""

    line: int
    #: The line whose findings this suppression covers (the comment's own
    #: line for trailing comments, the next line for standalone ones).
    target_line: int
    rules: Tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def covers(self, line: int, rule: str) -> bool:
        return line == self.target_line and ("*" in self.rules or rule in self.rules)


@dataclass
class SuppressionSheet:
    """Every suppression (and malformed marker) in one file."""

    suppressions: List[Suppression]
    #: (line, message) pairs for markers that failed to parse.
    malformed: List[Tuple[int, str]]

    def match(self, line: int, rule: str) -> Optional[Suppression]:
        """The first suppression covering ``(line, rule)``, marking it used."""
        for suppression in self.suppressions:
            if suppression.covers(line, rule):
                suppression.used = True
                return suppression
        return None

    def unused(self) -> List[Suppression]:
        return [s for s in self.suppressions if not s.used]


def _comments(source: str) -> Iterator[Tuple[int, int, str]]:
    """Yield ``(line, column, text)`` for every comment token in ``source``.

    Tokenizing (rather than scanning raw lines) keeps the grammar out of
    docstrings and string literals — only real comments can suppress.
    Token errors fall back to yielding nothing; an unparsable file fails
    at AST time with a much better message.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):
        return


def parse_suppressions(source: str) -> SuppressionSheet:
    """Extract every suppression comment from ``source``."""
    suppressions: List[Suppression] = []
    malformed: List[Tuple[int, str]] = []
    for line, column, text in _comments(source):
        if not _MARKER.search(text):
            continue
        match = _GRAMMAR.search(text)
        if match is None:
            malformed.append(
                (
                    line,
                    "malformed detlint suppression; expected "
                    "'# detlint: ok <rule>[, <rule>] — <reason>' "
                    "(the reason is mandatory)",
                )
            )
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(","))
        standalone = column == 0 or not source.splitlines()[line - 1][:column].strip()
        suppressions.append(
            Suppression(
                line=line,
                target_line=line + 1 if standalone else line,
                rules=rules,
                reason=match.group("reason"),
            )
        )
    return SuppressionSheet(suppressions=suppressions, malformed=malformed)
