"""detlint: determinism & registry-coherence static analysis.

Every PR in this repo rests on one contract — seeded byte-determinism:
golden trace fingerprints stay byte-identical across optimized, legacy,
serial and parallel runs, and every source of randomness flows through
:func:`repro.sim.rng.derive_seed` child streams.  The scenario matrix
and the fuzzer enforce that contract *dynamically*, on the paths they
happen to execute; this package enforces it *statically*, on every path,
on every PR.

Entry points:

* ``python -m repro.analysis`` / ``repro analyze`` / ``make analyze`` —
  run the pass (exit 1 on findings);
* :func:`analyze` — the library API used by the test battery;
* :func:`repro.analysis.registry.register` — plug in a new checker.

See ``docs/analysis.md`` for the rule catalog and the suppression
grammar (``# detlint: ok <rule> — <reason>``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import Analyzer, add_arguments, collect_contexts, main, run_cli
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.registry import (
    Checker,
    CheckerRegistry,
    default_registry,
    register,
)
from repro.analysis.suppressions import (
    BAD_SUPPRESSION,
    UNUSED_SUPPRESSION,
    Suppression,
    parse_suppressions,
)


def analyze(
    paths: Sequence,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Run the default rule set over ``paths`` and return the report."""
    return Analyzer(root=root).run([Path(p) for p in paths], select=select, ignore=ignore)


__all__ = [
    "AnalysisReport",
    "Analyzer",
    "BAD_SUPPRESSION",
    "Checker",
    "CheckerRegistry",
    "Finding",
    "Suppression",
    "UNUSED_SUPPRESSION",
    "add_arguments",
    "analyze",
    "collect_contexts",
    "default_registry",
    "main",
    "parse_suppressions",
    "register",
    "run_cli",
]
