"""The analyzer engine: collect files, run checkers, apply suppressions.

``python -m repro.analysis`` and ``repro analyze`` both land in
:func:`run_cli`.  The pass is purely syntactic (``ast`` over every file;
the analyzed code is never imported), so a repo-wide run is fast enough
to block every PR — the CI budget is < 10 s and the shipped tree runs in
well under one.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.registry import CheckerRegistry, default_registry
from repro.analysis.suppressions import (
    BAD_SUPPRESSION,
    UNUSED_SUPPRESSION,
    parse_suppressions,
)

#: Directory names never descended into when collecting files.
_SKIP_DIRS = {"__pycache__", ".git"}


def collect_contexts(paths: Sequence[Path], root: Path) -> List[ModuleContext]:
    """Parse every ``.py`` file under ``paths`` (sorted, deterministic)."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    contexts = []
    for file in sorted(set(files)):
        contexts.append(ModuleContext.load(file, root))
    return contexts


class Analyzer:
    """One configured analysis pass over a file set."""

    def __init__(
        self,
        registry: Optional[CheckerRegistry] = None,
        root: Optional[Path] = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.root = root or Path.cwd()

    def run(
        self,
        paths: Sequence[Path],
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> AnalysisReport:
        contexts = collect_contexts([Path(p) for p in paths], self.root)
        # The meta-rules are not checkers; keep them out of the registry
        # lookup so ``--ignore bad-suppression`` is legal.
        meta = (BAD_SUPPRESSION, UNUSED_SUPPRESSION)
        checker_ignore = [rule for rule in (ignore or ()) if rule not in meta]
        checkers = self.registry.instantiate(select=select, ignore=checker_ignore or None)
        raw: List[Finding] = []
        for checker in checkers:
            if checker.scope == "module":
                for ctx in contexts:
                    raw.extend(checker.check(ctx))
        project_checkers = [c for c in checkers if c.scope == "project"]
        if project_checkers:
            index = ProjectIndex(contexts)
            for checker in project_checkers:
                raw.extend(checker.check_project(index))

        findings: List[Finding] = []
        suppressed = 0
        sheets = {ctx.relpath: parse_suppressions(ctx.source) for ctx in contexts}
        meta_ignored = set(ignore or ())
        for finding in raw:
            sheet = sheets.get(finding.path)
            if sheet is not None and sheet.match(finding.line, finding.rule):
                suppressed += 1
            else:
                findings.append(finding)
        for relpath, sheet in sheets.items():
            if BAD_SUPPRESSION not in meta_ignored:
                for line, message in sheet.malformed:
                    findings.append(
                        Finding(
                            path=relpath,
                            line=line,
                            column=1,
                            rule=BAD_SUPPRESSION,
                            message=message,
                        )
                    )
            # A scoped --select run cannot distinguish "unused" from
            # "covers a rule we did not run", so only full runs audit use.
            if select is None and UNUSED_SUPPRESSION not in meta_ignored:
                for suppression in sheet.unused():
                    findings.append(
                        Finding(
                            path=relpath,
                            line=suppression.line,
                            column=1,
                            rule=UNUSED_SUPPRESSION,
                            message=(
                                f"suppression for {', '.join(suppression.rules)} "
                                "matched no finding; remove it or fix the rule list"
                            ),
                        )
                    )
        return AnalysisReport(
            findings=sorted(findings),
            files_analyzed=len(contexts),
            rules_run=[c.name for c in checkers],
            suppressed=suppressed,
        )


# -------------------------------------------------------------------- the CLI
def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the analyzer's flags (shared by ``repro analyze``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--select",
        nargs="+",
        metavar="RULE",
        help="run only these rules",
    )
    parser.add_argument(
        "--ignore",
        nargs="+",
        metavar="RULE",
        help="skip these rules (also silences the suppression meta-rules)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def run_cli(args: argparse.Namespace) -> int:
    registry = default_registry()
    if args.list_rules:
        for entry in registry.describe():
            print(f"{entry['rule']:32s} [{entry['scope']:7s}] {entry['description']}")
        print(f"{BAD_SUPPRESSION:32s} [meta   ] malformed detlint suppression comment")
        print(f"{UNUSED_SUPPRESSION:32s} [meta   ] suppression that matched no finding")
        return 0
    paths = [Path(p) for p in args.paths] if args.paths else [Path("src/repro")]
    for path in paths:
        if not path.exists():
            print(f"detlint: no such path: {path}")
            return 2
    analyzer = Analyzer(registry=registry)
    try:
        report = analyzer.run(paths, select=args.select, ignore=args.ignore)
    except KeyError as error:
        print(f"detlint: {error.args[0]}")
        return 2
    if args.format == "json":
        print(report.render_json())
    elif report.findings:
        print(report.render_human())
    else:
        print(
            f"detlint: clean — {report.files_analyzed} file(s), "
            f"{len(report.rules_run)} rule(s)"
            + (f", {report.suppressed} suppression(s) honoured" if report.suppressed else "")
        )
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="detlint: determinism & registry-coherence static analysis",
    )
    add_arguments(parser)
    return run_cli(parser.parse_args(argv))
