"""The pluggable checker registry for the determinism analyzer.

A checker is a class with a unique kebab-case ``name``, a one-line
``description``, a ``scope`` and one ``check`` entry point:

* ``scope = "module"`` — ``check(ctx)`` is called once per analyzed
  file with a :class:`~repro.analysis.context.ModuleContext`;
* ``scope = "project"`` — ``check_project(index)`` is called once per
  run with a :class:`~repro.analysis.context.ProjectIndex` over every
  analyzed file (for cross-file contracts such as registry coherence).

Checkers register themselves with :func:`register` at import time; the
:mod:`repro.analysis.checkers` package imports every built-in checker
module, so constructing a :class:`CheckerRegistry` from
:func:`default_registry` yields the shipped rule set.  Third-party or
test-local checkers register the same way — see ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding


class Checker:
    """Base class for analyzer checkers."""

    #: Unique kebab-case rule name (used in reports and suppressions).
    name: str = ""
    #: One-line summary for ``--list-rules`` and the docs catalog.
    description: str = ""
    #: ``"module"`` or ``"project"``.
    scope: str = "module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module (``scope == "module"``)."""
        return iter(())

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        """Yield findings for the whole file set (``scope == "project"``)."""
        return iter(())

    def finding(self, ctx: ModuleContext, node, message: str) -> Finding:
        """Build a finding anchored at an AST node (or a bare line number)."""
        line = getattr(node, "lineno", node if isinstance(node, int) else 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=ctx.relpath, line=line, column=column, rule=self.name, message=message
        )


class CheckerRegistry:
    """An ordered, name-keyed collection of checker classes."""

    def __init__(self) -> None:
        self._checkers: Dict[str, Type[Checker]] = {}

    def register(self, checker_cls: Type[Checker]) -> Type[Checker]:
        name = checker_cls.name
        if not name:
            raise ValueError(f"checker {checker_cls.__name__} has no rule name")
        if checker_cls.scope not in ("module", "project"):
            raise ValueError(
                f"checker {name!r} has unknown scope {checker_cls.scope!r}; "
                "expected 'module' or 'project'"
            )
        existing = self._checkers.get(name)
        if existing is not None and existing is not checker_cls:
            raise ValueError(f"duplicate checker name {name!r}")
        self._checkers[name] = checker_cls
        return checker_cls

    def names(self) -> List[str]:
        return sorted(self._checkers)

    def get(self, name: str) -> Type[Checker]:
        return self._checkers[name]

    def describe(self) -> List[Dict[str, str]]:
        return [
            {
                "rule": name,
                "scope": self._checkers[name].scope,
                "description": self._checkers[name].description,
            }
            for name in self.names()
        ]

    def instantiate(
        self,
        select: Optional[Sequence[str]] = None,
        ignore: Optional[Sequence[str]] = None,
    ) -> List[Checker]:
        """Checkers to run, honouring ``--select`` / ``--ignore`` scoping."""
        names = self.names()
        if select:
            unknown = sorted(set(select) - set(names))
            if unknown:
                raise KeyError(f"unknown rule(s) {unknown}; known: {names}")
            names = [name for name in names if name in set(select)]
        if ignore:
            unknown = sorted(set(ignore) - set(self.names()))
            if unknown:
                raise KeyError(f"unknown rule(s) {unknown}; known: {self.names()}")
            names = [name for name in names if name not in set(ignore)]
        return [self._checkers[name]() for name in names]


#: The global default registry the built-in checkers register into.
_default = CheckerRegistry()


def register(checker_cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the default registry."""
    return _default.register(checker_cls)


def default_registry() -> CheckerRegistry:
    """The registry holding every built-in checker (imports them lazily)."""
    import repro.analysis.checkers  # noqa: F401  (registers on import)

    return _default
