"""Parsed-module context and shared AST helpers for checkers.

A :class:`ModuleContext` bundles everything a checker needs about one
file: the parsed AST, raw source, the repo-relative path used in
findings, and the *dotted module name* used for rule scoping (so e.g.
``no-unseeded-randomness`` can exempt ``repro.sim.rng`` and nothing
else).

The module name is normally derived from the path (the part after a
``src/`` component).  Test fixtures that plant violations outside the
source tree can claim a scope explicitly with a magic comment in their
first few lines::

    # detlint-module: repro.energy.fixture

This also documents *which* scope a fixture exercises.

The second half of this module is the **known-set inference** shared by
the ``ordered-iteration`` and ``no-float-accumulation-order`` checkers:
a conservative, purely syntactic answer to "is this expression certainly
a ``set``?"  It recognises set displays, set comprehensions,
``set(...)``/``frozenset(...)`` calls, set-algebra methods on known sets,
and local names whose every assignment in the enclosing scope is one of
those.  It never claims a set on partial evidence — a name with any
non-set (re)assignment is dropped — so the checkers err toward silence,
not noise.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

_MODULE_OVERRIDE = re.compile(r"#\s*detlint-module\s*:\s*([\w.]+)")


@dataclass
class ModuleContext:
    """One parsed source file, ready for checkers."""

    path: Path
    relpath: str
    module: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def load(cls, path: Path, root: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = path.as_posix()
        return cls(
            path=path,
            relpath=relpath,
            module=_module_name(path, source),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            lines=source.splitlines(),
        )

    def in_module(self, *prefixes: str) -> bool:
        """Whether this module is one of ``prefixes`` or inside one of them."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )


def _module_name(path: Path, source: str) -> str:
    head = "\n".join(source.splitlines()[:5])
    override = _MODULE_OVERRIDE.search(head)
    if override:
        return override.group(1)
    parts = list(path.resolve().parts)
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    else:
        parts = [path.stem]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or path.stem


# --------------------------------------------------------------------- scopes
def walk_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Yield the module and every (async) function definition in it.

    Each yielded node is one binding scope for :func:`set_bindings`;
    nested functions are yielded separately so their locals do not leak
    into the enclosing scope's inference.
    """
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope's nodes without descending into nested functions."""
    body = scope.body if hasattr(scope, "body") else []
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ------------------------------------------------------------- set inference
_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def is_known_set(node: ast.AST, bound: Set[str]) -> bool:
    """Whether ``node`` is certainly a set-valued expression."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SET_METHODS
            and is_known_set(func.value, bound)
        ):
            return True
        return False
    if isinstance(node, ast.Name):
        return node.id in bound
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return is_known_set(node.left, bound) or is_known_set(node.right, bound)
    return False


def set_bindings(scope: ast.AST) -> Set[str]:
    """Names bound to sets throughout one scope (conservative).

    A name qualifies only if *every* assignment to it in the scope is a
    known-set expression and it is never rebound by a loop target, a
    ``with`` alias, or a non-set assignment.  Augmented set-algebra
    assignments (``s |= other``) keep the binding; any other augmented
    assignment taints it.
    """
    candidates: Set[str] = set()
    tainted: Set[str] = set()
    for _ in range(2):  # second pass resolves name-to-name chains
        for node in scope_statements(scope):
            if isinstance(node, ast.Assign):
                value_is_set = is_known_set(node.value, candidates)
                for target in node.targets:
                    _bind(target, value_is_set, candidates, tainted)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                _bind(node.target, is_known_set(node.value, candidates), candidates, tainted)
            elif isinstance(node, ast.AugAssign):
                if not isinstance(node.op, _SET_OPS):
                    _bind(node.target, False, candidates, tainted)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                _bind(node.target, False, candidates, tainted)
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                _bind(node.optional_vars, False, candidates, tainted)
    return candidates - tainted


def _bind(target: ast.AST, value_is_set: bool, candidates: Set[str], tainted: Set[str]) -> None:
    if isinstance(target, ast.Name):
        if value_is_set:
            candidates.add(target.id)
        else:
            tainted.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            _bind(element, False, candidates, tainted)


# ----------------------------------------------------------- class utilities
def base_names(cls: ast.ClassDef) -> Tuple[str, ...]:
    """Base-class names of ``cls`` (attribute bases collapse to their attr)."""
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return tuple(names)


def has_decorator(cls: ast.ClassDef, name: str) -> bool:
    for decorator in cls.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == name:
            return True
        if isinstance(target, ast.Attribute) and target.attr == name:
            return True
    return False


def dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    """(name, node) for every non-ClassVar annotated field of ``cls``."""
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign) or not isinstance(node.target, ast.Name):
            continue
        annotation = ast.dump(node.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((node.target.id, node))
    return fields


class ProjectIndex:
    """A cross-module class index for project-scope checkers.

    Resolves classes *by name* across every analyzed module — the
    analyzer never imports the code it checks, so this is nominal, not
    semantic: two same-named classes in different modules merge.  The
    repo's registries (fault atoms, workload engines) use globally unique
    class names, which is itself part of the contract being checked.
    """

    def __init__(self, contexts: List[ModuleContext]) -> None:
        self.contexts = contexts
        self.classes: Dict[str, Tuple[ModuleContext, ast.ClassDef]] = {}
        self.subclasses: Dict[str, Set[str]] = {}
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, (ctx, node))
                    for base in base_names(node):
                        self.subclasses.setdefault(base, set()).add(node.name)

    def transitive_subclasses(self, root: str) -> Set[str]:
        seen: Set[str] = set()
        frontier = [root]
        while frontier:
            name = frontier.pop()
            for child in self.subclasses.get(name, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    def leaf_subclasses(self, root: str) -> Set[str]:
        """Subclasses of ``root`` that nothing else inherits from."""
        return {
            name
            for name in self.transitive_subclasses(root)
            if not self.subclasses.get(name)
        }

    def assignment(self, name: str) -> Optional[Tuple[ModuleContext, ast.Assign]]:
        """The first module-level ``name = ...`` assignment, if any."""
        for ctx in self.contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            return ctx, node
        return None

    def function(self, name: str) -> Optional[Tuple[ModuleContext, ast.FunctionDef]]:
        for ctx in self.contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    return ctx, node
        return None


def names_in(node: ast.AST) -> Set[str]:
    """Every ``ast.Name`` identifier appearing under ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def string_constants_in(node: ast.AST) -> Set[str]:
    """Every string literal appearing under ``node``."""
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }
