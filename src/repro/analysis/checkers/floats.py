"""no-float-accumulation-order: float sums need a defined order.

Float addition is not associative: ``sum()`` over an *unordered*
collection yields a value that depends on hash-table order.  In the
energy and metrics paths — where totals feed the energy-conservation
invariant, SLO summaries and trace fingerprints — that is a determinism
bug even when every element is itself deterministic.

The rule flags, in float-bearing modules (:data:`FLOAT_MODULES`):

* ``sum(<set expression>)``;
* ``sum(<generator/comprehension> for ... in <set expression>)``.

Fix by summing ``sorted(...)`` elements, a list with a defined build
order, or ``math.fsum`` over a sorted iterable.  Dict views are not
flagged: dicts iterate in insertion order, so their sums are exactly as
deterministic as their construction (which the other rules police).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import (
    ModuleContext,
    is_known_set,
    scope_statements,
    set_bindings,
    walk_scopes,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register

#: Module prefixes whose ``sum`` calls are float-bearing (energy/metrics).
FLOAT_MODULES = (
    "repro.energy",
    "repro.perf",
    "repro.session.metrics",
    "repro.testkit.invariants",
    "repro.crypto.energy_costs",
)


@register
class FloatAccumulationChecker(Checker):
    name = "no-float-accumulation-order"
    description = (
        "sum() over an unordered set in energy/metrics code — float addition "
        "is order-sensitive, so unordered accumulation is nondeterministic"
    )
    scope = "module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_module(*FLOAT_MODULES):
            return
        for scope in walk_scopes(ctx.tree):
            bound = set_bindings(scope)
            for node in scope_statements(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Name) and func.id == "sum") or not node.args:
                    continue
                arg = node.args[0]
                unordered = is_known_set(arg, bound)
                if not unordered and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    unordered = any(
                        is_known_set(generator.iter, bound) for generator in arg.generators
                    )
                if unordered:
                    yield self.finding(
                        ctx,
                        node,
                        "float accumulation over a set has hash-dependent "
                        "order: sum sorted(...) elements instead",
                    )
