"""slots-discipline: hot-path value classes must declare ``__slots__``.

The PR 2 hot-path overhaul made :class:`repro.sim.events.Event` a
``__slots__`` handle and PR 4's :class:`repro.net.network.DisseminationPlan`
a flat record — at n≥100 populations these are the classes instantiated
per event/per hop, and a silently re-grown ``__dict__`` (e.g. from a
refactor that drops the declaration, or a subclass that forgets its own
empty ``__slots__``) is a memory and cache-locality regression no test
measures directly.

The rule: every class whose name is in :data:`HOT_CLASSES` — and every
subclass of one, anywhere in the analyzed set — must declare
``__slots__`` in its class body (subclasses need their own declaration,
otherwise instances grow a dict regardless of the base).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register

#: Hot-path class names held to the ``__slots__`` contract.  Extend this
#: set when a new per-event/per-hop record class ships.
HOT_CLASSES = frozenset({"Event", "DisseminationPlan"})


def _declares_slots(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


@register
class SlotsDisciplineChecker(Checker):
    name = "slots-discipline"
    description = (
        "hot-path classes (Event, DisseminationPlan and their subclasses) "
        "must declare __slots__ — per-event records cannot afford a __dict__"
    )
    scope = "project"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        required = set(HOT_CLASSES)
        for name in HOT_CLASSES:
            required.update(index.transitive_subclasses(name))
        for name in sorted(required):
            entry = index.classes.get(name)
            if entry is None:
                continue
            ctx, cls = entry
            if not _declares_slots(cls):
                yield self._missing(ctx, cls)

    def _missing(self, ctx: ModuleContext, cls: ast.ClassDef) -> Finding:
        return self.finding(
            ctx,
            cls,
            f"hot-path class {cls.name} does not declare __slots__ "
            "(subclasses need their own, usually empty, declaration)",
        )
