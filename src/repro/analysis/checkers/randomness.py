"""no-unseeded-randomness: all randomness flows through the seeded RNG.

Anywhere under ``src/repro`` except :mod:`repro.sim.rng` itself, the
following are findings:

* ``import random`` / ``from random import ...`` — use
  :class:`repro.sim.rng.SeededRNG` streams instead;
* ``import secrets`` / ``from secrets import ...`` — nothing in the
  simulation needs cryptographic randomness (signatures are modelled);
* ``os.urandom(...)`` — OS entropy can never be replayed;
* ``uuid.uuid1``/``uuid.uuid4`` (and their ``from uuid import`` forms) —
  ids must be derived from the command/flood namespaces.

A stray ``random.random()`` on any code path silently breaks golden
trace fingerprints in a way the dynamic battery only catches if a matrix
cell happens to execute that path — this rule catches it at PR time.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register

#: The one module allowed to touch ``random``: the seeded-RNG wrapper.
EXEMPT_MODULES = ("repro.sim.rng",)

_BANNED_IMPORTS = {
    "random": "use a SeededRNG child stream (repro.sim.rng) instead",
    "secrets": "simulation code must not draw OS entropy",
}
_BANNED_ATTRS = {
    ("os", "urandom"): "os.urandom can never be replayed; derive bytes from SeededRNG",
    ("uuid", "uuid1"): "uuid1 mixes in wall clock and MAC; derive ids from the seed",
    ("uuid", "uuid4"): "uuid4 draws OS entropy; derive ids from the seed",
}
_BANNED_FROM = {
    ("os", "urandom"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
}


@register
class UnseededRandomnessChecker(Checker):
    name = "no-unseeded-randomness"
    description = (
        "random/secrets/os.urandom/uuid4 outside repro.sim.rng — all "
        "randomness must flow through derive_seed/SeededRNG streams"
    )
    scope = "module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_module(*EXEMPT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    hint = _BANNED_IMPORTS.get(root)
                    if hint is not None:
                        yield self.finding(ctx, node, f"import of {alias.name!r}: {hint}")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_IMPORTS:
                    yield self.finding(
                        ctx, node, f"import from {root!r}: {_BANNED_IMPORTS[root]}"
                    )
                else:
                    for alias in node.names:
                        if (root, alias.name) in _BANNED_FROM:
                            yield self.finding(
                                ctx,
                                node,
                                f"import of {root}.{alias.name}: "
                                f"{_BANNED_ATTRS[(root, alias.name)]}",
                            )
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                hint = _BANNED_ATTRS.get((node.value.id, node.attr))
                if hint is not None:
                    yield self.finding(
                        ctx, node, f"use of {node.value.id}.{node.attr}: {hint}"
                    )
