"""no-wall-clock: simulation code must live in virtual time.

Protocol, network, session and testkit code observing the host's clock
(``time.time``, ``datetime.now``, ``time.monotonic``) makes run results
a function of the machine, not the seed.  The only legitimate consumers
of wall time are the perf harness (:mod:`repro.perf` — measuring host
seconds is its whole job) and ``time.perf_counter`` used for duration
measurement, which is allowlisted everywhere because it never leaks into
simulated state in this codebase's idiom (and a misuse that does leak is
caught by the fingerprint battery).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register

#: Packages exempt from the rule (wall-clock measurement is their purpose).
EXEMPT_MODULES = ("repro.perf",)

#: ``module.attribute`` reads that are findings.
_BANNED_ATTRS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}
#: ``from module import name`` forms that are findings.
_BANNED_FROM = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
}


@register
class WallClockChecker(Checker):
    name = "no-wall-clock"
    description = (
        "time.time/datetime.now/time.monotonic in sim/net/protocol/session "
        "code — simulation state must be a function of virtual time only "
        "(perf counters allowlisted)"
    )
    scope = "module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_module(*EXEMPT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                key = (node.value.id, node.attr)
                if key in _BANNED_ATTRS:
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock read {key[0]}.{key[1]}: simulation code must "
                        "use the simulator's virtual now (time.perf_counter is "
                        "the allowlisted way to measure host durations)",
                    )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                for alias in node.names:
                    if (root, alias.name) in _BANNED_FROM:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {root}.{alias.name}: wall-clock reads are "
                            "banned outside repro.perf",
                        )
