"""Built-in detlint checkers (importing this package registers them)."""

from repro.analysis.checkers import (  # noqa: F401
    floats,
    observers,
    ordering,
    randomness,
    registries,
    rng_discipline,
    slots,
    wallclock,
)
