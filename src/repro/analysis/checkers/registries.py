"""registry-coherence: serializer registries match the class inventory.

Three registries make ``DeploymentSpec.to_dict``/``from_dict`` a true
round trip; each is checked by cross-referencing the class ASTs against
the serializer ASTs, so the rule fires at PR time when someone adds an
atom/engine/field and forgets the registry side:

* **fault atoms** — every *leaf* subclass of ``Fault`` (public, i.e.
  not underscore-prefixed; intermediate bases like ``ByzantineFault``
  may stay unregistered) must appear in ``FAULT_KINDS``, must be a
  ``@dataclass`` (``fault_from_dict`` rebuilds with ``cls(**fields)``),
  and must not declare underscore-prefixed dataclass fields
  (:meth:`Fault.describe` skips them, so they would silently drop out
  of the round trip).  Names in ``FAULT_KINDS`` must resolve to actual
  ``Fault`` subclasses.
* **workload engines** — every leaf subclass of ``WorkloadEngine`` must
  appear in ``WORKLOAD_KINDS`` *and* be constructed somewhere in
  ``workload_from_dict``.
* **impairment schema** — ``ImpairmentSpec``'s dataclass fields, the
  ``_SPEC_KEYS`` allowlist that ``impairment_from_dict`` validates
  against, and the keys ``describe()`` can emit must all agree.

Each sub-check anchors on names (``Fault`` + ``FAULT_KINDS`` and so on)
and silently skips when its anchors are absent from the analyzed file
set, so scoped runs and self-test fixtures work without the real tree.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.context import (
    ModuleContext,
    ProjectIndex,
    dataclass_fields,
    has_decorator,
    names_in,
    string_constants_in,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register


@register
class RegistryCoherenceChecker(Checker):
    name = "registry-coherence"
    description = (
        "FAULT_KINDS/WORKLOAD_KINDS/impairment schema must match the class "
        "inventory — unregistered atoms break spec round-trips silently"
    )
    scope = "project"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        yield from self._check_fault_registry(index)
        yield from self._check_workload_registry(index)
        yield from self._check_impairment_schema(index)

    # ----------------------------------------------------------- fault atoms
    def _check_fault_registry(self, index: ProjectIndex) -> Iterator[Finding]:
        if "Fault" not in index.classes:
            return
        registry = index.assignment("FAULT_KINDS")
        if registry is None:
            return
        registry_ctx, registry_node = registry
        registered = names_in(registry_node.value) & set(index.classes)
        subclasses = index.transitive_subclasses("Fault")
        leaves = {
            name
            for name in index.leaf_subclasses("Fault")
            if not name.startswith("_")
        }
        for name in sorted(leaves - registered):
            ctx, cls = index.classes[name]
            yield self.finding(
                ctx,
                cls,
                f"fault atom {name} is not registered in FAULT_KINDS — "
                "schedule_from_dict cannot rebuild it, so specs, corpus "
                "entries and the fuzzer never see it",
            )
        for name in sorted(registered - subclasses):
            yield self.finding(
                registry_ctx,
                registry_node,
                f"FAULT_KINDS entry {name} is not a Fault subclass",
            )
        for name in sorted(registered & subclasses):
            ctx, cls = index.classes[name]
            if not has_decorator(cls, "dataclass"):
                yield self.finding(
                    ctx,
                    cls,
                    f"registered fault atom {name} is not a @dataclass — "
                    "fault_from_dict rebuilds atoms with cls(**fields)",
                )
                continue
            for field_name, field_node in dataclass_fields(cls):
                if field_name.startswith("_"):
                    yield self.finding(
                        ctx,
                        field_node,
                        f"fault atom {name} declares underscore field "
                        f"{field_name!r}: Fault.describe skips it, so it "
                        "silently drops out of the to_dict/from_dict round "
                        "trip — rename it or make it runtime-only state",
                    )

    # ------------------------------------------------------ workload engines
    def _check_workload_registry(self, index: ProjectIndex) -> Iterator[Finding]:
        if "WorkloadEngine" not in index.classes:
            return
        registry = index.assignment("WORKLOAD_KINDS")
        if registry is None:
            return
        registry_ctx, registry_node = registry
        registered = names_in(registry_node.value) & set(index.classes)
        leaves = {
            name
            for name in index.leaf_subclasses("WorkloadEngine")
            if not name.startswith("_")
        }
        deserializer = index.function("workload_from_dict")
        handled: Set[str] = set()
        if deserializer is not None:
            handled = names_in(deserializer[1]) & set(index.classes)
        for name in sorted(leaves - registered):
            ctx, cls = index.classes[name]
            yield self.finding(
                ctx,
                cls,
                f"workload engine {name} is not registered in WORKLOAD_KINDS",
            )
        for name in sorted(leaves - handled if deserializer is not None else set()):
            ctx, cls = index.classes[name]
            yield self.finding(
                ctx,
                cls,
                f"workload engine {name} is never constructed in "
                "workload_from_dict — its describe() output cannot round-trip",
            )
        subclasses = index.transitive_subclasses("WorkloadEngine")
        for name in sorted(registered - subclasses):
            yield self.finding(
                registry_ctx,
                registry_node,
                f"WORKLOAD_KINDS entry {name} is not a WorkloadEngine subclass",
            )

    # ----------------------------------------------------- impairment schema
    def _check_impairment_schema(self, index: ProjectIndex) -> Iterator[Finding]:
        if "ImpairmentSpec" not in index.classes:
            return
        keys = index.assignment("_SPEC_KEYS")
        if keys is None:
            return
        keys_ctx, keys_node = keys
        allowed = string_constants_in(keys_node.value)
        ctx, cls = index.classes["ImpairmentSpec"]
        fields = {name for name, _ in dataclass_fields(cls)}
        for name in sorted(fields - allowed):
            yield self.finding(
                keys_ctx,
                keys_node,
                f"ImpairmentSpec field {name!r} is missing from _SPEC_KEYS — "
                "impairment_from_dict rejects it as an unknown key",
            )
        for name in sorted(allowed - fields):
            yield self.finding(
                keys_ctx,
                keys_node,
                f"_SPEC_KEYS entry {name!r} is not an ImpairmentSpec field — "
                "ImpairmentSpec(**entry) raises on it",
            )
        describe = next(
            (
                node
                for node in cls.body
                if isinstance(node, ast.FunctionDef) and node.name == "describe"
            ),
            None,
        )
        if describe is not None:
            emitted = string_constants_in(describe)
            for name in sorted(fields - emitted):
                yield self.finding(
                    ctx,
                    describe,
                    f"ImpairmentSpec.describe never emits field {name!r} — "
                    "a non-default value would silently drop out of the "
                    "serialised spec",
                )
