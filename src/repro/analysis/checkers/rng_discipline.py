"""rng-stream-discipline: RNG streams are derived, never improvised.

The repo's randomness architecture gives every consumer its own child
stream — ``SeededRNG(derive_seed(root, *labels))`` or ``rng.child(...)``
— so adding a consumer never perturbs existing streams.  Three idioms
break that architecture and are flagged outside :mod:`repro.sim.rng`:

* ``SeededRNG(<literal>)`` — a hard-coded root seed creates a stream
  that collides with every other hard-coded stream and is invisible to
  the experiment's seed plumbing.  Derive from the spec seed instead.
* ``<rng>.seed(...)`` — re-seeding an existing generator in place
  rewinds a stream other subsystems may share; build a child instead.
* ``random.Random(...)`` — bypasses the wrapper entirely (and the
  labelled derivation that keeps streams independent).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register

EXEMPT_MODULES = ("repro.sim.rng",)


def _is_literal_number(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_literal_number(node.operand)
    return False


@register
class RngStreamDisciplineChecker(Checker):
    name = "rng-stream-discipline"
    description = (
        "RNG streams must come from derive_seed/rng.child — no hard-coded "
        "SeededRNG(<literal>), in-place .seed(), or raw random.Random"
    )
    scope = "module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.in_module(*EXEMPT_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "SeededRNG":
                if node.args and _is_literal_number(node.args[0]):
                    yield self.finding(
                        ctx,
                        node,
                        "SeededRNG with a hard-coded seed: derive the stream "
                        "from the spec seed (SeededRNG(derive_seed(seed, ...)) "
                        "or rng.child(...)) so streams stay independent",
                    )
            elif isinstance(func, ast.Attribute) and func.attr == "seed":
                # Re-seeding any generator object in place.  ``self.seed``
                # attribute *reads* are fine; only calls are flagged.
                yield self.finding(
                    ctx,
                    node,
                    "in-place .seed(...) call rewinds a possibly shared "
                    "stream: build a child stream with rng.child(...) instead",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "Random"
                and isinstance(func.value, ast.Name)
                and func.value.id == "random"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "raw random.Random bypasses the seeded-stream wrapper: "
                    "use SeededRNG / rng.child",
                )
