"""ordered-iteration: never iterate a bare ``set`` on an order-sensitive path.

CPython iterates sets in hash-table order.  For small ints that order is
deterministic *today*, but it is an implementation accident — and for
strings it varies per process with ``PYTHONHASHSEED``.  Any set
iteration whose order can reach an ordered sink (event scheduling, trace
emission, fingerprint hashing, float accumulation) is therefore a latent
determinism bug that no golden-fingerprint test reliably catches.

The rule flags iteration constructs over expressions *statically known*
to be sets (set displays, comprehensions, ``set()``/``frozenset()``
calls, set algebra, and local names bound only to those — see
:func:`repro.analysis.context.set_bindings`):

* ``for x in s:`` and async variants;
* comprehension generators (``[f(x) for x in s]``);
* order-preserving materialisations: ``list(s)``, ``tuple(s)``,
  ``"sep".join(s)``.

Wrapping the set in ``sorted(...)`` resolves the finding; genuinely
order-insensitive uses (building another set/dict for membership) are
suppressed inline with a reason.  Dicts are insertion-ordered in
Python ≥ 3.7, so dict iteration is deterministic whenever insertion is
and is deliberately not flagged — the hazard this rule hunts is the
unordered container.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import (
    ModuleContext,
    is_known_set,
    scope_statements,
    set_bindings,
    walk_scopes,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register

#: Builtin calls that materialise their iterable in iteration order.
_ORDERED_MATERIALISERS = {"list", "tuple"}


@register
class OrderedIterationChecker(Checker):
    name = "ordered-iteration"
    description = (
        "iteration over a set without sorted(...) — set order is a hash-table "
        "accident and must never reach scheduling/trace/fingerprint sinks"
    )
    scope = "module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in walk_scopes(ctx.tree):
            bound = set_bindings(scope)
            for node in scope_statements(scope):
                yield from self._check_node(ctx, node, bound)

    def _check_node(self, ctx: ModuleContext, node: ast.AST, bound) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if is_known_set(node.iter, bound):
                yield self.finding(
                    ctx,
                    node.iter,
                    "for-loop over a set: wrap the iterable in sorted(...) or "
                    "suppress with the reason the order cannot matter",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if is_known_set(generator.iter, bound):
                    yield self.finding(
                        ctx,
                        generator.iter,
                        "comprehension over a set: wrap the iterable in "
                        "sorted(...) or suppress with a reason",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDERED_MATERIALISERS
                and len(node.args) == 1
                and is_known_set(node.args[0], bound)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{func.id}(...) over a set materialises hash order: "
                    "use sorted(...) instead",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and len(node.args) == 1
                and is_known_set(node.args[0], bound)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "str.join over a set concatenates in hash order: "
                    "join sorted(...) instead",
                )
