"""observer-signature-drift: bus dispatch matches the observer protocol.

The :class:`~repro.session.observers.SessionObserver` protocol is
duck-typed — nothing but convention keeps the
:class:`~repro.session.observers.ObserverBus` dispatch methods, the
``OBSERVER_HOOKS`` tuple, and the substrates' ``session.bus.X(...)``
call sites in agreement.  A drifted arity (say, adding a ``view`` arg to
``on_block_commit`` without updating the bus) raises only when the hook
actually fires, which under-observed CI runs may never do.

Checks (each skipped when its anchor class is absent from the file set):

* every ``observer.on_X(...)`` dispatch inside ``ObserverBus`` targets a
  hook ``SessionObserver`` defines, with exactly the hook's arity;
* ``OBSERVER_HOOKS`` lists exactly the ``on_*`` methods of
  ``SessionObserver`` (both directions);
* every project-wide call through a bus receiver (``bus.X(...)``,
  ``session.bus.X(...)``, ``self.bus.X(...)``) of a known dispatch
  method passes exactly the dispatch arity.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.context import ModuleContext, ProjectIndex
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, register


def _positional_arity(func: ast.FunctionDef) -> int:
    """Positional parameter count excluding ``self``."""
    args = func.args
    count = len(args.posonlyargs) + len(args.args)
    if count and (args.posonlyargs or args.args)[0].arg == "self":
        count -= 1
    return count


def _is_bus_receiver(node: ast.AST) -> bool:
    """Whether ``node`` is a bus object by naming convention."""
    if isinstance(node, ast.Name):
        return node.id in ("bus", "_bus", "observer_bus")
    if isinstance(node, ast.Attribute):
        return node.attr in ("bus", "_bus", "observer_bus")
    return False


@register
class ObserverSignatureDriftChecker(Checker):
    name = "observer-signature-drift"
    description = (
        "ObserverBus dispatch and bus call sites must match SessionObserver "
        "hook signatures — duck-typed drift only raises when the hook fires"
    )
    scope = "project"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        observer_entry = index.classes.get("SessionObserver")
        if observer_entry is None:
            return
        _, observer_cls = observer_entry
        hooks: Dict[str, int] = {
            node.name: _positional_arity(node)
            for node in observer_cls.body
            if isinstance(node, ast.FunctionDef) and node.name.startswith("on_")
        }

        hooks_tuple = index.assignment("OBSERVER_HOOKS")
        if hooks_tuple is not None:
            tuple_ctx, tuple_node = hooks_tuple
            listed = {
                n.value
                for n in ast.walk(tuple_node.value)
                if isinstance(n, ast.Constant) and isinstance(n.value, str)
            }
            for name in sorted(set(hooks) - listed):
                yield self.finding(
                    tuple_ctx,
                    tuple_node,
                    f"SessionObserver hook {name} is missing from OBSERVER_HOOKS "
                    "— CallbackObserver would reject it",
                )
            for name in sorted(listed - set(hooks)):
                yield self.finding(
                    tuple_ctx,
                    tuple_node,
                    f"OBSERVER_HOOKS lists {name}, which SessionObserver does "
                    "not define",
                )

        dispatch: Dict[str, int] = {}
        bus_entry = index.classes.get("ObserverBus")
        if bus_entry is not None:
            bus_ctx, bus_cls = bus_entry
            for method in bus_cls.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                hook_call = self._hook_call(method)
                if hook_call is None:
                    continue
                dispatch[method.name] = _positional_arity(method)
                hook_name = hook_call.func.attr  # type: ignore[union-attr]
                arity = len(hook_call.args) + len(hook_call.keywords)
                if hook_name not in hooks:
                    yield self.finding(
                        bus_ctx,
                        hook_call,
                        f"ObserverBus.{method.name} dispatches to {hook_name}, "
                        "which SessionObserver does not define",
                    )
                elif arity != hooks[hook_name]:
                    yield self.finding(
                        bus_ctx,
                        hook_call,
                        f"ObserverBus.{method.name} calls {hook_name} with "
                        f"{arity} argument(s); SessionObserver.{hook_name} "
                        f"takes {hooks[hook_name]}",
                    )

        if not dispatch:
            return
        for ctx in index.contexts:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) or func.attr not in dispatch:
                    continue
                if not _is_bus_receiver(func.value):
                    continue
                arity = len(node.args) + len(node.keywords)
                if arity != dispatch[func.attr]:
                    yield self.finding(
                        ctx,
                        node,
                        f"bus.{func.attr} called with {arity} argument(s); "
                        f"the ObserverBus dispatch takes {dispatch[func.attr]}",
                    )

    @staticmethod
    def _hook_call(method: ast.FunctionDef) -> Optional[ast.Call]:
        """The ``observer.on_X(...)`` call inside a dispatch loop, if any."""
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr.startswith("on_")
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "observer"
            ):
                return node
        return None
