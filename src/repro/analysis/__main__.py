"""``python -m repro.analysis`` — run detlint from the command line."""

from repro.analysis.engine import main

if __name__ == "__main__":
    raise SystemExit(main())
