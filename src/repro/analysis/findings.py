"""Finding objects and report rendering for the determinism analyzer.

A :class:`Finding` is one rule violation anchored to a file position.
Findings are value objects with a total order (path, line, column, rule)
so reports are stable across runs and machines — the analyzer's own
output obeys the determinism contract it enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source position."""

    path: str
    line: int
    column: int
    rule: str
    message: str = field(compare=False)

    def render(self) -> str:
        """The one-line human form: ``path:line:col rule message``."""
        return f"{self.path}:{self.line}:{self.column} [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run."""

    findings: List[Finding]
    files_analyzed: int
    rules_run: Sequence[str]
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, List[Finding]]:
        out: Dict[str, List[Finding]] = {}
        for finding in self.findings:
            out.setdefault(finding.rule, []).append(finding)
        return out

    def render_human(self) -> str:
        lines = [finding.render() for finding in self.findings]
        counts = ", ".join(
            f"{rule}: {len(items)}" for rule, items in sorted(self.by_rule().items())
        )
        summary = (
            f"detlint: {len(self.findings)} finding(s) in {self.files_analyzed} file(s)"
            + (f" ({counts})" if counts else "")
            + (f"; {self.suppressed} suppressed" if self.suppressed else "")
        )
        return "\n".join(lines + [summary])

    def render_json(self) -> str:
        payload = {
            "findings": [finding.to_dict() for finding in self.findings],
            "files_analyzed": self.files_analyzed,
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed,
            "ok": self.ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
