"""Command-line interface for running protocol deployments and experiments.

Installed as ``python -m repro.cli`` (or imported and called with an
argument list, which is how the tests drive it).  Four subcommands cover
the common workflows:

* ``run``         — execute one protocol deployment (flags or a ``--spec``
  JSON file, the :meth:`DeploymentSpec.to_dict` schema) and print metrics;
* ``matrix``      — run a scenario-matrix sweep (protocols × faults ×
  media × topologies) through the session runner and invariant battery;
* ``experiment``  — regenerate one of the paper's tables/figures by name;
* ``feasibility`` — print the Fig. 1 feasible-region summary for a payload
  range and system-size range;
* ``fuzz``        — run the closed-loop fault-schedule fuzzer (generate →
  detect → shrink) and optionally persist shrunk reproducers to a corpus
  directory;
* ``analyze``     — run detlint, the determinism & registry-coherence
  static analyzer, over the source tree (see ``docs/analysis.md``).
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from repro.core.adversary import FaultPlan
from repro.eval import experiments
from repro.eval.runner import MEDIA, PROTOCOLS, TOPOLOGIES, DeploymentSpec, run_protocol
from repro.eval.tables import format_table

#: Experiment names accepted by the ``experiment`` subcommand.
EXPERIMENTS = {
    "table1": experiments.table1_media_energy,
    "table2": experiments.table2_signature_energy,
    "table3": experiments.table3_complexity,
    "fig2a": experiments.fig2a_kcast_reliability,
    "fig2b": experiments.fig2b_unicast_vs_multicast,
    "fig2c": experiments.fig2c_leader_vs_replica,
    "fig2e": experiments.fig2e_view_change_energy,
    "fig2f": experiments.fig2f_total_energy_vs_n,
    "headline": experiments.headline_ratios,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one protocol deployment")
    run.add_argument("--protocol", default="eesmr", choices=list(PROTOCOLS))
    run.add_argument("--nodes", "-n", type=int, default=7)
    run.add_argument("--faults", "-f", type=int, default=2)
    run.add_argument("--kcast", "-k", type=int, default=3)
    run.add_argument("--blocks", type=int, default=5)
    run.add_argument("--payload-bytes", type=int, default=16)
    run.add_argument("--scheme", default="rsa-1024")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--leader-fault",
        choices=["none", "silent_leader", "equivocate", "crash"],
        default="none",
        help="make the view-1 leader Byzantine",
    )
    run.add_argument(
        "--spec",
        metavar="FILE.json",
        help="run the DeploymentSpec serialised in this JSON file "
        "(DeploymentSpec.to_dict schema); other run flags are ignored",
    )
    run.add_argument(
        "--workload",
        default=None,
        metavar="KIND",
        help="traffic shape: 'closed-loop' (default), "
        "'open-loop:<rate>[:<clients>[:<duration>]]' (seeded Poisson "
        "arrivals in virtual time) or 'trace:<file>' (timestamped JSON "
        "command stream); non-default workloads also print SLO metrics",
    )
    run.add_argument(
        "--txpool-limit",
        type=int,
        default=None,
        metavar="N",
        help="bound every replica's txpool to N pending commands "
        "(default: unbounded); overflow drops are counted and reported",
    )
    run.add_argument(
        "--block-interval",
        type=float,
        default=0.0,
        help="virtual time between successive proposals (default 0.0)",
    )
    run.add_argument(
        "--impair",
        action="append",
        default=None,
        metavar="CLAUSE",
        help="wire impairment clause; repeatable. Grammar: "
        "'loss:<p>[:<start>:<end>]', 'duplicate:<p>', 'jitter:<seconds>', "
        "'reorder:<p>', 'ble[:<start>:<end>]' (advertisement-loss residual "
        "calibrated from the medium's redundancy) and 'retries:<n>' "
        "(reliable-sublayer retry budget, default 3)",
    )

    matrix = sub.add_parser(
        "matrix", help="run a scenario-matrix sweep with the invariant battery"
    )
    matrix.add_argument("--protocols", nargs="+", default=list(PROTOCOLS), choices=list(PROTOCOLS))
    matrix.add_argument(
        "--faults",
        nargs="+",
        default=None,
        help="fault-schedule names from repro.testkit.scenarios.FAULT_LIBRARY "
        "(default: the canonical three-fault slice)",
    )
    matrix.add_argument("--media", nargs="+", default=["ble"], choices=list(MEDIA))
    matrix.add_argument(
        "--topologies", nargs="+", default=["ring-kcast"], choices=list(TOPOLOGIES)
    )
    matrix.add_argument("--nodes", "-n", type=int, default=5)
    matrix.add_argument("--faulty", "-f", type=int, default=1)
    matrix.add_argument("--kcast", "-k", type=int, default=2)
    matrix.add_argument("--blocks", type=int, default=3)
    matrix.add_argument("--seed", type=int, default=29)
    matrix.add_argument(
        "--workloads",
        nargs="+",
        default=None,
        help="workload-axis names from repro.testkit.scenarios.WORKLOAD_LIBRARY "
        "('preload', 'open-loop') or parameterised 'open-loop:<rate>' / "
        "'trace:<file>' forms (default: preload only)",
    )
    matrix.add_argument(
        "--block-interval",
        type=float,
        default=0.0,
        help="virtual time between successive proposals (default 0.0; "
        "open-loop cells need a positive interval to be meaningful)",
    )
    matrix.add_argument(
        "--impairments",
        nargs="+",
        default=None,
        help="impairment-axis names from repro.testkit.scenarios."
        "IMPAIRMENT_LIBRARY ('none', 'ble-calibrated', 'lossy') or "
        "parameterised 'loss:<p>' / 'duplicate:<p>' / 'jitter:<s>' / "
        "'reorder:<p>' / 'ble' clauses (default: none only)",
    )
    matrix.add_argument(
        "--parallel", type=int, default=None, help="worker processes (default: serial)"
    )
    matrix.add_argument(
        "--dump-specs",
        metavar="FILE.json",
        help="also write every runnable cell's DeploymentSpec (to_dict schema)",
    )

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))

    feas = sub.add_parser("feasibility", help="Fig. 1 feasible-region summary")
    feas.add_argument("--max-nodes", type=int, default=40)
    feas.add_argument("--payloads", type=int, nargs="+", default=[256, 1024, 4096])

    fuzz = sub.add_parser(
        "fuzz", help="fuzz random fault schedules through the invariant battery"
    )
    fuzz.add_argument("--seed", type=int, default=0, help="fuzz seed (schedule stream)")
    fuzz.add_argument("--iterations", type=int, default=20, help="schedules to try")
    fuzz.add_argument(
        "--out",
        metavar="DIR",
        help="persist shrunk reproducers as corpus entries under this directory",
    )
    fuzz.add_argument(
        "--report",
        metavar="FILE.json",
        help="also write the full canonical campaign report as JSON",
    )
    fuzz.add_argument("--nodes", "-n", type=int, default=5)
    fuzz.add_argument("--kcast", "-k", type=int, default=2)
    fuzz.add_argument("--topology", default="ring-kcast", choices=list(TOPOLOGIES))
    fuzz.add_argument("--medium", default="ble", choices=list(MEDIA))
    fuzz.add_argument("--blocks", type=int, default=3)
    fuzz.add_argument("--block-interval", type=float, default=2.0)
    fuzz.add_argument("--max-atoms", type=int, default=3)
    fuzz.add_argument(
        "--kinds",
        nargs="+",
        default=None,
        help="fault-atom kinds to draw from (default: every registered kind)",
    )
    fuzz.add_argument(
        "--protocols", nargs="+", default=list(PROTOCOLS), choices=list(PROTOCOLS)
    )

    analyze = sub.add_parser(
        "analyze",
        help="run detlint, the determinism & registry-coherence static analyzer",
    )
    # The analyzer owns its flag set; keep it in one place so
    # ``python -m repro.analysis`` and ``repro analyze`` never drift.
    from repro.analysis import add_arguments as add_analysis_arguments

    add_analysis_arguments(analyze)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    if args.spec:
        with open(args.spec) as handle:
            spec = DeploymentSpec.from_dict(json.load(handle))
    else:
        from repro.net.impairment import parse_impairment
        from repro.workload import parse_workload

        fault_plan = FaultPlan()
        if args.leader_fault != "none":
            fault_plan = FaultPlan(faulty=(0,), behaviour=args.leader_fault)
        spec = DeploymentSpec(
            protocol=args.protocol,
            n=args.nodes,
            f=args.faults,
            k=args.kcast,
            target_height=args.blocks,
            block_interval=args.block_interval,
            command_payload_bytes=args.payload_bytes,
            signature_scheme=args.scheme,
            seed=args.seed,
            fault_plan=fault_plan,
            workload=parse_workload(args.workload) if args.workload else None,
            txpool_limit=args.txpool_limit,
            impairment=parse_impairment(args.impair) if args.impair else None,
        )
    engine = spec.workload
    if engine is not None and not engine.is_default():
        # Non-default traffic: drive the session with SLO metrics attached.
        from repro.eval.runner import ProtocolRunner
        from repro.session.metrics import MetricsObserver

        metrics = MetricsObserver()
        result = (
            ProtocolRunner()
            .session(spec, observers=(metrics,))
            .run_to_quiescence()
            .finish()
        )
    else:
        metrics = None
        result = run_protocol(spec)
    print(f"protocol            : {spec.protocol}")
    print(f"n / f / k           : {spec.n} / {spec.f} / {spec.k}")
    print(f"committed blocks    : {result.committed_blocks}")
    print(f"safety              : {'OK' if result.safety.consistent else 'VIOLATED'}")
    print(f"view changes        : {result.view_changes}")
    print(f"energy per block    : {result.energy_per_block_mj:.1f} mJ (correct nodes)")
    print(f"leader per block    : {result.leader_energy_per_block_mj:.1f} mJ")
    print(f"sign / verify ops   : {result.sign_operations} / {result.verify_operations}")
    if result.commands_dropped or result.commands_duplicate:
        print(
            f"txpool admission    : {result.commands_dropped} dropped / "
            f"{result.commands_duplicate} duplicate "
            f"(high watermark {result.txpool_high_watermark})"
        )
    if result.deliveries_dropped or result.deliveries_retransmitted or result.delivery_giveups:
        print(
            f"lossy deliveries    : {result.deliveries_dropped} dropped / "
            f"{result.deliveries_retransmitted} retransmitted / "
            f"{result.delivery_giveups} given up"
        )
    if metrics is not None:
        summary = metrics.summary()
        overall = summary["overall"]
        p50, p99 = overall["latency_p50"], overall["latency_p99"]
        print(f"workload            : {engine.describe()['kind']}")
        print(
            f"offered / committed : {summary['offered']} / "
            f"{summary['committed_commands']} (dropped {summary['dropped']})"
        )
        print(
            f"commit latency      : p50 "
            f"{'n/a' if p50 is None else f'{p50:.3f}'} / p99 "
            f"{'n/a' if p99 is None else f'{p99:.3f}'} (virtual time)"
        )
        print(f"goodput             : {overall['goodput']:.3f} commands/time")
    return 0 if result.safety.consistent else 1


def _cmd_matrix(args: argparse.Namespace) -> int:
    # Lazy import: the testkit (and its sweep machinery) is only needed here.
    from repro.testkit.scenarios import (
        DEFAULT_FAULTS,
        DEFAULT_IMPAIRMENTS,
        DEFAULT_WORKLOADS,
        ScenarioMatrix,
    )

    matrix = ScenarioMatrix(
        protocols=tuple(args.protocols),
        fault_names=tuple(args.faults) if args.faults else DEFAULT_FAULTS,
        media=tuple(args.media),
        topologies=tuple(args.topologies),
        workloads=tuple(args.workloads) if args.workloads else DEFAULT_WORKLOADS,
        impairments=tuple(args.impairments) if args.impairments else DEFAULT_IMPAIRMENTS,
        n=args.nodes,
        f=args.faulty,
        k=args.kcast,
        target_height=args.blocks,
        block_interval=args.block_interval,
        seed=args.seed,
    )
    if args.dump_specs:
        specs = []
        for cell in matrix.cells():
            spec = matrix.build_spec(cell)
            if matrix.cell_feasibility(cell, spec=spec) is None:
                specs.append(spec.to_dict())
        with open(args.dump_specs, "w") as handle:
            json.dump(specs, handle, indent=2, sort_keys=True)
        print(f"wrote {len(specs)} runnable cell specs to {args.dump_specs}")
    report = matrix.run(parallel=args.parallel)
    print(f"cells run           : {report.cells_run}")
    print(f"cells skipped       : {report.cells_skipped}")
    for skip in report.skipped:
        print(f"  skip: {skip.label()}")
    if report.ok:
        print("invariants          : OK")
        return 0
    print(f"invariants          : {len(report.failures())} FAILURES")
    for failure in report.failures():
        print(f"  FAIL: {failure}")
    return 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = EXPERIMENTS[args.name]()
    if isinstance(result, list) and result and isinstance(result[0], dict):
        headers = list(result[0].keys())
        print(format_table(headers, [[row[h] for h in headers] for row in result]))
    elif isinstance(result, list):
        for item in result:
            print(item)
    elif isinstance(result, dict):
        for key, value in result.items():
            print(f"{key}: {value}")
    else:
        print(result)
    return 0


def _cmd_feasibility(args: argparse.Namespace) -> int:
    region = experiments.fig1_feasible_region(
        message_sizes=tuple(args.payloads),
        node_counts=tuple(range(4, args.max_nodes + 1, 2)),
    )
    rows = [
        [r["message_bytes"], r["crossover_n"], f"{r['favourable_fraction']:.0%}"]
        for r in region.summary_rows()
    ]
    print(format_table(["payload (B)", "EESMR loses from n =", "EESMR-favourable share"], rows))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    # Lazy import: the fuzzer pulls in the session/testkit stack.
    from pathlib import Path

    from repro.fuzz import DEFAULT_KINDS, FuzzConfig, Fuzzer

    config = FuzzConfig(
        n=args.nodes,
        k=args.kcast,
        topology=args.topology,
        medium=args.medium,
        target_height=args.blocks,
        block_interval=args.block_interval,
        max_atoms=args.max_atoms,
        kinds=tuple(args.kinds) if args.kinds else DEFAULT_KINDS,
        protocols=tuple(args.protocols),
    )
    fuzzer = Fuzzer(config, seed=args.seed)
    report = fuzzer.run(args.iterations)
    print(f"seed                : {report.seed}")
    print(f"schedules tried     : {report.iterations}")
    print(f"candidates rejected : {report.rejected} (infeasible, redrawn)")
    print(f"protocol runs       : {report.runs}")
    print(f"findings            : {len(report.findings)}")
    for finding in report.findings:
        shrunk = finding.shrunk
        atoms = ", ".join(atom["kind"] for atom in shrunk.schedule.describe())
        key = ", ".join(f"{p}/{inv}" for p, inv in sorted(shrunk.failure_key))
        print(
            f"  iter {finding.iteration}: [{atoms}] fails {key} "
            f"(shrunk in {shrunk.steps} steps / {shrunk.evaluations} evals)"
        )
    if args.out and report.findings:
        written = fuzzer.save_findings(report, Path(args.out))
        for path in written:
            print(f"  wrote reproducer  : {path}")
    if args.report:
        report_path = Path(args.report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        with open(report_path, "w") as handle:
            json.dump(report.describe(), handle, indent=2, sort_keys=True)
        print(f"wrote report        : {args.report}")
    return 1 if report.failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "matrix":
        return _cmd_matrix(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "feasibility":
        return _cmd_feasibility(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "analyze":
        from repro.analysis import run_cli as run_analysis_cli

        return run_analysis_cli(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
