"""The virtual-time simulator driving every experiment in the reproduction.

The simulator is a classic discrete-event loop: events are executed in
timestamp order, each event may schedule further events, and virtual time
jumps directly from one event to the next.  The protocols in
:mod:`repro.core` never read wall-clock time; they only observe
``Simulator.now`` and the timers built on top of it, which makes runs fully
deterministic for a given seed and topology.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.sim.events import BucketedEventQueue, Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. time travel)."""


class Simulator:
    """Deterministic discrete-event scheduler with a virtual clock.

    Args:
        trace: When true, every executed event is appended to
            :attr:`trace_log` as ``(time, label)`` tuples.  Traces are used
            by the integration tests to assert protocol phase ordering.
    """

    #: Factory for the backing queue.  The default is the two-tier bucketed
    #: calendar queue; :class:`~repro.sim.events.EventQueue` (single binary
    #: heap) remains selectable and both are pinned byte-identical by the
    #: golden-fingerprint tests.  The perf harness swaps in a legacy
    #: implementation to measure the seed's event-loop overhead.
    queue_factory = BucketedEventQueue

    def __init__(self, trace: bool = False) -> None:
        self._queue = self.queue_factory()
        self._now = 0.0
        self._running = False
        self._executed = 0
        self.trace_enabled = trace
        self.trace_log: list[tuple[float, str]] = []
        #: Optional ``(time, label)`` callback fired for every executed
        #: event — the session observer bus's ``on_event`` dispatch.  Left
        #: ``None`` (zero cost beyond one comparison) unless an observer
        #: actually listens.
        self.event_observer: Optional[Callable[[float, str], None]] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (useful for budget assertions)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def next_event_time(self) -> Optional[float]:
        """Virtual time of the next live event, or ``None`` when idle."""
        return self._queue.peek_time()

    # ------------------------------------------------------------ scheduling
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self._now}"
            )
        return self._queue.push(time, callback, priority=priority, label=label)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Push directly rather than via schedule_at: this is the hottest
        # call in the simulator and delay >= 0 already implies time >= now.
        return self._queue.push(self._now + delay, callback, priority, label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Follows drain-reinsertion aliases: when a selective :meth:`drain`
        had to rebuild the queue by re-pushing survivors (queues without
        ``remove_where``), the caller's original handle forwards to its
        replacement, so cancelling through a stale handle still works.
        """
        successor = getattr(event, "_drain_successor", None)
        while successor is not None:
            event = successor
            successor = getattr(event, "_drain_successor", None)
        self._queue.cancel(event)

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._executed += 1
        if self.trace_enabled or self.event_observer is not None:
            label = event.label
            if callable(label):
                label = label()
            if self.trace_enabled:
                self.trace_log.append((self._now, label))
            if self.event_observer is not None:
                self.event_observer(self._now, label)
        event.callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the event loop.

        Args:
            until: Stop once virtual time would exceed this bound.  The clock
                is advanced to ``until`` when the queue drains earlier.
            max_events: Safety valve for runaway protocols; raises
                :class:`SimulationError` when exceeded.
        """
        if until is not None:
            self.run_until(until, max_events=max_events)
            return
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed_here = 0
        try:
            # The unbounded loop (run_until_idle, the hot case) goes
            # straight to the pop inside step() — no peek per event.
            while self.step():
                executed_here += 1
                if max_events is not None and executed_here > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
        finally:
            self._running = False

    def run_until(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Run every event scheduled at or before ``deadline``; returns the count.

        The time-bounded fast path: one peek/pop pair per event on locally
        bound queue methods, with no per-event property reads or
        ``step()``-call indirection.  The clock is advanced to ``deadline``
        when the queue drains (or holds only later events), exactly like
        ``run(until=deadline)`` — which delegates here.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed_here = 0
        queue = self._queue
        peek = queue.peek_time
        pop = queue.pop
        try:
            while True:
                next_time = peek()
                if next_time is None or next_time > deadline:
                    break
                event = pop()
                if event.time < self._now:
                    raise SimulationError("event queue returned an event from the past")
                self._now = event.time
                self._executed += 1
                if self.trace_enabled or self.event_observer is not None:
                    label = event.label
                    if callable(label):
                        label = label()
                    if self.trace_enabled:
                        self.trace_log.append((self._now, label))
                    if self.event_observer is not None:
                        self.event_observer(self._now, label)
                event.callback()
                executed_here += 1
                if max_events is not None and executed_here > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
            if deadline > self._now:
                self._now = deadline
        finally:
            self._running = False
        return executed_here

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(until=None, max_events=max_events)

    def drain(self, labels: Optional[Iterable[str]] = None) -> int:
        """Cancel all pending events (optionally only those whose label matches).

        Survivors of a selective drain keep their original ``(time,
        priority, seq)`` ordering keys, so same-time/same-priority events
        still replay in first-scheduled order — a drain must never be a
        source of nondeterminism.  Returns the number of cancelled events.
        """
        if labels is None:
            removed = len(self._queue)
            self._queue.clear()
            return removed
        wanted = set(labels)
        if hasattr(self._queue, "remove_where"):
            return self._queue.remove_where(lambda event: event.resolved_label() in wanted)
        # Fallback for queue implementations without in-place removal
        # (e.g. the perf harness's legacy queue): pop everything and
        # re-insert survivors under their original ordering keys.  Each
        # survivor's old handle forwards to its replacement so a later
        # cancel() through the stale handle still stops the event —
        # otherwise a cancelled-after-drain event would fire anyway and
        # inflate ``executed_events``.
        survivors: list[Event] = []
        removed = 0
        while True:
            event = self._queue.pop()
            if event is None:
                break
            label = event.label() if callable(event.label) else event.label
            if label in wanted:
                removed += 1
                continue
            survivors.append(event)
        for event in sorted(survivors, key=lambda e: (e.time, e.priority, e.seq)):
            replacement = self._queue.push(event.time, event.callback, event.priority, event.label)
            try:
                event._drain_successor = replacement
            except AttributeError:  # handle types with __slots__
                pass
        return removed
