"""The virtual-time simulator driving every experiment in the reproduction.

The simulator is a classic discrete-event loop: events are executed in
timestamp order, each event may schedule further events, and virtual time
jumps directly from one event to the next.  The protocols in
:mod:`repro.core` never read wall-clock time; they only observe
``Simulator.now`` and the timers built on top of it, which makes runs fully
deterministic for a given seed and topology.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. time travel)."""


class Simulator:
    """Deterministic discrete-event scheduler with a virtual clock.

    Args:
        trace: When true, every executed event is appended to
            :attr:`trace_log` as ``(time, label)`` tuples.  Traces are used
            by the integration tests to assert protocol phase ordering.
    """

    def __init__(self, trace: bool = False) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._executed = 0
        self.trace_enabled = trace
        self.trace_log: list[tuple[float, str]] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (useful for budget assertions)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self._now}"
            )
        return self._queue.push(time, callback, priority=priority, label=label)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, priority, label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._executed += 1
        if self.trace_enabled:
            self.trace_log.append((self._now, event.label))
        event.callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the event loop.

        Args:
            until: Stop once virtual time would exceed this bound.  The clock
                is advanced to ``until`` when the queue drains earlier.
            max_events: Safety valve for runaway protocols; raises
                :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed_here = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if not self.step():
                    break
                executed_here += 1
                if max_events is not None and executed_here > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(until=None, max_events=max_events)

    def drain(self, labels: Optional[Iterable[str]] = None) -> None:
        """Cancel all pending events (optionally only those whose label matches)."""
        if labels is None:
            self._queue.clear()
            return
        wanted = set(labels)
        # Rebuild the queue without the matching labels.
        survivors: list[Event] = []
        while True:
            event = self._queue.pop()
            if event is None:
                break
            if event.label in wanted:
                continue
            survivors.append(event)
        for event in survivors:
            self._queue.push(event.time, event.callback, event.priority, event.label)
