"""The virtual-time simulator driving every experiment in the reproduction.

The simulator is a classic discrete-event loop: events are executed in
timestamp order, each event may schedule further events, and virtual time
jumps directly from one event to the next.  The protocols in
:mod:`repro.core` never read wall-clock time; they only observe
``Simulator.now`` and the timers built on top of it, which makes runs fully
deterministic for a given seed and topology.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. time travel)."""


class Simulator:
    """Deterministic discrete-event scheduler with a virtual clock.

    Args:
        trace: When true, every executed event is appended to
            :attr:`trace_log` as ``(time, label)`` tuples.  Traces are used
            by the integration tests to assert protocol phase ordering.
    """

    #: Factory for the backing queue; the perf harness swaps in a legacy
    #: implementation to measure the seed's event-loop overhead.
    queue_factory = EventQueue

    def __init__(self, trace: bool = False) -> None:
        self._queue = self.queue_factory()
        self._now = 0.0
        self._running = False
        self._executed = 0
        self.trace_enabled = trace
        self.trace_log: list[tuple[float, str]] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (useful for budget assertions)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------ scheduling
    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time} < now={self._now}"
            )
        return self._queue.push(time, callback, priority=priority, label=label)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Push directly rather than via schedule_at: this is the hottest
        # call in the simulator and delay >= 0 already implies time >= now.
        return self._queue.push(self._now + delay, callback, priority, label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self._queue.cancel(event)

    # --------------------------------------------------------------- running
    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue returned an event from the past")
        self._now = event.time
        self._executed += 1
        if self.trace_enabled:
            label = event.label
            if callable(label):
                label = label()
            self.trace_log.append((self._now, label))
        event.callback()
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run the event loop.

        Args:
            until: Stop once virtual time would exceed this bound.  The clock
                is advanced to ``until`` when the queue drains earlier.
            max_events: Safety valve for runaway protocols; raises
                :class:`SimulationError` when exceeded.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed_here = 0
        try:
            while True:
                if until is not None:
                    # Peek only when a time bound needs checking; the
                    # unbounded loop (run_until_idle, the hot case) goes
                    # straight to the pop inside step().
                    next_time = self._queue.peek_time()
                    if next_time is None or next_time > until:
                        break
                if not self.step():
                    break
                executed_here += 1
                if max_events is not None and executed_here > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int = 1_000_000) -> None:
        """Run until no events remain (bounded by ``max_events``)."""
        self.run(until=None, max_events=max_events)

    def drain(self, labels: Optional[Iterable[str]] = None) -> int:
        """Cancel all pending events (optionally only those whose label matches).

        Survivors of a selective drain keep their original ``(time,
        priority, seq)`` ordering keys, so same-time/same-priority events
        still replay in first-scheduled order — a drain must never be a
        source of nondeterminism.  Returns the number of cancelled events.
        """
        if labels is None:
            removed = len(self._queue)
            self._queue.clear()
            return removed
        wanted = set(labels)
        if hasattr(self._queue, "remove_where"):
            return self._queue.remove_where(lambda event: event.resolved_label() in wanted)
        # Fallback for queue implementations without in-place removal
        # (e.g. the perf harness's legacy queue): pop everything and
        # re-insert survivors under their original ordering keys.
        survivors: list[Event] = []
        removed = 0
        while True:
            event = self._queue.pop()
            if event is None:
                break
            label = event.label() if callable(event.label) else event.label
            if label in wanted:
                removed += 1
                continue
            survivors.append(event)
        for event in sorted(survivors, key=lambda e: (e.time, e.priority, e.seq)):
            self._queue.push(event.time, event.callback, event.priority, event.label)
        return removed
