"""Cancellable, resettable timers built on top of the simulator.

EESMR and the baseline protocols are timer-heavy: ``T_blame`` (progress
timer), ``T_commit(block)`` (the 4Δ quiet period), the 5Δ/8Δ/6Δ waits of the
view change.  This module gives protocol code a small, explicit API —
start / reset / cancel / cancel-all — that mirrors how the pseudo-code in
Algorithm 2 manipulates its timers.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.sim.events import Event
from repro.sim.scheduler import Simulator


class Timer:
    """A single named timer.

    A timer can be (re)started any number of times; restarting cancels the
    previous deadline.  The callback fires exactly once per start unless the
    timer is cancelled first.
    """

    def __init__(self, sim: Simulator, name: str, callback: Callable[[], None]) -> None:
        self._sim = sim
        self.name = name
        self._callback = callback
        self._label = f"timer:{name}"
        self._event: Optional[Event] = None
        self.started_at: Optional[float] = None
        self.deadline: Optional[float] = None
        self.fired = False

    @property
    def running(self) -> bool:
        """Whether the timer is armed and has not fired or been cancelled."""
        return self._event is not None and self._event.active

    def start(self, duration: float) -> None:
        """Arm (or re-arm) the timer to fire ``duration`` from now."""
        if duration < 0:
            raise ValueError(f"timer {self.name}: negative duration {duration}")
        event = self._event
        if event is not None:
            if not event.cancelled:
                self._sim.cancel(event)
            self._event = None
        self.fired = False
        now = self._sim.now
        self.started_at = now
        self.deadline = now + duration
        self._event = self._sim.schedule(duration, self._fire, label=self._label)

    def reset(self, duration: float) -> None:
        """Alias of :meth:`start`; mirrors the pseudo-code's "reset" wording."""
        self.start(duration)

    def cancel(self) -> None:
        """Disarm the timer if it is running."""
        if self._event is not None and self._event.active:
            self._sim.cancel(self._event)
        self._event = None

    def remaining(self) -> float:
        """Time left until the timer fires (0 if not running)."""
        if not self.running or self.deadline is None:
            return 0.0
        return max(0.0, self.deadline - self._sim.now)

    def _fire(self) -> None:
        self._event = None
        self.fired = True
        self._callback()


class TimerRegistry:
    """A keyed collection of timers, e.g. one ``T_commit`` per block hash.

    The registry mirrors the protocol pseudo-code operations "set
    T_commit(B)", "cancel all commit timers T_commit(.)" with an explicit,
    testable object.
    """

    def __init__(self, sim: Simulator, prefix: str = "timer") -> None:
        self._sim = sim
        self._prefix = prefix
        self._timers: Dict[Hashable, Timer] = {}

    def __len__(self) -> int:
        return sum(1 for t in self._timers.values() if t.running)

    def __contains__(self, key: Hashable) -> bool:
        timer = self._timers.get(key)
        return timer is not None and timer.running

    def start(self, key: Hashable, duration: float, callback: Callable[[], None]) -> Timer:
        """Start (or restart) the timer associated with ``key``."""
        timer = self._timers.get(key)
        if timer is None:
            timer = Timer(self._sim, f"{self._prefix}:{key}", callback)
            self._timers[key] = timer
        else:
            timer._callback = callback
        timer.start(duration)
        return timer

    def cancel(self, key: Hashable) -> None:
        """Cancel the timer for ``key`` if it exists."""
        timer = self._timers.get(key)
        if timer is not None:
            timer.cancel()

    def cancel_all(self) -> int:
        """Cancel every running timer; returns how many were cancelled."""
        cancelled = 0
        for timer in self._timers.values():
            if timer.running:
                timer.cancel()
                cancelled += 1
        return cancelled

    def running_keys(self) -> list[Hashable]:
        """Keys of all currently armed timers."""
        return [key for key, timer in self._timers.items() if timer.running]

    def get(self, key: Hashable) -> Optional[Timer]:
        """Return the timer object for ``key`` (running or not)."""
        return self._timers.get(key)
