"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which the SMR protocols run: a
virtual clock, an event queue with deterministic tie-breaking, cancellable
timers, a process abstraction for message-driven state machines, and a
seeded random-number helper so that every experiment in the paper can be
replayed bit-for-bit.
"""

from repro.sim.events import BucketedEventQueue, Event, EventQueue
from repro.sim.scheduler import Simulator
from repro.sim.timers import Timer, TimerRegistry
from repro.sim.process import Process
from repro.sim.rng import SeededRNG, derive_seed

__all__ = [
    "BucketedEventQueue",
    "Event",
    "EventQueue",
    "Simulator",
    "Timer",
    "TimerRegistry",
    "Process",
    "SeededRNG",
    "derive_seed",
]
