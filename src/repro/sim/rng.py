"""Seeded randomness helpers.

All stochastic behaviour in the reproduction — per-hop network jitter, BLE
packet loss, workload generation, leader election when randomized — flows
through :class:`SeededRNG` instances derived from a single experiment seed.
This keeps every table and figure regenerable bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from a root seed and a label path.

    Uses SHA-256 over the textual representation so that adding a new
    consumer of randomness never perturbs the streams of existing consumers
    (a property plain ``random.Random(root + i)`` would not give us).
    """
    payload = repr((root_seed,) + tuple(labels)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big")


class SeededRNG:
    """A thin, documented wrapper over :class:`random.Random`."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def child(self, *labels: object) -> "SeededRNG":
        """Derive an independent stream for a named sub-component."""
        return SeededRNG(derive_seed(self.seed, *labels))

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element from a non-empty sequence."""
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Sample ``count`` distinct elements."""
        return self._rng.sample(items, count)

    def shuffle(self, items: list[T]) -> list[T]:
        """Return a new shuffled copy of ``items``."""
        copy = list(items)
        self._rng.shuffle(copy)
        return copy

    def bytes(self, count: int) -> bytes:
        """Random bytes (used for synthetic command payloads)."""
        return bytes(self._rng.getrandbits(8) for _ in range(count))

    def exponential(self, mean: float) -> float:
        """Exponentially distributed float with the given mean."""
        return self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def pick_weighted(self, items: Iterable[tuple[T, float]]) -> T:
        """Pick an item with probability proportional to its weight."""
        materialized = list(items)
        total = sum(weight for _, weight in materialized)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        target = self._rng.uniform(0, total)
        cumulative = 0.0
        for item, weight in materialized:
            cumulative += weight
            if target <= cumulative:
                return item
        return materialized[-1][0]
