"""Event primitives for the discrete-event simulator.

Events are ordered by (time, priority, sequence number).  The sequence
number guarantees a deterministic total order even when two events are
scheduled for the same instant, which matters because the protocols under
test are sensitive to message interleavings and the experiments must be
reproducible run-to-run.

Hot-path design: the heap holds plain ``(time, priority, seq, event)``
tuples, so every sift compares native tuples instead of invoking dataclass
rich-comparison methods, and :class:`Event` is a ``__slots__`` handle that
carries no per-instance ``__dict__``.  Labels may be either strings or
zero-argument callables; callables are only invoked when a trace consumer
actually needs the text, so unlabeled or untraced events never pay for
string formatting.

Two queue implementations share that design:

* :class:`EventQueue` — a single binary heap.  Every push/pop is
  O(log m) in the total pending-event population m;
* :class:`BucketedEventQueue` — a two-tier calendar structure (near-future
  time buckets plus an overflow heap) that keeps pushes to future buckets
  at O(1) list appends and pops at O(log b) in the *bucket* population b,
  which at n≥100 event populations is far below m.  It yields the exact
  same ``(time, priority, seq)`` total order, so traces are byte-identical
  whichever queue backs the simulator.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Optional, Tuple, Union

#: A trace label: either the string itself or a thunk producing it lazily.
Label = Union[str, Callable[[], str]]


class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the event fires.
        priority: Lower values fire earlier among events at the same time.
        seq: Monotonically increasing tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        label: Optional label used in traces (string or lazy thunk).
        cancelled: Cancelled events stay in the heap but are skipped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled", "_queue", "_in_heap")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        label: Label = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        self._queue: Optional["EventQueue"] = None
        self._in_heap = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped.

        Cancelling is idempotent and safe after the event has fired: the
        queue's live count only drops while the event still sits in a heap,
        so double-cancels and cancel-after-pop cannot corrupt ``len(queue)``.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._in_heap and self._queue is not None:
                self._queue._live -= 1

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled

    def resolved_label(self) -> str:
        """The trace label text (invokes lazy label thunks)."""
        label = self.label
        return label() if callable(label) else label

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "active"
        return f"<Event t={self.time} prio={self.priority} seq={self.seq} {state}>"


#: Heap entry: comparison never reaches the Event because seq is unique.
HeapEntry = Tuple[float, int, int, Event]


class EventQueue:
    """A min-heap of :class:`Event` objects with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: List[HeapEntry] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: Label = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return its handle."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        seq = next(self._counter)
        event = Event(time, priority, seq, callback, label)
        event._queue = self
        event._in_heap = True
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next active event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            event._in_heap = False
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next active event without popping."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)[3]._in_heap = False
                continue
            return entry[0]
        return None

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by :meth:`push`."""
        event.cancel()

    def remove_where(self, predicate: Callable[[Event], bool]) -> int:
        """Drop every pending event matching ``predicate``; returns the count.

        Non-matching events keep their original heap entries (and therefore
        their original ordering keys), so a selective drain cannot reorder
        the survivors.
        """
        kept: List[HeapEntry] = []
        removed = 0
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                event._in_heap = False
                continue
            if predicate(event):
                event.cancelled = True
                event._in_heap = False
                removed += 1
            else:
                kept.append(entry)
        heapq.heapify(kept)
        self._heap = kept
        self._live = len(kept)
        return removed

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3]._in_heap = False
        self._heap.clear()
        self._live = 0


class BucketedEventQueue:
    """A two-tier event queue: near-future time buckets + an overflow heap.

    Discrete-event workloads schedule almost everything a few hop delays
    ahead of ``now``, so a single binary heap pays O(log m) sifts against
    the *entire* pending population m even though the next event is always
    near the front.  This queue splits the timeline into fixed-width
    buckets:

    * the **near heap** holds the bucket currently being drained (plus any
      events pushed at or before it); pops sift a population of one bucket,
      not the whole queue;
    * **future buckets** are plain unsorted lists — a push is an O(1)
      append.  A bucket is heapified only when the near heap drains and the
      bucket becomes current;
    * events beyond ``horizon`` buckets ahead go to the **overflow heap**
      and migrate into buckets lazily when the dial advances.

    Ordering contract: identical to :class:`EventQueue`.  Buckets partition
    the timeline into disjoint half-open intervals, entries within a bucket
    are heap-ordered by the same ``(time, priority, seq)`` tuples, and the
    overflow heap is only ever drained bucket-aligned — so the pop sequence
    is the exact total order and traces stay byte-identical whichever
    queue backs the simulator (pinned by the golden-fingerprint tests).
    """

    #: Bucket width in virtual-time units.  Hop delays and protocol Δs in
    #: the reproduction are O(1), so width 1.0 keeps bucket populations at
    #: "events per hop window" rather than "events per run".
    default_width = 1.0
    #: How many buckets ahead of the overflow bound are materialised per
    #: migration; beyond that, entries wait in the overflow heap.
    horizon = 512

    def __init__(self, width: Optional[float] = None) -> None:
        self._width = float(width if width is not None else self.default_width)
        if self._width <= 0:
            raise ValueError(f"bucket width must be positive, got {self._width}")
        self._near: List[HeapEntry] = []
        self._cur = 0
        #: bucket id -> unsorted entry list, for ids in (cur, far_bound).
        self._buckets: dict[int, List[HeapEntry]] = {}
        #: min-heap of bucket ids present in ``_buckets``.
        self._bucket_ids: List[int] = []
        #: entries with bucket id >= ``_far_bound``.
        self._far: List[HeapEntry] = []
        self._far_bound = self.horizon
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: Label = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return its handle."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        seq = next(self._counter)
        event = Event(time, priority, seq, callback, label)
        event._queue = self
        event._in_heap = True
        entry = (time, priority, seq, event)
        bucket_id = int(time / self._width)
        if bucket_id <= self._cur:
            heapq.heappush(self._near, entry)
        elif bucket_id < self._far_bound:
            bucket = self._buckets.get(bucket_id)
            if bucket is None:
                self._buckets[bucket_id] = [entry]
                heapq.heappush(self._bucket_ids, bucket_id)
            else:
                bucket.append(entry)
        else:
            heapq.heappush(self._far, entry)
        self._live += 1
        return event

    def _advance(self) -> bool:
        """Make the next non-empty bucket current; ``False`` when drained.

        Only called with an empty near heap.  The overflow heap is drained
        bucket-aligned: entries never enter ``_buckets`` below the current
        far bound, so a bucket taken from ``_bucket_ids`` always holds
        *every* pending entry of its time interval.
        """
        while True:
            if self._bucket_ids:
                bucket_id = heapq.heappop(self._bucket_ids)
                near = self._buckets.pop(bucket_id)
                heapq.heapify(near)
                self._near = near
                self._cur = bucket_id
                return True
            if not self._far:
                return False
            # Rebase the dial onto the overflow heap's earliest bucket and
            # migrate every overflow entry inside the new horizon.
            first_bucket = int(self._far[0][0] / self._width)
            self._far_bound = first_bucket + self.horizon
            far = self._far
            buckets = self._buckets
            while far and int(far[0][0] / self._width) < self._far_bound:
                entry = heapq.heappop(far)
                bucket_id = int(entry[0] / self._width)
                bucket = buckets.get(bucket_id)
                if bucket is None:
                    buckets[bucket_id] = [entry]
                    heapq.heappush(self._bucket_ids, bucket_id)
                else:
                    bucket.append(entry)

    def pop(self) -> Optional[Event]:
        """Remove and return the next active event, or ``None`` if empty."""
        near = self._near
        while True:
            while near:
                event = heapq.heappop(near)[3]
                event._in_heap = False
                if event.cancelled:
                    continue
                self._live -= 1
                return event
            if not self._advance():
                return None
            near = self._near

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next active event without popping."""
        while True:
            near = self._near
            while near:
                entry = near[0]
                if entry[3].cancelled:
                    heapq.heappop(near)[3]._in_heap = False
                    continue
                return entry[0]
            if not self._advance():
                return None

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by :meth:`push`."""
        event.cancel()

    def _all_entries(self) -> Iterable[HeapEntry]:
        yield from self._near
        for bucket in self._buckets.values():
            yield from bucket
        yield from self._far

    def remove_where(self, predicate: Callable[[Event], bool]) -> int:
        """Drop every pending event matching ``predicate``; returns the count.

        Survivors keep their original ``(time, priority, seq)`` keys, so a
        selective drain cannot reorder them (same contract as
        :meth:`EventQueue.remove_where`).
        """
        removed = 0
        kept: List[HeapEntry] = []
        for entry in self._all_entries():
            event = entry[3]
            if event.cancelled:
                event._in_heap = False
                continue
            if predicate(event):
                event.cancelled = True
                event._in_heap = False
                removed += 1
            else:
                kept.append(entry)
        # Rebuild from scratch: survivor counts after a drain are small and
        # the rebuild keeps every structural invariant trivially true.
        self._near = []
        self._buckets = {}
        self._bucket_ids = []
        self._far = []
        for entry in kept:
            bucket_id = int(entry[0] / self._width)
            if bucket_id <= self._cur:
                heapq.heappush(self._near, entry)
            elif bucket_id < self._far_bound:
                bucket = self._buckets.get(bucket_id)
                if bucket is None:
                    self._buckets[bucket_id] = [entry]
                    heapq.heappush(self._bucket_ids, bucket_id)
                else:
                    bucket.append(entry)
            else:
                heapq.heappush(self._far, entry)
        self._live = len(kept)
        return removed

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._all_entries():
            entry[3]._in_heap = False
        self._near = []
        self._buckets = {}
        self._bucket_ids = []
        self._far = []
        self._live = 0
