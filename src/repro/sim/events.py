"""Event primitives for the discrete-event simulator.

Events are ordered by (time, priority, sequence number).  The sequence
number guarantees a deterministic total order even when two events are
scheduled for the same instant, which matters because the protocols under
test are sensitive to message interleavings and the experiments must be
reproducible run-to-run.

Hot-path design: the heap holds plain ``(time, priority, seq, event)``
tuples, so every sift compares native tuples instead of invoking dataclass
rich-comparison methods, and :class:`Event` is a ``__slots__`` handle that
carries no per-instance ``__dict__``.  Labels may be either strings or
zero-argument callables; callables are only invoked when a trace consumer
actually needs the text, so unlabeled or untraced events never pay for
string formatting.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, List, Optional, Tuple, Union

#: A trace label: either the string itself or a thunk producing it lazily.
Label = Union[str, Callable[[], str]]


class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the event fires.
        priority: Lower values fire earlier among events at the same time.
        seq: Monotonically increasing tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        label: Optional label used in traces (string or lazy thunk).
        cancelled: Cancelled events stay in the heap but are skipped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "cancelled", "_queue", "_in_heap")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        label: Label = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = cancelled
        self._queue: Optional["EventQueue"] = None
        self._in_heap = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped.

        Cancelling is idempotent and safe after the event has fired: the
        queue's live count only drops while the event still sits in a heap,
        so double-cancels and cancel-after-pop cannot corrupt ``len(queue)``.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._in_heap and self._queue is not None:
                self._queue._live -= 1

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled

    def resolved_label(self) -> str:
        """The trace label text (invokes lazy label thunks)."""
        label = self.label
        return label() if callable(label) else label

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "cancelled" if self.cancelled else "active"
        return f"<Event t={self.time} prio={self.priority} seq={self.seq} {state}>"


#: Heap entry: comparison never reaches the Event because seq is unique.
HeapEntry = Tuple[float, int, int, Event]


class EventQueue:
    """A min-heap of :class:`Event` objects with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: List[HeapEntry] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: Label = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return its handle."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        seq = next(self._counter)
        event = Event(time, priority, seq, callback, label)
        event._queue = self
        event._in_heap = True
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next active event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            event._in_heap = False
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next active event without popping."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[3].cancelled:
                heapq.heappop(heap)[3]._in_heap = False
                continue
            return entry[0]
        return None

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by :meth:`push`."""
        event.cancel()

    def remove_where(self, predicate: Callable[[Event], bool]) -> int:
        """Drop every pending event matching ``predicate``; returns the count.

        Non-matching events keep their original heap entries (and therefore
        their original ordering keys), so a selective drain cannot reorder
        the survivors.
        """
        kept: List[HeapEntry] = []
        removed = 0
        for entry in self._heap:
            event = entry[3]
            if event.cancelled:
                event._in_heap = False
                continue
            if predicate(event):
                event.cancelled = True
                event._in_heap = False
                removed += 1
            else:
                kept.append(entry)
        heapq.heapify(kept)
        self._heap = kept
        self._live = len(kept)
        return removed

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3]._in_heap = False
        self._heap.clear()
        self._live = 0
