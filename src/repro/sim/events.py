"""Event primitives for the discrete-event simulator.

Events are ordered by (time, priority, sequence number).  The sequence
number guarantees a deterministic total order even when two events are
scheduled for the same instant, which matters because the protocols under
test are sensitive to message interleavings and the experiments must be
reproducible run-to-run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Virtual time at which the event fires.
        priority: Lower values fire earlier among events at the same time.
        seq: Monotonically increasing tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires.
        label: Optional human-readable label used in traces.
        cancelled: Cancelled events stay in the heap but are skipped.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """Whether the event will still fire."""
        return not self.cancelled


class EventQueue:
    """A min-heap of :class:`Event` objects with deterministic ordering."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at virtual ``time`` and return its handle."""
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._counter),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the next active event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next active event without popping."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel an event previously returned by :meth:`push`."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live = 0
