"""Process abstraction: a message-driven state machine attached to a simulator.

A :class:`Process` is anything that lives in the simulation and reacts to
deliveries — protocol replicas, clients, the trusted control node of the
baseline protocol, and adversary shims all subclass it.  The network layer
delivers messages by calling :meth:`Process.deliver`, which dispatches to
``on_message`` unless the process has crashed.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.scheduler import Simulator
from repro.sim.timers import Timer, TimerRegistry


class Process:
    """Base class for simulated processes (replicas, clients, control nodes)."""

    def __init__(self, sim: Simulator, pid: int, name: Optional[str] = None) -> None:
        self.sim = sim
        self.pid = pid
        self.name = name if name is not None else f"p{pid}"
        self.crashed = False
        self._delivered = 0
        self._after_label = f"{self.name}:after"

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Hook called once by the runner before the simulation starts."""

    def crash(self) -> None:
        """Stop reacting to any future deliveries or timers."""
        self.crashed = True

    def recover(self) -> None:
        """Resume reacting to deliveries (used by failure-injection tests)."""
        self.crashed = False

    # ------------------------------------------------------------- messaging
    def deliver(self, sender: int, message: Any) -> None:
        """Entry point used by the network layer to hand over a message."""
        if self.crashed:
            return
        self._delivered += 1
        self.on_message(sender, message)

    def on_message(self, sender: int, message: Any) -> None:
        """Handle a delivered message; subclasses override."""
        raise NotImplementedError

    @property
    def delivered_count(self) -> int:
        """Number of messages delivered to this process so far."""
        return self._delivered

    # ---------------------------------------------------------------- timers
    def make_timer(self, name: str, callback) -> Timer:
        """Create a named timer owned by this process."""
        return Timer(self.sim, f"{self.name}:{name}", callback)

    def make_timer_registry(self, prefix: str) -> TimerRegistry:
        """Create a keyed timer registry owned by this process."""
        return TimerRegistry(self.sim, prefix=f"{self.name}:{prefix}")

    def after(self, delay: float, callback, label: str = "") -> None:
        """Schedule a callback guarded by the crash flag."""

        def guarded() -> None:
            if not self.crashed:
                callback()

        self.sim.schedule(delay, guarded, label=label or self._after_label)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} {self.name}>"
