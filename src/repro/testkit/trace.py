"""Structured per-run traces for determinism and invariant checking.

A :class:`TraceRecorder` taps three substrates of a run:

* the simulator's event trace (``Simulator.trace_log`` — every executed
  event as ``(time, label)``);
* the network and energy ledgers (per-node counters and per-category
  Joule breakdowns);
* the replicas themselves at collection time (committed chains, committed
  command sequences, quorum certificates, protocol statistics).

The captured :class:`RunTrace` is a plain, JSON-serialisable value object
with a canonical encoding, so two runs can be compared *byte for byte* —
the determinism regression the scenario matrix (and every future
performance PR) relies on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.messages import MessageType, QuorumCertificate, verify_qc, verify_view_qc
from repro.session.observers import SessionObserver


@dataclass
class QCRecord:
    """A harvested quorum certificate, pre-verified at capture time."""

    holder: int
    cert_type: str
    view: int
    signers: List[int]
    n_signatures: int
    block_hash: Optional[str]
    block_height: Optional[int]
    valid: bool

    def to_dict(self) -> dict:
        return {
            "holder": self.holder,
            "cert_type": self.cert_type,
            "view": self.view,
            "signers": list(self.signers),
            "n_signatures": self.n_signatures,
            "block_hash": self.block_hash,
            "block_height": self.block_height,
            "valid": self.valid,
        }


@dataclass
class RunTrace:
    """Everything observable about one deterministic run."""

    spec: Dict[str, Any]
    events: List[List[Any]] = field(default_factory=list)
    executed_events: int = 0
    sim_time: float = 0.0
    committed_commands: Dict[int, List[str]] = field(default_factory=dict)
    committed_chain: Dict[int, List[List[Any]]] = field(default_factory=dict)
    committed_heights: Dict[int, int] = field(default_factory=dict)
    energy_per_node_j: Dict[int, float] = field(default_factory=dict)
    energy_breakdown_j: Dict[str, float] = field(default_factory=dict)
    energy_total_j: float = 0.0
    network: Dict[str, Any] = field(default_factory=dict)
    qcs: List[QCRecord] = field(default_factory=list)
    replica_stats: Dict[int, Dict[str, int]] = field(default_factory=dict)
    safety: Dict[str, Any] = field(default_factory=dict)

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        """A plain-dict view with stringified keys (JSON-safe)."""
        return {
            "spec": self.spec,
            "events": self.events,
            "executed_events": self.executed_events,
            "sim_time": self.sim_time,
            "committed_commands": {str(k): v for k, v in self.committed_commands.items()},
            "committed_chain": {str(k): v for k, v in self.committed_chain.items()},
            "committed_heights": {str(k): v for k, v in self.committed_heights.items()},
            "energy_per_node_j": {str(k): v for k, v in self.energy_per_node_j.items()},
            "energy_breakdown_j": self.energy_breakdown_j,
            "energy_total_j": self.energy_total_j,
            "network": self.network,
            "qcs": [qc.to_dict() for qc in self.qcs],
            "replica_stats": {str(k): v for k, v in self.replica_stats.items()},
            "safety": self.safety,
        }

    def canonical_json(self) -> str:
        """The canonical encoding: sorted keys, minimal separators."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def fingerprint(self) -> str:
        """SHA-256 of the canonical encoding — equal iff traces are identical."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()


def spec_fingerprint(spec) -> Dict[str, Any]:
    """A canonical description of a :class:`DeploymentSpec` (faults included)."""
    faults: Any
    if spec.fault_schedule is not None:
        faults = spec.fault_schedule.describe()
    else:
        plan = spec.fault_plan
        faults = {
            "faulty": list(plan.faulty),
            "behaviour": plan.behaviour,
            "trigger_round": plan.trigger_round,
            "crash_time": plan.crash_time,
        }
    out = {
        "protocol": spec.protocol,
        "n": spec.n,
        "f": spec.f,
        "k": spec.k,
        "topology": spec.topology,
        "medium": spec.medium,
        "hop_delay": spec.hop_delay,
        "delta": spec.delta,
        "signature_scheme": spec.signature_scheme,
        "batch_size": spec.batch_size,
        "command_payload_bytes": spec.command_payload_bytes,
        "target_height": spec.target_height,
        "block_interval": spec.block_interval,
        "seed": spec.seed,
        "jitter": spec.jitter,
        "faults": faults,
    }
    if spec.topology == "random-kcast":
        # Only parameterised topologies carry their extra knobs, so the
        # fingerprints of pre-existing specs stay byte-identical.
        out["edges_per_node"] = getattr(spec, "edges_per_node", 1)
        out["topology_seed"] = getattr(spec, "topology_seed", None)
    # Same conditional-key rule for the workload layer: a default
    # closed-loop preload and an unbounded pool are the seed behaviour and
    # stay invisible, so every pre-existing fingerprint survives.
    workload = getattr(spec, "workload", None)
    if workload is not None and not workload.is_default():
        out["workload"] = workload.describe()
    txpool_limit = getattr(spec, "txpool_limit", None)
    if txpool_limit is not None:
        out["txpool_limit"] = txpool_limit
    # Wire impairments follow the same rule: absent (the seed medium) means
    # absent from the fingerprint, so unimpaired specs hash identically.
    impairment = getattr(spec, "impairment", None)
    if impairment is not None:
        out["impairment"] = impairment.describe()
    return out


class TraceRecorder(SessionObserver):
    """Captures a :class:`RunTrace` from a session-driven run.

    A :class:`~repro.session.observers.SessionObserver`: registered on a
    session (or passed as ``recorder=`` to
    :class:`repro.eval.runner.ProtocolRunner` or a ``SessionBuilder``), it
    enables event tracing at session start and stores the harvested trace
    on the :class:`~repro.eval.runner.RunResult` at session end — the same
    plumbing every other observer uses.

    Args:
        record_events: Keep the full simulator event trace.  Byte-identical
            determinism checks need it; large matrix sweeps can switch it
            off to save memory.
    """

    def __init__(self, record_events: bool = True) -> None:
        self.record_events = record_events
        self._sim = None

    # -------------------------------------------------------- observer hooks
    def on_session_start(self, session) -> None:
        self.attach(session.sim)

    def on_session_end(self, session, result) -> None:
        result.trace = self.capture(
            session.spec,
            session.config,
            session.sim,
            session.ledger,
            session.network,
            session.scheme,
            session.replicas,
            result.safety,
        )

    # ------------------------------------------------------------ low level
    def attach(self, sim) -> None:
        """Enable event tracing on the simulator about to run."""
        self._sim = sim
        if self.record_events:
            sim.trace_enabled = True

    def capture(self, spec, config, sim, ledger, network, scheme, replicas, safety) -> RunTrace:
        """Harvest the structured trace from a finished deployment."""
        trace = RunTrace(spec=spec_fingerprint(spec))
        if self.record_events:
            trace.events = [[time, label] for time, label in sim.trace_log]
        trace.executed_events = sim.executed_events
        trace.sim_time = sim.now

        for pid, replica in sorted(replicas.items()):
            log = replica.log
            trace.committed_commands[pid] = log.committed_command_ids()
            trace.committed_chain[pid] = [
                [block.height, block.block_hash] for block in log.committed_blocks()
            ]
            trace.committed_heights[pid] = log.highest_height
            stats = replica.stats
            trace.replica_stats[pid] = {
                "proposals_made": stats.proposals_made,
                "proposals_received": stats.proposals_received,
                "blocks_committed": stats.blocks_committed,
                "blames_sent": stats.blames_sent,
                "equivocations_detected": stats.equivocations_detected,
                "view_changes_completed": stats.view_changes_completed,
                "votes_sent": stats.votes_sent,
                "certificates_formed": stats.certificates_formed,
            }
            # Admission accounting appears only when something was actually
            # rejected, so seed-behaviour traces keep their exact key set
            # (and therefore their golden fingerprints).
            pool = getattr(replica, "txpool", None)
            if pool is not None and pool.dropped:
                trace.replica_stats[pid]["commands_dropped"] = pool.dropped
            if pool is not None and pool.duplicates:
                trace.replica_stats[pid]["commands_duplicate"] = pool.duplicates
            # Delivery accounting likewise appears only on nodes the lossy
            # medium actually touched — unimpaired runs keep their key set.
            imp = getattr(network, "impairment", None)
            if imp is not None:
                if imp.drops_by_node.get(pid):
                    trace.replica_stats[pid]["deliveries_dropped"] = imp.drops_by_node[pid]
                if imp.retransmits_by_node.get(pid):
                    trace.replica_stats[pid]["deliveries_retransmitted"] = (
                        imp.retransmits_by_node[pid]
                    )
                if imp.giveups_by_node.get(pid):
                    trace.replica_stats[pid]["delivery_giveups"] = imp.giveups_by_node[pid]
            for qc in _harvest_qcs(replica):
                trace.qcs.append(_record_qc(pid, qc, scheme, config))

        trace.energy_per_node_j = {
            pid: meter.total_joules for pid, meter in sorted(ledger.meters.items())
        }
        trace.energy_breakdown_j = ledger.combined_breakdown().as_dict()
        trace.energy_total_j = ledger.total_joules()

        stats = network.stats
        trace.network = {
            "broadcasts": stats.broadcasts,
            "unicasts": stats.unicasts,
            "physical_transmissions": stats.physical_transmissions,
            "physical_bytes": stats.physical_bytes,
            "deliveries": stats.deliveries,
            "per_node_transmissions": {
                str(k): v for k, v in sorted(stats.per_node_transmissions.items())
            },
            "per_node_bytes": {str(k): v for k, v in sorted(stats.per_node_bytes.items())},
        }
        # The impairment block exists only when an impairment model was ever
        # attached, keeping unimpaired network sections byte-identical.
        imp = getattr(network, "impairment", None)
        if imp is not None:
            trace.network["impairments"] = imp.stats_dict()
        trace.safety = {
            "consistent": safety.consistent,
            "common_prefix_height": safety.common_prefix_height,
            "max_height": safety.max_height,
            "details": list(safety.details),
        }
        return trace


def _harvest_qcs(replica) -> List[QuorumCertificate]:
    """Every quorum certificate a replica holds, across protocol families."""
    qcs: List[QuorumCertificate] = []
    # EESMR view-change certificates.
    for qc in getattr(replica, "own_commit_qc", {}).values():
        qcs.append(qc)
    qcs.extend(getattr(replica, "collected_commit_qcs", ()))
    best = getattr(replica, "best_commit_qc", None)
    if best is not None:
        qcs.append(best)
    # Sync HotStuff / OptSync vote certificates.
    for qc in getattr(replica, "certs", {}).values():
        qcs.append(qc)
    return qcs


def _record_qc(holder: int, qc: QuorumCertificate, scheme, config) -> QCRecord:
    """Verify and record one certificate (verification energy is not charged:
    this is the auditor looking at the run, not a node in it)."""
    if qc.cert_type == MessageType.BLAME:
        valid = verify_view_qc(scheme, holder, qc, config.quorum)
    else:
        valid = verify_qc(scheme, holder, qc, config.quorum)
    return QCRecord(
        holder=holder,
        cert_type=qc.cert_type.value,
        view=qc.view,
        signers=sorted(qc.signers),
        n_signatures=len(qc.signatures),
        block_hash=qc.block.block_hash if qc.block is not None else None,
        block_height=qc.block.height if qc.block is not None else None,
        valid=valid,
    )
