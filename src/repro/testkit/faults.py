"""The FaultSchedule DSL: timed, per-node, composable fault injection.

:class:`repro.core.adversary.FaultPlan` describes one behaviour applied to
a fixed set of nodes for a whole run.  The scenario matrix needs more:
different nodes misbehaving in different ways, faults that switch on and
off at chosen virtual times, and purely environmental perturbations
(relay-drop windows, partitions) that leave the node itself correct.

A :class:`FaultSchedule` is an immutable composition of fault atoms:

=====================  =====================================================
``CrashAt(p, t)``      fail-stop node ``p`` at virtual time ``t``
``StallAt(p, r)``      leader ``p`` stops proposing at steady round ``r``
``EquivocateAt(p, r)`` leader ``p`` proposes two conflicting blocks at ``r``
``SilentFrom(p)``      node ``p`` never sends (it still listens and pays
                       receive energy)
``RelayDropWindow``    node ``p`` refuses to relay floods during
``(p, t0, t1)``        ``[t0, t1)`` but is otherwise correct
``PartitionWindow``    node ``p`` is disconnected (sends and receives
``(p, t0, t1)``        nothing) during ``[t0, t1)``, then catches up
``CrashRecoverWindow`` node ``p`` is powered off during ``[t0, t1)``,
``(p, t0, t1)``        then reboots with committed state intact
=====================  =====================================================

The schedule plugs into :class:`repro.eval.runner.ProtocolRunner` through
three hooks:

* :meth:`FaultSchedule.replica_behaviour` — the Byzantine replica class to
  substitute for a node (EESMR runs real adversary subclasses);
* :meth:`FaultSchedule.failstop_time` — the fail-stop instant for protocols
  that model Byzantine behaviours as crashes (the baselines, as in the
  seed runner);
* :meth:`FaultSchedule.install` — arms network-level faults (relay drops,
  partitions, relay silence at crash time) on the simulator.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.core.adversary import FaultPlan
from repro.core.types import Round

#: How long after a heal/restart a recovering node stays liveness-exempt.
#: Past ``heal + CATCH_UP_GRACE`` the node is held to the full liveness
#: target again — catch-up (``repro.recovery``) must have worked by then.
CATCH_UP_GRACE = 8.0


def _deny_relay(_origin: int, _message: object) -> bool:
    return False


@dataclass(frozen=True)
class Fault:
    """One fault atom applied to one node."""

    node: int

    #: Whether the node counts as adversary-controlled (excluded from the
    #: safety/energy accounting of correct nodes).  Environmental faults
    #: (drops, partitions) leave the node correct but perturbed.
    byzantine: ClassVar[bool] = True

    #: Whether the fault exempts its node from liveness expectations.
    #: Byzantine nodes and partitioned nodes may never reach the target
    #: height; a relay-drop node still receives and votes, so it stays
    #: held to full liveness (it only withholds *forwarding*).
    liveness_exempt: ClassVar[bool] = True

    def nodes(self) -> Tuple[int, ...]:
        """The node ids this fault touches.

        Static atoms touch exactly ``(self.node,)``.  *Adaptive* atoms
        pick their victims mid-run; before a run they report ``()`` and
        afterwards the victims actually struck (see
        :class:`LeaderFollowingCrash`).
        """
        return (self.node,)

    def dynamic_budget(self) -> int:
        """Upper bound on nodes this fault may strike at run time (0 = static)."""
        return 0

    def controller(self):
        """A session controller executing this fault mid-run, or ``None``.

        Adaptive atoms return a fresh
        :class:`~repro.session.session.SessionController`; static atoms
        arm everything up front via :meth:`install` and need none.
        """
        return None

    def impairment(self) -> Optional[Tuple[float, float]]:
        """The ``[start, end)`` window during which this node cannot be
        relied on to forward floods (``None`` = never impaired).

        Used by the scenario matrix's per-topology feasibility check: the
        correct nodes must stay strongly connected with every concurrently
        impaired set removed (Lemma A.5's necessary condition,
        instantiated on the concrete fault schedule).
        """
        return None

    def exemption_end(self) -> float:
        """Virtual time at which this fault's liveness exemption lapses.

        Permanent exemptions (Byzantine behaviours) never lapse
        (``math.inf``); never-exempt atoms report ``-inf``.  Recovering
        atoms (:class:`PartitionWindow`, :class:`CrashRecoverWindow`)
        lapse at ``heal + CATCH_UP_GRACE``: past that instant the node is
        expected to have caught up and is held to full liveness again.
        """
        return math.inf if self.liveness_exempt else -math.inf

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        """(behaviour name, kwargs) for the EESMR adversary class table."""
        return None

    def narrowed(self, start: float, end: float) -> "Fault":
        """A copy with its impairment window shrunk to ``[start, end)``.

        Only windowed atoms (:class:`RelayDropWindow`,
        :class:`PartitionWindow`) support narrowing; it is the shrinker's
        second reduction pass.  The new window must lie inside the old one.
        """
        raise TypeError(f"{type(self).__name__} has no window to narrow")

    def failstop_time(self) -> Optional[float]:
        """When baseline protocols should fail-stop this node."""
        return None

    def install(self, sim, network, replicas) -> None:
        """Arm network-level effects on a built deployment."""

    def describe(self) -> dict:
        """A canonical, JSON-friendly description (static fields only).

        Round-trips through :func:`fault_from_dict`; runtime state
        (underscore-prefixed attributes such as an adaptive atom's
        recorded victims) is excluded so a described schedule can be
        re-deployed as the *same* declarative adversary.
        """
        out = {"kind": type(self).__name__, "node": self.node}
        for key, value in self.__dict__.items():
            if key != "node" and not key.startswith("_"):
                out[key] = value
        return out


class ByzantineFault(Fault):
    """Base for adversary-controlled node faults.

    Matching the seed experiment runner's worst case, a Byzantine node
    never relays floods — its relay policy is denied from t=0 regardless
    of when its visible misbehaviour triggers.
    """

    def install(self, sim, network, replicas) -> None:
        network.set_relay_policy(self.node, _deny_relay)

    def impairment(self) -> Optional[Tuple[float, float]]:
        return (0.0, math.inf)


@dataclass(frozen=True)
class CrashAt(ByzantineFault):
    """Fail-stop: correct until ``time``, then dark (and never relaying)."""

    time: float = 0.0

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "crash", {"crash_time": self.time}

    def failstop_time(self) -> Optional[float]:
        return self.time


@dataclass(frozen=True)
class StallAt(ByzantineFault):
    """A stalling leader: proposes honestly before ``round``, never after."""

    round: Round = 3
    #: When baseline protocols (which model this as fail-stop) crash the node.
    baseline_failstop: float = 1.0

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "silent_leader", {"trigger_round": self.round}

    def failstop_time(self) -> Optional[float]:
        return self.baseline_failstop


@dataclass(frozen=True)
class EquivocateAt(ByzantineFault):
    """An equivocating leader: two conflicting proposals at ``round``."""

    round: Round = 3
    baseline_failstop: float = 1.0

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "equivocate", {"trigger_round": self.round}

    def failstop_time(self) -> Optional[float]:
        return self.baseline_failstop


@dataclass(frozen=True)
class SilentFrom(ByzantineFault):
    """A silent Byzantine node: sends nothing, relays nothing, still listens."""

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "silent", {}

    def failstop_time(self) -> Optional[float]:
        return 0.0


@dataclass(frozen=True)
class RelayDropWindow(Fault):
    """An otherwise-correct node that drops relays during ``[start, end)``.

    This is the "silent relay" threat of the hypergraph fault bound
    (Appendix A): the node keeps running the protocol but contributes no
    forwarding for a while.  The node stays *correct* for safety and energy
    accounting — and because it keeps receiving floods and voting
    throughout the window, it is also still held to full liveness
    (``liveness_exempt = False``); only its *forwarding* is withheld.
    """

    start: float = 0.0
    end: float = 0.0

    byzantine: ClassVar[bool] = False
    #: The node keeps receiving and voting throughout the window — only
    #: its forwarding is withheld — so it is still expected to be live.
    liveness_exempt: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"degenerate drop window [{self.start}, {self.end}): "
                "end must be strictly after start"
            )

    def impairment(self) -> Optional[Tuple[float, float]]:
        return (self.start, self.end)

    def narrowed(self, start: float, end: float) -> "RelayDropWindow":
        if start < self.start or end > self.end:
            raise ValueError(
                f"[{start}, {end}) is not inside the window [{self.start}, {self.end})"
            )
        return dataclasses.replace(self, start=start, end=end)

    def install(self, sim, network, replicas) -> None:
        # The denial is refcounted *in the network*, shared across every
        # composed fault touching this node: interleaved windows lift relay
        # denial only when the last one closes, and a permanent policy from
        # a composed Byzantine fault is restored rather than clobbered.
        sim.schedule_at(
            self.start,
            lambda: network.deny_relay(self.node),
            label=f"fault:drop-on@{self.node}",
        )
        sim.schedule_at(
            self.end,
            lambda: network.allow_relay(self.node),
            label=f"fault:drop-off@{self.node}",
        )


@dataclass(frozen=True)
class PartitionWindow(Fault):
    """A node cut off from the network during ``[start, heal)``.

    Exiting the window is no longer a permanent liveness pardon: a
    :class:`~repro.recovery.controller.RecoveryController` wakes at
    ``heal`` and drives block/QC catch-up from live peers, and the
    node's liveness exemption lapses at ``heal + CATCH_UP_GRACE``
    (:meth:`exemption_end`).
    """

    start: float = 0.0
    heal: float = 0.0

    byzantine: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.heal <= self.start:
            raise ValueError(
                f"degenerate partition window [{self.start}, {self.heal}): "
                "heal must be strictly after start"
            )

    def impairment(self) -> Optional[Tuple[float, float]]:
        return (self.start, self.heal)

    def exemption_end(self) -> float:
        return self.heal + CATCH_UP_GRACE

    def narrowed(self, start: float, end: float) -> "PartitionWindow":
        if start < self.start or end > self.heal:
            raise ValueError(
                f"[{start}, {end}) is not inside the window [{self.start}, {self.heal})"
            )
        return dataclasses.replace(self, start=start, heal=end)

    def controller(self):
        from repro.recovery.controller import RecoveryController

        return RecoveryController(self)

    def install(self, sim, network, replicas) -> None:
        sim.schedule_at(
            self.start,
            lambda: network.isolate(self.node),
            label=f"fault:partition@{self.node}",
        )
        sim.schedule_at(
            self.heal,
            lambda: network.reconnect(self.node),
            label=f"fault:heal@{self.node}",
        )


@dataclass(frozen=True)
class CrashRecoverWindow(Fault):
    """A benign crash-recover cycle: node powered off during ``[start, heal)``.

    Unlike :class:`CrashAt` the node is *correct* — it merely loses power
    for a window (no relaying, no receiving, timers dead) and reboots at
    ``heal`` with its committed state intact.  On reboot it does not
    re-enter the proposal rotation machinery by itself; it relies on the
    catch-up protocol (:mod:`repro.recovery`) to close the gap, and its
    liveness exemption lapses at ``heal + CATCH_UP_GRACE``.
    """

    start: float = 0.0
    heal: float = 0.0

    byzantine: ClassVar[bool] = False

    def __post_init__(self) -> None:
        # Type checks matter because these atoms are rebuilt from JSON
        # (corpus entries, ``--spec`` files) — see LeaderFollowingCrash.
        for name in ("start", "heal"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"crash-recover {name} must be a number, got {value!r}")
        if self.start < 0:
            raise ValueError(f"start time cannot be negative, got {self.start}")
        if self.heal <= self.start:
            raise ValueError(
                f"degenerate crash-recover window [{self.start}, {self.heal}): "
                "heal must be strictly after start"
            )

    def impairment(self) -> Optional[Tuple[float, float]]:
        return (self.start, self.heal)

    def exemption_end(self) -> float:
        return self.heal + CATCH_UP_GRACE

    def narrowed(self, start: float, end: float) -> "CrashRecoverWindow":
        if start < self.start or end > self.heal:
            raise ValueError(
                f"[{start}, {end}) is not inside the window [{self.start}, {self.heal})"
            )
        return dataclasses.replace(self, start=start, heal=end)

    def controller(self):
        from repro.recovery.controller import RecoveryController

        return RecoveryController(self)

    def install(self, sim, network, replicas) -> None:
        replica = replicas.get(self.node)

        def power_off() -> None:
            if replica is not None:
                replica.crash()
            # A powered-off node neither relays nor pays receive energy;
            # isolating it keeps the radio/energy accounting honest.
            network.isolate(self.node)

        def power_on() -> None:
            network.reconnect(self.node)
            if replica is not None:
                replica.restart()

        sim.schedule_at(self.start, power_off, label=f"fault:crash-off@{self.node}")
        sim.schedule_at(self.heal, power_on, label=f"fault:restart@{self.node}")


@dataclass(frozen=True)
class _ImpairmentWindow(Fault):
    """Base for timed wire-impairment windows on one node's deliveries.

    Installs a per-node overlay on the network's
    :class:`~repro.net.impairment.ImpairmentModel` at ``start`` and pops
    it at ``end``.  Overlays compose with any global spec-level
    impairment and with each other (nested windows stack), mirroring the
    refcounted relay/partition mutators.
    """

    start: float = 0.0
    end: float = 0.0

    byzantine: ClassVar[bool] = False
    liveness_exempt: ClassVar[bool] = False

    #: The overlay kind pushed onto the impairment model.
    impairment_kind: ClassVar[str] = ""
    #: Name of the dataclass field holding the overlay value.
    value_field: ClassVar[str] = ""

    def __post_init__(self) -> None:
        # Type checks matter because these atoms are rebuilt from JSON
        # (corpus entries, ``--spec`` files) — see CrashRecoverWindow.
        for name in ("start", "end", self.value_field):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"{type(self).__name__} {name} must be a number, got {value!r}"
                )
        if self.start < 0:
            raise ValueError(f"start time cannot be negative, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"degenerate impairment window [{self.start}, {self.end}): "
                "end must be strictly after start"
            )
        value = getattr(self, self.value_field)
        if not 0.0 < value <= 1.0:
            raise ValueError(
                f"{type(self).__name__} {self.value_field} must be in (0, 1], got {value}"
            )

    def narrowed(self, start: float, end: float) -> "Fault":
        if start < self.start or end > self.end:
            raise ValueError(
                f"[{start}, {end}) is not inside the window [{self.start}, {self.end})"
            )
        return dataclasses.replace(self, start=start, end=end)

    def install(self, sim, network, replicas) -> None:
        kind = self.impairment_kind
        value = getattr(self, self.value_field)
        sim.schedule_at(
            self.start,
            lambda: network.impair_node(self.node, kind, value),
            label=f"fault:{kind}-on@{self.node}",
        )
        sim.schedule_at(
            self.end,
            lambda: network.unimpair_node(self.node, kind),
            label=f"fault:{kind}-off@{self.node}",
        )


@dataclass(frozen=True)
class LossWindow(_ImpairmentWindow):
    """An otherwise-correct node whose hop deliveries are *dropped* with
    probability ``loss`` during ``[start, end)``.

    The reliable-delivery sublayer retransmits each drop with bounded
    retries, so a working stack recovers the window's losses shortly
    after it closes.  The node is therefore liveness-exempt only for a
    **bounded latency allowance** past the window — proportional to the
    degradation severity and capped at ``2 * CATCH_UP_GRACE`` — after
    which the loss-budget liveness invariant (and the base liveness
    invariant) hold it to the full target again.  This mirrors the PR 7
    heal-grace design instead of granting a blanket exemption.
    """

    loss: float = 0.5

    liveness_exempt: ClassVar[bool] = True
    impairment_kind: ClassVar[str] = "loss"
    value_field: ClassVar[str] = "loss"

    def impairment(self) -> Optional[Tuple[float, float]]:
        # Only a total blackout (loss ~ 1) makes the node unable to take
        # part in dissemination at all; sub-unity loss leaves probabilistic
        # connectivity that redundancy-backed retransmission recovers, so
        # it does not count against Lemma A.5 strong connectivity.
        if self.loss >= 0.999:
            return (self.start, self.end)
        return None

    def exemption_end(self) -> float:
        # One grace share for the retransmission tail (retry chains of
        # drops near the window's end run past it) plus a loss-proportional
        # share for protocol catch-up.  Bounded: never more than twice the
        # recovery grace, unlike the permanent Byzantine exemption.
        return self.end + CATCH_UP_GRACE * (1.0 + min(1.0, self.loss))


@dataclass(frozen=True)
class DuplicateWindow(_ImpairmentWindow):
    """An otherwise-correct node receiving *duplicated* hop deliveries
    with probability ``probability`` during ``[start, end)``.

    The radio cannot know a payload is old before receiving it, so the
    node pays receive energy for every copy; the flood dedup layer drops
    the payload.  Duplication never prevents progress, so the node stays
    held to full liveness.
    """

    probability: float = 0.5

    impairment_kind: ClassVar[str] = "duplicate"
    value_field: ClassVar[str] = "probability"


@dataclass(frozen=True)
class JitterWindow(_ImpairmentWindow):
    """An otherwise-correct node whose hop deliveries are delayed by up to
    ``jitter`` extra hop delays during ``[start, end)``.

    Models a congested or interference-heavy patch of the medium.  The
    delay is bounded (at most ``jitter * hop_delay`` extra per hop), so
    the node stays held to full liveness — protocols choose Δ above the
    flooding bound and the experiments' Δ absorbs bounded extra delay.
    """

    jitter: float = 0.5

    impairment_kind: ClassVar[str] = "jitter"
    value_field: ClassVar[str] = "jitter"


@dataclass(frozen=True)
class LeaderFollowingCrash(Fault):
    """An *adaptive* (mobile) crash adversary that follows the rotation.

    Unlike every other atom, the victim set is not fixed up front: at each
    check (every ``interval`` of virtual time from ``start``) the
    adversary resolves the leader of the highest view any live replica is
    in and fail-stops it, then waits for the resulting view change to
    install the next leader and strikes again — up to ``budget`` victims.

    Executed by a :class:`~repro.session.adaptive.LeaderFollowingController`
    over the session's steppable run control; the controller records every
    victim back onto this atom, so post-run :meth:`nodes` (and hence the
    schedule's Byzantine/liveness accounting) reflects the nodes actually
    struck.  ``node`` is a placeholder (-1): adaptive atoms have no static
    target.
    """

    node: int = -1
    #: Maximum number of leaders to crash (must fit the deployment's f).
    budget: int = 1
    #: Virtual time at which the adversary starts stalking.
    start: float = 0.0
    #: Virtual time between leader checks.
    interval: float = 1.0

    byzantine: ClassVar[bool] = True
    liveness_exempt: ClassVar[bool] = True

    def __post_init__(self) -> None:
        # Type checks matter here because adaptive atoms are routinely
        # rebuilt from JSON (corpus entries, ``--spec`` files): a budget of
        # 1.5 or "2" would pass the range checks below yet silently break
        # the controller's spent-budget accounting mid-run.
        if isinstance(self.budget, bool) or not isinstance(self.budget, int):
            raise ValueError(f"adaptive budget must be an int, got {self.budget!r}")
        for name in ("start", "interval"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"adaptive {name} must be a number, got {value!r}")
        if self.budget < 1:
            raise ValueError(f"adaptive budget must be >= 1, got {self.budget}")
        if self.interval <= 0:
            raise ValueError(f"check interval must be positive, got {self.interval}")
        if self.start < 0:
            raise ValueError(f"start time cannot be negative, got {self.start}")

    def with_budget(self, budget: int) -> "LeaderFollowingCrash":
        """A copy provisioned for a smaller (or larger) victim budget."""
        return dataclasses.replace(self, budget=budget)

    # ------------------------------------------------------- dynamic targets
    def nodes(self) -> Tuple[int, ...]:
        return tuple(self.victims)

    @property
    def victims(self) -> Tuple[int, ...]:
        """Victims struck in the most recent run (empty before any run).

        The controller resets this when a new session starts, so the
        accounting always describes *one* campaign; sharing one schedule
        object across concurrently live sessions is not supported (build
        each from its own spec, e.g. via ``DeploymentSpec.from_dict``).
        """
        return tuple(self.__dict__.get("_victims", ()))

    def record_victim(self, pid: int) -> None:
        """Called by the controller when it strikes ``pid``."""
        struck = self.__dict__.setdefault("_victims", [])
        if pid not in struck:
            struck.append(pid)

    def reset_victims(self) -> None:
        """Start a fresh campaign (called when a new session attaches)."""
        self.__dict__["_victims"] = []

    def dynamic_budget(self) -> int:
        return self.budget

    def controller(self):
        from repro.session.adaptive import LeaderFollowingController

        return LeaderFollowingController(self)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable composition of fault atoms, pluggable into the runner."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        behaviours: Dict[int, str] = {}
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"not a Fault: {fault!r}")
            b = fault.behaviour()
            if b is not None:
                if fault.node in behaviours:
                    raise ValueError(
                        f"node {fault.node} has two Byzantine behaviours "
                        f"({behaviours[fault.node]} and {b[0]})"
                    )
                behaviours[fault.node] = b[0]

    # ------------------------------------------------------------ composition
    def add(self, *faults: Fault) -> "FaultSchedule":
        """A new schedule with additional faults."""
        return FaultSchedule(self.faults + tuple(faults))

    def __len__(self) -> int:
        return len(self.faults)

    # ---------------------------------------------------------------- surgery
    # The fuzzer's shrinker reduces failing schedules by removing atoms,
    # narrowing windows and lowering adaptive budgets; each operation
    # returns a fresh schedule (atoms are immutable value objects).
    def without_atom(self, index: int) -> "FaultSchedule":
        """A new schedule with the atom at ``index`` removed."""
        if not 0 <= index < len(self.faults):
            raise IndexError(f"atom index {index} out of range for {len(self.faults)} atoms")
        return FaultSchedule(self.faults[:index] + self.faults[index + 1 :])

    def replace_atom(self, index: int, atom: Fault) -> "FaultSchedule":
        """A new schedule with the atom at ``index`` swapped for ``atom``."""
        if not 0 <= index < len(self.faults):
            raise IndexError(f"atom index {index} out of range for {len(self.faults)} atoms")
        return FaultSchedule(self.faults[:index] + (atom,) + self.faults[index + 1 :])

    # ------------------------------------------------------------ node views
    def byzantine_nodes(self) -> Tuple[int, ...]:
        """Adversary-controlled node ids (sorted, unique).

        Adaptive atoms contribute the victims they actually struck — read
        after the run, this is the realised adversary; before it, only the
        statically targeted nodes (see :meth:`max_byzantine` for the
        pre-run bound).
        """
        return tuple(sorted({p for f in self.faults if f.byzantine for p in f.nodes()}))

    def perturbed_nodes(self) -> Tuple[int, ...]:
        """Every node touched by any fault, Byzantine or environmental."""
        return tuple(sorted({p for f in self.faults for p in f.nodes()}))

    def liveness_exempt_nodes(self, end_time: Optional[float] = None) -> Tuple[int, ...]:
        """Nodes excused from liveness expectations (sorted, unique).

        A node is exempt if *any* of its faults exempts it: Byzantine
        behaviours do permanently, relay-drop windows never do — a
        dropping relay still receives every flood and keeps committing.

        Exemptions are *window-scoped*: with ``end_time`` (the run's
        final virtual time) given, a recovering atom (partition or
        crash-recover window) only exempts its node while
        ``fault.exemption_end() > end_time`` — i.e. until
        ``heal + CATCH_UP_GRACE``.  A run that outlives the grace period
        holds the healed node to the full liveness target again, which is
        what makes catch-up a *checked* invariant rather than a pardon.
        Without ``end_time`` the pre-run view is returned (every exempting
        atom counts), which is what feasibility checks want.
        """
        exempt = set()
        for fault in self.faults:
            if not fault.liveness_exempt:
                continue
            if end_time is not None and fault.exemption_end() <= end_time:
                continue
            exempt.update(fault.nodes())
        return tuple(sorted(exempt))

    def dynamic_budget(self) -> int:
        """Nodes adaptive atoms may strike at run time (0 for static schedules)."""
        return sum(f.dynamic_budget() for f in self.faults)

    def max_byzantine(self) -> int:
        """Pre-run upper bound on adversary-controlled nodes.

        Static Byzantine targets plus every adaptive atom's budget — the
        ``f`` a deployment must provision to run this schedule soundly.
        """
        static = {
            p for f in self.faults if f.byzantine and not f.dynamic_budget() for p in f.nodes()
        }
        return len(static) + self.dynamic_budget()

    def controllers(self) -> Tuple[object, ...]:
        """Fresh session controllers for every adaptive atom (build-time hook)."""
        return tuple(c for f in self.faults if (c := f.controller()) is not None)

    def concurrent_impairment_sets(self) -> List[frozenset]:
        """Every distinct set of nodes simultaneously relay-impaired.

        Sweeps every window boundary of the fault impairment intervals
        (``[start, end)``; zero-length windows impair nobody) — ends as
        well as starts, since a node whose window just closed may depend
        on still-impaired neighbours — and collects the set of impaired
        nodes at each boundary.  The matrix's feasibility check requires
        correct nodes to stay strongly connected with each of these sets
        removed.
        """
        intervals = []
        for fault in self.faults:
            window = fault.impairment()
            if window is not None and window[1] > window[0]:
                intervals.append((fault.node, window[0], window[1]))
        boundaries = sorted(
            {s for _, s, _ in intervals} | {e for _, _, e in intervals if e != math.inf}
        )
        sets: List[frozenset] = []
        for t in boundaries:
            active = frozenset(node for node, s, e in intervals if s <= t < e)
            if active and active not in sets:
                sets.append(active)
        return sets

    # ---------------------------------------------------------- runner hooks
    def replica_behaviour(self, pid: int) -> Optional[Tuple[str, dict]]:
        """The EESMR adversary (behaviour, kwargs) for ``pid``, if any."""
        for fault in self.faults:
            if fault.node == pid:
                b = fault.behaviour()
                if b is not None:
                    return b
        return None

    def failstop_time(self, pid: int) -> Optional[float]:
        """When baseline protocols fail-stop ``pid`` (None = never)."""
        times = [
            fault.failstop_time()
            for fault in self.faults
            if fault.node == pid and fault.failstop_time() is not None
        ]
        return min(times) if times else None

    def install(self, sim, network, replicas) -> None:
        """Arm all network-level fault effects on a built deployment."""
        for fault in self.faults:
            fault.install(sim, network, replicas)

    # -------------------------------------------------------------- reporting
    def to_fault_plan(self) -> FaultPlan:
        """A best-effort legacy view (first Byzantine behaviour wins)."""
        for fault in self.faults:
            b = fault.behaviour()
            if b is not None:
                name, kwargs = b
                return FaultPlan(
                    faulty=self.byzantine_nodes(),
                    behaviour=name,
                    trigger_round=kwargs.get("trigger_round", 3),
                    crash_time=kwargs.get("crash_time", 0.0),
                )
        return FaultPlan(faulty=self.byzantine_nodes())

    def describe(self) -> list:
        """Canonical JSON-friendly description for fingerprints and reports."""
        return [f.describe() for f in self.faults]

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.faults)
        return f"FaultSchedule(({inner}))"


# --------------------------------------------------------------- constructors
def no_faults() -> FaultSchedule:
    """The empty schedule (honest run)."""
    return FaultSchedule()


def crash_at(node: int, time: float = 0.0) -> FaultSchedule:
    """Fail-stop one node at a virtual time."""
    return FaultSchedule((CrashAt(node, time),))


def stall_at(node: int, round_number: Round = 3) -> FaultSchedule:
    """A stalling (no-progress) leader from a steady-state round on."""
    return FaultSchedule((StallAt(node, round_number),))


def equivocate_at(node: int, round_number: Round = 3) -> FaultSchedule:
    """An equivocating leader at a steady-state round."""
    return FaultSchedule((EquivocateAt(node, round_number),))


def silent(node: int) -> FaultSchedule:
    """A silent Byzantine node (never sends, still listens)."""
    return FaultSchedule((SilentFrom(node),))


def drop_window(node: int, start: float, end: float) -> FaultSchedule:
    """A correct node that stops relaying floods during a window."""
    return FaultSchedule((RelayDropWindow(node, start, end),))


def partition(node: int, start: float, heal: float) -> FaultSchedule:
    """Disconnect a node for a window, then heal the partition."""
    return FaultSchedule((PartitionWindow(node, start, heal),))


def crash_recover(node: int, start: float, heal: float) -> FaultSchedule:
    """Power a node off for a window, then reboot it (state intact)."""
    return FaultSchedule((CrashRecoverWindow(node, start, heal),))


def leader_following_crash(
    budget: int = 1, start: float = 0.0, interval: float = 1.0
) -> FaultSchedule:
    """An adaptive adversary crashing whichever node the rotation elects."""
    return FaultSchedule((LeaderFollowingCrash(budget=budget, start=start, interval=interval),))


def loss_window(node: int, start: float, end: float, loss: float = 0.5) -> FaultSchedule:
    """A correct node whose incoming deliveries drop with probability ``loss``."""
    return FaultSchedule((LossWindow(node, start, end, loss),))


def duplicate_window(
    node: int, start: float, end: float, probability: float = 0.5
) -> FaultSchedule:
    """A correct node receiving duplicated deliveries for a window."""
    return FaultSchedule((DuplicateWindow(node, start, end, probability),))


def jitter_window(node: int, start: float, end: float, jitter: float = 0.5) -> FaultSchedule:
    """A correct node whose deliveries are jitter-delayed for a window."""
    return FaultSchedule((JitterWindow(node, start, end, jitter),))


# -------------------------------------------------------------- serialization
#: Fault-atom kinds reconstructible from :meth:`Fault.describe` output.
FAULT_KINDS = {
    cls.__name__: cls
    for cls in (
        CrashAt,
        StallAt,
        EquivocateAt,
        SilentFrom,
        RelayDropWindow,
        PartitionWindow,
        CrashRecoverWindow,
        LeaderFollowingCrash,
        LossWindow,
        DuplicateWindow,
        JitterWindow,
    )
}


def fault_from_dict(data: dict) -> Fault:
    """Rebuild one fault atom from its :meth:`Fault.describe` dict."""
    data = dict(data)
    kind = data.pop("kind", None)
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}; known: {sorted(FAULT_KINDS)}")
    return cls(**data)


def schedule_from_dict(data: list) -> FaultSchedule:
    """Rebuild a :class:`FaultSchedule` from :meth:`FaultSchedule.describe`.

    Malformed entries — unknown kinds, unexpected fields, values an atom's
    own validation rejects — are reported with the offending entry's index
    so a bad corpus file or ``--spec`` schedule names the atom to fix.
    """
    atoms = []
    for index, entry in enumerate(data):
        try:
            atoms.append(fault_from_dict(entry))
        except (TypeError, ValueError) as error:
            raise ValueError(f"fault entry {index}: {error}") from error
    return FaultSchedule(tuple(atoms))
