"""The FaultSchedule DSL: timed, per-node, composable fault injection.

:class:`repro.core.adversary.FaultPlan` describes one behaviour applied to
a fixed set of nodes for a whole run.  The scenario matrix needs more:
different nodes misbehaving in different ways, faults that switch on and
off at chosen virtual times, and purely environmental perturbations
(relay-drop windows, partitions) that leave the node itself correct.

A :class:`FaultSchedule` is an immutable composition of fault atoms:

=====================  =====================================================
``CrashAt(p, t)``      fail-stop node ``p`` at virtual time ``t``
``StallAt(p, r)``      leader ``p`` stops proposing at steady round ``r``
``EquivocateAt(p, r)`` leader ``p`` proposes two conflicting blocks at ``r``
``SilentFrom(p)``      node ``p`` never sends (it still listens and pays
                       receive energy)
``RelayDropWindow``    node ``p`` refuses to relay floods during
``(p, t0, t1)``        ``[t0, t1)`` but is otherwise correct
``PartitionWindow``    node ``p`` is disconnected (sends and receives
``(p, t0, t1)``        nothing) during ``[t0, t1)``
=====================  =====================================================

The schedule plugs into :class:`repro.eval.runner.ProtocolRunner` through
three hooks:

* :meth:`FaultSchedule.replica_behaviour` — the Byzantine replica class to
  substitute for a node (EESMR runs real adversary subclasses);
* :meth:`FaultSchedule.failstop_time` — the fail-stop instant for protocols
  that model Byzantine behaviours as crashes (the baselines, as in the
  seed runner);
* :meth:`FaultSchedule.install` — arms network-level faults (relay drops,
  partitions, relay silence at crash time) on the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Optional, Tuple

from repro.core.adversary import FaultPlan
from repro.core.types import Round


def _deny_relay(_origin: int, _message: object) -> bool:
    return False


@dataclass(frozen=True)
class Fault:
    """One fault atom applied to one node."""

    node: int

    #: Whether the node counts as adversary-controlled (excluded from the
    #: safety/energy accounting of correct nodes).  Environmental faults
    #: (drops, partitions) leave the node correct but perturbed.
    byzantine: ClassVar[bool] = True

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        """(behaviour name, kwargs) for the EESMR adversary class table."""
        return None

    def failstop_time(self) -> Optional[float]:
        """When baseline protocols should fail-stop this node."""
        return None

    def install(self, sim, network, replicas) -> None:
        """Arm network-level effects on a built deployment."""

    def describe(self) -> dict:
        """A canonical, JSON-friendly description (used in trace fingerprints)."""
        out = {"kind": type(self).__name__, "node": self.node}
        for key, value in self.__dict__.items():
            if key != "node":
                out[key] = value
        return out


class ByzantineFault(Fault):
    """Base for adversary-controlled node faults.

    Matching the seed experiment runner's worst case, a Byzantine node
    never relays floods — its relay policy is denied from t=0 regardless
    of when its visible misbehaviour triggers.
    """

    def install(self, sim, network, replicas) -> None:
        network.set_relay_policy(self.node, _deny_relay)


@dataclass(frozen=True)
class CrashAt(ByzantineFault):
    """Fail-stop: correct until ``time``, then dark (and never relaying)."""

    time: float = 0.0

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "crash", {"crash_time": self.time}

    def failstop_time(self) -> Optional[float]:
        return self.time


@dataclass(frozen=True)
class StallAt(ByzantineFault):
    """A stalling leader: proposes honestly before ``round``, never after."""

    round: Round = 3
    #: When baseline protocols (which model this as fail-stop) crash the node.
    baseline_failstop: float = 1.0

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "silent_leader", {"trigger_round": self.round}

    def failstop_time(self) -> Optional[float]:
        return self.baseline_failstop


@dataclass(frozen=True)
class EquivocateAt(ByzantineFault):
    """An equivocating leader: two conflicting proposals at ``round``."""

    round: Round = 3
    baseline_failstop: float = 1.0

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "equivocate", {"trigger_round": self.round}

    def failstop_time(self) -> Optional[float]:
        return self.baseline_failstop


@dataclass(frozen=True)
class SilentFrom(ByzantineFault):
    """A silent Byzantine node: sends nothing, relays nothing, still listens."""

    def behaviour(self) -> Optional[Tuple[str, dict]]:
        return "silent", {}

    def failstop_time(self) -> Optional[float]:
        return 0.0


@dataclass(frozen=True)
class RelayDropWindow(Fault):
    """An otherwise-correct node that drops relays during ``[start, end)``.

    This is the "silent relay" threat of the hypergraph fault bound
    (Appendix A): the node keeps running the protocol but contributes no
    forwarding for a while.  The node stays *correct* for safety and energy
    accounting, but is excluded from liveness expectations while degraded.
    """

    start: float = 0.0
    end: float = 0.0

    byzantine: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window end {self.end} before start {self.start}")

    def install(self, sim, network, replicas) -> None:
        # Restore whatever policy was active before the window (another
        # composed fault may own a permanent one) instead of clobbering it.
        saved: list = []

        def window_on() -> None:
            saved.append(network.relay_policies.get(self.node))
            network.set_relay_policy(self.node, _deny_relay)

        def window_off() -> None:
            previous = saved.pop() if saved else None
            if previous is None:
                network.relay_policies.pop(self.node, None)
            else:
                network.set_relay_policy(self.node, previous)

        sim.schedule_at(self.start, window_on, label=f"fault:drop-on@{self.node}")
        sim.schedule_at(self.end, window_off, label=f"fault:drop-off@{self.node}")


@dataclass(frozen=True)
class PartitionWindow(Fault):
    """A node cut off from the network during ``[start, heal)``."""

    start: float = 0.0
    heal: float = 0.0

    byzantine: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.heal < self.start:
            raise ValueError(f"heal time {self.heal} before start {self.start}")

    def install(self, sim, network, replicas) -> None:
        sim.schedule_at(
            self.start,
            lambda: network.isolate(self.node),
            label=f"fault:partition@{self.node}",
        )
        sim.schedule_at(
            self.heal,
            lambda: network.reconnect(self.node),
            label=f"fault:heal@{self.node}",
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable composition of fault atoms, pluggable into the runner."""

    faults: Tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        behaviours: Dict[int, str] = {}
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"not a Fault: {fault!r}")
            b = fault.behaviour()
            if b is not None:
                if fault.node in behaviours:
                    raise ValueError(
                        f"node {fault.node} has two Byzantine behaviours "
                        f"({behaviours[fault.node]} and {b[0]})"
                    )
                behaviours[fault.node] = b[0]

    # ------------------------------------------------------------ composition
    def add(self, *faults: Fault) -> "FaultSchedule":
        """A new schedule with additional faults."""
        return FaultSchedule(self.faults + tuple(faults))

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------ node views
    def byzantine_nodes(self) -> Tuple[int, ...]:
        """Adversary-controlled node ids (sorted, unique)."""
        return tuple(sorted({f.node for f in self.faults if f.byzantine}))

    def perturbed_nodes(self) -> Tuple[int, ...]:
        """Every node touched by any fault, Byzantine or environmental."""
        return tuple(sorted({f.node for f in self.faults}))

    # ---------------------------------------------------------- runner hooks
    def replica_behaviour(self, pid: int) -> Optional[Tuple[str, dict]]:
        """The EESMR adversary (behaviour, kwargs) for ``pid``, if any."""
        for fault in self.faults:
            if fault.node == pid:
                b = fault.behaviour()
                if b is not None:
                    return b
        return None

    def failstop_time(self, pid: int) -> Optional[float]:
        """When baseline protocols fail-stop ``pid`` (None = never)."""
        times = [
            fault.failstop_time()
            for fault in self.faults
            if fault.node == pid and fault.failstop_time() is not None
        ]
        return min(times) if times else None

    def install(self, sim, network, replicas) -> None:
        """Arm all network-level fault effects on a built deployment."""
        for fault in self.faults:
            fault.install(sim, network, replicas)

    # -------------------------------------------------------------- reporting
    def to_fault_plan(self) -> FaultPlan:
        """A best-effort legacy view (first Byzantine behaviour wins)."""
        for fault in self.faults:
            b = fault.behaviour()
            if b is not None:
                name, kwargs = b
                return FaultPlan(
                    faulty=self.byzantine_nodes(),
                    behaviour=name,
                    trigger_round=kwargs.get("trigger_round", 3),
                    crash_time=kwargs.get("crash_time", 0.0),
                )
        return FaultPlan(faulty=self.byzantine_nodes())

    def describe(self) -> list:
        """Canonical JSON-friendly description for fingerprints and reports."""
        return [f.describe() for f in self.faults]

    def __repr__(self) -> str:
        inner = ", ".join(repr(f) for f in self.faults)
        return f"FaultSchedule(({inner}))"


# --------------------------------------------------------------- constructors
def no_faults() -> FaultSchedule:
    """The empty schedule (honest run)."""
    return FaultSchedule()


def crash_at(node: int, time: float = 0.0) -> FaultSchedule:
    """Fail-stop one node at a virtual time."""
    return FaultSchedule((CrashAt(node, time),))


def stall_at(node: int, round_number: Round = 3) -> FaultSchedule:
    """A stalling (no-progress) leader from a steady-state round on."""
    return FaultSchedule((StallAt(node, round_number),))


def equivocate_at(node: int, round_number: Round = 3) -> FaultSchedule:
    """An equivocating leader at a steady-state round."""
    return FaultSchedule((EquivocateAt(node, round_number),))


def silent(node: int) -> FaultSchedule:
    """A silent Byzantine node (never sends, still listens)."""
    return FaultSchedule((SilentFrom(node),))


def drop_window(node: int, start: float, end: float) -> FaultSchedule:
    """A correct node that stops relaying floods during a window."""
    return FaultSchedule((RelayDropWindow(node, start, end),))


def partition(node: int, start: float, heal: float) -> FaultSchedule:
    """Disconnect a node for a window, then heal the partition."""
    return FaultSchedule((PartitionWindow(node, start, heal),))
