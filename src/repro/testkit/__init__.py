"""Scenario-matrix testkit: deterministic fault injection and
cross-protocol invariant checking.

The testkit is the regression infrastructure every scale/perf PR runs
against.  It provides:

* :mod:`repro.testkit.trace` — :class:`TraceRecorder` and :class:`RunTrace`,
  structured byte-comparable per-run traces;
* :mod:`repro.testkit.invariants` — the composable invariant battery
  (agreement, liveness, quorum certificates, monotone time, energy
  conservation);
* :mod:`repro.testkit.faults` — the :class:`FaultSchedule` DSL of timed,
  per-node, composable faults;
* :mod:`repro.testkit.scenarios` — :class:`ScenarioMatrix`, the
  protocols × faults × media × topologies cross-product runner.

See ``docs/testkit.md`` for a guide.
"""

from repro.testkit.faults import (
    CrashAt,
    EquivocateAt,
    Fault,
    FaultSchedule,
    PartitionWindow,
    RelayDropWindow,
    SilentFrom,
    StallAt,
    crash_at,
    drop_window,
    equivocate_at,
    no_faults,
    partition,
    silent,
    stall_at,
)
from repro.testkit.invariants import (
    DEFAULT_INVARIANTS,
    AgreementInvariant,
    EnergyConservationInvariant,
    Evidence,
    Invariant,
    InvariantReport,
    InvariantViolation,
    LivenessInvariant,
    MonotoneVirtualTimeInvariant,
    QuorumCertificateInvariant,
    assert_all,
    check_all,
)
from repro.testkit.scenarios import (
    ALL_FAULTS,
    COMPOSED_FAULTS,
    DEFAULT_FAULTS,
    FAULT_LIBRARY,
    MATRIX_TOPOLOGIES,
    CellOutcome,
    MatrixReport,
    ScenarioCell,
    ScenarioMatrix,
    SkippedCell,
    run_default_matrix,
    run_full_matrix,
)
from repro.testkit.trace import QCRecord, RunTrace, TraceRecorder, spec_fingerprint

__all__ = [
    "ALL_FAULTS",
    "COMPOSED_FAULTS",
    "DEFAULT_FAULTS",
    "DEFAULT_INVARIANTS",
    "FAULT_LIBRARY",
    "MATRIX_TOPOLOGIES",
    "AgreementInvariant",
    "CellOutcome",
    "CrashAt",
    "EnergyConservationInvariant",
    "EquivocateAt",
    "Evidence",
    "Fault",
    "FaultSchedule",
    "Invariant",
    "InvariantReport",
    "InvariantViolation",
    "LivenessInvariant",
    "MatrixReport",
    "MonotoneVirtualTimeInvariant",
    "PartitionWindow",
    "QCRecord",
    "QuorumCertificateInvariant",
    "RelayDropWindow",
    "RunTrace",
    "ScenarioCell",
    "ScenarioMatrix",
    "SilentFrom",
    "SkippedCell",
    "StallAt",
    "TraceRecorder",
    "assert_all",
    "check_all",
    "crash_at",
    "drop_window",
    "equivocate_at",
    "no_faults",
    "partition",
    "run_default_matrix",
    "run_full_matrix",
    "silent",
    "spec_fingerprint",
    "stall_at",
]
