"""The scenario matrix: protocols × fault schedules × media × topologies.

The paper's evaluation rests on three adversarial scenarios and four
protocols, spot-checked by hand.  :class:`ScenarioMatrix` systematises
that: it enumerates the cross-product of

* protocol ∈ {eesmr, sync-hotstuff, optsync, trusted-baseline},
* fault schedule ∈ :data:`FAULT_LIBRARY` (honest, crash-leader,
  stall-leader, equivocate-leader, silent-relay, drop-window,
  partition-heal),
* medium ∈ {ble, wifi, 4g-lte},
* topology ∈ {ring-kcast, fully-connected, ...},

runs every cell deterministically through the standard experiment runner
with a :class:`~repro.testkit.trace.TraceRecorder`, checks the full
invariant battery (:data:`~repro.testkit.invariants.DEFAULT_INVARIANTS`)
on every cell, and adds two differential checks:

* within a cell, all correct replicas committed prefix-compatible command
  sequences (part of the agreement invariant);
* across protocols in the *same* fault-free (medium, topology) group, the
  committed command sequence is identical — same workload, same log, no
  matter which protocol ordered it.

Byzantine behaviours that only exist for EESMR (equivocation, stalling)
are modelled as fail-stop for the baseline protocols, exactly as the seed
experiment runner does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.eval.runner import MEDIA, PROTOCOLS, DeploymentSpec, ProtocolRunner
from repro.testkit import faults
from repro.testkit.invariants import (
    DEFAULT_INVARIANTS,
    Evidence,
    InvariantReport,
    InvariantViolation,
)
from repro.testkit.trace import TraceRecorder

#: Named fault-schedule builders.  Each takes the deployment size ``n`` and
#: returns a schedule (or ``None`` for the honest run).  Leader faults hit
#: node 0 (the view-1 leader under the round-robin schedule); replica
#: faults hit node n-1 (the last node, never an early leader).
FAULT_LIBRARY: Dict[str, Callable[[int], Optional[faults.FaultSchedule]]] = {
    "none": lambda n: None,
    # t=0: with the default zero block interval the EESMR leader proposes the
    # whole workload immediately, so only a start-time crash interrupts it.
    "crash-leader": lambda n: faults.crash_at(0, time=0.0),
    "stall-leader": lambda n: faults.stall_at(0, round_number=4),
    "equivocate-leader": lambda n: faults.equivocate_at(0, round_number=4),
    "silent-relay": lambda n: faults.silent(n - 1),
    "drop-window": lambda n: faults.drop_window(n - 1, start=1.0, end=8.0),
    "partition-heal": lambda n: faults.partition(n - 1, start=2.0, heal=10.0),
}

#: The default fault slice: every protocol supports these (Byzantine leader
#: behaviours degrade to fail-stop for the baselines), giving the canonical
#: 4 protocols × 3 faults × 3 media = 36-cell matrix.
DEFAULT_FAULTS = ("none", "crash-leader", "equivocate-leader")

#: The extended slice adds the remaining library entries for a full sweep.
ALL_FAULTS = tuple(FAULT_LIBRARY)


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the scenario cross-product."""

    protocol: str
    fault: str
    medium: str
    topology: str = "ring-kcast"

    def label(self) -> str:
        return f"{self.protocol}×{self.fault}×{self.medium}×{self.topology}"


@dataclass
class CellOutcome:
    """The evidence and verdicts collected from one cell."""

    cell: ScenarioCell
    spec: DeploymentSpec
    result: object
    evidence: Evidence
    reports: List[InvariantReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def violations(self) -> List[InvariantReport]:
        return [report for report in self.reports if not report.ok]


@dataclass
class MatrixReport:
    """Aggregate verdict over a matrix sweep."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    differential_failures: List[str] = field(default_factory=list)

    @property
    def cells_run(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.differential_failures and all(o.ok for o in self.outcomes)

    def failures(self) -> List[str]:
        out = [
            f"{outcome.cell.label()}: {report.detail}"
            for outcome in self.outcomes
            for report in outcome.violations()
        ]
        out.extend(self.differential_failures)
        return out

    def assert_clean(self) -> None:
        if not self.ok:
            raise InvariantViolation(
                f"{len(self.failures())} scenario-matrix failures:\n  "
                + "\n  ".join(self.failures())
            )


class ScenarioMatrix:
    """Enumerates and runs the scenario cross-product with invariant checks."""

    def __init__(
        self,
        protocols: Sequence[str] = PROTOCOLS,
        fault_names: Sequence[str] = DEFAULT_FAULTS,
        media: Sequence[str] = MEDIA,
        topologies: Sequence[str] = ("ring-kcast",),
        n: int = 5,
        f: int = 1,
        k: int = 2,
        target_height: int = 3,
        seed: int = 29,
        invariants: Optional[Sequence] = None,
        record_events: bool = True,
        max_events: int = 2_000_000,
    ) -> None:
        unknown = [name for name in fault_names if name not in FAULT_LIBRARY]
        if unknown:
            raise ValueError(f"unknown fault schedules {unknown}; known: {sorted(FAULT_LIBRARY)}")
        self.protocols = tuple(protocols)
        self.fault_names = tuple(fault_names)
        self.media = tuple(media)
        self.topologies = tuple(topologies)
        self.n = n
        self.f = f
        self.k = k
        self.target_height = target_height
        self.seed = seed
        self.invariants = tuple(invariants if invariants is not None else DEFAULT_INVARIANTS)
        self.record_events = record_events
        self.max_events = max_events

    # ------------------------------------------------------------ enumeration
    def cells(self) -> List[ScenarioCell]:
        """Every cell of the configured cross-product."""
        return [
            ScenarioCell(protocol, fault, medium, topology)
            for protocol in self.protocols
            for fault in self.fault_names
            for medium in self.media
            for topology in self.topologies
        ]

    def build_spec(self, cell: ScenarioCell) -> DeploymentSpec:
        """The deterministic deployment spec for one cell."""
        return DeploymentSpec(
            protocol=cell.protocol,
            n=self.n,
            f=self.f,
            k=self.k,
            topology=cell.topology,
            medium=cell.medium,
            target_height=self.target_height,
            seed=self.seed,
            fault_schedule=FAULT_LIBRARY[cell.fault](self.n),
        )

    # ---------------------------------------------------------------- running
    def run_cell(self, cell: ScenarioCell) -> CellOutcome:
        """Run one cell and check every invariant against its evidence."""
        spec = self.build_spec(cell)
        runner = ProtocolRunner(
            max_events=self.max_events, recorder=TraceRecorder(self.record_events)
        )
        result = runner.run(spec)
        evidence = Evidence(spec=spec, result=result, trace=result.trace, label=cell.label())
        outcome = CellOutcome(cell=cell, spec=spec, result=result, evidence=evidence)
        outcome.reports = [invariant.run(evidence) for invariant in self.invariants]
        return outcome

    def run(self) -> MatrixReport:
        """Run every cell, then apply the cross-protocol differential checks."""
        report = MatrixReport()
        for cell in self.cells():
            report.outcomes.append(self.run_cell(cell))
        report.differential_failures = self._differential_check(report.outcomes)
        return report

    # ----------------------------------------------------------- differential
    def _differential_check(self, outcomes: List[CellOutcome]) -> List[str]:
        """Same workload ⇒ same committed command sequence across protocols.

        Applied to fault-free groups: protocols recover from faults along
        different paths (dropping different in-flight blocks), but with no
        adversary every protocol must linearise the identical workload into
        the identical log.
        """
        failures: List[str] = []
        groups: Dict[Tuple[str, str, str], List[CellOutcome]] = {}
        for outcome in outcomes:
            if outcome.cell.fault != "none":
                continue
            key = (outcome.cell.fault, outcome.cell.medium, outcome.cell.topology)
            groups.setdefault(key, []).append(outcome)
        for key, group in sorted(groups.items()):
            reference: Optional[Tuple[CellOutcome, List[str]]] = None
            for outcome in group:
                correct = outcome.evidence.correct_nodes
                if not correct:
                    continue
                sequence = outcome.evidence.trace.committed_commands[correct[0]]
                if reference is None:
                    reference = (outcome, sequence)
                    continue
                ref_outcome, ref_sequence = reference
                if sequence != ref_sequence:
                    failures.append(
                        f"differential: {outcome.cell.label()} committed {sequence} "
                        f"but {ref_outcome.cell.label()} committed {ref_sequence}"
                    )
        return failures


def run_default_matrix(**overrides) -> MatrixReport:
    """Run the canonical 36-cell matrix (4 protocols × 3 faults × 3 media)."""
    return ScenarioMatrix(**overrides).run()


def run_full_matrix(**overrides) -> MatrixReport:
    """Run the extended sweep over every fault schedule in the library."""
    overrides.setdefault("fault_names", ALL_FAULTS)
    return ScenarioMatrix(**overrides).run()
