"""The scenario matrix: protocols × fault schedules × media × topologies.

The paper's evaluation rests on three adversarial scenarios and four
protocols, spot-checked by hand.  :class:`ScenarioMatrix` systematises
that: it enumerates the cross-product of

* protocol ∈ {eesmr, sync-hotstuff, optsync, trusted-baseline},
* fault schedule ∈ :data:`FAULT_LIBRARY` (honest, single faults, and
  composed f>1 schedules such as ``crash-leader+silent-relay`` or
  ``rolling-partitions``),
* medium ∈ {ble, wifi, 4g-lte},
* topology ∈ {ring-kcast, fully-connected, star, random-kcast, ...},

runs every *feasible* cell deterministically through the standard
experiment runner with a :class:`~repro.testkit.trace.TraceRecorder`,
checks the full invariant battery
(:data:`~repro.testkit.invariants.DEFAULT_INVARIANTS`) on every cell,
and adds two differential checks:

* within a cell, all correct replicas committed prefix-compatible command
  sequences (part of the agreement invariant);
* across protocols in the *same* fault-free (medium, topology) group, the
  committed command sequence is identical — same workload, same log, no
  matter which protocol ordered it.

Byzantine behaviours that only exist for EESMR (equivocation, stalling)
are modelled as fail-stop for the baseline protocols, exactly as the seed
experiment runner does.

Infeasible cells are *skipped with a reason*, not run and spuriously
failed: a (topology, fault) pair is feasible only if the correct nodes
stay strongly connected with every concurrently relay-impaired node set
removed (the per-schedule instantiation of Lemma A.5's ``f < k`` bound
for the ring) and the Byzantine count fits the protocol's ``2f < n``
assumption.  Skips are recorded on the :class:`MatrixReport`.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.eval.runner import MEDIA, PROTOCOLS, DeploymentSpec, ProtocolRunner
from repro.net.impairment import ImpairmentSpec
from repro.session.metrics import MetricsObserver
from repro.testkit import faults
from repro.workload import OpenLoopPoisson, WorkloadEngine
from repro.testkit.invariants import (
    DEFAULT_INVARIANTS,
    Evidence,
    InvariantReport,
    InvariantViolation,
)
from repro.testkit.trace import TraceRecorder

#: Named fault-schedule builders.  Each takes the deployment size ``n`` and
#: returns a schedule (or ``None`` for the honest run).  Leader faults hit
#: node 0 (the view-1 leader under the round-robin schedule); replica
#: faults hit node n-1 (the last node, never an early leader).
FAULT_LIBRARY: Dict[str, Callable[[int], Optional[faults.FaultSchedule]]] = {
    "none": lambda n: None,
    # t=0: with the default zero block interval the EESMR leader proposes the
    # whole workload immediately, so only a start-time crash interrupts it.
    "crash-leader": lambda n: faults.crash_at(0, time=0.0),
    "stall-leader": lambda n: faults.stall_at(0, round_number=4),
    "equivocate-leader": lambda n: faults.equivocate_at(0, round_number=4),
    "silent-relay": lambda n: faults.silent(n - 1),
    "drop-window": lambda n: faults.drop_window(n - 1, start=1.0, end=8.0),
    "partition-heal": lambda n: faults.partition(n - 1, start=2.0, heal=10.0),
    # A full power cycle with state intact: the node reboots passively (no
    # protocol timers re-armed) and relies on catch-up state transfer for
    # whatever it missed while dark.
    "crash-recover": lambda n: faults.crash_recover(n - 1, start=1.0, heal=6.0),
    # ---- composed f>1 schedules -------------------------------------------
    # The crashed leader and the silent relay sit at 0 and n-2: non-adjacent
    # on the ring, so a k=2 ring survives both (two *adjacent* non-relaying
    # nodes would violate Lemma A.5's connectivity requirement).
    "crash-leader+silent-relay": lambda n: faults.crash_at(0, time=0.0).add(
        faults.SilentFrom(n - 2)
    ),
    # Adjacent crashes at 0 and n-1: deliberately infeasible on the k=2
    # ring (skipped with a Lemma A.5 reason) but fine on denser topologies.
    "two-crashes": lambda n: faults.crash_at(0, time=0.0).add(
        faults.CrashAt(n - 1, time=3.0)
    ),
    # A Byzantine leader equivocating *while* a correct node stops relaying:
    # recovery (blame, view change) must run through the degraded window.
    "equivocate+drop-window": lambda n: faults.equivocate_at(0, round_number=4).add(
        faults.RelayDropWindow(n - 2, 1.0, 8.0)
    ),
    # Three disjoint partition windows sweeping across the last three nodes;
    # at most one node is cut off at any instant.
    "rolling-partitions": lambda n: faults.FaultSchedule(
        (
            faults.PartitionWindow(n - 1, 1.0, 4.0),
            faults.PartitionWindow(n - 2, 4.5, 7.5),
            faults.PartitionWindow(n - 3, 8.0, 11.0),
        )
    ),
    # Two *overlapping* partition windows on the same node: the node must
    # stay cut off until the later window heals (the refcounted-isolation
    # regression).
    "overlapping-partitions": lambda n: faults.partition(n - 1, start=1.0, heal=6.0).add(
        faults.PartitionWindow(n - 1, 3.0, 9.0)
    ),
    # Two interleaved relay-drop windows on the same node: relaying must
    # resume only when the second window closes (the shared relay-denial
    # regression), and the node is still held to full liveness.
    "stacked-drop-windows": lambda n: faults.drop_window(n - 1, start=1.0, end=5.0).add(
        faults.RelayDropWindow(n - 1, 2.0, 9.0)
    ),
    # ---- wire impairment windows -------------------------------------------
    # Environmental, not Byzantine: the node's incoming hops degrade for a
    # window while the reliable sublayer retries.  Loss at 0.5 leaves honest
    # retry chains (default budget 3) straddling the window comfortably;
    # duplicate/jitter windows never excuse liveness at all.
    "loss-window": lambda n: faults.loss_window(n - 1, start=1.0, end=6.0, loss=0.5),
    "duplicate-window": lambda n: faults.duplicate_window(n - 1, start=1.0, end=6.0),
    "jitter-window": lambda n: faults.jitter_window(n - 1, start=1.0, end=6.0, jitter=0.5),
    # ---- adaptive (mobile) adversaries ------------------------------------
    # A leader-following crash adversary: executed mid-run over the
    # session's steppable control, it fail-stops whichever node the
    # rotation currently makes leader, waits for the view change, and
    # strikes the successor — the victim set is a function of the run.
    "adaptive-leader-crash": lambda n: faults.leader_following_crash(
        budget=1, start=0.0, interval=1.0
    ),
    # Budget-2 variant: needs a topology that survives two adversarially
    # placed silent relays (skipped on the k=2 ring by Lemma A.5).
    "adaptive-leader-crash-f2": lambda n: faults.leader_following_crash(
        budget=2, start=0.0, interval=1.0
    ),
    # ---- differential (protocol-splitting) schedules -----------------------
    # Promoted from the fuzz corpus (corpus/schedules/shs-partition-fork-*):
    # a short leader partition right as the view-1 leader proposes.  Sync
    # HotStuff forks — the isolated leader's chain conflicts with the view
    # change the others ran — while EESMR's relay-everything dissemination
    # absorbs the window cleanly.  The outcome is *expected to differ by
    # protocol*, so the entry is excluded from ALL_FAULTS (an all-protocol
    # sweep would spuriously fail) and exercised by a dedicated
    # differential test instead.
    "leader-partition-fork": lambda n: faults.partition(0, start=7.0, heal=7.25),
}

#: The default fault slice: every protocol supports these (Byzantine leader
#: behaviours degrade to fail-stop for the baselines), giving the canonical
#: 4 protocols × 3 faults × 3 media = 36-cell matrix.
DEFAULT_FAULTS = ("none", "crash-leader", "equivocate-leader")

#: The composed f>1 slice: multiple simultaneous faults per schedule.
COMPOSED_FAULTS = (
    "crash-leader+silent-relay",
    "two-crashes",
    "equivocate+drop-window",
    "rolling-partitions",
    "overlapping-partitions",
    "stacked-drop-windows",
)

#: The adaptive slice: mobile adversaries whose victims are chosen mid-run.
ADAPTIVE_FAULTS = ("adaptive-leader-crash", "adaptive-leader-crash-f2")

#: Schedules whose *expected outcome differs by protocol* (corpus
#: promotions): they live in the library for reuse by name, but an
#: all-protocol invariant sweep over them would spuriously fail, so the
#: full sweep excludes them and dedicated differential tests assert the
#: per-protocol expectations instead.
DIFFERENTIAL_FAULTS = ("leader-partition-fork",)

#: The extended slice adds the remaining library entries for a full sweep.
ALL_FAULTS = tuple(name for name in FAULT_LIBRARY if name not in DIFFERENTIAL_FAULTS)

#: Topology names usable as matrix axes (all thread through
#: :class:`~repro.eval.runner.DeploymentSpec.topology`).
MATRIX_TOPOLOGIES = ("ring-kcast", "fully-connected", "star", "random-kcast")

#: Named workload builders for the matrix's workload axis.  ``"preload"``
#: (``None``: the default closed-loop engine) is the seed behaviour; the
#: open-loop entry is a moderate Poisson stream multiplexing three
#: simulated clients.  Rate-parameterised names (``open-loop:<rate>`` /
#: ``trace:<file>``) resolve through :func:`resolve_workload`.
WORKLOAD_LIBRARY: Dict[str, Callable[[], Optional[WorkloadEngine]]] = {
    "preload": lambda: None,
    "open-loop": lambda: OpenLoopPoisson(rate=2.0, clients=3),
}

#: The default workload slice: the seed behaviour only.
DEFAULT_WORKLOADS = ("preload",)


#: Named wire-impairment builders for the matrix's impairment axis.
#: ``"none"`` (no impairment model at all) is the seed behaviour and keeps
#: pre-axis traces byte-identical.  ``"ble-calibrated"`` drops each hop with
#: the advertisement-loss residual the medium's redundancy leaves
#: (``p_loss**r`` — the paper's BLE operating point); ``"lossy"`` is a flat
#: moderate loss the reliable sublayer must absorb.
IMPAIRMENT_LIBRARY: Dict[str, Callable[[], Optional[ImpairmentSpec]]] = {
    "none": lambda: None,
    "ble-calibrated": lambda: ImpairmentSpec(ble_calibrated=True),
    "lossy": lambda: ImpairmentSpec(loss=0.2),
}

#: The default impairment slice: the seed behaviour only.
DEFAULT_IMPAIRMENTS = ("none",)


def resolve_impairment(name: str) -> Optional[ImpairmentSpec]:
    """Resolve an impairment-axis name to a spec (``None`` = pristine wire).

    Accepts :data:`IMPAIRMENT_LIBRARY` names plus the parameterised CLI
    clause forms ``loss:<p>[:<start>:<end>]``, ``duplicate:<p>``,
    ``jitter:<s>``, ``reorder:<p>``, ``ble`` and ``retries:<n>``
    (see :func:`repro.net.impairment.parse_impairment`).
    """
    if name in IMPAIRMENT_LIBRARY:
        return IMPAIRMENT_LIBRARY[name]()
    if ":" in name or name == "ble":
        from repro.net.impairment import parse_impairment

        return parse_impairment([name])
    raise ValueError(
        f"unknown impairment {name!r}; known: {sorted(IMPAIRMENT_LIBRARY)} "
        f"plus loss:<p> / duplicate:<p> / jitter:<s> / reorder:<p> / ble"
    )


def resolve_workload(name: str) -> Optional[WorkloadEngine]:
    """Resolve a workload-axis name to an engine (``None`` = preload).

    Accepts :data:`WORKLOAD_LIBRARY` names plus the parameterised CLI
    forms ``open-loop:<rate>[:<clients>[:<duration>]]`` and
    ``trace:<file>``.
    """
    if name in WORKLOAD_LIBRARY:
        return WORKLOAD_LIBRARY[name]()
    if name.startswith("open-loop:") or name.startswith("trace:"):
        from repro.workload import parse_workload

        return parse_workload(name)
    raise ValueError(
        f"unknown workload {name!r}; known: {sorted(WORKLOAD_LIBRARY)} "
        f"plus open-loop:<rate> / trace:<file>"
    )


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the scenario cross-product."""

    protocol: str
    fault: str
    medium: str
    topology: str = "ring-kcast"
    #: Workload-axis name (see :data:`WORKLOAD_LIBRARY`); ``"preload"`` is
    #: the seed behaviour and keeps pre-axis labels unchanged.
    workload: str = "preload"
    #: Impairment-axis name (see :data:`IMPAIRMENT_LIBRARY`); ``"none"`` is
    #: the seed behaviour and keeps pre-axis labels unchanged.
    impairment: str = "none"

    def label(self) -> str:
        base = f"{self.protocol}×{self.fault}×{self.medium}×{self.topology}"
        if self.workload != "preload":
            base += f"×{self.workload}"
        if self.impairment != "none":
            base += f"×{self.impairment}"
        return base


@dataclass
class CellOutcome:
    """The evidence and verdicts collected from one cell."""

    cell: ScenarioCell
    spec: DeploymentSpec
    result: object
    evidence: Evidence
    reports: List[InvariantReport] = field(default_factory=list)
    #: SLO metrics summary (collected for non-preload workload cells).
    metrics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    def violations(self) -> List[InvariantReport]:
        return [report for report in self.reports if not report.ok]


@dataclass(frozen=True)
class SkippedCell:
    """A cell the matrix declined to run, with the reason why."""

    cell: ScenarioCell
    reason: str

    def label(self) -> str:
        return f"{self.cell.label()} [skipped: {self.reason}]"


@dataclass
class MatrixReport:
    """Aggregate verdict over a matrix sweep."""

    outcomes: List[CellOutcome] = field(default_factory=list)
    differential_failures: List[str] = field(default_factory=list)
    #: Infeasible cells, each with an explanatory reason (not failures).
    skipped: List[SkippedCell] = field(default_factory=list)

    @property
    def cells_run(self) -> int:
        return len(self.outcomes)

    @property
    def cells_skipped(self) -> int:
        return len(self.skipped)

    @property
    def ok(self) -> bool:
        return not self.differential_failures and all(o.ok for o in self.outcomes)

    def failures(self) -> List[str]:
        out = [
            f"{outcome.cell.label()}: {report.detail}"
            for outcome in self.outcomes
            for report in outcome.violations()
        ]
        out.extend(self.differential_failures)
        return out

    def skip_reasons(self) -> List[str]:
        return [skip.label() for skip in self.skipped]

    def assert_clean(self) -> None:
        if not self.ok:
            raise InvariantViolation(
                f"{len(self.failures())} scenario-matrix failures:\n  "
                + "\n  ".join(self.failures())
            )


def schedule_feasibility(spec: DeploymentSpec) -> Optional[str]:
    """Why this deployment spec cannot be run meaningfully, or ``None``.

    The one feasibility gate shared by the scenario matrix (skip-with-reason
    cells) and the fuzzer's generator/detector (reject infeasible random
    schedules before they are ever run).  Three families of reasons:

    * **quorum bound** — the schedule's Byzantine count must satisfy the
      protocols' honest-majority assumption ``2f < n`` (the trusted
      baseline only needs one correct node: its control node orders rounds
      on a timer and never waits on faulty leaves);
    * **topology fault bound** — the correct nodes must remain strongly
      connected with every concurrently relay-impaired node set removed.
      This is the per-schedule instantiation of the Lemma A.5 necessary
      condition (``f < k`` on the ring k-cast); adaptive budgets are
      charged against the worst *adversarial* placement;
    * **unconstructible topology** — the spec's topology parameters cannot
      produce a graph at all (an unsatisfiable ``random-kcast`` request,
      or bounded connectivity resampling exhausted);
    * **uncoverable loss** — an *unbounded* wire impairment whose loss rate
      exceeds what the reliable sublayer's retry budget can cover: a hop
      fails outright with probability ``loss**(retries+1)``, and past a
      residual of 0.25 no redundancy argument makes liveness expectable.
      Windowed impairments are never gated — the loss-budget invariant's
      bounded allowance absorbs them.
    """
    n = spec.n
    impairment = getattr(spec, "impairment", None)
    if impairment is not None and impairment.loss > 0 and math.isinf(impairment.end):
        retries = impairment.max_retries
        residual = impairment.loss ** (retries + 1)
        if residual > 0.25:
            return (
                f"unbounded loss {impairment.loss} with {retries} retries leaves "
                f"residual per-hop failure probability {residual:.3f} > 0.25; "
                f"the retry budget cannot cover it"
            )
    schedule = spec.fault_schedule
    if schedule is not None:
        outside = [p for p in schedule.perturbed_nodes() if not 0 <= p < n]
        if outside:
            return f"fault targets nodes {outside} outside the deployment (n={n})"
    byzantine = schedule.byzantine_nodes() if schedule is not None else ()
    if spec.protocol == "trusted-baseline":
        # Leaves only talk to the trusted control node over the control
        # star (spec.topology is never built); feasibility just needs a
        # correct node left to serve — but the deployment still shares the
        # synchronous ProtocolConfig, whose f < n/2 bound gates the build.
        if len(byzantine) >= n:
            return f"all {n} nodes Byzantine; nothing left to check"
        if 2 * spec.f >= n:
            return (
                f"f={spec.f} faulty leaves cannot be provisioned under the "
                f"shared synchronous config bound f < n/2 (n={n})"
            )
        return None
    if 2 * spec.f >= n:
        worst = schedule.max_byzantine() if schedule is not None else len(byzantine)
        return (
            f"{worst} Byzantine nodes break the honest-majority "
            f"bound 2f < n (f={spec.f}, n={n})"
        )
    try:
        topology = ProtocolRunner().build_topology(spec)
    except (ValueError, RuntimeError) as error:
        return f"topology {spec.topology} cannot be built: {error}"
    if schedule is None:
        return None
    dynamic = schedule.dynamic_budget()
    if dynamic:
        # Adaptive victims are adversarially placed, so the topology
        # must survive *any* budget-sized subset going silent (plus
        # whatever the static atoms impair) — Lemma A.5 quantified
        # over all placements instead of the concrete schedule.
        static_worst = max(
            (len(s) for s in schedule.concurrent_impairment_sets()), default=0
        )
        bound = topology.max_faults_necessary_condition()
        if dynamic + static_worst > bound:
            return (
                f"adaptive budget {dynamic} (+{static_worst} static) exceeds "
                f"the Lemma A.5 bound f <= {bound} on {spec.topology} for "
                f"adversarially placed victims"
            )
    for impaired in schedule.concurrent_impairment_sets():
        if not topology.is_strongly_connected(exclude=impaired):
            bound = topology.max_faults_necessary_condition()
            return (
                f"impaired set {sorted(impaired)} disconnects the correct "
                f"nodes on {spec.topology} (Lemma A.5 necessary condition: "
                f"f <= {bound}, schedule impairs {len(impaired)} at once)"
            )
    return None


class ScenarioMatrix:
    """Enumerates and runs the scenario cross-product with invariant checks."""

    def __init__(
        self,
        protocols: Sequence[str] = PROTOCOLS,
        fault_names: Sequence[str] = DEFAULT_FAULTS,
        media: Sequence[str] = MEDIA,
        topologies: Sequence[str] = ("ring-kcast",),
        workloads: Sequence[str] = DEFAULT_WORKLOADS,
        impairments: Sequence[str] = DEFAULT_IMPAIRMENTS,
        n: int = 5,
        f: int = 1,
        k: int = 2,
        edges_per_node: int = 1,
        topology_seed: Optional[int] = None,
        target_height: int = 3,
        block_interval: float = 0.0,
        seed: int = 29,
        invariants: Optional[Sequence] = None,
        record_events: bool = True,
        max_events: int = 2_000_000,
    ) -> None:
        unknown = [name for name in fault_names if name not in FAULT_LIBRARY]
        if unknown:
            raise ValueError(f"unknown fault schedules {unknown}; known: {sorted(FAULT_LIBRARY)}")
        for name in workloads:
            resolve_workload(name)  # raises ValueError on unknown names
        for name in impairments:
            resolve_impairment(name)  # raises ValueError on unknown names
        self.protocols = tuple(protocols)
        self.fault_names = tuple(fault_names)
        self.media = tuple(media)
        self.topologies = tuple(topologies)
        self.workloads = tuple(workloads)
        self.impairments = tuple(impairments)
        self.n = n
        self.f = f
        self.k = k
        self.edges_per_node = edges_per_node
        self.topology_seed = topology_seed
        self.target_height = target_height
        #: Virtual time between successive proposals.  0 (the default)
        #: matches the paper's EESMR operating point; adaptive-adversary
        #: cells use a positive interval so the leader's workload spans
        #: virtual time and a mid-run strike actually interrupts it.
        self.block_interval = block_interval
        self.seed = seed
        self.invariants = tuple(invariants if invariants is not None else DEFAULT_INVARIANTS)
        self.record_events = record_events
        self.max_events = max_events

    # ------------------------------------------------------------ enumeration
    def cells(self) -> List[ScenarioCell]:
        """Every cell of the configured cross-product."""
        return [
            ScenarioCell(protocol, fault, medium, topology, workload, impairment)
            for protocol in self.protocols
            for fault in self.fault_names
            for medium in self.media
            for topology in self.topologies
            for workload in self.workloads
            for impairment in self.impairments
        ]

    def build_spec(self, cell: ScenarioCell) -> DeploymentSpec:
        """The deterministic deployment spec for one cell.

        Composed schedules may control more nodes than the matrix-wide
        ``f``; the cell's ``f`` is raised to the schedule's Byzantine count
        so quorum sizes match the adversary actually deployed.
        """
        schedule = FAULT_LIBRARY[cell.fault](self.n)
        f_cell = self.f
        if schedule is not None:
            # max_byzantine counts static targets plus adaptive budgets, so
            # quorum sizes match the worst adversary the schedule may field.
            f_cell = max(f_cell, schedule.max_byzantine())
        return DeploymentSpec(
            protocol=cell.protocol,
            n=self.n,
            f=f_cell,
            k=self.k,
            topology=cell.topology,
            edges_per_node=self.edges_per_node,
            topology_seed=self.topology_seed,
            medium=cell.medium,
            target_height=self.target_height,
            block_interval=self.block_interval,
            seed=self.seed,
            fault_schedule=schedule,
            workload=resolve_workload(cell.workload),
            impairment=resolve_impairment(cell.impairment),
        )

    # ------------------------------------------------------------ feasibility
    def cell_feasibility(
        self, cell: ScenarioCell, spec: Optional[DeploymentSpec] = None
    ) -> Optional[str]:
        """Why this cell cannot be run meaningfully, or ``None`` if it can.

        Delegates to :func:`schedule_feasibility` (the module-level check
        shared with ``repro.fuzz``); see there for the reason families.

        ``spec`` may be passed to reuse an already-built deployment spec
        (``run`` does, so each cell builds its schedule exactly once).
        """
        if spec is None:
            spec = self.build_spec(cell)
        return schedule_feasibility(spec)

    # ---------------------------------------------------------------- running
    def run_cell(
        self, cell: ScenarioCell, spec: Optional[DeploymentSpec] = None
    ) -> CellOutcome:
        """Run one cell and check every invariant against its evidence."""
        if spec is None:
            spec = self.build_spec(cell)
        runner = ProtocolRunner(
            max_events=self.max_events, recorder=TraceRecorder(self.record_events)
        )
        # Non-preload cells carry SLO metrics; preload cells stay exactly
        # the seed pipeline (no extra observer, no perturbed traces).
        metrics = MetricsObserver() if cell.workload != "preload" else None
        observers = (metrics,) if metrics is not None else ()
        result = runner.session(spec, observers=observers).run_to_quiescence().finish()
        evidence = Evidence(spec=spec, result=result, trace=result.trace, label=cell.label())
        outcome = CellOutcome(cell=cell, spec=spec, result=result, evidence=evidence)
        if metrics is not None:
            outcome.metrics = metrics.summary()
        outcome.reports = [invariant.run(evidence) for invariant in self.invariants]
        return outcome

    def run(self, parallel: Optional[int] = None) -> MatrixReport:
        """Run every feasible cell, then apply the differential checks.

        Infeasible (topology, fault) cells — including cells whose
        topology cannot be constructed at all — are recorded on
        ``report.skipped`` with an explanatory reason instead of being run
        and spuriously failed.

        Args:
            parallel: Number of worker processes.  ``None`` reads the
                ``REPRO_MATRIX_PARALLEL`` environment variable (defaulting
                to 1); values <= 1 run serially in-process.  Cells are
                independent seeded runs, so sharding them over a
                ``ProcessPoolExecutor`` cannot change any cell's result:
                every worker rebuilds its cell's spec deterministically,
                and results are merged in the fixed enumeration order
                (sorted label order within the report accessors), making a
                parallel report identical to a serial one cell for cell.
                The differential cross-cell checks run in the parent on
                the merged outcomes, unchanged.
        """
        if parallel is None:
            parallel = int(os.environ.get("REPRO_MATRIX_PARALLEL", "1") or "1")
        report = MatrixReport()
        runnable: List[Tuple[ScenarioCell, DeploymentSpec]] = []
        for cell in self.cells():
            spec = self.build_spec(cell)
            reason = self.cell_feasibility(cell, spec=spec)
            if reason is not None:
                report.skipped.append(SkippedCell(cell, reason))
                continue
            runnable.append((cell, spec))
        if parallel <= 1 or len(runnable) <= 1:
            for cell, spec in runnable:
                report.outcomes.append(self.run_cell(cell, spec=spec))
        else:
            with ProcessPoolExecutor(max_workers=min(parallel, len(runnable))) as pool:
                futures = [
                    pool.submit(_run_cell_in_worker, self, cell, spec)
                    for cell, spec in runnable
                ]
                # Collect in submission order — deterministic regardless of
                # which worker finishes first.
                report.outcomes.extend(future.result() for future in futures)
        report.differential_failures = self._differential_check(report.outcomes)
        return report

    # ----------------------------------------------------------- differential
    def _differential_check(self, outcomes: List[CellOutcome]) -> List[str]:
        """Same workload ⇒ same committed command sequence across protocols.

        Applied to fault-free groups: protocols recover from faults along
        different paths (dropping different in-flight blocks), but with no
        adversary every protocol must linearise the identical workload into
        the identical log.
        """
        failures: List[str] = []
        groups: Dict[Tuple[str, str, str, str, str], List[CellOutcome]] = {}
        for outcome in outcomes:
            if outcome.cell.fault != "none":
                continue
            key = (
                outcome.cell.fault,
                outcome.cell.medium,
                outcome.cell.topology,
                outcome.cell.workload,
                outcome.cell.impairment,
            )
            groups.setdefault(key, []).append(outcome)
        for key, group in sorted(groups.items()):
            reference: Optional[Tuple[CellOutcome, List[str]]] = None
            for outcome in group:
                correct = outcome.evidence.correct_nodes
                if not correct:
                    continue
                sequence = outcome.evidence.trace.committed_commands[correct[0]]
                if reference is None:
                    reference = (outcome, sequence)
                    continue
                ref_outcome, ref_sequence = reference
                if sequence != ref_sequence:
                    failures.append(
                        f"differential: {outcome.cell.label()} committed {sequence} "
                        f"but {ref_outcome.cell.label()} committed {ref_sequence}"
                    )
        return failures


def _run_cell_in_worker(
    matrix: ScenarioMatrix, cell: ScenarioCell, spec: DeploymentSpec
) -> CellOutcome:
    """Run one cell inside a ``ProcessPoolExecutor`` worker.

    Module-level (picklable by reference) on purpose.  The matrix, cell
    and pre-built spec travel to the worker by pickle; the returned
    :class:`CellOutcome` — evidence, trace, invariant reports — travels
    back the same way, so everything it holds must stay picklable (pinned
    by the parallel-matrix tests).
    """
    return matrix.run_cell(cell, spec=spec)


def run_default_matrix(**overrides) -> MatrixReport:
    """Run the canonical 36-cell matrix (4 protocols × 3 faults × 3 media)."""
    return ScenarioMatrix(**overrides).run()


def run_full_matrix(**overrides) -> MatrixReport:
    """Run the extended sweep over every fault schedule in the library."""
    overrides.setdefault("fault_names", ALL_FAULTS)
    return ScenarioMatrix(**overrides).run()
