"""Composable cross-protocol invariants checked against run evidence.

Every scenario cell — a (protocol, fault schedule, medium, topology)
combination — must satisfy the same five invariants, regardless of which
protocol produced the run:

* **agreement** — no fork: any two correct nodes that committed a block at
  the same height committed the same block, and the committed command
  sequences of correct nodes are prefix-compatible;
* **liveness** — under synchrony every correct, unperturbed node reaches
  the workload's target height, and everything committed came from the
  workload;
* **quorum certificates** — every certificate any node holds carries at
  least f+1 distinct valid signatures;
* **monotone virtual time** — the simulator's event trace never goes
  backwards and ends at the reported quiescence time;
* **energy conservation** — per-node meter totals sum to the cluster
  ledger totals, category breakdowns are complete, and no meter is
  negative.

Invariants consume :class:`Evidence` — a bundle of the deployment spec,
the collected :class:`~repro.eval.runner.RunResult` and the structured
:class:`~repro.testkit.trace.RunTrace` — and raise
:class:`InvariantViolation` with a cell-identifying message on failure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


class InvariantViolation(AssertionError):
    """An invariant did not hold for a run."""


@dataclass
class Evidence:
    """Everything an invariant may inspect about one run."""

    spec: object
    result: object
    trace: object
    #: Human-readable cell label used in violation messages.
    label: str = ""

    @property
    def byzantine(self) -> set:
        return set(self.spec.byzantine_nodes)

    @property
    def perturbed(self) -> set:
        """Nodes excluded from liveness expectations (Byzantine + degraded).

        Degraded-window aware *and window-scoped*: the schedule
        distinguishes exempting faults (Byzantine behaviours — the node
        may never catch up) from non-exempting ones (relay-drop windows —
        the node still receives and commits), and for recovering faults
        (partitions, crash-recover windows) the exemption *expires* at
        ``heal + CATCH_UP_GRACE``.  A run that outlived the grace window
        holds the healed node to the full target height — catch-up is a
        checked obligation, not a permanent pardon.  See
        :meth:`~repro.testkit.faults.FaultSchedule.liveness_exempt_nodes`.
        """
        nodes = set(self.byzantine)
        schedule = self.spec.fault_schedule
        if schedule is not None:
            nodes |= set(schedule.liveness_exempt_nodes(end_time=self.trace.sim_time))
        return nodes

    @property
    def correct_nodes(self) -> List[int]:
        return [pid for pid in sorted(self.trace.committed_heights) if pid not in self.byzantine]

    @property
    def live_nodes(self) -> List[int]:
        perturbed = self.perturbed
        return [pid for pid in sorted(self.trace.committed_heights) if pid not in perturbed]

    def where(self) -> str:
        return self.label or f"{self.spec.protocol}/{self.spec.medium}/{self.spec.topology}"


@dataclass
class InvariantReport:
    """Outcome of checking one invariant against one run."""

    name: str
    ok: bool
    detail: str = ""


class Invariant:
    """Base class: subclasses implement :meth:`check`."""

    name = "invariant"

    def check(self, evidence: Evidence) -> None:
        raise NotImplementedError

    def run(self, evidence: Evidence) -> InvariantReport:
        """Check and fold the outcome into a report instead of raising."""
        try:
            self.check(evidence)
        except InvariantViolation as violation:
            return InvariantReport(self.name, False, str(violation))
        return InvariantReport(self.name, True)

    def fail(self, evidence: Evidence, message: str) -> None:
        raise InvariantViolation(f"[{self.name} @ {evidence.where()}] {message}")


class AgreementInvariant(Invariant):
    """No-fork safety (Definition 2.1) recomputed from the trace."""

    name = "agreement"

    def check(self, evidence: Evidence) -> None:
        if not evidence.trace.safety.get("consistent", False):
            details = "; ".join(evidence.trace.safety.get("details", ()))
            self.fail(evidence, f"safety checker reported a fork: {details}")
        # Independent recomputation from the committed chains in the trace.
        chains = {
            pid: dict(map(tuple, evidence.trace.committed_chain[pid]))
            for pid in evidence.correct_nodes
        }
        heights = sorted({h for chain in chains.values() for h in chain})
        for height in heights:
            blocks = {
                pid: chain[height] for pid, chain in chains.items() if height in chain
            }
            if len(set(blocks.values())) > 1:
                self.fail(
                    evidence,
                    f"conflicting commits at height {height}: "
                    + ", ".join(f"{pid}:{h[:8]}" for pid, h in sorted(blocks.items())),
                )
        # The linearizable logs must be prefix-compatible across correct nodes.
        sequences = [
            evidence.trace.committed_commands[pid] for pid in evidence.correct_nodes
        ]
        for i, a in enumerate(sequences):
            for b in sequences[i + 1 :]:
                shared = min(len(a), len(b))
                if a[:shared] != b[:shared]:
                    self.fail(
                        evidence,
                        f"committed command logs diverge within the first {shared} entries",
                    )


class LivenessInvariant(Invariant):
    """Every correct, unperturbed node reaches the target height.

    Degraded windows are understood per fault class: a node whose only
    perturbation is a relay-drop window keeps receiving floods and voting,
    so it is still held to the full target height (even when the window
    overlaps a Byzantine fault elsewhere and recovery runs through it); a
    partitioned node may miss blocks it cannot recover, so it is exempt
    from the height expectation — but it remains *correct*: everything it
    committed must come from the workload, and agreement still binds it.
    """

    name = "liveness"

    def __init__(self, min_height: Optional[int] = None) -> None:
        self.min_height = min_height

    def check(self, evidence: Evidence) -> None:
        expected = (
            self.min_height if self.min_height is not None else evidence.spec.target_height
        )
        for pid in evidence.live_nodes:
            height = evidence.trace.committed_heights[pid]
            if height < expected:
                self.fail(
                    evidence,
                    f"node {pid} stalled at height {height} < target {expected}",
                )
        workload = _workload_command_ids(evidence.spec)
        for pid in evidence.correct_nodes:
            unknown = [
                cid for cid in evidence.trace.committed_commands[pid] if cid not in workload
            ]
            if unknown:
                self.fail(
                    evidence,
                    f"node {pid} committed commands outside the workload: {unknown[:3]}",
                )


class QuorumCertificateInvariant(Invariant):
    """Every harvested certificate is valid and meets the f+1 quorum."""

    name = "quorum-certificates"

    def check(self, evidence: Evidence) -> None:
        quorum = evidence.spec.f + 1
        for qc in evidence.trace.qcs:
            if len(set(qc.signers)) < quorum:
                self.fail(
                    evidence,
                    f"node {qc.holder} holds a {qc.cert_type} QC with only "
                    f"{len(set(qc.signers))} distinct signers (quorum {quorum})",
                )
            if not qc.valid:
                self.fail(
                    evidence,
                    f"node {qc.holder} holds an invalid {qc.cert_type} QC "
                    f"for view {qc.view}",
                )


class MonotoneVirtualTimeInvariant(Invariant):
    """The discrete-event trace is causally ordered.

    Full evidence needs ``TraceRecorder(record_events=True)`` (the
    default).  With event recording off the trace has no event log to
    audit, so this invariant only checks the quiescence time — the
    property itself is still enforced at runtime, because the scheduler
    raises :class:`~repro.sim.scheduler.SimulationError` the moment an
    event would execute in the past.
    """

    name = "monotone-time"

    def check(self, evidence: Evidence) -> None:
        previous = 0.0
        for time, label in evidence.trace.events:
            if time < previous:
                self.fail(
                    evidence,
                    f"event {label!r} at t={time} after t={previous} (time went backwards)",
                )
            previous = time
        if evidence.trace.sim_time + 1e-12 < previous:
            self.fail(
                evidence,
                f"quiescence time {evidence.trace.sim_time} precedes the last "
                f"event at {previous}",
            )


class EnergyConservationInvariant(Invariant):
    """Meter totals, ledger totals and report aggregates agree."""

    name = "energy-conservation"

    def check(self, evidence: Evidence) -> None:
        per_node = evidence.trace.energy_per_node_j
        for pid, joules in per_node.items():
            if joules < 0:
                self.fail(evidence, f"node {pid} has a negative meter: {joules} J")
        total = sum(per_node.values())
        if not math.isclose(total, evidence.trace.energy_total_j, rel_tol=1e-9, abs_tol=1e-12):
            self.fail(
                evidence,
                f"per-node meters sum to {total} J but the cluster ledger "
                f"reports {evidence.trace.energy_total_j} J",
            )
        breakdown_total = sum(evidence.trace.energy_breakdown_j.values())
        if not math.isclose(breakdown_total, total, rel_tol=1e-9, abs_tol=1e-12):
            self.fail(
                evidence,
                f"category breakdown sums to {breakdown_total} J, meters to {total} J",
            )
        report = evidence.result.energy
        if not math.isclose(
            sum(report.per_node_joules.values()), report.total_joules, rel_tol=1e-9, abs_tol=1e-12
        ):
            self.fail(evidence, "EnergyReport total disagrees with its own per-node map")
        expected_correct = sum(
            joules
            for pid, joules in report.per_node_joules.items()
            if pid not in evidence.byzantine and pid not in _energy_excluded(evidence)
        )
        if not math.isclose(
            report.correct_total_joules, expected_correct, rel_tol=1e-9, abs_tol=1e-12
        ):
            self.fail(
                evidence,
                f"correct-node total {report.correct_total_joules} J != "
                f"sum over correct meters {expected_correct} J",
            )


class LossBudgetLivenessInvariant(Invariant):
    """Degraded delivery buys a bounded allowance, not a pardon.

    A node behind a lossy window (a :class:`~repro.testkit.faults.LossWindow`
    atom, or a spec-level wire impairment) may legitimately lag while drops
    and retransmissions play out — but the reliable sublayer's retry chains
    bound how long: once the window's *loss-budget allowance* (its
    ``exemption_end``, i.e. window close plus a loss-scaled grace) has
    passed, the node is held to the full target height, exactly like the
    post-heal obligation on partitions.  Failure messages attribute the
    stall with the run's delivery accounting (drops, retransmits, give-ups),
    so a retry budget that silently gives up is distinguishable from a
    genuinely infeasible loss rate.

    A run with no lossy medium attached is vacuously fine — the plain
    :class:`LivenessInvariant` governs it and this check is a no-op.
    """

    name = "loss-budget-liveness"

    def check(self, evidence: Evidence) -> None:
        from repro.testkit.faults import CATCH_UP_GRACE

        schedule = evidence.spec.fault_schedule
        atoms = schedule.faults if schedule is not None else ()
        loss_atoms = [f for f in atoms if getattr(f, "impairment_kind", "") == "loss"]
        spec_impairment = getattr(evidence.spec, "impairment", None)
        spec_loss = spec_impairment is not None and (
            spec_impairment.loss > 0 or spec_impairment.ble_calibrated
        )
        if not loss_atoms and not spec_loss:
            return
        sim_time = evidence.trace.sim_time
        target = evidence.spec.target_height
        # Per-node allowance: the latest loss-budget expiry of any loss
        # window covering the node.  A spec-level impairment exposes every
        # node; an unbounded one gives no allowance at all — the reliable
        # sublayer is expected to sustain liveness *through* permanent
        # moderate loss (the calibrated BLE operating point).
        allowance: dict = {}
        for fault in loss_atoms:
            for node in fault.nodes():
                allowance[node] = max(allowance.get(node, 0.0), fault.exemption_end())
        if spec_loss:
            if math.isinf(spec_impairment.end):
                spec_allowance = 0.0
            else:
                spec_allowance = spec_impairment.end + CATCH_UP_GRACE * (
                    1.0 + min(1.0, spec_impairment.loss)
                )
            for node in evidence.trace.committed_heights:
                allowance[node] = max(allowance.get(node, 0.0), spec_allowance)
        # Nodes excused by *other* still-unexpired exempting faults (e.g. a
        # partition inside its heal grace) keep their excuse here too.
        excused = set(evidence.byzantine)
        for fault in atoms:
            if getattr(fault, "impairment_kind", "") == "loss":
                continue
            if not fault.liveness_exempt:
                continue
            if fault.exemption_end() <= sim_time:
                continue
            excused.update(fault.nodes())
        impairments = evidence.trace.network.get("impairments", {})
        for node in sorted(allowance):
            if node in excused or node not in evidence.trace.committed_heights:
                continue
            if sim_time <= allowance[node]:
                continue  # the run ended inside the loss-budget allowance
            height = evidence.trace.committed_heights[node]
            if height < target:
                stats = evidence.trace.replica_stats.get(node, {})
                self.fail(
                    evidence,
                    f"node {node} stalled at height {height} < target {target} "
                    f"after its loss-budget allowance expired at "
                    f"t={allowance[node]:.3f} (run ended t={sim_time:.3f}; "
                    f"node drops={stats.get('deliveries_dropped', 0)} "
                    f"retransmits={stats.get('deliveries_retransmitted', 0)} "
                    f"giveups={stats.get('delivery_giveups', 0)}; "
                    f"run drops={impairments.get('dropped', 0)} "
                    f"retransmits={impairments.get('retransmits', 0)} "
                    f"giveups={impairments.get('giveups', 0)})",
                )


def _energy_excluded(evidence: Evidence) -> set:
    """Nodes excluded from correct-energy totals besides Byzantine ones."""
    if evidence.spec.protocol == "trusted-baseline":
        # The LTE control node is infrastructure, not a replica.
        return {evidence.spec.n}
    return set()


def _workload_command_ids(spec) -> set:
    """The command ids the spec's deterministic workload produced.

    Engine-aware: open-loop and trace workloads regenerate their arrival
    stream as a pure function of the spec, so "everything committed came
    from the workload" holds for them exactly as for preloads.
    """
    from repro.workload import workload_command_ids

    return workload_command_ids(spec)


#: The standard battery every scenario cell is checked against.
DEFAULT_INVARIANTS: tuple = (
    AgreementInvariant(),
    LivenessInvariant(),
    QuorumCertificateInvariant(),
    MonotoneVirtualTimeInvariant(),
    EnergyConservationInvariant(),
    LossBudgetLivenessInvariant(),
)


def check_all(
    evidence: Evidence, invariants: Optional[Sequence[Invariant]] = None
) -> List[InvariantReport]:
    """Check a battery of invariants, returning one report per invariant."""
    return [inv.run(evidence) for inv in (invariants or DEFAULT_INVARIANTS)]


def assert_all(evidence: Evidence, invariants: Optional[Sequence[Invariant]] = None) -> None:
    """Check a battery of invariants, raising on the first violation."""
    for invariant in invariants or DEFAULT_INVARIANTS:
        invariant.check(evidence)
