"""SLO metrics over the observer bus: latency, goodput, queue depth.

:class:`MetricsObserver` is the session's production-metrics surface.  It
listens to block commits, fault-window edges and session boundaries and
reports, per fault window and overall:

* **commit latency** p50/p95/p99 — virtual time from a command's arrival
  (its ``arrival_time`` stamp for open-loop/trace workloads; the run
  start for preloads) to its *first* commit on any replica;
* **goodput** — first-commits per unit of virtual time;
* **queue depth** — total pending commands across every replica's txpool,
  sampled at each commit and window edge.

Numbers are pure functions of the deterministic run, so a serial sweep
and a ``parallel=N`` matrix shard report identical summaries — the
summary dict is plain data (JSON- and pickle-safe) and travels back from
worker processes unchanged.

The Prometheus surface follows the no-op-fallback middleware pattern:
:func:`MetricsObserver.prometheus_text` hand-renders the text exposition
format with zero dependencies, and :meth:`MetricsObserver.export`
populates a ``prometheus_client`` registry *only when that optional
dependency is installed* — otherwise it is a no-op returning ``None``,
and nothing else degrades.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.session.observers import SessionObserver

try:  # Optional dependency: metrics must work (as text) without it.
    from prometheus_client import CollectorRegistry, Gauge  # type: ignore

    HAVE_PROMETHEUS = True
except ImportError:  # pragma: no cover - exercised when the dep is absent
    CollectorRegistry = None  # type: ignore[assignment]
    Gauge = None  # type: ignore[assignment]
    HAVE_PROMETHEUS = False

#: Quantiles reported per window, with their summary-dict key suffixes.
QUANTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))


def percentile(values: List[float], quantile: float) -> Optional[float]:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``None`` for an empty sample — a window with no commits has no
    latency, which is different from a latency of 0.
    """
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[rank - 1]


class MetricsObserver(SessionObserver):
    """Per-fault-window SLO metrics over the session observer bus.

    Args:
        slo_p99: Optional p99 commit-latency objective (virtual time).
            When set, the summary carries ``slo_p99`` and a ``slo_met``
            verdict over the whole run (the saturation sweep's criterion).
    """

    def __init__(self, slo_p99: Optional[float] = None) -> None:
        self.slo_p99 = slo_p99
        self._session = None
        self._start = 0.0
        self._end: Optional[float] = None
        #: command id -> (first commit time, latency).
        self._commits: Dict[str, Tuple[float, float]] = {}
        #: (time, total pending across pools) samples.
        self._queue_samples: List[Tuple[float, int]] = []
        #: (time, node, kind, active) fault-window transitions.
        self._transitions: List[Tuple[float, int, str, bool]] = []

    # -------------------------------------------------------- observer hooks
    def on_session_start(self, session) -> None:
        self._session = session
        self._start = session.sim.now
        self._sample_queue(session.sim.now)

    def on_block_commit(self, pid: int, block, view: int, time: float) -> None:
        for command in block.batch.commands:
            if command.command_id in self._commits:
                continue
            arrival = (
                command.arrival_time if command.arrival_time is not None else self._start
            )
            self._commits[command.command_id] = (time, time - arrival)
        self._sample_queue(time)

    def on_fault_window(self, node: int, kind: str, active: bool, time: float) -> None:
        self._transitions.append((time, node, kind, active))
        self._sample_queue(time)

    def on_session_end(self, session, result) -> None:
        self._end = session.sim.now
        self._sample_queue(self._end)
        result.metrics = self.summary()

    # --------------------------------------------------------------- queries
    def _sample_queue(self, time: float) -> None:
        if self._session is None:
            return
        depth = sum(len(r.txpool) for r in self._session.replicas.values())
        self._queue_samples.append((time, depth))

    def _window_edges(self, end: float) -> List[float]:
        edges = [self._start]
        for time, _, _, _ in self._transitions:
            if self._start < time < end and time not in edges:
                edges.append(time)
        edges.append(max(end, self._start))
        return sorted(set(edges))

    def _window_stats(
        self, start: float, end: float, label: str, first_window: bool
    ) -> Dict[str, Any]:
        lower_inclusive = first_window
        latencies = [
            latency
            for commit_time, latency in self._commits.values()
            if (start <= commit_time if lower_inclusive else start < commit_time)
            and commit_time <= end
        ]
        depths = [
            depth
            for time, depth in self._queue_samples
            if start <= time <= end
        ]
        duration = end - start
        stats: Dict[str, Any] = {
            "start": start,
            "end": end,
            "faults": label,
            "commits": len(latencies),
            "goodput": (len(latencies) / duration) if duration > 0 else 0.0,
            "queue_depth_mean": (sum(depths) / len(depths)) if depths else 0.0,
            "queue_depth_max": max(depths) if depths else 0,
        }
        for quantile, key in QUANTILES:
            stats[f"latency_{key}"] = percentile(latencies, quantile)
        return stats

    def summary(self) -> Dict[str, Any]:
        """The plain-dict metrics report (JSON- and pickle-safe).

        Windows are the segments between fault-window transitions; the
        ``faults`` label of each window lists the fault windows active in
        it (``"nominal"`` when none are).
        """
        end = self._end if self._end is not None else (
            self._session.sim.now if self._session is not None else self._start
        )
        edges = self._window_edges(end)
        # Active fault labels per segment, walked from the transition log.
        windows: List[Dict[str, Any]] = []
        active: List[str] = []
        cursor = 0
        ordered = sorted(self._transitions, key=lambda t: (t[0],))
        for index in range(len(edges) - 1):
            seg_start, seg_end = edges[index], edges[index + 1]
            while cursor < len(ordered) and ordered[cursor][0] <= seg_start:
                _, node, kind, is_active = ordered[cursor]
                token = f"{kind}@{node}"
                if is_active:
                    active.append(token)
                elif token in active:
                    active.remove(token)
                cursor += 1
            label = "+".join(sorted(active)) if active else "nominal"
            windows.append(
                self._window_stats(seg_start, seg_end, label, first_window=index == 0)
            )
        overall = self._window_stats(self._start, end, "overall", first_window=True)
        pools = (
            [r.txpool for r in self._session.replicas.values()]
            if self._session is not None
            else []
        )
        out: Dict[str, Any] = {
            "overall": overall,
            "windows": windows,
            "offered": len(self._session.commands) if self._session is not None else 0,
            "committed_commands": len(self._commits),
            "dropped": sum(pool.dropped for pool in pools),
            "duplicates": sum(pool.duplicates for pool in pools),
            "queue_high_watermark": max(
                (pool.high_watermark for pool in pools), default=0
            ),
        }
        # Delivery-layer counters appear only when the run had a lossy
        # medium attached, so existing summary key-set assertions survive.
        imp = (
            getattr(self._session.network, "impairment", None)
            if self._session is not None
            else None
        )
        if imp is not None:
            out["delivery_ratio"] = imp.delivery_ratio()
            out["deliveries_dropped"] = imp.dropped
            out["deliveries_retransmitted"] = imp.retransmits
            out["delivery_giveups"] = imp.giveups
        if self.slo_p99 is not None:
            p99 = overall["latency_p99"]
            out["slo_p99"] = self.slo_p99
            out["slo_met"] = p99 is not None and p99 <= self.slo_p99 and out["dropped"] == 0
        return out

    # ------------------------------------------------------------ exporters
    def prometheus_text(self, namespace: str = "repro") -> str:
        """Render the summary in the Prometheus text exposition format.

        Hand-rolled (no dependency): gauge samples labelled by window, so
        the output is scrape-ready the moment something serves it.
        """
        summary = self.summary()
        lines: List[str] = []

        def emit(metric: str, help_text: str, samples: List[Tuple[str, float]]) -> None:
            lines.append(f"# HELP {namespace}_{metric} {help_text}")
            lines.append(f"# TYPE {namespace}_{metric} gauge")
            for labels, value in samples:
                lines.append(f"{namespace}_{metric}{labels} {_format_value(value)}")

        window_rows = [("overall", summary["overall"])] + [
            (f"w{i}:{window['faults']}", window)
            for i, window in enumerate(summary["windows"])
        ]
        for _, key in QUANTILES:
            emit(
                f"commit_latency_{key}",
                f"{key} commit latency (virtual time) per fault window",
                [
                    (f'{{window="{name}"}}', stats[f"latency_{key}"])
                    for name, stats in window_rows
                    if stats[f"latency_{key}"] is not None
                ],
            )
        emit(
            "goodput_commands_per_time",
            "first-commits per unit of virtual time per fault window",
            [(f'{{window="{name}"}}', stats["goodput"]) for name, stats in window_rows],
        )
        emit(
            "queue_depth_mean",
            "mean total pending commands across replica pools per fault window",
            [
                (f'{{window="{name}"}}', stats["queue_depth_mean"])
                for name, stats in window_rows
            ],
        )
        emit(
            "commands_offered_total",
            "commands the workload offered",
            [("", float(summary["offered"]))],
        )
        emit(
            "commands_committed_total",
            "commands first-committed on some replica",
            [("", float(summary["committed_commands"]))],
        )
        emit(
            "commands_dropped_total",
            "commands dropped by bounded txpools (overflow)",
            [("", float(summary["dropped"]))],
        )
        return "\n".join(lines) + "\n"

    def export(self, registry: Optional[Any] = None) -> Optional[Any]:
        """Populate a ``prometheus_client`` registry, if the dep exists.

        Returns the registry, or ``None`` (the documented no-op fallback)
        when ``prometheus_client`` is not installed — callers can always
        fall back to :meth:`prometheus_text`, which needs nothing.
        """
        if not HAVE_PROMETHEUS:
            return None
        summary = self.summary()
        registry = registry if registry is not None else CollectorRegistry()
        latency = Gauge(
            "repro_commit_latency",
            "commit latency quantiles per fault window (virtual time)",
            ["window", "quantile"],
            registry=registry,
        )
        goodput = Gauge(
            "repro_goodput_commands_per_time",
            "first-commits per unit of virtual time per fault window",
            ["window"],
            registry=registry,
        )
        depth = Gauge(
            "repro_queue_depth_mean",
            "mean total pending commands across replica pools",
            ["window"],
            registry=registry,
        )
        dropped = Gauge(
            "repro_commands_dropped_total",
            "commands dropped by bounded txpools",
            registry=registry,
        )
        rows = [("overall", summary["overall"])] + [
            (f"w{i}:{window['faults']}", window)
            for i, window in enumerate(summary["windows"])
        ]
        for name, stats in rows:
            for _, key in QUANTILES:
                value = stats[f"latency_{key}"]
                if value is not None:
                    latency.labels(window=name, quantile=key).set(value)
            goodput.labels(window=name).set(stats["goodput"])
            depth.labels(window=name).set(stats["queue_depth_mean"])
        dropped.set(summary["dropped"])
        return registry


def _format_value(value: float) -> str:
    """Deterministic sample formatting (Prometheus accepts float repr)."""
    if value == int(value):
        return str(int(value))
    return repr(float(value))
