"""Adaptive adversaries: fault logic that reacts to the live run.

The fault-schedule DSL (:mod:`repro.testkit.faults`) describes *static*
adversaries — which node misbehaves, and when, is fixed before the run.
The scenario frontier the ROADMAP names (moving adversaries that follow
the leader schedule) needs decisions made *during* the run, against live
protocol state.  The session's steppable run control provides exactly
that surface: a :class:`~repro.session.session.SessionController` gets a
deterministic pause between events, inspects replicas, and strikes.

:class:`LeaderFollowingController` is the first such adversary: whenever
its wake-up fires it looks up the highest view any live replica is in,
resolves the rotation's leader for that view, and fail-stops it — then
waits for the view change to install the next leader and strikes again,
until its budget of ``f`` crashes is spent.  This is the classic
"mobile" crash adversary that a static schedule cannot express: the
victim set is a function of the run itself.

Determinism: wake-ups happen at fixed virtual times (``start`` +
multiples of ``interval``), decisions are pure functions of session
state, and strikes are applied between events — so adaptive runs are
exactly as reproducible as static ones (pinned by the determinism
tests).
"""

from __future__ import annotations

from typing import List, Optional

from repro.session.session import Session, SessionController


class LeaderFollowingController(SessionController):
    """Crash whichever node the rotation currently makes leader.

    Args:
        fault: The ``repro.testkit.faults.LeaderFollowingCrash`` atom this
            controller executes; victims are recorded back onto it so the
            schedule's post-run Byzantine accounting matches reality.
    """

    def __init__(self, fault) -> None:
        self.fault = fault
        self.victims: List[int] = []
        self._next_check = float(fault.start)

    # ------------------------------------------------------------- protocol
    def on_attach(self, session: Session) -> None:
        # The atom's recorded victims describe *one* run.  Starting a new
        # session over the same schedule (same spec re-run) begins a fresh
        # campaign — without this, victims accumulate across runs and a
        # node honest in this run would be excluded from its safety and
        # liveness accounting.
        self.fault.reset_victims()
        self.victims.clear()
        self._next_check = float(self.fault.start)
    def next_wakeup(self, session: Session) -> Optional[float]:
        if len(self.victims) >= self.fault.budget:
            return None
        if session.idle:
            # Nothing will ever run again; striking now cannot change the
            # outcome, so the adversary retires with its budget unspent.
            return None
        return max(self._next_check, session.now)

    def on_wakeup(self, session: Session) -> None:
        self._next_check = session.now + self.fault.interval
        leader = session.current_leader()
        target = session.replicas.get(leader)
        if target is None or target.crashed:
            # The rotation's current leader is already dark (our own prior
            # strike, or a composed static fault); wait for the next view.
            return
        self.strike(session, leader)

    # --------------------------------------------------------------- actions
    def strike(self, session: Session, pid: int) -> None:
        """Fail-stop ``pid`` now: crash the process, stop its relaying."""
        session.replicas[pid].crash()
        # Matching the DSL's fail-stop semantics: a crashed node never
        # relays again.  deny_relay is refcounted and never released here.
        session.network.deny_relay(pid)
        self.victims.append(pid)
        self.fault.record_victim(pid)
        session.bus.fault_window(pid, "adaptive-leader-crash", True, session.now)
