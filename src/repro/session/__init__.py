"""repro.session: the one front door for building and driving experiments.

Every surface — the CLI, the scenario matrix, the perf benchmarks, the
examples and ``run_protocol`` itself — builds deployments through the
:class:`SessionBuilder` staged pipeline and drives them through a
:class:`Session`:

* **staged construction** — topology → medium/radios → crypto → replicas
  → workload → faults → observers, each stage an overridable method
  returning a typed artifact (:mod:`repro.session.builder`);
* **observer protocol** — ``on_event`` / ``on_block_commit`` /
  ``on_view_change`` / ``on_fault_window`` hooks with a fan-out bus
  (:mod:`repro.session.observers`);
* **steppable run control** — ``step`` / ``run_until(pred|deadline)`` /
  pause-inspect-resume over live replica and network state, plus
  :class:`SessionController` for deterministic mid-run interventions
  (:mod:`repro.session.session`);
* **adaptive adversaries** — the first controller-based fault: a
  leader-following crash schedule (:mod:`repro.session.adaptive`).

Quickstart::

    from repro import DeploymentSpec
    from repro.session import Session

    session = Session.from_spec(DeploymentSpec(protocol="eesmr", n=7, f=2, k=3))
    session.run_until(pred=lambda s: max(s.inspect()["committed_heights"].values()) >= 2)
    print(session.inspect())          # paused: live views, heights, energy
    result = session.run().finish()   # resume to quiescence and collect
"""

from repro.session.adaptive import LeaderFollowingController
from repro.session.builder import (
    CryptoStage,
    FaultStage,
    MediumStage,
    ObserverStage,
    ReplicaStage,
    SessionBuilder,
    TopologyStage,
    WorkloadStage,
)
from repro.session.metrics import MetricsObserver
from repro.session.observers import (
    CallbackObserver,
    EnergyTimelineObserver,
    ObserverBus,
    PerfObserver,
    SessionObserver,
)
from repro.session.session import Session, SessionController

__all__ = [
    "Session",
    "SessionBuilder",
    "SessionController",
    "SessionObserver",
    "ObserverBus",
    "CallbackObserver",
    "PerfObserver",
    "MetricsObserver",
    "EnergyTimelineObserver",
    "LeaderFollowingController",
    "TopologyStage",
    "MediumStage",
    "CryptoStage",
    "ReplicaStage",
    "WorkloadStage",
    "FaultStage",
    "ObserverStage",
]
