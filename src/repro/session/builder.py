"""Staged construction of protocol deployments.

:class:`SessionBuilder` decomposes the experiment runner's monolithic
build-and-run method into an explicit pipeline of stages::

    topology -> medium/radios -> crypto -> replicas -> workload -> faults -> observers

Each stage computes a typed artifact (:class:`TopologyStage`,
:class:`MediumStage`, ...) that is cached on the builder, visible to every
later stage, and individually overridable: subclass the builder and
replace one ``build_*`` method, or pre-assign the artifact slot before
calling :meth:`build`, and the remaining stages consume the substitute
without the caller forking the whole runner.

The stage *ordering contract* matters: simulator events scheduled at
build time (baseline fail-stop timers, fault-window arming, replica
start-up) acquire queue sequence numbers in push order, and the golden
trace fingerprints pin that order byte-for-byte.  Stages that schedule
events document exactly what they push; stages that don't may be swapped
freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.adversary import behaviour_class, replica_class_for
from repro.core.baselines.optsync import OptSyncReplica
from repro.core.baselines.sync_hotstuff import SyncHotStuffReplica
from repro.core.baselines.trusted_baseline import TrustedBaselineReplica, TrustedControlNode
from repro.core.client import AckRouter, Client
from repro.core.config import ProtocolConfig
from repro.core.eesmr.replica import EesmrReplica
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import SignatureScheme, make_scheme
from repro.energy.ledger import ClusterEnergyLedger
from repro.eval.runner import DeploymentSpec
from repro.eval.workloads import client_for_run
from repro.workload import ClosedLoopPreload, WorkloadEngine
from repro.net.hypergraph import Hypergraph
from repro.net.network import SimulatedNetwork
from repro.net.topology import (
    fully_connected_topology,
    random_kcast_topology,
    ring_kcast_topology,
    star_topology,
    unicast_ring_topology,
)
from repro.radio.media import (
    MediumKCastAdapter,
    MediumUnicastAdapter,
    lte_medium,
    make_medium,
)
from repro.session.observers import ObserverBus, SessionObserver
from repro.session.session import Session
from repro.sim.rng import SeededRNG, derive_seed
from repro.sim.scheduler import Simulator


# ---------------------------------------------------------------- stage logic
def build_topology(spec: DeploymentSpec) -> Hypergraph:
    """The hypergraph for a spec (ring k-cast by default, as in the paper)."""
    if spec.topology == "ring-kcast":
        return ring_kcast_topology(spec.n, spec.k)
    if spec.topology == "fully-connected":
        return fully_connected_topology(spec.n)
    if spec.topology == "unicast-ring":
        return unicast_ring_topology(spec.n, spec.k)
    if spec.topology == "star":
        return star_topology(spec.n + 1, center=spec.n)
    if spec.topology == "random-kcast":
        topology_seed = (
            spec.topology_seed
            if spec.topology_seed is not None
            else derive_seed(spec.seed, "topology", spec.n, spec.k, spec.edges_per_node)
        )
        return random_kcast_topology(
            spec.n, spec.k, edges_per_node=spec.edges_per_node, rng=SeededRNG(topology_seed)
        )
    raise ValueError(f"unknown topology {spec.topology!r}")


def compute_delta(spec: DeploymentSpec, topology: Hypergraph) -> float:
    """A Δ that upper-bounds flooded delivery plus a unicast response."""
    if spec.delta is not None:
        return spec.delta
    diameter = max(1, topology.diameter())
    return (diameter + 2) * spec.hop_delay


def build_radios(spec: DeploymentSpec) -> Tuple[Optional[Any], Optional[Any]]:
    """The (k-cast, unicast) radio pair for the spec's medium.

    ``None`` entries mean "use the network's default" — the calibrated BLE
    advertisement k-cast and GATT unicast of the paper's test bed.
    """
    if spec.medium == "ble":
        return None, None
    medium = make_medium(spec.medium)
    return MediumKCastAdapter(medium), MediumUnicastAdapter(medium)


# ------------------------------------------------------------ stage artifacts
@dataclass
class TopologyStage:
    """Stage 1: the communication graph and the synchrony bound over it."""

    topology: Hypergraph
    delta: float
    #: Node id of the trusted control node, or ``None`` for replicated runs.
    control_id: Optional[int] = None


@dataclass
class MediumStage:
    """Stage 2: radios, energy ledger and the simulated network."""

    kcast_radio: Optional[Any]
    unicast_radio: Optional[Any]
    ledger: ClusterEnergyLedger
    network: SimulatedNetwork


@dataclass
class CryptoStage:
    """Stage 3: key material, signature scheme and protocol configuration."""

    keystore: KeyStore
    scheme: SignatureScheme
    config: ProtocolConfig


@dataclass
class ReplicaStage:
    """Stage 4: replica processes, registered with the network.

    For baseline protocols this stage also arms per-replica fail-stop
    timers (one ``after`` per scheduled crash, in pid order) — those
    events are part of the golden trace order.
    """

    replicas: Dict[int, Any]
    client: Client
    ack_router: AckRouter
    #: The trusted control node, or ``None`` for replicated runs.
    control: Optional[TrustedControlNode] = None


@dataclass
class WorkloadStage:
    """Stage 5: the workload engine's deterministic command stream.

    The default :class:`~repro.workload.ClosedLoopPreload` fills every
    txpool at build time and pushes no events (the seed behaviour, pinned
    byte-for-byte by the golden fingerprints).  Arrival-driven engines
    (open-loop, trace replay) instead schedule one ``workload:arrival``
    event per command here — after the replica stage's fail-stop timers
    and before the fault stage's events, an ordering the open-loop
    determinism tests pin.
    """

    commands: List[Any]
    #: The engine that produced the stream (never ``None`` after build).
    engine: Optional[WorkloadEngine] = None
    #: Commands injected as simulator events (empty for preloads).
    arrivals: Tuple[Any, ...] = ()


@dataclass
class FaultStage:
    """Stage 6: armed network faults and any session-time fault controllers.

    Scheduling order (pinned by golden traces): for replicated runs the
    schedule's own fault events are pushed here, after every replica
    fail-stop timer from stage 4; for the trusted baseline, leaf fail-stop
    timers are pushed first (pid order), then the schedule's events.
    """

    controllers: Tuple[Any, ...] = ()


@dataclass
class ObserverStage:
    """Stage 7: the observer bus, wired into the live substrates."""

    bus: ObserverBus = field(default_factory=ObserverBus)


class SessionBuilder:
    """Builds a :class:`~repro.session.session.Session` stage by stage.

    Args:
        spec: The deployment to build.
        max_events: Safety valve against livelocked protocols.
        observers: Session observers, invoked in the given order.
        recorder: Optional ``repro.testkit.trace.TraceRecorder`` (itself a
            :class:`SessionObserver`), registered after ``observers``.

    Stages can be overridden three ways::

        # 1. subclass and replace one stage method
        class StarBuilder(SessionBuilder):
            def build_topology_stage(self):
                return TopologyStage(star_topology(self.spec.n, 0), 6.0)

        # 2. pre-assign the artifact slot before build()
        builder = SessionBuilder(spec)
        builder.topology_stage = TopologyStage(my_graph, delta=8.0)
        session = builder.build()

        # 3. run stages manually and inspect between them
        builder.build_topology_stage(); builder.build_medium_stage(); ...
    """

    def __init__(
        self,
        spec: DeploymentSpec,
        *,
        max_events: int = 2_000_000,
        observers: Sequence[SessionObserver] = (),
        recorder: Optional[Any] = None,
    ) -> None:
        self.spec = spec
        self.max_events = max_events
        self.observers: List[SessionObserver] = list(observers)
        if recorder is not None:
            self.observers.append(recorder)
        self.sim = Simulator()
        self.rng = SeededRNG(spec.seed)
        # Stage slots, filled lazily (and overridable before build()).
        self.topology_stage: Optional[TopologyStage] = None
        self.medium_stage: Optional[MediumStage] = None
        self.crypto_stage: Optional[CryptoStage] = None
        self.replica_stage: Optional[ReplicaStage] = None
        self.workload_stage: Optional[WorkloadStage] = None
        self.fault_stage: Optional[FaultStage] = None
        self.observer_stage: Optional[ObserverStage] = None

    @property
    def trusted(self) -> bool:
        """Whether this deployment runs the paper's trusted baseline."""
        return self.spec.protocol == "trusted-baseline"

    # ------------------------------------------------------------ stage 1
    def build_topology_stage(self) -> TopologyStage:
        """Topology and Δ.  Trusted-baseline runs use a control star."""
        spec = self.spec
        if self.trusted:
            control_id = spec.n
            topology = star_topology(spec.n + 1, center=control_id)
            delta = spec.delta if spec.delta is not None else 3 * spec.hop_delay
            self.topology_stage = TopologyStage(topology, delta, control_id)
        else:
            topology = build_topology(spec)
            self.topology_stage = TopologyStage(topology, compute_delta(spec, topology))
        return self.topology_stage

    # ------------------------------------------------------------ stage 2
    def build_medium_stage(self) -> MediumStage:
        """Radios for the spec's medium, energy ledger, simulated network."""
        spec = self.spec
        top = self._need("topology_stage")
        ledger = ClusterEnergyLedger(top.topology.nodes)
        if self.trusted:
            # The paper's trusted baseline talks to its control node over
            # LTE; "ble" (the default) keeps that, other media override.
            kcast_radio = None
            unicast_radio = (
                MediumUnicastAdapter(lte_medium())
                if spec.medium == "ble"
                else MediumUnicastAdapter(make_medium(spec.medium))
            )
        else:
            kcast_radio, unicast_radio = build_radios(spec)
        network = SimulatedNetwork(
            self.sim,
            top.topology,
            ledger,
            rng=self.rng.child("network"),
            kcast_radio=kcast_radio,
            unicast_radio=unicast_radio,
            hop_delay=spec.hop_delay,
            jitter=spec.jitter,
        )
        if spec.impairment is not None:
            # The model derives its own child stream; an unimpaired spec
            # builds the exact network the seed did (no model at all).
            network.configure_impairment(spec.impairment)
        self.medium_stage = MediumStage(kcast_radio, unicast_radio, ledger, network)
        return self.medium_stage

    # ------------------------------------------------------------ stage 3
    def build_crypto_stage(self) -> CryptoStage:
        """Key store (all topology nodes), signature scheme, protocol config."""
        spec = self.spec
        top = self._need("topology_stage")
        keystore = KeyStore(seed=spec.seed)
        keystore.generate(top.topology.nodes)
        scheme = make_scheme(spec.signature_scheme, keystore=keystore)
        config = ProtocolConfig(
            n=spec.n,
            f=spec.f,
            delta=top.delta,
            signature_scheme=spec.signature_scheme,
            batch_size=spec.batch_size,
            command_payload_bytes=spec.command_payload_bytes,
            target_height=spec.target_height,
            block_interval=spec.block_interval,
            txpool_limit=spec.txpool_limit,
        )
        self.crypto_stage = CryptoStage(keystore, scheme, config)
        return self.crypto_stage

    # ------------------------------------------------------------ stage 4
    def build_replica_stage(self) -> ReplicaStage:
        """Replicas (Byzantine substitutions applied), registered in pid order.

        Event-scheduling contract: for baseline protocols each replica's
        fail-stop timer is pushed immediately after that replica is
        constructed (pid order); EESMR adversary classes arm their own
        misbehaviour at start time.  The trusted baseline schedules leaf
        fail-stops later, in the fault stage — matching the seed runner.
        """
        spec = self.spec
        network = self._need("medium_stage").network
        crypto = self._need("crypto_stage")
        client = client_for_run(spec.f, spec.command_payload_bytes, spec.seed)
        ack_router = AckRouter([client])
        if self.trusted:
            stage = self._build_trusted_replicas(crypto, network, ack_router, client)
        else:
            replicas = self._build_replicated_replicas(crypto, network, ack_router)
            stage = ReplicaStage(replicas, client, ack_router)
            for replica in replicas.values():
                network.register(replica)
        self.replica_stage = stage
        return stage

    def _build_replicated_replicas(
        self, crypto: CryptoStage, network: SimulatedNetwork, ack_router: AckRouter
    ) -> Dict[int, Any]:
        spec = self.spec
        ledger = self._need("medium_stage").ledger
        schedule = spec.fault_schedule
        replicas: Dict[int, Any] = {}
        for pid in range(spec.n):
            meter = ledger.meter(pid)
            if spec.protocol == "eesmr":
                cls, kwargs = self._eesmr_class_for(pid)
                replica = cls(
                    self.sim, pid, crypto.config, crypto.scheme, network, meter, ack_router,
                    **kwargs,
                )
            else:
                base_cls = (
                    SyncHotStuffReplica if spec.protocol == "sync-hotstuff" else OptSyncReplica
                )
                replica = base_cls(
                    self.sim, pid, crypto.config, crypto.scheme, network, meter, ack_router
                )
                # Baseline faults are modelled as fail-stop at the trigger time.
                if schedule is not None:
                    failstop = schedule.failstop_time(pid)
                    if failstop is not None:
                        replica.after(failstop, replica.crash, label="crash")
                elif pid in spec.fault_plan.faulty:
                    replica.after(spec.fault_plan.crash_time, replica.crash, label="crash")
            replicas[pid] = replica
        return replicas

    def _eesmr_class_for(self, pid: int):
        """The (class, kwargs) for one EESMR node under the spec's faults."""
        spec = self.spec
        if spec.fault_schedule is not None:
            behaviour = spec.fault_schedule.replica_behaviour(pid)
            if behaviour is None:
                return EesmrReplica, {}
            name, kwargs = behaviour
            return behaviour_class(name), dict(kwargs)
        return replica_class_for(spec.fault_plan, pid)

    def _build_trusted_replicas(
        self,
        crypto: CryptoStage,
        network: SimulatedNetwork,
        ack_router: AckRouter,
        client: Client,
    ) -> ReplicaStage:
        spec = self.spec
        top = self._need("topology_stage")
        ledger = self._need("medium_stage").ledger
        control = TrustedControlNode(
            self.sim,
            top.control_id,
            crypto.config,
            crypto.scheme,
            network,
            round_interval=max(spec.hop_delay, 0.5),
        )
        replicas: Dict[int, Any] = {}
        for pid in range(spec.n):
            replicas[pid] = TrustedBaselineReplica(
                self.sim,
                pid,
                crypto.config,
                crypto.scheme,
                network,
                ledger.meter(pid),
                top.control_id,
                ack_router,
            )
        control.replica_ids = list(replicas)
        network.register(control)
        for replica in replicas.values():
            network.register(replica)
        return ReplicaStage(replicas, client, ack_router, control=control)

    # ------------------------------------------------------------ stage 5
    def build_workload_stage(self) -> WorkloadStage:
        """Install the spec's workload engine (default: closed-loop preload)."""
        engine = self.spec.workload if self.spec.workload is not None else ClosedLoopPreload()
        plan = engine.install(self)
        self.workload_stage = WorkloadStage(
            commands=plan.commands, engine=engine, arrivals=plan.arrivals
        )
        return self.workload_stage

    # ------------------------------------------------------------ stage 6
    def build_fault_stage(self) -> FaultStage:
        """Arm network-level faults and collect session-time controllers."""
        spec = self.spec
        network = self._need("medium_stage").network
        replica_stage = self._need("replica_stage")
        replicas = replica_stage.replicas
        schedule = spec.fault_schedule
        if self.trusted:
            if schedule is not None:
                for pid, replica in replicas.items():
                    failstop = schedule.failstop_time(pid)
                    if failstop is not None:
                        replica.after(failstop, replica.crash, label="crash")
                schedule.install(self.sim, network, replicas)
        elif schedule is not None:
            # The schedule arms its own network-level faults (relay drops,
            # partitions, timed relay silence) with per-fault timing.
            schedule.install(self.sim, network, replicas)
        else:
            for pid in spec.fault_plan.faulty:
                network.set_relay_policy(pid, lambda _origin, _message: False)
        controllers: Tuple[Any, ...] = ()
        if schedule is not None and hasattr(schedule, "controllers"):
            controllers = tuple(schedule.controllers())
        if controllers and not self.trusted:
            # Budget-aware provisioning: an adaptive atom picks its victims
            # mid-run, so quorum sizes must assume its whole budget up
            # front.  Generated schedules (the fuzzer) hit this path with
            # arbitrary budgets; failing at build time beats a run whose
            # realised Byzantine set silently exceeds the f the quorums
            # were sized for.
            required = schedule.max_byzantine()
            if spec.f < required:
                raise ValueError(
                    f"schedule may field {required} Byzantine nodes (adaptive "
                    f"budget included) but the deployment provisions f={spec.f}; "
                    f"raise f to at least {required}"
                )
        self.fault_stage = FaultStage(controllers)
        return self.fault_stage

    # ------------------------------------------------------------ stage 7
    def build_observer_stage(self) -> ObserverStage:
        """Wire the observer bus into the simulator, network and replicas.

        Dispatch is only installed where some observer listens, so a
        session without observers runs the exact seed code paths.
        """
        bus = ObserverBus(self.observers)
        sim = self.sim
        network = self._need("medium_stage").network
        replica_stage = self._need("replica_stage")
        if bus.overrides("on_event"):
            sim.event_observer = bus.event
        if bus.overrides("on_fault_window"):
            network.fault_observer = bus.fault_window
        if bus.overrides("on_retransmit"):
            network.retransmit_observer = bus.retransmit
        if bus.overrides("on_block_commit") or bus.overrides("on_view_change"):
            for replica in replica_stage.replicas.values():
                replica.hooks = bus
        self.observer_stage = ObserverStage(bus)
        return self.observer_stage

    # -------------------------------------------------------------- assembly
    def _need(self, slot: str):
        """The artifact in ``slot``, building it (and its defaults) on demand."""
        artifact = getattr(self, slot)
        if artifact is None:
            artifact = getattr(self, f"build_{slot}")()
        return artifact

    def build(self) -> Session:
        """Run every stage still unset (in pipeline order) and assemble."""
        self._need("topology_stage")
        self._need("medium_stage")
        self._need("crypto_stage")
        self._need("replica_stage")
        self._need("workload_stage")
        self._need("fault_stage")
        self._need("observer_stage")
        return Session(self)
