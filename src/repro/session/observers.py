"""The unified observer protocol for experiment sessions.

Before this module, every consumer of run-time information tapped the
substrates its own way: the :class:`~repro.testkit.trace.TraceRecorder`
flipped the simulator's trace flag and harvested state after quiescence,
perf counters sampled caches around whole runs, and the energy ledger was
read only at collection time.  A :class:`SessionObserver` gives all of
them one contract:

* ``on_session_start(session)`` — the deployment is built, nothing has
  run yet; attach to live substrates here;
* ``on_event(time, label)`` — one simulator event executed;
* ``on_block_commit(pid, block, view, time)`` — a replica committed a
  block (fired once per newly committed block, in commit order);
* ``on_view_change(pid, view, time)`` — a replica completed a view change
  and entered ``view``;
* ``on_fault_window(node, kind, active, time)`` — a network-level fault
  window opened (``active=True``) or closed on ``node``; adaptive
  adversary strikes also arrive here;
* ``on_session_end(session, result)`` — the run is quiescent and the
  :class:`~repro.eval.runner.RunResult` is assembled; enrich it here.

Observers are registered on a :class:`SessionBuilder` (or directly on an
:class:`ObserverBus`) and are always invoked in registration order.
Hooks an observer does not override cost nothing at run time: the bus
wires a dispatch into the simulator, network or replicas only when at
least one registered observer actually overrides the corresponding hook,
so the plain one-shot path stays byte-identical and hook-free.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple


class SessionObserver:
    """Base class for session observers; override only what you need."""

    def on_session_start(self, session) -> None:
        """The deployment is built; the simulation has not started."""

    def on_event(self, time: float, label: str) -> None:
        """One simulator event was executed."""

    def on_block_commit(self, pid: int, block, view: int, time: float) -> None:
        """Replica ``pid`` committed ``block`` while in ``view``."""

    def on_view_change(self, pid: int, view: int, time: float) -> None:
        """Replica ``pid`` completed a view change into ``view``."""

    def on_fault_window(self, node: int, kind: str, active: bool, time: float) -> None:
        """A fault window on ``node`` opened (``active``) or closed."""

    def on_recovery(self, node: int, event: str, detail: dict, time: float) -> None:
        """A catch-up lifecycle event for a recovering ``node``.

        ``event`` is one of ``sync_started``, ``sync_request``,
        ``sync_timeout``, ``sync_retry``, ``caught_up``, ``gave_up``;
        ``detail`` carries event-specific fields (peer, attempt, backoff
        delay, heights).  Fired by the
        :class:`~repro.recovery.controller.RecoveryController`.
        """

    def on_retransmit(self, node: int, event: str, detail: str, time: float) -> None:
        """A reliable-delivery lifecycle event for a lossy hop to ``node``.

        ``event`` is one of ``retry`` (a dropped delivery is being
        retransmitted), ``recovered`` (a retransmitted copy got through
        and was ACKed) or ``gave_up`` (the retry budget is exhausted);
        ``detail`` is a human-readable description of the hop.  Fired by
        the network's reliable sublayer under wire impairments
        (:mod:`repro.net.impairment`).
        """

    def on_session_end(self, session, result) -> None:
        """The run is quiescent and ``result`` is assembled."""


#: The hook names an observer may override, in dispatch order.
OBSERVER_HOOKS = (
    "on_session_start",
    "on_event",
    "on_block_commit",
    "on_view_change",
    "on_fault_window",
    "on_recovery",
    "on_retransmit",
    "on_session_end",
)


class ObserverBus:
    """Fan-out dispatcher over registered observers (registration order).

    The bus is what the substrates see: the simulator's event hook, the
    network's fault hook and the replicas' commit/view-change hooks all
    point at bus methods.  ``overrides(hook)`` lets the builder wire a
    dispatch only where some observer actually listens, so un-observed
    sessions pay nothing.
    """

    def __init__(self, observers: Optional[List[SessionObserver]] = None) -> None:
        self._observers: List[SessionObserver] = []
        for observer in observers or ():
            self.register(observer)

    def register(self, observer: SessionObserver) -> SessionObserver:
        """Add an observer; hooks fire in registration order."""
        self._observers.append(observer)
        return observer

    @property
    def observers(self) -> Tuple[SessionObserver, ...]:
        return tuple(self._observers)

    def __len__(self) -> int:
        return len(self._observers)

    def overrides(self, hook: str) -> bool:
        """Whether any registered observer overrides ``hook``.

        Checks the instance first (callback-style observers bind hooks as
        instance attributes) and the class second (subclass overrides).
        """
        base = getattr(SessionObserver, hook)
        for observer in self._observers:
            if hook in observer.__dict__:
                return True
            if getattr(type(observer), hook, base) is not base:
                return True
        return False

    # ------------------------------------------------------------- dispatch
    def session_start(self, session) -> None:
        for observer in self._observers:
            observer.on_session_start(session)

    def event(self, time: float, label: str) -> None:
        for observer in self._observers:
            observer.on_event(time, label)

    def block_commit(self, pid: int, block, view: int, time: float) -> None:
        for observer in self._observers:
            observer.on_block_commit(pid, block, view, time)

    def view_change(self, pid: int, view: int, time: float) -> None:
        for observer in self._observers:
            observer.on_view_change(pid, view, time)

    def fault_window(self, node: int, kind: str, active: bool, time: float) -> None:
        for observer in self._observers:
            observer.on_fault_window(node, kind, active, time)

    def recovery(self, node: int, event: str, detail: dict, time: float) -> None:
        for observer in self._observers:
            observer.on_recovery(node, event, detail, time)

    def retransmit(self, node: int, event: str, detail: str, time: float) -> None:
        for observer in self._observers:
            observer.on_retransmit(node, event, detail, time)

    def session_end(self, session, result) -> None:
        for observer in self._observers:
            observer.on_session_end(session, result)


class CallbackObserver(SessionObserver):
    """An observer built from keyword callbacks (handy in tests and demos).

    Example::

        CallbackObserver(on_view_change=lambda pid, view, t: print(pid, view))
    """

    def __init__(self, **callbacks: Callable[..., Any]) -> None:
        unknown = set(callbacks) - set(OBSERVER_HOOKS)
        if unknown:
            raise ValueError(f"unknown observer hooks {sorted(unknown)}; known: {OBSERVER_HOOKS}")
        # Bound as instance attributes so ``ObserverBus.overrides`` sees
        # exactly the hooks the caller supplied.
        for name, fn in callbacks.items():
            setattr(self, name, fn)


class PerfObserver(SessionObserver):
    """Live protocol/perf counters re-registered through the observer bus.

    Replaces the ad-hoc "run it, then diff the stats objects" pattern of
    the perf harness for in-flight visibility: event counts by label
    prefix, commits and view changes per node, fault-window transitions.
    """

    def __init__(self, label_depth: int = 1) -> None:
        self.label_depth = label_depth
        self.events = 0
        self.events_by_prefix: dict = {}
        self.commits_by_node: dict = {}
        self.view_changes_by_node: dict = {}
        self.fault_transitions: List[Tuple[float, int, str, bool]] = []

    def on_event(self, time: float, label: str) -> None:
        self.events += 1
        prefix = ":".join(label.split(":")[: self.label_depth]) if label else ""
        self.events_by_prefix[prefix] = self.events_by_prefix.get(prefix, 0) + 1

    def on_block_commit(self, pid: int, block, view: int, time: float) -> None:
        self.commits_by_node[pid] = self.commits_by_node.get(pid, 0) + 1

    def on_view_change(self, pid: int, view: int, time: float) -> None:
        self.view_changes_by_node[pid] = self.view_changes_by_node.get(pid, 0) + 1

    def on_fault_window(self, node: int, kind: str, active: bool, time: float) -> None:
        self.fault_transitions.append((time, node, kind, active))

    def summary(self) -> dict:
        """A plain-dict snapshot (JSON-safe, sorted for reproducibility)."""
        return {
            "events": self.events,
            "events_by_prefix": dict(sorted(self.events_by_prefix.items())),
            "commits_by_node": dict(sorted(self.commits_by_node.items())),
            "view_changes_by_node": dict(sorted(self.view_changes_by_node.items())),
            "fault_transitions": list(self.fault_transitions),
        }


class EnergyTimelineObserver(SessionObserver):
    """Per-commit energy samples from the cluster ledger.

    The energy ledger used to be visible only as a post-run report; this
    observer samples ``total_joules()`` at every block commit (and at every
    fault-window edge), yielding the energy-vs-progress timeline the
    adaptive-adversary analysis plots.
    """

    def __init__(self) -> None:
        self._ledger = None
        self.samples: List[Tuple[float, str, float]] = []

    def on_session_start(self, session) -> None:
        self._ledger = session.ledger
        self.samples.append((session.sim.now, "start", self._ledger.total_joules()))

    def on_block_commit(self, pid: int, block, view: int, time: float) -> None:
        self.samples.append((time, f"commit:{pid}:h{block.height}", self._ledger.total_joules()))

    def on_fault_window(self, node: int, kind: str, active: bool, time: float) -> None:
        edge = "open" if active else "close"
        self.samples.append((time, f"fault:{kind}:{edge}@{node}", self._ledger.total_joules()))

    def on_session_end(self, session, result) -> None:
        self.samples.append((session.sim.now, "end", self._ledger.total_joules()))

    def joules_between(self, start: float, end: float) -> float:
        """Energy spent in the virtual-time window ``[start, end]``."""
        inside = [j for t, _, j in self.samples if start <= t <= end]
        if not inside:
            return 0.0
        return max(inside) - min(inside)
