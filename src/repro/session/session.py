"""The Session: steppable run control over a built deployment.

A :class:`Session` owns everything a deployment run needs — simulator,
network, replicas, ledger, observer bus, fault controllers — and exposes
the run as a *controllable* process instead of a one-shot black box:

* :meth:`step` — execute exactly one simulator event;
* :meth:`run_until` — run to a virtual-time deadline and/or until a
  predicate over the live session becomes true, then hand control back;
* :meth:`run_to_quiescence` (alias :meth:`run`) — drive to completion,
  interleaving any registered fault controllers (the adaptive-adversary
  hook);
* :meth:`inspect` — a read-only snapshot of live replica+network state,
  valid at any pause point;
* :meth:`finish` — collect the :class:`~repro.eval.runner.RunResult`
  (idempotent) and notify observers.

Handing control back *is* the pause: between any two events the caller
may inspect replicas, inject faults, or mutate the network, then resume
with another ``step``/``run_until``/``run`` call.  Runs driven entirely
through :meth:`run` are byte-identical to the seed one-shot runner —
the golden trace fingerprints pin this.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.core.ledger import SafetyChecker
from repro.eval.runner import RunResult
from repro.sim.scheduler import SimulationError


class SessionController:
    """Mid-run intervention logic driven by :meth:`Session.run_to_quiescence`.

    Controllers are how *adaptive* adversaries (and future schedulers,
    e.g. partition-and-catch-up orchestration) get a deterministic slice
    of control between events:

    * :meth:`on_attach` runs once when the session starts, before any
      event executes (reset any per-run state here);
    * :meth:`next_wakeup` returns the virtual time at which the controller
      next wants control, or ``None`` when it is done;
    * :meth:`on_wakeup` runs with the session paused at (or after) that
      time and may inspect and mutate live state.

    Determinism contract: decisions must be pure functions of session
    state and virtual time — no wall clock, no unseeded randomness.
    """

    def on_attach(self, session: "Session") -> None:
        """The session is starting; reset per-run state."""

    def next_wakeup(self, session: "Session") -> Optional[float]:
        raise NotImplementedError

    def on_wakeup(self, session: "Session") -> None:
        raise NotImplementedError


class Session:
    """A built deployment with steppable run control.

    Build one with :class:`~repro.session.builder.SessionBuilder` (or the
    :meth:`from_spec` convenience).  The builder's stage artifacts stay
    reachable (``session.builder``) and the frequently used substrates are
    exposed directly: ``sim``, ``network``, ``replicas``, ``ledger``,
    ``config``, ``scheme``, ``client``, ``topology``.
    """

    def __init__(self, builder) -> None:
        self.builder = builder
        self.spec = builder.spec
        self.max_events = builder.max_events
        self.sim = builder.sim
        top = builder.topology_stage
        medium = builder.medium_stage
        crypto = builder.crypto_stage
        replica_stage = builder.replica_stage
        self.topology = top.topology
        self.delta = top.delta
        self.control_id = top.control_id
        self.network = medium.network
        self.ledger = medium.ledger
        self.keystore = crypto.keystore
        self.scheme = crypto.scheme
        self.config = crypto.config
        self.replicas: Dict[int, Any] = replica_stage.replicas
        self.control = replica_stage.control
        self.client = replica_stage.client
        self.commands = builder.workload_stage.commands
        self.controllers = tuple(builder.fault_stage.controllers)
        self.bus = builder.observer_stage.bus
        self.started = False
        self.finished = False
        self._result: Optional[RunResult] = None
        self._executed_at_start = 0

    # ------------------------------------------------------------ convenience
    @classmethod
    def from_spec(cls, spec, **builder_kwargs) -> "Session":
        """Build a session for ``spec`` (see :class:`SessionBuilder` kwargs)."""
        from repro.session.builder import SessionBuilder

        return SessionBuilder(spec, **builder_kwargs).build()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.sim.now

    @property
    def idle(self) -> bool:
        """Whether no simulator events remain."""
        return self.sim.pending_events == 0

    @property
    def result(self) -> Optional[RunResult]:
        """The collected result, or ``None`` before :meth:`finish`."""
        return self._result

    # ---------------------------------------------------------------- control
    def start(self) -> "Session":
        """Start every process (control node first, then replicas in pid
        order — the seed runner's start order) and notify observers.

        Idempotent; called implicitly by the first ``step``/``run``.
        """
        if self.started:
            return self
        self.started = True
        self._executed_at_start = self.sim.executed_events
        for controller in self.controllers:
            controller.on_attach(self)
        self.bus.session_start(self)
        if self.control is not None:
            self.control.start()
        for replica in self.replicas.values():
            replica.start()
        return self

    def step(self) -> bool:
        """Execute the single next event; ``False`` when idle."""
        self.start()
        self._check_budget()
        return self.sim.step()

    def run_until(
        self,
        deadline: Optional[float] = None,
        pred: Optional[Callable[["Session"], bool]] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run until a deadline and/or a predicate holds; returns events run.

        Args:
            deadline: Stop once every event at or before this virtual time
                has executed (the clock advances to ``deadline``).  With a
                predicate, acts as an upper bound instead and the clock is
                not advanced past the last executed event.
            pred: Called on the live session before each event; the run
                pauses as soon as it returns true (or the queue drains).
            max_events: Per-call event budget (defaults to the session's
                remaining budget).
        """
        self.start()
        if deadline is None and pred is None:
            raise ValueError("run_until needs a deadline, a predicate, or both")
        budget = max_events if max_events is not None else self._remaining_budget()
        if pred is None:
            return self.sim.run_until(deadline, max_events=budget)
        executed = 0
        while not pred(self):
            next_time = self.sim.next_event_time()
            if next_time is None:
                break
            if deadline is not None and next_time > deadline:
                break
            if not self.sim.step():  # pragma: no cover - raced with next_time
                break
            executed += 1
            if executed > budget:
                raise SimulationError(f"exceeded max_events={budget}; likely a livelock")
        return executed

    def run_for(self, duration: float, **kwargs) -> int:
        """Run for ``duration`` units of virtual time from now."""
        return self.run_until(self.sim.now + duration, **kwargs)

    def run_to_quiescence(self) -> "Session":
        """Drive the run to completion, interleaving fault controllers.

        Without controllers this is exactly the seed runner's
        ``run_until_idle`` (byte-identical traces).  With controllers, the
        loop alternates: run to the earliest controller wake-up, give each
        due controller its slice of control, repeat — until the queue is
        empty and every controller reports done.
        """
        self.start()
        if not self.controllers:
            self.sim.run_until_idle(max_events=self._remaining_budget())
            return self
        stalls = 0
        while True:
            wakeups = [
                t for c in self.controllers if (t := c.next_wakeup(self)) is not None
            ]
            if not wakeups:
                self.sim.run_until_idle(max_events=self._remaining_budget())
                if all(c.next_wakeup(self) is None for c in self.controllers):
                    return self
                continue
            executed = self.sim.run_until(
                min(wakeups), max_events=self._remaining_budget()
            )
            for controller in self.controllers:
                due = controller.next_wakeup(self)
                if due is not None and due <= self.sim.now + 1e-12:
                    controller.on_wakeup(self)
            # A controller that keeps asking for wake-ups on an idle queue
            # would spin forever; bound the no-progress iterations.
            stalls = stalls + 1 if executed == 0 else 0
            if stalls > 100_000:
                raise SimulationError(
                    "session controllers requested 100000 consecutive wake-ups "
                    "without any event executing; likely a controller livelock"
                )

    def run(self) -> "Session":
        """Alias of :meth:`run_to_quiescence` (chainable)."""
        return self.run_to_quiescence()

    def _remaining_budget(self) -> int:
        return max(1, self.max_events - self._executed_since_start())

    def _executed_since_start(self) -> int:
        return self.sim.executed_events - self._executed_at_start

    def _check_budget(self) -> None:
        if self._executed_since_start() >= self.max_events:
            raise SimulationError(
                f"exceeded max_events={self.max_events}; likely a livelock"
            )

    # ------------------------------------------------------------- inspection
    def inspect(self) -> dict:
        """A read-only snapshot of live state, valid at any pause point."""
        return {
            "now": self.sim.now,
            "pending_events": self.sim.pending_events,
            "executed_events": self.sim.executed_events,
            "views": {pid: r.v_cur for pid, r in sorted(self.replicas.items())},
            "committed_heights": {
                pid: r.committed_height for pid, r in sorted(self.replicas.items())
            },
            "crashed": sorted(pid for pid, r in self.replicas.items() if r.crashed),
            "physical_transmissions": self.network.stats.physical_transmissions,
            "total_joules": self.ledger.total_joules(),
        }

    def current_leader(self) -> int:
        """The leader of the highest view any live replica is in."""
        views = [r.v_cur for r in self.replicas.values() if not r.crashed]
        return self.config.leader_of(max(views)) if views else self.config.leader_of(1)

    # -------------------------------------------------------------- collection
    def finish(self) -> RunResult:
        """Collect the run's metrics (idempotent) and notify observers.

        Mirrors the seed runner's collection exactly; the spec's Byzantine
        set is read *after* the run, so adaptive schedules report the
        victims they actually struck.
        """
        if self._result is not None:
            return self._result
        spec, config, sim = self.spec, self.config, self.sim
        ledger, network, scheme, replicas = self.ledger, self.network, self.scheme, self.replicas
        exclude_from_energy = {self.control_id} if self.control_id is not None else set()
        byzantine = set(spec.byzantine_nodes)
        faulty = byzantine | exclude_from_energy
        if spec.charge_sleep:
            for pid, meter in ledger.meters.items():
                if pid not in faulty:
                    meter.charge_sleep(sim.now, sim.now)
        leader = config.leader_of(1)
        energy = ledger.report(leader=leader, faulty=faulty)
        logs = {pid: replica.log for pid, replica in replicas.items()}
        checker = SafetyChecker(logs, faulty=byzantine)
        safety = checker.check()
        committed_heights = {pid: replica.committed_height for pid, replica in replicas.items()}
        correct_heights = [
            height for pid, height in committed_heights.items() if pid not in byzantine
        ]
        view_changes = max(
            (
                replica.stats.view_changes_completed
                for pid, replica in replicas.items()
                if pid not in byzantine
            ),
            default=0,
        )
        result = RunResult(
            spec=spec,
            config=config,
            energy=energy,
            safety=safety,
            network=network.stats,
            sim_time=sim.now,
            committed_heights=committed_heights,
            min_committed_height=min(correct_heights, default=0),
            view_changes=view_changes,
            equivocations_detected=sum(
                replica.stats.equivocations_detected for replica in replicas.values()
            ),
            blames_sent=sum(replica.stats.blames_sent for replica in replicas.values()),
            sign_operations=scheme.total_sign_operations(),
            verify_operations=scheme.total_verify_operations(),
            commands_dropped=sum(r.txpool.dropped for r in replicas.values()),
            commands_duplicate=sum(r.txpool.duplicates for r in replicas.values()),
            deliveries_dropped=(
                network.impairment.dropped if network.impairment is not None else 0
            ),
            deliveries_retransmitted=(
                network.impairment.retransmits if network.impairment is not None else 0
            ),
            delivery_giveups=(
                network.impairment.giveups if network.impairment is not None else 0
            ),
            txpool_high_watermark=max(
                (r.txpool.high_watermark for r in replicas.values()), default=0
            ),
            replica_snapshots={
                pid: replica.describe() if hasattr(replica, "describe") else {}
                for pid, replica in replicas.items()
            },
        )
        self.bus.session_end(self, result)
        self._result = result
        self.finished = True
        return result
