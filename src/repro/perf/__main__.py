"""CLI entry point: ``python -m repro.perf [--quick] [--out DIR]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.perf.report import SPEEDUP_GATES, run_hotpath_suite


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the hot-path benchmark suite and write BENCH_hotpath.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test scale (fast; numbers not meaningful against the gates)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path.cwd(),
        help="directory to write BENCH_hotpath.json into (default: cwd)",
    )
    args = parser.parse_args(argv)

    report = run_hotpath_suite(quick=args.quick)
    path = report.write(args.out)

    print(f"wrote {path}")
    for entry in report.entries:
        print(
            f"  {entry.name}: {entry.before_s:.4f}s -> {entry.after_s:.4f}s "
            f"({entry.speedup:.2f}x, {entry.metric})"
        )
    if not args.quick:
        gates = report.gates_passed()
        for name, ok in sorted(gates.items()):
            entry = report.entry(name)
            actual = f"{entry.speedup:.2f}x" if entry is not None else "n/a"
            print(
                f"  gate {name}: floor {SPEEDUP_GATES[name]:.1f}x, "
                f"actual {actual}: {'PASS' if ok else 'FAIL'}"
            )
        if not all(gates.values()):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
