"""CLI entry point: ``python -m repro.perf [--quick] [--gate-check] [--out DIR]``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.report import run_hotpath_suite


def check_gates(path: Path) -> int:
    """Validate ``gates.*.passed`` in an existing report; 0 iff all pass.

    CI's ``bench-gate`` step runs this against the committed
    ``BENCH_hotpath.json`` so a regressed (or hand-edited) perf trajectory
    fails the build without re-running the full benchmark suite.
    """
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        print(f"gate check: {path} does not exist (run `make bench` first)")
        return 1
    except json.JSONDecodeError as error:
        print(f"gate check: {path} is not valid JSON: {error}")
        return 1
    gates = payload.get("gates", {})
    if not gates:
        print(f"gate check: {path} has no gates section")
        return 1
    failed = []
    for name, verdict in sorted(gates.items()):
        ok = bool(verdict.get("passed"))
        floor = verdict.get("floor", "?")
        print(f"  gate {name}: floor {floor}x: {'PASS' if ok else 'FAIL'}")
        if not ok:
            failed.append(name)
    if failed:
        print(f"gate check: {len(failed)} gate(s) failing: {', '.join(failed)}")
        return 1
    print("gate check: all gates pass")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the hot-path benchmark suite and write BENCH_hotpath.json.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke-test scale (fast; numbers not meaningful against the gates)",
    )
    parser.add_argument(
        "--gate-check",
        action="store_true",
        help="check gates in the existing BENCH_hotpath.json and exit "
        "(no benchmarks are run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path.cwd(),
        help="directory to write/read BENCH_hotpath.json (default: cwd)",
    )
    args = parser.parse_args(argv)

    if args.gate_check:
        return check_gates(args.out / "BENCH_hotpath.json")

    report = run_hotpath_suite(quick=args.quick)
    path = report.write(args.out)

    if report.last_write_updated_tracked:
        print(f"wrote {path}")
    else:
        print(
            f"{path} unchanged (stable signature identical); "
            f"fresh samples in {path.with_suffix('.latest.json').name}"
        )
    for entry in report.entries:
        print(
            f"  {entry.name}: {entry.before_s:.4f}s -> {entry.after_s:.4f}s "
            f"({entry.speedup:.2f}x, {entry.metric})"
        )
    if not args.quick:
        gates = report.gates_detail()
        for name, verdict in sorted(gates.items()):
            entry = report.entry(name)
            actual = f"{entry.speedup:.2f}x" if entry is not None else "n/a"
            note = f" ({verdict['note']})" if "note" in verdict else ""
            print(
                f"  gate {name}: floor {verdict['floor']:.1f}, "
                f"actual {actual}: {'PASS' if verdict['passed'] else 'FAIL'}{note}"
            )
        if not all(verdict["passed"] for verdict in gates.values()):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
