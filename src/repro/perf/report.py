"""Benchmark report writer: the perf trajectory as data.

A :class:`BenchReport` pairs each benchmark's "before" (legacy mode —
every hot-path optimization disabled) and "after" (optimized) numbers and
writes them to ``BENCH_<name>.json`` at the repo root, so speedups are a
tracked, regression-gated artifact instead of a claim in a commit message.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perf.benchmarks import (
    BenchResult,
    bench_eesmr_steady_state,
    bench_event_throughput,
    bench_flood_fanout,
    bench_matrix_wall_clock,
)
from repro.perf.counters import collect_cache_stats
from repro.perf.legacy import legacy_mode
from repro.perf.saturation import run_saturation_sweep

#: Speedup floors the perf PRs are gated on (see docs/performance.md).
#: ``flood_fanout``/``flood_fanout_n100``/``eesmr_steady_state`` compare
#: the optimized code against ``legacy_mode()`` (the seed's hot path);
#: ``matrix_wall_clock`` compares a serial scenario-matrix sweep against
#: the sharded ``run(parallel=4)`` execution.
SPEEDUP_GATES = {
    "flood_fanout": 3.0,
    "flood_fanout_n100": 2.0,
    "eesmr_steady_state": 2.0,
    "matrix_wall_clock": 1.7,
}

#: Capacity floors on the open-loop saturation sweep: the highest
#: sustainable arrival rate (SLO met, zero drops — virtual time, so the
#: verdict is host-independent) must not regress below the floor.
SATURATION_GATES = {
    "open_loop_saturation": 0.5,
}


@dataclass
class BenchEntry:
    """Before/after timings for one benchmark."""

    name: str
    params: Dict[str, Any]
    metric: str
    work_units: int
    before_s: float
    after_s: float
    before_samples_s: List[float]
    after_samples_s: List[float]

    @property
    def speedup(self) -> float:
        return self.before_s / self.after_s if self.after_s > 0 else float("inf")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": self.params,
            "metric": self.metric,
            "work_units": self.work_units,
            "before_s": round(self.before_s, 6),
            "after_s": round(self.after_s, 6),
            "before_samples_s": [round(s, 6) for s in self.before_samples_s],
            "after_samples_s": [round(s, 6) for s in self.after_samples_s],
            "before_throughput_per_s": round(self.work_units / self.before_s, 2)
            if self.before_s
            else 0.0,
            "after_throughput_per_s": round(self.work_units / self.after_s, 2)
            if self.after_s
            else 0.0,
            "speedup": round(self.speedup, 2),
        }


@dataclass
class BenchReport:
    """A set of before/after benchmark entries plus environment metadata."""

    name: str
    entries: List[BenchEntry] = field(default_factory=list)
    notes: Dict[str, Any] = field(default_factory=dict)
    #: Whether the last :meth:`write` rewrote the tracked JSON (as opposed
    #: to only refreshing the volatile ``.latest`` sidecar).
    last_write_updated_tracked: bool = field(default=False, compare=False)

    def add(self, before: BenchResult, after: BenchResult) -> BenchEntry:
        if before.name != after.name:
            raise ValueError(f"mismatched benchmarks: {before.name} vs {after.name}")
        entry = BenchEntry(
            name=after.name,
            params=after.params,
            metric=after.metric_name,
            work_units=after.work_units,
            before_s=before.best_s,
            after_s=after.best_s,
            before_samples_s=before.samples_s,
            after_samples_s=after.samples_s,
        )
        self.entries.append(entry)
        return entry

    def entry(self, name: str) -> Optional[BenchEntry]:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def gates_detail(self) -> Dict[str, Dict[str, Any]]:
        """Per-gate verdicts: ``{name: {floor, passed[, note]}}``.

        ``matrix_wall_clock`` compares serial against process-pool-sharded
        execution, which only measures anything when the host can schedule
        the workers concurrently: on a host with fewer usable cores than
        the benchmark's ``parallel``, the gate is recorded as passed with
        an explanatory note (the sharding skip-with-reason), never as a
        regression — and never as a fraudulent speedup either, because the
        measured ratio is still in the entry.
        """
        verdicts: Dict[str, Dict[str, Any]] = {}
        for name, floor in SPEEDUP_GATES.items():
            entry = self.entry(name)
            verdict: Dict[str, Any] = {"floor": floor}
            if entry is None:
                verdict["passed"] = False
                verdict["note"] = "benchmark missing from report"
            elif name == "matrix_wall_clock":
                cpus = int(entry.params.get("cpus", 0) or 0)
                workers = int(entry.params.get("parallel", 1) or 1)
                if cpus < workers:
                    verdict["passed"] = True
                    verdict["note"] = (
                        f"not measurable: host has {cpus} usable core(s), "
                        f"sharding gate needs >= {workers}"
                    )
                else:
                    verdict["passed"] = entry.speedup >= floor
            else:
                verdict["passed"] = entry.speedup >= floor
            verdicts[name] = verdict
        saturation = self.notes.get("saturation")
        for name, floor in SATURATION_GATES.items():
            verdict = {"floor": floor}
            if not saturation:
                verdict["passed"] = False
                verdict["note"] = "saturation sweep missing from report"
            else:
                measured = float(saturation.get("max_sustainable_rate", 0.0))
                verdict["passed"] = measured >= floor
                verdict["note"] = (
                    f"max sustainable open-loop rate {measured} "
                    f"(SLO p99 <= {saturation.get('slo_p99')}, zero drops; "
                    f"virtual time, host-independent)"
                )
            verdicts[name] = verdict
        return verdicts

    def gates_passed(self) -> Dict[str, bool]:
        """Whether every gated benchmark meets its speedup floor."""
        return {name: detail["passed"] for name, detail in self.gates_detail().items()}

    def to_dict(self) -> Dict[str, Any]:
        detail = self.gates_detail()
        return {
            "report": self.name,
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "gates": {name: detail[name] for name in sorted(detail)},
            "entries": [entry.to_dict() for entry in self.entries],
            "notes": self.notes,
        }

    def stable_signature(self) -> Dict[str, Any]:
        """The report content that is meaningful across runs.

        Wall-clock samples (and therefore speedups), timestamps and host
        metadata churn on every invocation; gate verdicts and the
        benchmark roster do not.  The tracked ``BENCH_<name>.json`` is
        only rewritten when this signature changes, so ``make bench`` on
        an unchanged tree leaves the worktree clean.
        """
        payload = self.to_dict()
        return _stable_signature(payload)

    def write(self, repo_root: Path) -> Path:
        """Emit the benchmark report; returns the tracked-file path.

        Two artifacts:

        * ``BENCH_<name>.latest.json`` — the full volatile report
          (timestamps, fresh samples), rewritten every run and gitignored;
        * ``BENCH_<name>.json`` — the tracked perf trajectory, rewritten
          only when :meth:`stable_signature` (gate verdicts or the
          benchmark roster) changes.

        :attr:`last_write_updated_tracked` records whether the tracked
        file changed, so callers can tell the user which artifact to look
        at.
        """
        root = Path(repo_root)
        payload = self.to_dict()
        encoded = json.dumps(payload, indent=2, sort_keys=False) + "\n"
        (root / f"BENCH_{self.name}.latest.json").write_text(encoded)
        path = root / f"BENCH_{self.name}.json"
        rewrite = True
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                existing = None
            if existing is not None and _stable_signature(existing) == _stable_signature(payload):
                rewrite = False
        if rewrite:
            path.write_text(encoded)
        self.last_write_updated_tracked = rewrite
        return path


def _stable_signature(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Gate verdicts plus the benchmark roster of a report payload.

    Host-dependent data is excluded on both sides of the comparison: the
    recorded core count (``params.cpus``) and the free-text gate notes
    that embed it would otherwise dirty the tracked file whenever a
    different machine reruns an unchanged tree.
    """

    def stable_params(params: Dict[str, Any]) -> Dict[str, Any]:
        return {key: value for key, value in params.items() if key != "cpus"}

    return {
        "report": payload.get("report"),
        "gates": {
            name: {key: value for key, value in verdict.items() if key != "note"}
            for name, verdict in (payload.get("gates") or {}).items()
        },
        "entries": [
            {
                "name": entry.get("name"),
                "params": stable_params(entry.get("params") or {}),
                "metric": entry.get("metric"),
            }
            for entry in payload.get("entries", ())
        ],
    }


def run_hotpath_suite(quick: bool = False) -> BenchReport:
    """Run the full before/after hot-path suite.

    Args:
        quick: Shrink every workload (smoke-test scale).  Quick mode checks
            that the harness runs end to end; only the full suite produces
            numbers meaningful against the speedup gates.
    """
    if quick:
        event_kw = {"n_events": 5_000, "repeats": 2}
        flood_kw = {"n": 8, "floods": 6, "payload_bytes": 512, "repeats": 2}
        flood100_kw = {
            "n": 12, "floods": 4, "payload_bytes": 256, "repeats": 1,
            "name": "flood_fanout_n100",
        }
        eesmr_kw = {"n": 5, "f": 1, "target_height": 4, "repeats": 2}
        matrix_kw = {
            "protocols": ("eesmr",), "fault_names": ("none",), "media": ("ble",),
            "n": 5, "f": 1, "k": 2, "target_height": 2, "repeats": 1,
        }
        matrix_parallel = 2
    else:
        event_kw = {"n_events": 150_000, "repeats": 3}
        flood_kw = {"n": 40, "floods": 60, "payload_bytes": 2048, "repeats": 3}
        # The n>=100 operating point the ROADMAP names: compiled
        # dissemination plans keep the per-hop path O(1) here.
        flood100_kw = {
            "n": 100, "floods": 40, "payload_bytes": 2048, "repeats": 3,
            "name": "flood_fanout_n100",
        }
        # A larger-n steady state (the ROADMAP's scaling direction) with
        # single-command blocks: the protocol hot path, not workload fill.
        eesmr_kw = {"n": 25, "f": 5, "target_height": 25, "batch_size": 1, "repeats": 7}
        # The canonical 36-cell sweep at the n=7 f=2 operating point.
        matrix_kw = {"n": 7, "f": 2, "k": 3, "target_height": 3, "repeats": 2}
        matrix_parallel = 4

    report = BenchReport(name="hotpath")
    suites = (
        (bench_event_throughput, event_kw),
        (bench_flood_fanout, flood_kw),
        (bench_flood_fanout, flood100_kw),
        (bench_eesmr_steady_state, eesmr_kw),
    )
    for bench, kwargs in suites:
        with legacy_mode():
            before = bench(**kwargs)
        after = bench(**kwargs)
        report.add(before, after)
    # The matrix gate measures sharding, not cache switches: "before" is
    # the same optimized code run serially, "after" shards the cells over
    # a process pool.
    matrix_before = bench_matrix_wall_clock(parallel=1, **matrix_kw)
    matrix_after = bench_matrix_wall_clock(parallel=matrix_parallel, **matrix_kw)
    report.add(matrix_before, matrix_after)
    # The saturation sweep runs in virtual time (deterministic, fast), so
    # quick and full mode run the identical sweep.
    report.notes["saturation"] = run_saturation_sweep().to_dict()
    report.notes["canonical_cache"] = collect_cache_stats()
    report.notes["quick"] = quick
    report.notes["mode"] = (
        "before = legacy mode (all hot-path switches off, seed event queue); "
        "after = optimized defaults; best-of-N wall clock per benchmark. "
        "matrix_wall_clock: before = serial sweep, after = run(parallel=N) "
        "sharded over a process pool (same optimized code both sides)."
    )
    return report
