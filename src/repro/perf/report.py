"""Benchmark report writer: the perf trajectory as data.

A :class:`BenchReport` pairs each benchmark's "before" (legacy mode —
every hot-path optimization disabled) and "after" (optimized) numbers and
writes them to ``BENCH_<name>.json`` at the repo root, so speedups are a
tracked, regression-gated artifact instead of a claim in a commit message.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.perf.benchmarks import (
    BenchResult,
    bench_eesmr_steady_state,
    bench_event_throughput,
    bench_flood_fanout,
)
from repro.perf.counters import collect_cache_stats
from repro.perf.legacy import legacy_mode

#: Speedup floors the hot-path PR is gated on (see docs/performance.md).
SPEEDUP_GATES = {"flood_fanout": 3.0, "eesmr_steady_state": 2.0}


@dataclass
class BenchEntry:
    """Before/after timings for one benchmark."""

    name: str
    params: Dict[str, Any]
    metric: str
    work_units: int
    before_s: float
    after_s: float
    before_samples_s: List[float]
    after_samples_s: List[float]

    @property
    def speedup(self) -> float:
        return self.before_s / self.after_s if self.after_s > 0 else float("inf")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": self.params,
            "metric": self.metric,
            "work_units": self.work_units,
            "before_s": round(self.before_s, 6),
            "after_s": round(self.after_s, 6),
            "before_samples_s": [round(s, 6) for s in self.before_samples_s],
            "after_samples_s": [round(s, 6) for s in self.after_samples_s],
            "before_throughput_per_s": round(self.work_units / self.before_s, 2)
            if self.before_s
            else 0.0,
            "after_throughput_per_s": round(self.work_units / self.after_s, 2)
            if self.after_s
            else 0.0,
            "speedup": round(self.speedup, 2),
        }


@dataclass
class BenchReport:
    """A set of before/after benchmark entries plus environment metadata."""

    name: str
    entries: List[BenchEntry] = field(default_factory=list)
    notes: Dict[str, Any] = field(default_factory=dict)

    def add(self, before: BenchResult, after: BenchResult) -> BenchEntry:
        if before.name != after.name:
            raise ValueError(f"mismatched benchmarks: {before.name} vs {after.name}")
        entry = BenchEntry(
            name=after.name,
            params=after.params,
            metric=after.metric_name,
            work_units=after.work_units,
            before_s=before.best_s,
            after_s=after.best_s,
            before_samples_s=before.samples_s,
            after_samples_s=after.samples_s,
        )
        self.entries.append(entry)
        return entry

    def entry(self, name: str) -> Optional[BenchEntry]:
        for entry in self.entries:
            if entry.name == name:
                return entry
        return None

    def gates_passed(self) -> Dict[str, bool]:
        """Whether every gated benchmark meets its speedup floor."""
        verdicts: Dict[str, bool] = {}
        for name, floor in SPEEDUP_GATES.items():
            entry = self.entry(name)
            verdicts[name] = entry is not None and entry.speedup >= floor
        return verdicts

    def to_dict(self) -> Dict[str, Any]:
        passed = self.gates_passed()
        return {
            "report": self.name,
            "generated_unix": int(time.time()),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "gates": {
                name: {"floor": SPEEDUP_GATES[name], "passed": passed[name]}
                for name in sorted(SPEEDUP_GATES)
            },
            "entries": [entry.to_dict() for entry in self.entries],
            "notes": self.notes,
        }

    def write(self, repo_root: Path) -> Path:
        """Emit ``BENCH_<name>.json`` at the repo root; returns the path."""
        path = Path(repo_root) / f"BENCH_{self.name}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n")
        return path


def run_hotpath_suite(quick: bool = False) -> BenchReport:
    """Run the full before/after hot-path suite.

    Args:
        quick: Shrink every workload (smoke-test scale).  Quick mode checks
            that the harness runs end to end; only the full suite produces
            numbers meaningful against the speedup gates.
    """
    if quick:
        event_kw = {"n_events": 5_000, "repeats": 2}
        flood_kw = {"n": 8, "floods": 6, "payload_bytes": 512, "repeats": 2}
        eesmr_kw = {"n": 5, "f": 1, "target_height": 4, "repeats": 2}
    else:
        event_kw = {"n_events": 150_000, "repeats": 3}
        flood_kw = {"n": 40, "floods": 60, "payload_bytes": 2048, "repeats": 3}
        # A larger-n steady state (the ROADMAP's scaling direction) with
        # single-command blocks: the protocol hot path, not workload fill.
        eesmr_kw = {"n": 25, "f": 5, "target_height": 25, "batch_size": 1, "repeats": 7}

    report = BenchReport(name="hotpath")
    suites = (
        (bench_event_throughput, event_kw),
        (bench_flood_fanout, flood_kw),
        (bench_eesmr_steady_state, eesmr_kw),
    )
    for bench, kwargs in suites:
        with legacy_mode():
            before = bench(**kwargs)
        after = bench(**kwargs)
        report.add(before, after)
    report.notes["canonical_cache"] = collect_cache_stats()
    report.notes["quick"] = quick
    report.notes["mode"] = (
        "before = legacy mode (all hot-path switches off, seed event queue); "
        "after = optimized defaults; best-of-N wall clock per benchmark"
    )
    return report
