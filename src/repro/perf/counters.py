"""Lightweight counters and timers for the benchmark harness.

In-run protocol counters are the session observer
:class:`~repro.session.observers.PerfObserver` (re-exported here):
register it on a session to count events, commits, view changes and
fault-window transitions live, instead of diffing stats objects after
the fact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.crypto.hashing import canonical_cache
from repro.session.observers import PerfObserver

__all__ = ["StageTimer", "PerfObserver", "collect_cache_stats", "time_repeats"]


@dataclass
class StageTimer:
    """Accumulates wall-clock time over named stages (perf diagnostics)."""

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _open: Dict[str, float] = field(default_factory=dict)

    def start(self, stage: str) -> None:
        self._open[stage] = time.perf_counter()

    def stop(self, stage: str) -> float:
        begun = self._open.pop(stage, None)
        if begun is None:
            raise KeyError(f"stage {stage!r} was never started")
        elapsed = time.perf_counter() - begun
        self.totals[stage] = self.totals.get(stage, 0.0) + elapsed
        self.counts[stage] = self.counts.get(stage, 0) + 1
        return elapsed

    def as_dict(self) -> Dict[str, float]:
        return dict(sorted(self.totals.items()))


def time_repeats(fn, repeats: int) -> List[float]:
    """Wall-clock ``fn()`` ``repeats`` times, returning every sample."""
    samples: List[float] = []
    for _ in range(max(1, repeats)):
        begun = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - begun)
    return samples


def collect_cache_stats() -> Dict[str, int]:
    """Snapshot of the process-wide flyweight cache counters."""
    return canonical_cache.stats()
