"""Performance measurement subsystem: benchmarks, counters, bench reports.

``python -m repro.perf`` runs the hot-path suite (each benchmark under
legacy mode and under the optimized defaults) and writes
``BENCH_hotpath.json`` at the repo root.  See ``docs/performance.md``.
"""

from repro.perf.benchmarks import (
    BenchPayload,
    BenchResult,
    bench_eesmr_steady_state,
    bench_event_throughput,
    bench_flood_fanout,
    bench_flood_scaling,
    bench_matrix_wall_clock,
)
from repro.perf.counters import PerfObserver, StageTimer, collect_cache_stats, time_repeats
from repro.perf.legacy import LegacyEventQueue, legacy_mode
from repro.perf.report import (
    SATURATION_GATES,
    SPEEDUP_GATES,
    BenchEntry,
    BenchReport,
    run_hotpath_suite,
)
from repro.perf.saturation import (
    SaturationPoint,
    SaturationSweep,
    run_saturation_sweep,
)

__all__ = [
    "BenchEntry",
    "BenchPayload",
    "BenchReport",
    "BenchResult",
    "LegacyEventQueue",
    "PerfObserver",
    "SATURATION_GATES",
    "SPEEDUP_GATES",
    "SaturationPoint",
    "SaturationSweep",
    "StageTimer",
    "bench_eesmr_steady_state",
    "bench_event_throughput",
    "bench_flood_fanout",
    "bench_flood_scaling",
    "bench_matrix_wall_clock",
    "collect_cache_stats",
    "legacy_mode",
    "run_hotpath_suite",
    "run_saturation_sweep",
    "time_repeats",
]
