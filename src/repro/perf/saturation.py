"""Open-loop saturation sweep: the workload-capacity gate.

Sweeps :class:`~repro.workload.OpenLoopPoisson` arrival rates over a fixed
EESMR deployment with a bounded txpool and a
:class:`~repro.session.metrics.MetricsObserver` SLO, and reports the
highest *sustainable* rate — the largest offered rate whose run met the
p99 commit-latency objective with zero admission drops.

Unlike the wall-clock benchmarks, every number here is **virtual time**:
the sweep is a pure function of its parameters and seed, so the verdict
is host-independent and byte-stable — exactly what a tracked gate in
``BENCH_hotpath.json`` needs.  The capacity being measured is the
protocol pipeline's: with ``batch_size`` commands per block and the 4Δ
commit timer, distinct-command service is ~``batch_size / 4Δ`` per unit
of virtual time, and the sweep's knee sits where offered load crosses it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.txpool import TxPoolOverflowWarning
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.session.metrics import MetricsObserver
from repro.workload import OpenLoopPoisson

#: Default arrival rates swept (commands per unit of virtual time),
#: bracketing the default deployment's ~0.5/s distinct-command capacity.
DEFAULT_RATES = (0.1, 0.25, 0.5, 1.0, 2.0)


@dataclass
class SaturationPoint:
    """One swept rate and the SLO metrics its run produced."""

    rate: float
    offered: int
    committed: int
    dropped: int
    latency_p50: Optional[float]
    latency_p99: Optional[float]
    goodput: float
    queue_high_watermark: int
    slo_met: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rate": self.rate,
            "offered": self.offered,
            "committed": self.committed,
            "dropped": self.dropped,
            "latency_p50": self.latency_p50,
            "latency_p99": self.latency_p99,
            "goodput": round(self.goodput, 6),
            "queue_high_watermark": self.queue_high_watermark,
            "slo_met": self.slo_met,
        }


@dataclass
class SaturationSweep:
    """The sweep's points plus the derived sustainable-rate verdict."""

    slo_p99: float
    params: Dict[str, Any]
    points: List[SaturationPoint] = field(default_factory=list)

    @property
    def max_sustainable_rate(self) -> float:
        """The largest swept rate that met the SLO with zero drops."""
        return max((p.rate for p in self.points if p.slo_met), default=0.0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo_p99": self.slo_p99,
            "params": self.params,
            "points": [point.to_dict() for point in self.points],
            "max_sustainable_rate": self.max_sustainable_rate,
        }


def run_saturation_sweep(
    rates: Sequence[float] = DEFAULT_RATES,
    slo_p99: float = 40.0,
    n: int = 5,
    f: int = 1,
    k: int = 2,
    target_height: int = 60,
    block_interval: float = 0.5,
    batch_size: int = 8,
    txpool_limit: int = 32,
    clients: int = 3,
    seed: int = 17,
) -> SaturationSweep:
    """Sweep open-loop arrival rates and report the saturation knee.

    Each point is one deterministic EESMR run at the given rate; the
    sustainable verdict per point is the observer's ``slo_met`` (p99
    commit latency within ``slo_p99`` *and* no bounded-pool drops).
    Overflow warnings are expected above the knee and silenced here —
    drops are the measurement, not an accident.
    """
    sweep = SaturationSweep(
        slo_p99=slo_p99,
        params={
            "n": n,
            "f": f,
            "k": k,
            "target_height": target_height,
            "block_interval": block_interval,
            "batch_size": batch_size,
            "txpool_limit": txpool_limit,
            "clients": clients,
            "seed": seed,
            "rates": list(rates),
        },
    )
    for rate in rates:
        spec = DeploymentSpec(
            protocol="eesmr",
            n=n,
            f=f,
            k=k,
            target_height=target_height,
            block_interval=block_interval,
            batch_size=batch_size,
            seed=seed,
            workload=OpenLoopPoisson(rate=rate, clients=clients),
            txpool_limit=txpool_limit,
        )
        metrics = MetricsObserver(slo_p99=slo_p99)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TxPoolOverflowWarning)
            ProtocolRunner().session(
                spec, observers=(metrics,)
            ).run_to_quiescence().finish()
        summary = metrics.summary()
        overall = summary["overall"]
        sweep.points.append(
            SaturationPoint(
                rate=rate,
                offered=summary["offered"],
                committed=summary["committed_commands"],
                dropped=summary["dropped"],
                latency_p50=overall["latency_p50"],
                latency_p99=overall["latency_p99"],
                goodput=overall["goodput"],
                queue_high_watermark=summary["queue_high_watermark"],
                slo_met=summary["slo_met"],
            )
        )
    return sweep
