"""Micro and macro benchmark runners for the simulator hot paths.

Four benchmarks cover the layers the hot-path passes optimize:

* :func:`bench_event_throughput` — the event loop alone (bucketed
  calendar queue / tuple-keyed heap vs. dataclass rich comparisons);
* :func:`bench_flood_fanout` — hypergraph flooding with an application
  payload (compiled dissemination plans, flyweight wire sizing, adjacency
  cache, flood-state GC); run at both the n=40 and n=100 operating points;
* :func:`bench_eesmr_steady_state` — a full EESMR run through the protocol
  runner (signature memoization, message digests, everything combined);
* :func:`bench_matrix_wall_clock` — a scenario-matrix sweep end to end,
  comparing serial execution against the sharded
  ``ScenarioMatrix.run(parallel=N)`` process pool.

Every benchmark builds its world from scratch per sample and resets the
process-wide caches first, so samples are independent and "after" numbers
never ride on state warmed by a previous run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.crypto.hashing import canonical_cache
from repro.energy.ledger import ClusterEnergyLedger
from repro.eval.runner import DeploymentSpec, ProtocolRunner
from repro.net.network import SimulatedNetwork
from repro.net.topology import ring_kcast_topology
from repro.perf.counters import time_repeats
from repro.radio.media import MediumKCastAdapter, MediumUnicastAdapter, make_medium
from repro.sim.process import Process
from repro.sim.rng import SeededRNG
from repro.sim.scheduler import Simulator


@dataclass
class BenchResult:
    """One benchmark's timing samples plus its headline throughput metric."""

    name: str
    params: Dict[str, Any]
    samples_s: List[float] = field(default_factory=list)
    metric_name: str = ""
    work_units: int = 0

    @property
    def best_s(self) -> float:
        """Fastest sample — the standard noise-resistant benchmark statistic."""
        return min(self.samples_s)

    @property
    def mean_s(self) -> float:
        return sum(self.samples_s) / len(self.samples_s)

    @property
    def throughput(self) -> float:
        """Work units per second at the best sample."""
        return self.work_units / self.best_s if self.best_s > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": self.params,
            "samples_s": [round(s, 6) for s in self.samples_s],
            "best_s": round(self.best_s, 6),
            "mean_s": round(self.mean_s, 6),
            "metric": self.metric_name,
            "work_units": self.work_units,
            "throughput_per_s": round(self.throughput, 2),
        }


@dataclass(frozen=True)
class BenchPayload:
    """An application-style broadcast payload.

    A frozen dataclass, like every real protocol message — which makes it
    eligible for the flyweight's identity cache.  It deliberately does NOT
    expose ``wire_size_bytes``: sizing it forces the network through
    canonical serialization, the exact per-hop cost the flyweight removes.
    """

    seq: int
    origin: int
    body: str


class _Sink(Process):
    """A process that counts deliveries and does nothing else."""

    def __init__(self, sim: Simulator, pid: int) -> None:
        super().__init__(sim, pid)
        self.received = 0

    def on_message(self, sender: int, message: Any) -> None:
        self.received += 1


def _reset_caches() -> None:
    canonical_cache.clear()


def usable_cpus() -> int:
    """Cores this process may actually run on (affinity-aware).

    The ``matrix_wall_clock`` gate compares serial against sharded
    execution, which is only a meaningful measurement when the host can
    schedule the workers concurrently; the report records this next to
    the measurement so single-core hosts are visible in the artifact.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ------------------------------------------------------------------- micro
def bench_event_throughput(n_events: int = 100_000, repeats: int = 3) -> BenchResult:
    """Schedule-and-run ``n_events`` through a fresh simulator."""

    def run_once() -> None:
        sim = Simulator()
        counter = [0]

        def tick() -> None:
            counter[0] += 1

        # A spread of times so the heap actually sifts, plus same-time ties
        # so the seq tie-break is exercised.
        for i in range(n_events):
            sim.schedule(float(i % 97) + (i % 7) * 0.125, tick)
        sim.run_until_idle(max_events=n_events + 1)

    samples = time_repeats(run_once, repeats)
    return BenchResult(
        name="event_throughput",
        params={"n_events": n_events},
        samples_s=samples,
        metric_name="events/s",
        work_units=n_events,
    )


# ------------------------------------------------------------------- macro
def bench_flood_fanout(
    n: int = 40,
    floods: int = 60,
    payload_bytes: int = 2048,
    k: int = 2,
    medium: str = "ble",
    repeats: int = 3,
    seed: int = 11,
    name: str = "flood_fanout",
) -> BenchResult:
    """Flood ``floods`` application payloads across an n-node k-cast ring.

    Every correct node relays each flood exactly once, so one broadcast is
    O(n·d) physical transmissions — and, before the flyweight pass, O(n·d)
    canonical serializations of the same payload.  ``name`` distinguishes
    operating points in the report (``flood_fanout_n100`` is the gated
    n≥100 point).
    """
    body = "m" * payload_bytes

    def run_once() -> None:
        _reset_caches()
        sim = Simulator()
        topology = ring_kcast_topology(n, k)
        ledger = ClusterEnergyLedger(topology.nodes)
        if medium == "ble":
            kcast_radio, unicast_radio = None, None
        else:
            m = make_medium(medium)
            kcast_radio, unicast_radio = MediumKCastAdapter(m), MediumUnicastAdapter(m)
        network = SimulatedNetwork(
            sim,
            topology,
            ledger,
            rng=SeededRNG(seed),
            kcast_radio=kcast_radio,
            unicast_radio=unicast_radio,
        )
        sinks = [_Sink(sim, pid) for pid in topology.nodes]
        for sink in sinks:
            network.register(sink)
        for i in range(floods):
            network.broadcast(i % n, BenchPayload(seq=i, origin=i % n, body=body))
            sim.run_until_idle()
        expected = floods * n
        delivered = sum(sink.received for sink in sinks)
        if delivered != expected:
            raise RuntimeError(f"flood benchmark delivered {delivered}, expected {expected}")

    samples = time_repeats(run_once, repeats)
    return BenchResult(
        name=name,
        params={
            "n": n,
            "floods": floods,
            "payload_bytes": payload_bytes,
            "k": k,
            "medium": medium,
            "seed": seed,
        },
        samples_s=samples,
        metric_name="deliveries/s",
        work_units=floods * n,
    )


def bench_eesmr_steady_state(
    n: int = 15,
    f: int = 3,
    target_height: int = 30,
    batch_size: int = 4,
    command_payload_bytes: int = 64,
    repeats: int = 3,
    seed: int = 7,
) -> BenchResult:
    """A full EESMR steady-state run through the protocol runner."""

    committed: List[int] = []

    def run_once() -> None:
        _reset_caches()
        spec = DeploymentSpec(
            protocol="eesmr",
            n=n,
            f=f,
            k=2,
            target_height=target_height,
            batch_size=batch_size,
            command_payload_bytes=command_payload_bytes,
            seed=seed,
        )
        result = ProtocolRunner().run(spec)
        if result.min_committed_height < target_height:
            raise RuntimeError(
                f"EESMR benchmark stalled at height {result.min_committed_height}"
            )
        committed.append(result.min_committed_height)

    samples = time_repeats(run_once, repeats)
    return BenchResult(
        name="eesmr_steady_state",
        params={
            "n": n,
            "f": f,
            "target_height": target_height,
            "batch_size": batch_size,
            "command_payload_bytes": command_payload_bytes,
            "seed": seed,
        },
        samples_s=samples,
        metric_name="blocks/s",
        work_units=committed[0] if committed else target_height,
    )


def bench_flood_scaling(
    sizes: tuple = (8, 16, 40, 80, 100),
    floods: int = 20,
    payload_bytes: int = 1024,
    repeats: int = 2,
) -> List[BenchResult]:
    """Flood fan-out across the ROADMAP's operating points n ∈ {8,…,100}."""
    return [
        bench_flood_fanout(n=n, floods=floods, payload_bytes=payload_bytes, repeats=repeats)
        for n in sizes
    ]


def bench_matrix_wall_clock(
    parallel: int = 1,
    protocols: tuple = ("eesmr", "sync-hotstuff", "optsync", "trusted-baseline"),
    fault_names: tuple = ("none", "crash-leader", "equivocate-leader"),
    media: tuple = ("ble", "wifi", "4g-lte"),
    n: int = 7,
    f: int = 2,
    k: int = 3,
    target_height: int = 3,
    seed: int = 41,
    repeats: int = 2,
) -> BenchResult:
    """Run a scenario-matrix sweep end to end at a given parallelism.

    Cells are independent seeded runs, so ``ScenarioMatrix.run(parallel=N)``
    shards them over a process pool; this benchmark measures the whole
    sweep's wall clock (including the pool spin-up and result pickling the
    sharding pays for), which is what the n≥100 matrix growth direction is
    bound by.  Invariants and differential checks stay enabled — a sweep
    that skipped verification would not be measuring the real workload.
    """
    from repro.testkit.scenarios import ScenarioMatrix

    cells_run: List[int] = []

    def run_once() -> None:
        _reset_caches()
        matrix = ScenarioMatrix(
            protocols=protocols,
            fault_names=fault_names,
            media=media,
            n=n,
            f=f,
            k=k,
            target_height=target_height,
            seed=seed,
        )
        report = matrix.run(parallel=parallel)
        if not report.ok:
            raise RuntimeError(
                f"matrix benchmark failed invariants: {report.failures()[:3]}"
            )
        cells_run.append(report.cells_run)

    samples = time_repeats(run_once, repeats)
    return BenchResult(
        name="matrix_wall_clock",
        params={
            "parallel": parallel,
            "cpus": usable_cpus(),
            "protocols": list(protocols),
            "fault_names": list(fault_names),
            "media": list(media),
            "n": n,
            "f": f,
            "k": k,
            "target_height": target_height,
            "seed": seed,
        },
        samples_s=samples,
        metric_name="cells/s",
        work_units=cells_run[0] if cells_run else 0,
    )
