"""Legacy (pre-optimization) execution mode for honest before/after numbers.

The hot-path optimizations — flyweight canonicalization, tuple-keyed event
heap, flood-state GC, adjacency caching, lazy trace/energy annotations —
are behind switches.  :func:`legacy_mode` flips every switch back to the
seed behaviour and additionally swaps in :class:`LegacyEventQueue`, a
faithful copy of the seed's ``@dataclass(order=True)`` heap, so the
benchmark suite can measure "before" and "after" within one process using
the exact same workload code.

A few algorithmic repairs intentionally have *no* switch and therefore
speed up both sides equally: the early-stop ``CommittedLog.commit``, the
amortized ``BlockStore`` ancestry set, and the per-block hash/size memos.
The "before" numbers are thus slightly *faster* than the true seed, which
biases every reported speedup downward — the conservative direction for a
gated number.

The legacy mode is *behaviour preserving*: a run under ``legacy_mode()``
produces byte-identical traces to an optimized run — only the wall-clock
and memory profiles differ.  That is the determinism contract the
benchmark gate rides on.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.core import messages as _messages
from repro.crypto.hashing import canonical_cache
from repro.crypto.signatures import SignatureScheme
from repro.net.hypergraph import Hypergraph
from repro.net.network import SimulatedNetwork
from repro.sim.scheduler import Simulator


@dataclass(order=True)
class LegacyEvent:
    """The seed's rich-comparison event record (kept verbatim for timing)."""

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True

    @property
    def active(self) -> bool:
        return not self.cancelled


class LegacyEventQueue:
    """The seed's event queue: dataclass entries, rich-comparison heap ops."""

    def __init__(self) -> None:
        self._heap: list[LegacyEvent] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> LegacyEvent:
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        event = LegacyEvent(
            time=time, priority=priority, seq=next(self._counter), callback=callback, label=label
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[LegacyEvent]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: LegacyEvent) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0


@contextmanager
def legacy_mode() -> Iterator[None]:
    """Run the enclosed code with every hot-path optimization disabled.

    Restores all switches on exit, even on error.  Not reentrant and not
    thread-safe — it mutates process-wide class attributes, which is fine
    for a benchmark harness and nothing else.
    """
    saved = (
        canonical_cache.enabled,
        SignatureScheme.cache_operations,
        Hypergraph.cache_topology,
        SimulatedNetwork.gc_floods,
        SimulatedNetwork.use_edge_caches,
        SimulatedNetwork.use_compiled_plans,
        SimulatedNetwork.eager_annotations,
        Simulator.queue_factory,
    )
    saved_flyweight = _messages.flyweight_enabled()
    canonical_cache.enabled = False
    SignatureScheme.cache_operations = False
    Hypergraph.cache_topology = False
    SimulatedNetwork.gc_floods = False
    SimulatedNetwork.use_edge_caches = False
    SimulatedNetwork.use_compiled_plans = False
    SimulatedNetwork.eager_annotations = True
    Simulator.queue_factory = LegacyEventQueue
    _messages.set_flyweight_enabled(False)
    try:
        yield
    finally:
        (
            canonical_cache.enabled,
            SignatureScheme.cache_operations,
            Hypergraph.cache_topology,
            SimulatedNetwork.gc_floods,
            SimulatedNetwork.use_edge_caches,
            SimulatedNetwork.use_compiled_plans,
            SimulatedNetwork.eager_annotations,
            Simulator.queue_factory,
        ) = saved
        _messages.set_flyweight_enabled(saved_flyweight)
