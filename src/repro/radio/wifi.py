"""WiFi medium (thin re-export of the Table 1 tabulated model).

Kept as its own module so configuration code and the feasible-region
analysis can refer to ``repro.radio.wifi.WiFiMedium`` explicitly, mirroring
how the paper's Fig. 1 scenario puts the CPS nodes on WiFi while the
trusted control node sits on 4G.
"""

from __future__ import annotations

from repro.radio.media import TabulatedMediumModel, wifi_medium


class WiFiMedium(TabulatedMediumModel):
    """WiFi energy model backed by the paper's Table 1 measurements."""

    def __init__(self) -> None:
        base = wifi_medium()
        super().__init__("wifi", dict(base._send), dict(base._recv))
