"""BLE advertisement k-cast model.

The paper's CPS test bed realizes k-casts as BLE advertisement packets:

* the GAP specification caps advertisement payloads at 25 bytes, so larger
  protocol messages are fragmented;
* advertisements are unreliable link-layer packets, so each fragment is
  transmitted ``redundancy`` times to reach the target k-cast reliability
  (see :mod:`repro.radio.reliability`);
* the paper's measured operating point is ≈5.3 mJ per 25-byte message at
  the sender and ≈9.98 mJ at each receiver for 99.99 % reliability with
  ``k = 7``, which calibrates the per-packet costs used here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.radio.reliability import (
    FOUR_NINES,
    AdvertisementLossModel,
    DEFAULT_ADVERTISEMENT_LOSS,
)

#: Maximum advertisement payload (bytes) allowed by the BLE GAP specification.
BLE_ADVERTISEMENT_PAYLOAD_BYTES = 25

#: Energy to transmit one advertisement packet once (mJ).  Together with the
#: redundancy needed for four-nines reliability at k = 7 (8 copies with the
#: default loss model) this reproduces the paper's ≈5.3 mJ per message.
ADVERTISEMENT_TX_ENERGY_MJ = 0.6625

#: Energy for one receiver to scan/receive one advertisement slot (mJ).  The
#: paper measured receivers to be more expensive than senders (9.98 mJ vs
#: 5.3 mJ) because they scan continuously in a noisy RF environment.
ADVERTISEMENT_RX_ENERGY_MJ = 1.2475

#: Time to transmit one 25-byte fragment reliably (seconds).  The paper
#: observes "bounded 200 ms to transmit a 25 byte message with 99.99 %
#: reliability over a multicast link in BLE, with k = 7".
ADVERTISEMENT_FRAGMENT_TIME_S = 0.2


def fragments_for_payload(payload_bytes: int) -> int:
    """Number of 25-byte advertisement fragments needed for a payload."""
    if payload_bytes < 0:
        raise ValueError("payload size cannot be negative")
    if payload_bytes == 0:
        return 1
    return math.ceil(payload_bytes / BLE_ADVERTISEMENT_PAYLOAD_BYTES)


@dataclass(frozen=True)
class KCastTransmissionCost:
    """Full cost of reliably k-casting one protocol message."""

    payload_bytes: int
    k: int
    fragments: int
    redundancy: int
    reliability: float
    sender_energy_j: float
    per_receiver_energy_j: float
    duration_s: float

    @property
    def total_receiver_energy_j(self) -> float:
        """Energy summed over all ``k`` receivers."""
        return self.per_receiver_energy_j * self.k

    @property
    def total_energy_j(self) -> float:
        """Sender plus all receivers."""
        return self.sender_energy_j + self.total_receiver_energy_j


class BleAdvertisementKCast:
    """Reliable k-cast built from redundant BLE advertisements.

    Args:
        loss_model: Per-transmission loss model; defaults to the calibrated
            one from :mod:`repro.radio.reliability`.
        target_reliability: The per-k-cast delivery guarantee; the paper
            standardises on 99.99 %.
        tx_energy_per_packet_mj / rx_energy_per_packet_mj: Per-advertisement
            energies (defaults reproduce the measured operating point).
    """

    name = "ble-advertisement-kcast"

    def __init__(
        self,
        loss_model: AdvertisementLossModel | None = None,
        target_reliability: float = FOUR_NINES,
        tx_energy_per_packet_mj: float = ADVERTISEMENT_TX_ENERGY_MJ,
        rx_energy_per_packet_mj: float = ADVERTISEMENT_RX_ENERGY_MJ,
        fragment_time_s: float = ADVERTISEMENT_FRAGMENT_TIME_S,
    ) -> None:
        self.loss_model = loss_model or AdvertisementLossModel(DEFAULT_ADVERTISEMENT_LOSS)
        self.target_reliability = target_reliability
        self.tx_energy_per_packet_mj = tx_energy_per_packet_mj
        self.rx_energy_per_packet_mj = rx_energy_per_packet_mj
        self.fragment_time_s = fragment_time_s

    # ------------------------------------------------------------ modelling
    def redundancy_for(self, k: int) -> int:
        """Redundancy factor needed to hit the target reliability for ``k`` receivers."""
        return self.loss_model.redundancy_for_reliability(k, self.target_reliability)

    def transmission_cost(self, payload_bytes: int, k: int) -> KCastTransmissionCost:
        """Energy and duration to reliably k-cast ``payload_bytes`` to ``k`` receivers."""
        if k < 1:
            raise ValueError("k must be at least 1")
        fragments = fragments_for_payload(payload_bytes)
        redundancy = self.redundancy_for(k)
        sender_mj = fragments * redundancy * self.tx_energy_per_packet_mj
        receiver_mj = fragments * redundancy * self.rx_energy_per_packet_mj
        reliability = self.loss_model.kcast_reliability(k, redundancy) ** fragments
        return KCastTransmissionCost(
            payload_bytes=payload_bytes,
            k=k,
            fragments=fragments,
            redundancy=redundancy,
            reliability=reliability,
            sender_energy_j=sender_mj / 1000.0,
            per_receiver_energy_j=receiver_mj / 1000.0,
            duration_s=fragments * self.fragment_time_s,
        )

    # ------------------------------------------------- MediumEnergyModel API
    def send_energy_j(self, size_bytes: int, k: int = 7) -> float:
        """Sender energy (J) for one reliable k-cast of ``size_bytes``."""
        return self.transmission_cost(size_bytes, k).sender_energy_j

    def recv_energy_j(self, size_bytes: int, k: int = 7) -> float:
        """Per-receiver energy (J) for one reliable k-cast of ``size_bytes``."""
        return self.transmission_cost(size_bytes, k).per_receiver_energy_j

    def message_energy_25b(self, k: int) -> tuple[float, float]:
        """(sender mJ, receiver mJ) for one 25-byte message — the paper's headline numbers."""
        cost = self.transmission_cost(BLE_ADVERTISEMENT_PAYLOAD_BYTES, k)
        return cost.sender_energy_j * 1000.0, cost.per_receiver_energy_j * 1000.0
