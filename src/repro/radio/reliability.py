"""BLE advertisement loss model and the reliability-vs-redundancy trade-off.

BLE advertisements are link-layer packets with no retransmission, so the
paper makes k-casts reliable by sending each fragment multiple times
("redundant transmissions") and measures how the k-cast failure rate drops
as the redundancy factor — and therefore the energy per message — grows
(Fig. 2a).  The model here is the standard independent-loss one:

* a single advertisement transmission is missed by one receiver with
  probability ``p_loss``;
* with redundancy ``r`` a receiver misses all copies with probability
  ``p_loss ** r``;
* a k-cast *succeeds* only if **all** ``k`` receivers get the fragment, so
  the k-cast failure probability is ``1 - (1 - p_loss**r)**k``.

The default ``p_loss`` is calibrated so that the redundancy needed for
99.99 % k-cast reliability at ``k = 7`` matches the paper's measured
operating point (≈5.3 mJ sender / ≈9.98 mJ receiver per 25-byte message).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Per-receiver, per-transmission advertisement loss probability calibrated
#: against the paper's Fig. 2a operating point: with this loss rate, eight
#: redundant transmissions reach four-nines reliability for a k = 7 cast,
#: which prices a 25-byte message at ~5.3 mJ (sender) / ~9.98 mJ (receiver).
DEFAULT_ADVERTISEMENT_LOSS = 0.2475

#: The reliability target the paper standardises on ("four nines").
FOUR_NINES = 0.9999


@dataclass(frozen=True)
class ReliabilityPoint:
    """One point of the Fig. 2a trade-off curve."""

    k: int
    redundancy: int
    failure_probability: float
    sender_energy_mj: float
    receiver_energy_mj: float

    @property
    def failure_percent(self) -> float:
        return self.failure_probability * 100.0

    @property
    def reliability(self) -> float:
        return 1.0 - self.failure_probability


class AdvertisementLossModel:
    """Independent-loss model for BLE advertisement k-casts."""

    def __init__(self, p_loss: float = DEFAULT_ADVERTISEMENT_LOSS) -> None:
        if not 0.0 < p_loss < 1.0:
            raise ValueError(f"p_loss must be in (0, 1), got {p_loss}")
        self.p_loss = p_loss

    def receiver_miss_probability(self, redundancy: int) -> float:
        """Probability one receiver misses every one of ``redundancy`` copies."""
        if redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        return self.p_loss ** redundancy

    def kcast_failure_probability(self, k: int, redundancy: int) -> float:
        """Probability that at least one of ``k`` receivers misses the fragment."""
        if k < 1:
            raise ValueError("k must be at least 1")
        per_receiver_ok = 1.0 - self.receiver_miss_probability(redundancy)
        return 1.0 - per_receiver_ok ** k

    def kcast_reliability(self, k: int, redundancy: int) -> float:
        """Probability that all ``k`` receivers get the fragment."""
        return 1.0 - self.kcast_failure_probability(k, redundancy)

    def redundancy_for_reliability(self, k: int, target: float = FOUR_NINES, max_redundancy: int = 64) -> int:
        """Smallest redundancy factor achieving the target k-cast reliability."""
        if not 0.0 < target < 1.0:
            raise ValueError(f"target reliability must be in (0, 1), got {target}")
        for redundancy in range(1, max_redundancy + 1):
            if self.kcast_reliability(k, redundancy) >= target:
                return redundancy
        raise ValueError(
            f"cannot reach reliability {target} for k={k} within redundancy {max_redundancy}"
        )

    def tradeoff_curve(
        self,
        k: int,
        tx_energy_per_packet_mj: float,
        rx_energy_per_packet_mj: float,
        max_redundancy: int = 10,
    ) -> list[ReliabilityPoint]:
        """The Fig. 2a curve: failure rate vs energy as redundancy grows."""
        points = []
        for redundancy in range(1, max_redundancy + 1):
            points.append(
                ReliabilityPoint(
                    k=k,
                    redundancy=redundancy,
                    failure_probability=self.kcast_failure_probability(k, redundancy),
                    sender_energy_mj=redundancy * tx_energy_per_packet_mj,
                    receiver_energy_mj=redundancy * rx_energy_per_packet_mj,
                )
            )
        return points
