"""4G LTE medium (thin re-export of the Table 1 tabulated model).

This is the "expensive" medium of the paper's trusted-baseline scenario:
CPS nodes talk to the trusted control node over 4G, which costs roughly an
order of magnitude more per byte than WiFi and three orders of magnitude
more than BLE.
"""

from __future__ import annotations

from repro.radio.media import TabulatedMediumModel, lte_medium


class LteMedium(TabulatedMediumModel):
    """4G LTE energy model backed by the paper's Table 1 measurements."""

    def __init__(self) -> None:
        base = lte_medium()
        super().__init__("4g-lte", dict(base._send), dict(base._recv))
