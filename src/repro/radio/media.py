"""Communication-medium energy models (Table 1 of the paper).

The paper measures the energy to send and receive messages of various sizes
over BLE, 4G LTE and WiFi (Table 1).  Those measurements are reproduced
here as :data:`TABLE1_MEDIA_ENERGY_MJ` and wrapped in medium models that
can price arbitrary message sizes by linear interpolation/extrapolation of
the measured rows.

Units: the table stores milliJoules (as the paper does); the model API
returns Joules, because the energy meters account in Joules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True)
class MediaEnergyRow:
    """One row of Table 1: energy (mJ) per message of a given size."""

    message_size_bytes: int
    ble_send_mj: float
    ble_recv_mj: float
    ble_multicast_mj: float
    lte_send_mj: float
    lte_recv_mj: float
    wifi_send_mj: float
    wifi_recv_mj: float


#: Table 1 of the paper, verbatim (sizes in bytes, energies in mJ).
TABLE1_MEDIA_ENERGY_MJ: tuple[MediaEnergyRow, ...] = (
    MediaEnergyRow(256, 0.73, 0.55, 0.58, 494.84, 69.54, 81.20, 66.66),
    MediaEnergyRow(512, 1.31, 1.11, 1.17, 989.68, 139.08, 153.98, 123.23),
    MediaEnergyRow(1024, 2.93, 2.64, 2.35, 1979.36, 278.17, 310.54, 231.52),
    MediaEnergyRow(2048, 5.91, 5.23, 4.70, 3958.72, 556.35, 610.55, 423.58),
)


class MediumEnergyModel:
    """Abstract energy model for one communication medium."""

    name: str = "medium"

    def send_energy_j(self, size_bytes: int) -> float:
        """Energy (J) to transmit a message of ``size_bytes``."""
        raise NotImplementedError

    def recv_energy_j(self, size_bytes: int) -> float:
        """Energy (J) to receive a message of ``size_bytes``."""
        raise NotImplementedError

    def roundtrip_energy_j(self, size_bytes: int) -> float:
        """Convenience: energy to send and receive the same payload."""
        return self.send_energy_j(size_bytes) + self.recv_energy_j(size_bytes)


class LinearMediumModel(MediumEnergyModel):
    """A medium priced as ``base + per_byte * size`` for send and receive."""

    def __init__(
        self,
        name: str,
        send_base_j: float,
        send_per_byte_j: float,
        recv_base_j: float,
        recv_per_byte_j: float,
    ) -> None:
        self.name = name
        self.send_base_j = send_base_j
        self.send_per_byte_j = send_per_byte_j
        self.recv_base_j = recv_base_j
        self.recv_per_byte_j = recv_per_byte_j

    def send_energy_j(self, size_bytes: int) -> float:
        _check_size(size_bytes)
        return self.send_base_j + self.send_per_byte_j * size_bytes

    def recv_energy_j(self, size_bytes: int) -> float:
        _check_size(size_bytes)
        return self.recv_base_j + self.recv_per_byte_j * size_bytes


class TabulatedMediumModel(MediumEnergyModel):
    """A medium priced by interpolating a (size -> mJ) table.

    Sizes between two measured points are linearly interpolated; sizes above
    the largest measured point are extrapolated with the last segment's
    slope; sizes below the smallest point are scaled proportionally (the
    measured rows are close to proportional in size already).
    """

    def __init__(self, name: str, send_table_mj: Dict[int, float], recv_table_mj: Dict[int, float]) -> None:
        if not send_table_mj or not recv_table_mj:
            raise ValueError("tables must be non-empty")
        self.name = name
        self._send = sorted(send_table_mj.items())
        self._recv = sorted(recv_table_mj.items())

    @staticmethod
    def _interp(table: Sequence[tuple[int, float]], size_bytes: int) -> float:
        sizes = [s for s, _ in table]
        values = [v for _, v in table]
        if size_bytes <= sizes[0]:
            return values[0] * (size_bytes / sizes[0])
        if size_bytes >= sizes[-1]:
            if len(sizes) == 1:
                return values[-1] * (size_bytes / sizes[-1])
            slope = (values[-1] - values[-2]) / (sizes[-1] - sizes[-2])
            return values[-1] + slope * (size_bytes - sizes[-1])
        for (s0, v0), (s1, v1) in zip(table, table[1:]):
            if s0 <= size_bytes <= s1:
                fraction = (size_bytes - s0) / (s1 - s0)
                return v0 + fraction * (v1 - v0)
        return values[-1]

    def send_energy_j(self, size_bytes: int) -> float:
        _check_size(size_bytes)
        return self._interp(self._send, size_bytes) / 1000.0

    def recv_energy_j(self, size_bytes: int) -> float:
        _check_size(size_bytes)
        return self._interp(self._recv, size_bytes) / 1000.0


def _check_size(size_bytes: int) -> None:
    if size_bytes < 0:
        raise ValueError(f"message size cannot be negative: {size_bytes}")


def _column(rows: tuple[MediaEnergyRow, ...], attr: str) -> Dict[int, float]:
    return {row.message_size_bytes: getattr(row, attr) for row in rows}


def wifi_medium() -> TabulatedMediumModel:
    """WiFi energy model from Table 1."""
    return TabulatedMediumModel(
        "wifi",
        _column(TABLE1_MEDIA_ENERGY_MJ, "wifi_send_mj"),
        _column(TABLE1_MEDIA_ENERGY_MJ, "wifi_recv_mj"),
    )


def lte_medium() -> TabulatedMediumModel:
    """4G LTE energy model from Table 1 (the "expensive" trusted-node medium)."""
    return TabulatedMediumModel(
        "4g-lte",
        _column(TABLE1_MEDIA_ENERGY_MJ, "lte_send_mj"),
        _column(TABLE1_MEDIA_ENERGY_MJ, "lte_recv_mj"),
    )


def ble_link_medium() -> TabulatedMediumModel:
    """Raw BLE link-layer energy model from Table 1.

    These are the paper's link-layer packet costs and do not include the
    redundancy needed for reliable advertisement k-casts; use
    :class:`repro.radio.ble.BleAdvertisementKCast` for the reliable
    multicast model and :class:`repro.radio.gatt.BleGattUnicast` for the
    reliable connection-based unicast model.
    """
    return TabulatedMediumModel(
        "ble-link",
        _column(TABLE1_MEDIA_ENERGY_MJ, "ble_send_mj"),
        _column(TABLE1_MEDIA_ENERGY_MJ, "ble_recv_mj"),
    )


def ble_multicast_link_medium() -> TabulatedMediumModel:
    """Raw BLE advertisement (multicast) link-layer energy model from Table 1."""
    return TabulatedMediumModel(
        "ble-multicast-link",
        _column(TABLE1_MEDIA_ENERGY_MJ, "ble_multicast_mj"),
        _column(TABLE1_MEDIA_ENERGY_MJ, "ble_recv_mj"),
    )


class MediumUnicastAdapter:
    """Adapts a :class:`MediumEnergyModel` to the unicast-radio interface.

    The simulated network prices point-to-point sends through an object
    exposing ``transmission_cost(size)``; this adapter lets any Table 1
    medium (e.g. 4G LTE for the trusted-baseline protocol) play that role.
    """

    def __init__(self, medium: MediumEnergyModel, link_time_s: float = 0.1) -> None:
        from repro.radio.gatt import UnicastTransmissionCost

        self._cost_type = UnicastTransmissionCost
        self.medium = medium
        self.name = f"{medium.name}-unicast"
        self.link_time_s = link_time_s

    def transmission_cost(self, payload_bytes: int):
        """Energy and time of one unicast transfer over the wrapped medium."""
        return self._cost_type(
            payload_bytes=payload_bytes,
            sender_energy_j=self.medium.send_energy_j(payload_bytes),
            receiver_energy_j=self.medium.recv_energy_j(payload_bytes),
            duration_s=self.link_time_s,
        )

    def send_energy_j(self, size_bytes: int) -> float:
        return self.medium.send_energy_j(size_bytes)

    def recv_energy_j(self, size_bytes: int) -> float:
        return self.medium.recv_energy_j(size_bytes)


class MediumKCastAdapter:
    """Adapts a :class:`MediumEnergyModel` to the k-cast radio interface.

    The simulated network prices hyper-edge transmissions through an object
    exposing ``transmission_cost(size, k)``.  WiFi and LTE are broadcast
    media at the link layer: one transmission reaches all ``k`` receivers,
    each of which pays its receive cost.  This adapter lets the scenario
    matrix run every protocol over every Table 1 medium, not just the BLE
    advertisement k-cast of the paper's test bed.
    """

    def __init__(self, medium: MediumEnergyModel, link_time_s: float = 0.1) -> None:
        from repro.radio.ble import KCastTransmissionCost

        self._cost_type = KCastTransmissionCost
        self.medium = medium
        self.name = f"{medium.name}-kcast"
        self.link_time_s = link_time_s

    def transmission_cost(self, payload_bytes: int, k: int):
        """Energy and time of one k-cast transfer over the wrapped medium."""
        if k < 1:
            raise ValueError("k must be at least 1")
        return self._cost_type(
            payload_bytes=payload_bytes,
            k=k,
            fragments=1,
            redundancy=1,
            reliability=1.0,
            sender_energy_j=self.medium.send_energy_j(payload_bytes),
            per_receiver_energy_j=self.medium.recv_energy_j(payload_bytes),
            duration_s=self.link_time_s,
        )

    def send_energy_j(self, size_bytes: int, k: int = 1) -> float:
        return self.medium.send_energy_j(size_bytes)

    def recv_energy_j(self, size_bytes: int, k: int = 1) -> float:
        return self.medium.recv_energy_j(size_bytes)


#: Registry used by configuration code ("give me the medium called X").
MEDIUM_FACTORIES = {
    "wifi": wifi_medium,
    "4g-lte": lte_medium,
    "ble-link": ble_link_medium,
    "ble-multicast-link": ble_multicast_link_medium,
}


def make_medium(name: str) -> MediumEnergyModel:
    """Instantiate a medium model by name."""
    key = name.lower()
    if key not in MEDIUM_FACTORIES:
        known = ", ".join(sorted(MEDIUM_FACTORIES))
        raise KeyError(f"unknown medium {name!r}; known: {known}")
    return MEDIUM_FACTORIES[key]()
