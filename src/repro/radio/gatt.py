"""BLE GATT unicast model.

The alternative to advertisement k-casts that the paper evaluates in
Fig. 2b: connection-based GATT transfers.  GATT handles packet loss and
retransmission at the link layer, so no application-level redundancy is
needed, but each transfer pays a per-connection overhead and the sender
must repeat the transfer once per neighbour (``d_out`` unicasts replace one
k-cast).  The paper notes the boards cannot hold concurrent GATT
connections, which adds a serialisation time overhead captured by
``connection_time_s``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Energy to establish/maintain one GATT connection for one transfer (mJ).
GATT_CONNECTION_OVERHEAD_MJ = 2.5

#: Marginal energy per payload byte transferred over GATT, sender side (mJ).
GATT_TX_ENERGY_PER_BYTE_MJ = 0.022

#: Marginal energy per payload byte transferred over GATT, receiver side (mJ).
GATT_RX_ENERGY_PER_BYTE_MJ = 0.020

#: Time overhead of a (serial) GATT connection + transfer (seconds).
GATT_CONNECTION_TIME_S = 0.35


@dataclass(frozen=True)
class UnicastTransmissionCost:
    """Cost of delivering one payload to one neighbour over GATT."""

    payload_bytes: int
    sender_energy_j: float
    receiver_energy_j: float
    duration_s: float


class BleGattUnicast:
    """Reliable, connection-based BLE unicast."""

    name = "ble-gatt-unicast"

    def __init__(
        self,
        connection_overhead_mj: float = GATT_CONNECTION_OVERHEAD_MJ,
        tx_per_byte_mj: float = GATT_TX_ENERGY_PER_BYTE_MJ,
        rx_per_byte_mj: float = GATT_RX_ENERGY_PER_BYTE_MJ,
        connection_time_s: float = GATT_CONNECTION_TIME_S,
    ) -> None:
        self.connection_overhead_mj = connection_overhead_mj
        self.tx_per_byte_mj = tx_per_byte_mj
        self.rx_per_byte_mj = rx_per_byte_mj
        self.connection_time_s = connection_time_s

    def transmission_cost(self, payload_bytes: int) -> UnicastTransmissionCost:
        """Energy and time for one unicast transfer of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        sender_mj = self.connection_overhead_mj + self.tx_per_byte_mj * payload_bytes
        receiver_mj = self.connection_overhead_mj + self.rx_per_byte_mj * payload_bytes
        return UnicastTransmissionCost(
            payload_bytes=payload_bytes,
            sender_energy_j=sender_mj / 1000.0,
            receiver_energy_j=receiver_mj / 1000.0,
            duration_s=self.connection_time_s,
        )

    def send_energy_j(self, size_bytes: int) -> float:
        """Sender energy (J) for one unicast transfer."""
        return self.transmission_cost(size_bytes).sender_energy_j

    def recv_energy_j(self, size_bytes: int) -> float:
        """Receiver energy (J) for one unicast transfer."""
        return self.transmission_cost(size_bytes).receiver_energy_j

    def fanout_send_energy_j(self, size_bytes: int, d_out: int) -> float:
        """Sender energy (J) to emulate a k-cast with ``d_out`` serial unicasts."""
        if d_out < 0:
            raise ValueError("d_out cannot be negative")
        return d_out * self.send_energy_j(size_bytes)

    def fanout_duration_s(self, d_out: int) -> float:
        """Serialised duration of ``d_out`` unicasts (no concurrent connections)."""
        if d_out < 0:
            raise ValueError("d_out cannot be negative")
        return d_out * self.connection_time_s
