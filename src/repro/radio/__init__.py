"""Radio / communication-medium energy models.

This package reproduces the measurement layer of the paper's CPS test bed:

* Table 1 per-message energies for BLE, 4G LTE and WiFi
  (:mod:`repro.radio.media`);
* the BLE advertisement k-cast model with fragmentation, redundancy and the
  reliability-vs-energy trade-off of Fig. 2a (:mod:`repro.radio.ble`,
  :mod:`repro.radio.reliability`);
* the connection-based GATT unicast alternative of Fig. 2b
  (:mod:`repro.radio.gatt`).
"""

from repro.radio.media import (
    MediaEnergyRow,
    TABLE1_MEDIA_ENERGY_MJ,
    MediumEnergyModel,
    LinearMediumModel,
    TabulatedMediumModel,
    wifi_medium,
    lte_medium,
    ble_link_medium,
    ble_multicast_link_medium,
    make_medium,
)
from repro.radio.reliability import (
    AdvertisementLossModel,
    ReliabilityPoint,
    DEFAULT_ADVERTISEMENT_LOSS,
    FOUR_NINES,
)
from repro.radio.ble import (
    BleAdvertisementKCast,
    KCastTransmissionCost,
    BLE_ADVERTISEMENT_PAYLOAD_BYTES,
    fragments_for_payload,
)
from repro.radio.gatt import BleGattUnicast, UnicastTransmissionCost
from repro.radio.wifi import WiFiMedium
from repro.radio.lte import LteMedium

__all__ = [
    "MediaEnergyRow",
    "TABLE1_MEDIA_ENERGY_MJ",
    "MediumEnergyModel",
    "LinearMediumModel",
    "TabulatedMediumModel",
    "wifi_medium",
    "lte_medium",
    "ble_link_medium",
    "ble_multicast_link_medium",
    "make_medium",
    "AdvertisementLossModel",
    "ReliabilityPoint",
    "DEFAULT_ADVERTISEMENT_LOSS",
    "FOUR_NINES",
    "BleAdvertisementKCast",
    "KCastTransmissionCost",
    "BLE_ADVERTISEMENT_PAYLOAD_BYTES",
    "fragments_for_payload",
    "BleGattUnicast",
    "UnicastTransmissionCost",
    "WiFiMedium",
    "LteMedium",
]
