"""Hypergraph network model (Appendix A of the paper).

A CPS deployment where nodes can reach several neighbours with a single
wireless multicast is modelled as a hypergraph ``H = (N, E)`` whose
hyper-edges are ``(sender, receiver-set)`` pairs (Definition A.1).  This
module implements the paper's definitions and fault-tolerance results:

* in-degree / out-degree of a node as *distinct reachable nodes*
  (Definitions A.3 and A.4);
* ``D_in`` / ``D_out`` as the minimum number of incoming / outgoing
  hyper-edges over all nodes;
* independence of edges (Definition A.2);
* the necessary fault-tolerance conditions
  ``f < min_p (d_out(p), d_in(p))`` (Lemma A.5) and
  ``f < k * min(D_in, D_out)`` (Lemma A.6);
* partition resistance: the graph stays strongly connected after removing
  any ``f`` nodes (the assumption the protocol section relies on).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

import networkx as nx


@dataclass(frozen=True)
class HyperEdge:
    """A directed multicast edge: one sender, a set of receivers.

    Self-loops are excluded by construction, matching Definition A.1
    (``S(e) not in R(e)``).
    """

    sender: int
    receivers: FrozenSet[int]

    def __post_init__(self) -> None:
        if not self.receivers:
            raise ValueError("a hyper-edge must have at least one receiver")
        if self.sender in self.receivers:
            raise ValueError(
                f"self-loops are not allowed: sender {self.sender} in receivers"
            )

    @property
    def degree(self) -> int:
        """Number of receivers (the edge's k)."""
        return len(self.receivers)

    @cached_property
    def receivers_sorted(self) -> tuple:
        """Receivers in ascending order, computed once per edge.

        The network transmits to receivers in sorted order for determinism;
        precomputing the order here keeps an O(k log k) sort out of the
        per-transmission hot path.  (``cached_property`` writes straight
        into the instance ``__dict__``, which frozen dataclasses allow.)
        """
        return tuple(sorted(self.receivers))

    @staticmethod
    def make(sender: int, receivers: Iterable[int]) -> "HyperEdge":
        """Convenience constructor from any iterable of receivers."""
        return HyperEdge(sender=sender, receivers=frozenset(receivers))


@dataclass
class Hypergraph:
    """A directed communication hypergraph (Definition A.1)."""

    #: Class-wide switch for the adjacency index (perf legacy mode sets it
    #: to ``False`` to measure the seed's linear edge scans).
    cache_topology = True

    nodes: List[int]
    edges: List[HyperEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise ValueError("duplicate node ids")
        for edge in self.edges:
            self._validate_edge(edge, node_set)

    @staticmethod
    def _validate_edge(edge: HyperEdge, node_set: Set[int]) -> None:
        if edge.sender not in node_set:
            raise ValueError(f"edge sender {edge.sender} is not a node")
        missing = edge.receivers - node_set
        if missing:
            raise ValueError(f"edge receivers {sorted(missing)} are not nodes")

    # -------------------------------------------------------------- mutation
    def add_edge(self, edge: HyperEdge) -> None:
        """Add a hyper-edge after validating its endpoints."""
        self._validate_edge(edge, set(self.nodes))
        self.edges.append(edge)
        self.invalidate_topology_cache()

    def invalidate_topology_cache(self) -> None:
        """Drop the adjacency index (call after mutating ``edges`` directly).

        Also bumps :attr:`topology_version`, which consumers holding
        structures compiled from the adjacency (the network's dissemination
        plans) compare to detect mutation.
        """
        self.__dict__.pop("_out_index", None)
        self.__dict__["_topology_version"] = self.topology_version + 1

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped on every edge mutation."""
        return self.__dict__.get("_topology_version", 0)

    # ------------------------------------------------------------- topology
    def out_edges(self, node: int) -> Sequence[HyperEdge]:
        """Hyper-edges on which ``node`` is the sender.

        Backed by a lazily built sender index: flooding queries the same
        adjacency once per relay per flood, so a linear scan of ``edges``
        here would make every broadcast O(n·|E|).  The cached path returns
        an immutable tuple — mutating the result was never supported, and
        handing out the index's internal lists would let a caller corrupt
        the adjacency silently.
        """
        if not self.cache_topology:
            return [edge for edge in self.edges if edge.sender == node]
        index = self.__dict__.get("_out_index")
        if index is None:
            grouped: Dict[int, List[HyperEdge]] = {}
            for edge in self.edges:
                grouped.setdefault(edge.sender, []).append(edge)
            index = {sender: tuple(edges) for sender, edges in grouped.items()}
            self.__dict__["_out_index"] = index
        return index.get(node, ())

    def in_edges(self, node: int) -> List[HyperEdge]:
        """Hyper-edges on which ``node`` is a receiver."""
        return [edge for edge in self.edges if node in edge.receivers]

    def out_neighbors(self, node: int) -> Set[int]:
        """Distinct nodes reachable from ``node`` in one hop."""
        neighbors: Set[int] = set()
        for edge in self.out_edges(node):
            neighbors |= edge.receivers
        return neighbors

    def in_neighbors(self, node: int) -> Set[int]:
        """Distinct nodes that can reach ``node`` in one hop."""
        return {edge.sender for edge in self.in_edges(node)}

    def d_out(self, node: int) -> int:
        """Out-degree: number of distinct reachable nodes (Definition A.4)."""
        return len(self.out_neighbors(node))

    def d_in(self, node: int) -> int:
        """In-degree: number of distinct nodes that can reach ``node`` (Definition A.3)."""
        return len(self.in_neighbors(node))

    @property
    def min_d_out(self) -> int:
        """Minimum out-degree over all nodes."""
        return min((self.d_out(p) for p in self.nodes), default=0)

    @property
    def min_d_in(self) -> int:
        """Minimum in-degree over all nodes."""
        return min((self.d_in(p) for p in self.nodes), default=0)

    @property
    def capital_d_out(self) -> int:
        """``D_out``: minimum number of outgoing hyper-edges over all nodes."""
        return min((len(self.out_edges(p)) for p in self.nodes), default=0)

    @property
    def capital_d_in(self) -> int:
        """``D_in``: minimum number of incoming hyper-edges over all nodes."""
        return min((len(self.in_edges(p)) for p in self.nodes), default=0)

    @property
    def k(self) -> int:
        """The k of the k-casts: the minimum receiver count over all edges."""
        return min((edge.degree for edge in self.edges), default=0)

    # ----------------------------------------------------------- properties
    def has_independent_edges(self) -> bool:
        """Check Definition A.2: no sender has two distinct edge subsets covering the same receivers.

        A sufficient and practical check (the one the paper's "modified
        spanning tree algorithm" would enforce) is that no edge of a sender
        is fully covered by the union of that sender's other edges.  This
        rejects exactly the redundant-edge situation of the paper's example.
        """
        for node in self.nodes:
            edges = self.out_edges(node)
            for i, edge in enumerate(edges):
                others: Set[int] = set()
                for j, other in enumerate(edges):
                    if i != j:
                        others |= other.receivers
                if edge.receivers <= others:
                    return False
        return True

    def to_digraph(self, exclude: Optional[Iterable[int]] = None) -> nx.DiGraph:
        """Flatten to a directed graph on nodes (hyper-edges become stars)."""
        skip = set(exclude or ())
        graph = nx.DiGraph()
        graph.add_nodes_from(n for n in self.nodes if n not in skip)
        for edge in self.edges:
            if edge.sender in skip:
                continue
            for receiver in edge.receivers:
                if receiver not in skip:
                    graph.add_edge(edge.sender, receiver)
        return graph

    def is_strongly_connected(self, exclude: Optional[Iterable[int]] = None) -> bool:
        """Whether the surviving nodes form a strongly connected digraph."""
        graph = self.to_digraph(exclude=exclude)
        if graph.number_of_nodes() <= 1:
            return True
        return nx.is_strongly_connected(graph)

    def diameter(self) -> int:
        """Longest shortest-path length between any two nodes (hop count)."""
        graph = self.to_digraph()
        if graph.number_of_nodes() <= 1:
            return 0
        if not nx.is_strongly_connected(graph):
            raise ValueError("diameter undefined: hypergraph is not strongly connected")
        return nx.diameter(graph)

    # ------------------------------------------------------- fault tolerance
    def max_faults_necessary_condition(self) -> int:
        """Largest f satisfying Lemma A.5: f < min_p(d_out(p), d_in(p))."""
        if not self.nodes:
            return 0
        bound = min(min(self.d_out(p), self.d_in(p)) for p in self.nodes)
        return max(0, bound - 1)

    def max_faults_kcast_condition(self) -> int:
        """Largest f satisfying Lemma A.6: f < k * min(D_in, D_out)."""
        bound = self.k * min(self.capital_d_in, self.capital_d_out)
        return max(0, bound - 1)

    def satisfies_fault_bound(self, f: int) -> bool:
        """Whether ``f`` faults satisfy the necessary condition of Lemma A.5."""
        if f < 0:
            raise ValueError("f cannot be negative")
        return f <= self.max_faults_necessary_condition()

    def is_partition_resistant(self, f: int, exhaustive_limit: int = 200_000) -> bool:
        """Whether removing any ``f`` nodes leaves the rest strongly connected.

        For small systems (the paper's experiments use n <= 15) this is an
        exhaustive check over all subsets of size ``f``; for larger systems
        it falls back to the directed node-connectivity bound
        ``kappa(G) > f``, which is a sufficient condition.
        """
        if f < 0:
            raise ValueError("f cannot be negative")
        if f == 0:
            return self.is_strongly_connected()
        if f >= len(self.nodes):
            return False
        from math import comb

        if comb(len(self.nodes), f) <= exhaustive_limit:
            for removed in itertools.combinations(self.nodes, f):
                if not self.is_strongly_connected(exclude=removed):
                    return False
            return True
        graph = self.to_digraph()
        return nx.node_connectivity(graph) > f
