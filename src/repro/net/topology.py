"""Topology builders for the hypergraph network model.

The paper's evaluation (Section 5.6) places nodes on a ring where every
node ``p_i`` k-casts to its next ``k`` neighbours and receives from its
previous ``k`` neighbours (``D_out = 1``, ``D_in = k``).  This module
provides that topology plus the other shapes used by examples and tests:
fully connected graphs, unicast rings, stars (for the trusted-baseline
deployment) and random k-cast graphs.
"""

from __future__ import annotations

from math import comb
from typing import Optional

from repro.net.hypergraph import HyperEdge, Hypergraph
from repro.sim.rng import SeededRNG


def ring_kcast_topology(n: int, k: int) -> Hypergraph:
    """The paper's experimental topology.

    Every node ``p_i`` has one outgoing k-cast reaching
    ``p_{i+1 mod n}, ..., p_{i+k mod n}``; consequently each node receives
    from its ``k`` predecessors (``D_out = 1``, ``D_in = k``, in/out degree
    ``k``).  The fault bound of Lemma A.5 is therefore ``f < k``.
    """
    _validate_n_k(n, k)
    nodes = list(range(n))
    edges = [
        HyperEdge.make(i, [(i + offset) % n for offset in range(1, k + 1)])
        for i in range(n)
    ]
    return Hypergraph(nodes=nodes, edges=edges)


def fully_connected_topology(n: int) -> Hypergraph:
    """Every node has one (n-1)-cast to all other nodes.

    This models the paper's base system model ("static fully-connected
    point-to-point communication graph") when the wireless medium lets a
    single transmission reach everyone.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    nodes = list(range(n))
    edges = [
        HyperEdge.make(i, [j for j in nodes if j != i])
        for i in nodes
    ]
    return Hypergraph(nodes=nodes, edges=edges)


def unicast_ring_topology(n: int, d: int) -> Hypergraph:
    """A ring where each node has ``d`` *unicast* edges to its successors.

    Used by the unicast-vs-multicast ablation: same connectivity as
    :func:`ring_kcast_topology` but every transmission reaches one node.
    """
    _validate_n_k(n, d)
    nodes = list(range(n))
    edges = []
    for i in nodes:
        for offset in range(1, d + 1):
            edges.append(HyperEdge.make(i, [(i + offset) % n]))
    return Hypergraph(nodes=nodes, edges=edges)


def star_topology(n: int, center: int = 0) -> Hypergraph:
    """A star: the centre multicasts to everyone, leaves unicast to the centre.

    This is the communication pattern of the trusted-baseline protocol
    where all CPS nodes talk only to the trusted control node.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    nodes = list(range(n))
    if center not in nodes:
        raise ValueError(f"center {center} is not a node id in range(0, {n})")
    leaves = [i for i in nodes if i != center]
    edges = [HyperEdge.make(center, leaves)]
    edges.extend(HyperEdge.make(leaf, [center]) for leaf in leaves)
    return Hypergraph(nodes=nodes, edges=edges)


def random_kcast_topology(
    n: int,
    k: int,
    edges_per_node: int = 1,
    rng: Optional[SeededRNG] = None,
    max_attempts: int = 200,
) -> Hypergraph:
    """A random k-cast topology that is strongly connected.

    Each node gets exactly ``edges_per_node`` outgoing k-casts with
    uniformly chosen *distinct* receiver sets; a duplicate sample is
    resampled (bounded by ``max_attempts``) rather than silently dropped,
    so the graph never under-provisions a node's out-edges.  Requests that
    cannot be satisfied — more distinct receiver sets than
    ``comb(n-1, k)`` exist — raise :class:`ValueError` immediately.
    Whole-graph candidates are resampled until the resulting hypergraph is
    strongly connected (also bounded by ``max_attempts``).
    """
    _validate_n_k(n, k)
    if edges_per_node < 1:
        raise ValueError("edges_per_node must be at least 1")
    distinct_sets = comb(n - 1, k)
    if edges_per_node > distinct_sets:
        raise ValueError(
            f"edges_per_node={edges_per_node} is unsatisfiable: only "
            f"{distinct_sets} distinct receiver sets exist for n={n}, k={k}"
        )
    # detlint: ok rng-stream-discipline — fallback for direct test calls; deployments derive the generator from DeploymentSpec.topology_seed (see SessionBuilder.build_topology_stage)
    generator = rng or SeededRNG(0)
    nodes = list(range(n))
    for _ in range(max_attempts):
        edges = []
        for node in nodes:
            others = [x for x in nodes if x != node]
            seen: set[frozenset[int]] = set()
            for _ in range(edges_per_node):
                receivers: Optional[frozenset[int]] = None
                for _ in range(max_attempts):
                    candidate_set = frozenset(generator.sample(others, k))
                    if candidate_set not in seen:
                        receivers = candidate_set
                        break
                if receivers is None:
                    raise RuntimeError(
                        f"could not sample {edges_per_node} distinct receiver "
                        f"sets for node {node} within {max_attempts} attempts "
                        f"(n={n}, k={k})"
                    )
                seen.add(receivers)
                edges.append(HyperEdge(sender=node, receivers=receivers))
        candidate = Hypergraph(nodes=list(nodes), edges=edges)
        if candidate.is_strongly_connected():
            return candidate
    raise RuntimeError(
        f"could not build a strongly connected random topology for n={n}, k={k}"
    )


def _validate_n_k(n: int, k: int) -> None:
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if k < 1:
        raise ValueError("k must be at least 1")
    if k > n - 1:
        raise ValueError(f"k={k} cannot exceed n-1={n - 1}")
