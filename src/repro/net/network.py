"""Bounded-synchronous simulated network over a hypergraph.

This is the transport that every protocol in :mod:`repro.core` runs on.
It emulates the paper's CPS deployment:

* the topology is a :class:`repro.net.hypergraph.Hypergraph` of k-casts;
* a protocol-level *broadcast* is realised by flooding: the origin
  transmits on its outgoing hyper-edges and every correct node relays each
  unique message exactly once, so a single protocol message reaches all
  nodes with O(n * d) physical transmissions — the property EESMR exploits
  in the steady state;
* every physical transmission charges radio energy to the sender and to
  each receiver on the hyper-edge (receivers pay even for duplicates — the
  radio does not know the payload is old until it has received it), which
  is why measured energy grows linearly with the in-degree k, as in
  Fig. 2c;
* deliveries respect bounded synchrony: with per-hop delay at most
  ``hop_delay`` the end-to-end delay after flooding is bounded by
  ``diameter * hop_delay``, and experiments choose the protocol Δ above
  that bound (see :meth:`SimulatedNetwork.recommended_delta`);
* Byzantine nodes may silently refuse to relay (their relay policy is
  pluggable), which is exactly the partitioning threat the hypergraph fault
  bound (Appendix A) protects against.
"""

from __future__ import annotations

import itertools
import warnings
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional

from repro.crypto.hashing import canonical_cache
from repro.energy.ledger import ClusterEnergyLedger
from repro.net.hypergraph import HyperEdge, Hypergraph
from repro.net.impairment import ImpairmentModel, ImpairmentSpec
from repro.radio.ble import BleAdvertisementKCast
from repro.radio.gatt import BleGattUnicast
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.sim.rng import SeededRNG

#: Wire size of a reliable-delivery ACK (sequence number + flood id).
ACK_WIRE_BYTES = 8

#: Relay policy signature: (origin, message) -> should this node forward it?
RelayPolicy = Callable[[int, Any], bool]


def _never_relay(_origin: int, _message: Any) -> bool:
    """The relay policy installed while a refcounted relay denial is active."""
    return False


class DisseminationPlan:
    """A compiled flood plan: the per-hop path as flat lookup structures.

    Relaying a flood hop is a pure function of the (topology, relay-policy,
    partition) state and the message's wire size — none of which change
    between fault-window transitions.  The plan precomputes, per node:

    * whether the node relays at all (``True`` / ``False``), or ``None``
      with the custom policy callable to consult per flood (policies may
      inspect the message, so they cannot be folded into the plan);
    * the node's energy meter handle;
    * one record per outgoing hyper-edge: the radio cost object for this
      plan's wire size, the partition-filtered sorted receiver tuple, and
      the pre-rendered trace detail string.

    Executing the plan touches O(1) precompiled state per hop instead of
    re-querying the topology index, relay-policy dict, partition set,
    radio-cost memo and meter cache.  Plans are validated against the
    network's state epoch (and the hypergraph's topology version) at every
    relay, so the rare fault-window transitions that mutate policy or
    partition state invalidate them exactly where the uncompiled path
    would have observed the new state — traces stay byte-identical.
    """

    __slots__ = ("state_epoch", "topology_version", "size", "nodes")

    def __init__(self, state_epoch: int, topology_version: int, size: int, nodes: dict) -> None:
        self.state_epoch = state_epoch
        self.topology_version = topology_version
        self.size = size
        #: pid -> (relays, policy, meter, edge records); partitioned nodes
        #: are absent (they neither relay nor receive).
        self.nodes = nodes


def default_wire_size(message: Any) -> int:
    """Wire size of a message in bytes.

    Messages that know their own size expose ``wire_size_bytes``; anything
    else is serialized canonically and measured.  Both paths are flyweights:
    protocol messages memoize their size per instance, and raw payloads go
    through :data:`~repro.crypto.hashing.canonical_cache`, so a flood sizes
    each message once instead of once per relay.
    """
    size = getattr(message, "wire_size_bytes", None)
    if size is not None:
        return int(size)
    return canonical_cache.wire_size_for(message)


@dataclass
class NetworkStats:
    """Counters used for communication-complexity measurements (Table 3)."""

    broadcasts: int = 0
    unicasts: int = 0
    physical_transmissions: int = 0
    physical_bytes: int = 0
    deliveries: int = 0
    per_node_transmissions: Counter = field(default_factory=Counter)
    per_node_bytes: Counter = field(default_factory=Counter)

    def record_transmission(self, sender: int, size_bytes: int) -> None:
        self.physical_transmissions += 1
        self.physical_bytes += size_bytes
        self.per_node_transmissions[sender] += 1
        self.per_node_bytes[sender] += size_bytes


class SimulatedNetwork:
    """Flooding network over a hypergraph with energy accounting.

    Floods execute through compiled :class:`DisseminationPlan` objects by
    default (``use_compiled_plans``): the per-hop relay path reads flat
    precompiled records instead of re-querying the topology index, relay
    policies and partition set, and plans are invalidated by the (rare)
    fault-window transitions that mutate that state — behaviour and traces
    are byte-identical to the uncompiled path.

    Flood bookkeeping is garbage collected: the per-flood dedup sets
    (``_relayed`` / ``_delivered`` / ``_single_hop``) are retired as soon as
    a flood has no receptions left in flight, so long runs hold state for
    the handful of floods currently propagating instead of every flood ever
    broadcast.  Set :attr:`gc_floods` to ``False`` to retain everything
    (tests and the perf harness's legacy mode use this).

    Known limitations, accepted deliberately:

    * if in-flight reception events are discarded externally (via
      ``Simulator.drain``/``clear``), the affected floods' dedup state is
      kept until the network is rebuilt — the in-flight counters never
      reach zero.  No current caller drains network events mid-flood;
    * when the simulator is *not* tracing, reception/unicast events carry
      the constant labels ``"net:flood"``/``"net:uni"`` instead of the
      per-event strings, so label-selective ``Simulator.drain`` over
      network events only works on traced runs.  Traced runs (what the
      testkit fingerprints) see exactly the seed's labels.
    """

    #: Class-wide switches; the perf legacy mode flips them off to measure
    #: the seed's per-hop costs.
    gc_floods = True
    use_edge_caches = True
    #: Execute floods through compiled :class:`DisseminationPlan` objects
    #: instead of re-querying topology/policy/partition state per hop.
    use_compiled_plans = True
    #: When ``True``, trace labels and energy details are built eagerly even
    #: if nothing consumes them (seed behaviour; legacy mode only).
    eager_annotations = False

    def __init__(
        self,
        sim: Simulator,
        hypergraph: Hypergraph,
        ledger: ClusterEnergyLedger,
        rng: Optional[SeededRNG] = None,
        kcast_radio: Optional[BleAdvertisementKCast] = None,
        unicast_radio: Optional[BleGattUnicast] = None,
        hop_delay: float = 1.0,
        jitter: bool = True,
        charge_duplicate_receptions: bool = True,
    ) -> None:
        self.sim = sim
        self.hypergraph = hypergraph
        self.ledger = ledger
        # Reserved exclusively for hop-jitter draws (:meth:`_hop_latency`).
        # Every other stochastic consumer (the impairment model, the
        # reliable sublayer's backoff jitter) derives its own child stream,
        # so new randomness can never perturb baseline delivery timing.
        # detlint: ok rng-stream-discipline — constructor fallback for direct test construction; every session build injects the spec-derived stream (SessionBuilder passes SeededRNG(spec.seed))
        self.rng = rng or SeededRNG(0)
        self.kcast_radio = kcast_radio or BleAdvertisementKCast()
        self.unicast_radio = unicast_radio or BleGattUnicast()
        self.hop_delay = hop_delay
        self.jitter = jitter
        self.charge_duplicate_receptions = charge_duplicate_receptions

        self.processes: Dict[int, Process] = {}
        self.relay_policies: Dict[int, RelayPolicy] = {}
        self.stats = NetworkStats()
        self._flood_counter = itertools.count()
        # flood id -> set of node ids that have already relayed it
        self._relayed: Dict[int, set[int]] = {}
        # flood ids that must not be relayed beyond the first hop
        self._single_hop: set[int] = set()
        # flood id -> set of node ids that have already had it delivered
        self._delivered: Dict[int, set[int]] = {}
        # flood id -> receptions scheduled but not yet arrived; a flood's
        # dedup state is retired when this drops to zero.
        self._in_flight: Dict[int, int] = {}
        # pid -> isolation depth.  Overlapping partition windows each call
        # isolate()/reconnect(); the node rejoins only when every window
        # that cut it off has healed.  Membership tests treat the dict as
        # the set of currently-partitioned nodes.
        self._partition: Dict[int, int] = {}
        # pid -> relay-denial depth, and the base policy saved when the
        # first denial was pushed.  Interleaved relay-drop windows share
        # this state, so relaying resumes only when the *last* window lifts.
        self._relay_denial_depth: Dict[int, int] = {}
        self._relay_denial_saved: Dict[int, Optional[RelayPolicy]] = {}
        # (size, k) -> radio cost: transmission pricing is a pure function
        # of payload size and edge degree, recomputed once per shape.
        self._kcast_costs: Dict[tuple, Any] = {}
        # pid -> meter: skips the ledger's lazy-create indirection on the
        # two-charges-per-reception hot path.
        self._meter_cache: Dict[int, Any] = {}
        # Compiled dissemination plans, keyed by wire size.  Bumping
        # ``_state_epoch`` (any relay-policy or partition mutation)
        # invalidates every cached plan; the hypergraph's own
        # ``topology_version`` covers edge mutations.
        self._plans: Dict[int, DisseminationPlan] = {}
        self._state_epoch = 0
        # Optional (node, kind, active, time) callback fired on *effective*
        # fault-window transitions (relay denial and partition edges) — the
        # session observer bus's ``on_fault_window`` dispatch.
        self.fault_observer = None
        # Unbalanced reconnect() calls (no isolation active).  Kept out of
        # ``NetworkStats`` deliberately: the trace recorder fingerprints
        # that dataclass field-for-field and golden traces predate this
        # counter.  Exposed via :meth:`recovery_metrics`.
        self.unbalanced_reconnects = 0
        self._warned_unbalanced_reconnect = False
        # Wire-level impairment (off by default: ``None`` keeps the delivery
        # path byte-identical to the seed — one attribute test per hop).
        # Created lazily by :meth:`configure_impairment` / the timed
        # impairment fault atoms via :meth:`impair_node`.
        self.impairment: Optional[ImpairmentModel] = None
        #: Retry/backoff parameters of the reliable-delivery sublayer.
        #: Imported lazily: ``repro.recovery``'s package init reaches the
        #: session/eval layers, which import back into ``repro.net``.
        from repro.recovery.reliable import ReliabilityPolicy

        self.reliability = ReliabilityPolicy()
        # Optional (node, event, detail, time) callback fired on reliable
        # sublayer lifecycle transitions ("retry" / "recovered" /
        # "gave_up") — the session observer bus's ``on_retransmit``.
        self.retransmit_observer = None
        self._ack_cost_memo = None

    # ---------------------------------------------------------- registration
    def register(self, process: Process) -> None:
        """Attach a process (replica, client, control node) to the network."""
        if process.pid in self.processes:
            raise ValueError(f"process {process.pid} already registered")
        if process.pid not in self.hypergraph.nodes:
            raise ValueError(f"process {process.pid} is not a node of the topology")
        self.processes[process.pid] = process

    def set_relay_policy(self, pid: int, policy: RelayPolicy) -> None:
        """Override the relay behaviour of one node (used for Byzantine nodes).

        While a refcounted relay denial (:meth:`deny_relay`) is active the
        denial stays on top: the new policy becomes the base restored when
        the last denial lifts.
        """
        if pid in self._relay_denial_depth:
            self._relay_denial_saved[pid] = policy
        else:
            self.relay_policies[pid] = policy
        self.invalidate_plans()

    def deny_relay(self, pid: int) -> None:
        """Push one refcounted relay denial onto ``pid``.

        The node's base policy (if any) is saved on the first push and
        restored by the matching last :meth:`allow_relay`, so interleaved
        drop windows compose: the node resumes relaying only when every
        window has closed.
        """
        depth = self._relay_denial_depth.get(pid, 0)
        if depth == 0:
            self._relay_denial_saved[pid] = self.relay_policies.get(pid)
            self.relay_policies[pid] = _never_relay
            if self.fault_observer is not None:
                self.fault_observer(pid, "relay-deny", True, self.sim.now)
        self._relay_denial_depth[pid] = depth + 1
        self.invalidate_plans()

    def allow_relay(self, pid: int) -> None:
        """Pop one relay denial; restores the base policy at depth zero.

        Unbalanced calls (no denial active) are a no-op, so healing an
        already-healed window cannot clobber an unrelated policy.
        """
        depth = self._relay_denial_depth.get(pid, 0)
        if depth == 0:
            return
        if depth == 1:
            del self._relay_denial_depth[pid]
            previous = self._relay_denial_saved.pop(pid, None)
            if previous is None:
                self.relay_policies.pop(pid, None)
            else:
                self.relay_policies[pid] = previous
            if self.fault_observer is not None:
                self.fault_observer(pid, "relay-deny", False, self.sim.now)
        else:
            self._relay_denial_depth[pid] = depth - 1
        self.invalidate_plans()

    def isolate(self, pid: int) -> None:
        """Disconnect a node (failure injection helper).

        Refcounted: each :meth:`isolate` must be undone by its own
        :meth:`reconnect`, so overlapping partition windows on the same
        node cannot heal it early.
        """
        depth = self._partition.get(pid, 0)
        self._partition[pid] = depth + 1
        if depth == 0 and self.fault_observer is not None:
            self.fault_observer(pid, "partition", True, self.sim.now)
        self.invalidate_plans()

    def reconnect(self, pid: int) -> None:
        """Undo one :meth:`isolate`; the node rejoins at depth zero.

        Reconnecting a node that is not isolated leaves the partition
        state untouched, but it is *counted* (``unbalanced_reconnects``,
        surfaced via :meth:`recovery_metrics`) and warned about once per
        network: a silent no-op is exactly how the pre-refcount
        fault-composition bugs hid, and an unbalanced call almost always
        means a fault schedule healed a window it never opened.
        """
        depth = self._partition.get(pid, 0)
        if depth == 0:
            self.unbalanced_reconnects += 1
            if not self._warned_unbalanced_reconnect:
                self._warned_unbalanced_reconnect = True
                warnings.warn(
                    f"reconnect({pid}) without a matching isolate(): the call "
                    "is a no-op; check the fault schedule's window composition "
                    "(further unbalanced reconnects on this network are "
                    "counted but not warned about)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return
        if depth == 1:
            self._partition.pop(pid, None)
            if self.fault_observer is not None:
                self.fault_observer(pid, "partition", False, self.sim.now)
        else:
            self._partition[pid] = depth - 1
        self.invalidate_plans()

    def is_partitioned(self, pid: int) -> bool:
        """Whether ``pid`` is currently cut off by at least one open window."""
        return pid in self._partition

    def recovery_metrics(self) -> Dict[str, int]:
        """Net-layer counters surfaced to the recovery subsystem."""
        return {"unbalanced_reconnects": self.unbalanced_reconnects}

    # ----------------------------------------------------------- impairment
    def configure_impairment(self, spec: Optional[ImpairmentSpec]) -> ImpairmentModel:
        """Install a wire-level impairment (see :mod:`repro.net.impairment`).

        The model's RNG is derived from the network stream with a pure
        ``child()`` call, so configuring (or never configuring) an
        impairment leaves the hop-jitter stream byte-identical.  The
        spec's retransmission budget is mirrored onto
        :attr:`reliability` so one knob governs the reliable sublayer.
        """
        model = self._ensure_impairment()
        if spec is not None:
            model.spec = spec
            if spec.max_retries != self.reliability.max_retries:
                self.reliability = replace(self.reliability, max_retries=spec.max_retries)
        return model

    def _ensure_impairment(self) -> ImpairmentModel:
        model = self.impairment
        if model is None:
            model = ImpairmentModel(
                None,
                self.rng.child("impairment"),
                loss_model=getattr(self.kcast_radio, "loss_model", None),
            )
            self.impairment = model
        return model

    def impair_node(self, pid: int, kind: str, value: float) -> None:
        """Push one per-node impairment overlay (a fault window opening).

        Overlays stack like the refcounted relay/partition mutators:
        nested windows compose and each :meth:`unimpair_node` pops one.
        """
        self._ensure_impairment().push(pid, kind, value)
        if self.fault_observer is not None:
            self.fault_observer(pid, f"impair-{kind}", True, self.sim.now)
        self.invalidate_plans()

    def unimpair_node(self, pid: int, kind: str) -> None:
        """Pop the most recent ``kind`` overlay on ``pid`` (window closing)."""
        model = self.impairment
        if model is None:
            return
        model.pop(pid, kind)
        if self.fault_observer is not None:
            self.fault_observer(pid, f"impair-{kind}", False, self.sim.now)
        self.invalidate_plans()

    def impairment_metrics(self) -> Optional[Dict[str, int]]:
        """Aggregate impairment/retransmission counters, or ``None`` when
        the wire has never been impaired."""
        if self.impairment is None:
            return None
        return self.impairment.stats_dict()

    def invalidate_plans(self) -> None:
        """Invalidate every compiled dissemination plan.

        Called automatically by the relay-policy and partition mutators;
        cheap (one integer bump), so fault windows pay nothing beyond the
        recompile their first post-transition flood hop triggers.
        """
        self._state_epoch += 1

    # -------------------------------------------------------------- timing
    def _hop_latency(self) -> float:
        # Draws only from ``self.rng`` — the dedicated jitter stream.  The
        # impairment model and retransmission chains draw their latencies
        # from their own child stream, so the sequence of jitter draws (and
        # with it every baseline fingerprint) is independent of whether the
        # wire is impaired.
        if not self.jitter:
            return self.hop_delay
        return self.hop_delay * self.rng.uniform(0.5, 1.0)

    def recommended_delta(self, safety_factor: float = 2.0) -> float:
        """A Δ that upper-bounds flooding delivery time on this topology."""
        diameter = self.hypergraph.diameter()
        return max(1, diameter) * self.hop_delay * safety_factor

    # ------------------------------------------------------------ broadcast
    def broadcast(self, origin: int, message: Any) -> int:
        """Flood ``message`` from ``origin`` to every node; returns the flood id.

        The origin is delivered its own message immediately (protocols rely
        on "the leader also acts as a node"); everyone else receives it when
        the flood first reaches them.
        """
        self._require_registered(origin)
        flood_id = next(self._flood_counter)
        self._relayed[flood_id] = set()
        self._delivered[flood_id] = set()
        self._in_flight[flood_id] = 0
        self.stats.broadcasts += 1
        # Local delivery to the origin (no radio energy).
        self._deliver(flood_id, origin, origin, message, local=True)
        if self.use_compiled_plans:
            size = default_wire_size(message)
            self._plan_relay(self._plan_for(size), flood_id, origin, origin, message)
        else:
            size = default_wire_size(message) if self.use_edge_caches else None
            self._relay_from(flood_id, origin, origin, message, size)
        self._maybe_retire_flood(flood_id)
        return flood_id

    # ------------------------------------------------------- compiled plans
    def _plan_for(self, size: int) -> DisseminationPlan:
        """The current compiled plan for ``size``-byte floods.

        Stale cached plans (state epoch or topology version moved) are
        discarded wholesale; compilation is O(nodes + edges) and happens
        once per (fault-window epoch, wire size).
        """
        state_epoch = self._state_epoch
        topology_version = self.hypergraph.topology_version
        plan = self._plans.get(size)
        if (
            plan is not None
            and plan.state_epoch == state_epoch
            and plan.topology_version == topology_version
        ):
            return plan
        plan = self._compile_plan(size, state_epoch, topology_version)
        if size in self._plans or len(self._plans) < 1024:
            self._plans[size] = plan
        return plan

    def _compile_plan(
        self, size: int, state_epoch: int, topology_version: int
    ) -> DisseminationPlan:
        partition = self._partition
        nodes: Dict[int, tuple] = {}
        for node in self.hypergraph.nodes:
            if node in partition:
                continue
            policy = self.relay_policies.get(node)
            if policy is None:
                relays: Optional[bool] = True
            elif policy is _never_relay:
                relays = False
            else:
                relays = None  # message-dependent: consult at flood time
            edges = []
            for edge in self.hypergraph.out_edges(node):
                k = edge.degree
                cost = self._kcast_cost(size, k)
                receivers = tuple(
                    r for r in edge.receivers_sorted if r not in partition
                )
                edges.append((cost, receivers, f"kcast k={k} {size}B"))
            nodes[node] = (relays, policy, self._meter(node), tuple(edges))
        return DisseminationPlan(state_epoch, topology_version, size, nodes)

    def _plan_relay(
        self, plan: DisseminationPlan, flood_id: int, node: int, origin: int, message: Any
    ) -> None:
        """Relay one flood hop through a compiled plan.

        Mirrors :meth:`_relay_from` exactly — same dedup bookkeeping, same
        charge/latency/schedule order — but against precompiled state.  The
        plan is revalidated here (one epoch compare per hop) so fault
        transitions that fired since compilation are observed at the same
        point the uncompiled path would re-read the mutated dicts.
        """
        if (
            plan.state_epoch != self._state_epoch
            or plan.topology_version != self.hypergraph.topology_version
        ):
            plan = self._plan_for(plan.size)
        record = plan.nodes.get(node)
        if record is None:  # partitioned at plan-compile time
            return
        relayed = self._relayed[flood_id]
        if node in relayed:
            return
        relays, policy, meter, edges = record
        if node != origin and (
            relays is False or (relays is None and not policy(origin, message))
        ):
            relayed.add(node)
            return
        relayed.add(node)
        size = plan.size
        sim_now = self.sim.now
        tracing = meter.trace_enabled or self.eager_annotations
        stats = self.stats
        for cost, receivers, detail in edges:
            meter.charge_transmit(
                cost.sender_energy_j, sim_now, detail=detail if tracing else ""
            )
            stats.record_transmission(node, size)
            latency = self._hop_latency()
            for receiver in receivers:
                self._schedule_reception(
                    flood_id, node, receiver, origin, message, cost, latency, size, plan
                )

    def _maybe_retire_flood(self, flood_id: int) -> None:
        """Drop a flood's dedup state once no receptions remain in flight."""
        if not self.gc_floods:
            return
        if self._in_flight.get(flood_id, 0) == 0:
            self._in_flight.pop(flood_id, None)
            self._relayed.pop(flood_id, None)
            self._delivered.pop(flood_id, None)
            self._single_hop.discard(flood_id)

    @property
    def live_floods(self) -> int:
        """Number of floods whose dedup state is still held (GC metric)."""
        return len(self._delivered)

    def _relay_from(
        self, flood_id: int, node: int, origin: int, message: Any, size: Optional[int] = None
    ) -> None:
        """Transmit ``message`` on all of ``node``'s outgoing hyper-edges.

        ``size`` is threaded down from the broadcast so a flood sizes its
        message once; when ``None`` (legacy mode, external callers) it is
        recomputed here, once per relaying node, as the seed did.
        """
        if node in self._partition:
            return
        relayed = self._relayed[flood_id]
        if node in relayed:
            return
        if node != origin and flood_id in self._single_hop:
            # One-hop multicast: receivers do not forward.
            relayed.add(node)
            return
        policy = self.relay_policies.get(node)
        if node != origin and policy is not None and not policy(origin, message):
            # Byzantine (or misconfigured) nodes may silently drop relays;
            # the hypergraph fault bound guarantees correct nodes still
            # receive the flood via other paths.
            relayed.add(node)
            return
        relayed.add(node)
        if size is None:
            size = default_wire_size(message)
        for edge in self.hypergraph.out_edges(node):
            self._transmit_edge(flood_id, edge, origin, message, size)

    def _meter(self, pid: int):
        meter = self._meter_cache.get(pid)
        if meter is None:
            meter = self.ledger.meter(pid)
            self._meter_cache[pid] = meter
        return meter

    def _kcast_cost(self, size: int, k: int):
        cost = self._kcast_costs.get((size, k))
        if cost is None:
            cost = self.kcast_radio.transmission_cost(size, k)
            if len(self._kcast_costs) < 4096:
                self._kcast_costs[(size, k)] = cost
        return cost

    def _transmit_edge(
        self, flood_id: int, edge: HyperEdge, origin: int, message: Any, size: int
    ) -> None:
        k = edge.degree
        if self.use_edge_caches:
            cost = self._kcast_cost(size, k)
            receivers = edge.receivers_sorted
        else:
            cost = self.kcast_radio.transmission_cost(size, k)
            receivers = sorted(edge.receivers)
        sender_meter = self._meter(edge.sender)
        detail = (
            f"kcast k={k} {size}B"
            if sender_meter.trace_enabled or self.eager_annotations
            else ""
        )
        sender_meter.charge_transmit(cost.sender_energy_j, self.sim.now, detail=detail)
        self.stats.record_transmission(edge.sender, size)
        latency = self._hop_latency()
        relay_size = size if self.use_edge_caches else None
        for receiver in receivers:
            if receiver in self._partition:
                continue
            self._schedule_reception(
                flood_id, edge.sender, receiver, origin, message, cost, latency, relay_size
            )

    def _schedule_reception(
        self,
        flood_id: int,
        hop_sender: int,
        receiver: int,
        origin: int,
        message: Any,
        cost,
        latency: float,
        size: Optional[int] = None,
        plan: Optional[DisseminationPlan] = None,
    ) -> None:
        imp = self.impairment
        if imp is not None and imp.engaged(self.sim.now):
            self._impaired_reception(
                flood_id, hop_sender, receiver, origin, message, cost, latency, size, plan, imp
            )
            return
        self._schedule_arrival(
            flood_id, hop_sender, receiver, origin, message, cost, latency, size, plan
        )

    def _schedule_arrival(
        self,
        flood_id: int,
        hop_sender: int,
        receiver: int,
        origin: int,
        message: Any,
        cost,
        latency: float,
        size: Optional[int] = None,
        plan: Optional[DisseminationPlan] = None,
    ) -> None:
        def arrive() -> None:
            delivered = self._delivered.get(flood_id)
            if delivered is None:
                # Defensive: the flood's state was dropped externally
                # (e.g. a test resetting the network); treat as duplicate.
                already_delivered = True
            else:
                already_delivered = receiver in delivered
            if self.charge_duplicate_receptions or not already_delivered:
                meter = self._meter(receiver)
                detail = (
                    f"kcast from {hop_sender}"
                    if meter.trace_enabled or self.eager_annotations
                    else ""
                )
                meter.charge_receive(cost.per_receiver_energy_j, self.sim.now, detail=detail)
            if not already_delivered:
                self._deliver(flood_id, origin, receiver, message)
                if plan is not None:
                    self._plan_relay(plan, flood_id, receiver, origin, message)
                else:
                    self._relay_from(flood_id, receiver, origin, message, size)
            if self.gc_floods:
                remaining = self._in_flight.get(flood_id)
                if remaining is not None:
                    self._in_flight[flood_id] = remaining - 1
                    self._maybe_retire_flood(flood_id)

        if self.gc_floods:
            self._in_flight[flood_id] = self._in_flight.get(flood_id, 0) + 1
        if self.sim.trace_enabled or self.eager_annotations:
            label = f"net:flood{flood_id}->{receiver}"
        else:
            label = "net:flood"
        self.sim.schedule(latency, arrive, label=label)

    # ------------------------------------------------- impaired delivery
    def _impaired_reception(
        self,
        flood_id: int,
        hop_sender: int,
        receiver: int,
        origin: int,
        message: Any,
        cost,
        latency: float,
        size: Optional[int],
        plan: Optional[DisseminationPlan],
        imp: ImpairmentModel,
    ) -> None:
        """Judge one hop delivery against the impairment model.

        A dropped delivery hands off to the reliable sublayer's
        retransmission chain; a duplicated one arrives twice (the radio
        does not dedup — the receiver pays energy for both copies, the
        flood dedup set drops the payload); jitter/reorder verdicts delay
        the arrival.  All extra latency draws come from the impairment
        stream, never from the hop-jitter stream.
        """
        dropped, duplicated, extra = imp.judge(receiver, cost, self.sim.now, self.hop_delay)
        if dropped:
            self._begin_retransmit(
                flood_id, hop_sender, receiver, origin, message, cost, size, plan, imp
            )
            return
        if extra:
            latency += extra
        self._schedule_arrival(
            flood_id, hop_sender, receiver, origin, message, cost, latency, size, plan
        )
        if duplicated:
            dup_latency = latency + self.hop_delay * imp.rng.uniform(0.25, 0.75)
            self._schedule_arrival(
                flood_id, hop_sender, receiver, origin, message, cost, dup_latency, size, plan
            )

    def _begin_retransmit(
        self,
        flood_id: int,
        hop_sender: int,
        receiver: int,
        origin: int,
        message: Any,
        cost,
        size: Optional[int],
        plan: Optional[DisseminationPlan],
        imp: ImpairmentModel,
    ) -> None:
        if self.reliability.max_retries <= 0:
            self._flood_giveup(flood_id, hop_sender, receiver, imp)
            return
        if self.gc_floods:
            # Chain token: hold the flood's dedup state alive while the
            # retransmission chain is pending.  Released on give-up, on an
            # implicit ACK (delivery via another edge), or once the
            # recovered copy's real arrival has been scheduled (which
            # takes its own in-flight reference).
            self._in_flight[flood_id] = self._in_flight.get(flood_id, 0) + 1
        self._schedule_retransmit(
            flood_id, hop_sender, receiver, origin, message, cost, size, plan, imp, attempt=0
        )

    def _schedule_retransmit(
        self,
        flood_id: int,
        hop_sender: int,
        receiver: int,
        origin: int,
        message: Any,
        cost,
        size: Optional[int],
        plan: Optional[DisseminationPlan],
        imp: ImpairmentModel,
        attempt: int,
    ) -> None:
        policy = self.reliability
        delay = policy.retry_delay(attempt, imp.rng)
        if self.sim.trace_enabled or self.eager_annotations:
            label = f"net:rtx{flood_id}->{receiver}"
        else:
            label = "net:rtx"

        def resend() -> None:
            delivered = self._delivered.get(flood_id)
            if (
                delivered is None
                or receiver in delivered
                or receiver in self._partition
                or hop_sender in self._partition
            ):
                # Implicit ACK — the receiver got this flood via another
                # edge in the meantime — or a partition cut the link.
                self._release_chain(flood_id)
                return
            meter = self._meter(hop_sender)
            tracing = meter.trace_enabled or self.eager_annotations
            wire = size if size is not None else default_wire_size(message)
            meter.charge_transmit(
                cost.sender_energy_j,
                self.sim.now,
                detail=f"retransmit->{receiver} {wire}B" if tracing else "",
            )
            self.stats.record_transmission(hop_sender, wire)
            imp.note_retransmit(receiver)
            if self.retransmit_observer is not None:
                self.retransmit_observer(
                    receiver,
                    "retry",
                    f"flood {flood_id} retry {attempt + 1} from {hop_sender}",
                    self.sim.now,
                )
            if imp.rng.chance(imp.loss_probability(receiver, cost, self.sim.now)):
                if attempt + 1 >= policy.max_retries:
                    self._flood_giveup(flood_id, hop_sender, receiver, imp)
                    self._release_chain(flood_id)
                else:
                    self._schedule_retransmit(
                        flood_id,
                        hop_sender,
                        receiver,
                        origin,
                        message,
                        cost,
                        size,
                        plan,
                        imp,
                        attempt + 1,
                    )
                return
            # Recovered: the copy got through and the receiver ACKs it.
            latency = (
                self.hop_delay * imp.rng.uniform(0.5, 1.0) if self.jitter else self.hop_delay
            )
            self._charge_ack(hop_sender, receiver)
            imp.note_recovered(receiver)
            if self.retransmit_observer is not None:
                self.retransmit_observer(
                    receiver,
                    "recovered",
                    f"flood {flood_id} retry {attempt + 1} from {hop_sender}",
                    self.sim.now,
                )
            self._schedule_arrival(
                flood_id, hop_sender, receiver, origin, message, cost, latency, size, plan
            )
            self._release_chain(flood_id)

        self.sim.schedule(delay, resend, label=label)

    def _flood_giveup(
        self, flood_id: int, hop_sender: int, receiver: int, imp: ImpairmentModel
    ) -> None:
        imp.note_giveup(receiver)
        if self.retransmit_observer is not None:
            self.retransmit_observer(
                receiver, "gave_up", f"flood {flood_id} from {hop_sender}", self.sim.now
            )

    def _release_chain(self, flood_id: int) -> None:
        if not self.gc_floods:
            return
        remaining = self._in_flight.get(flood_id)
        if remaining is not None:
            self._in_flight[flood_id] = remaining - 1
            self._maybe_retire_flood(flood_id)

    def _ack_cost(self):
        cost = self._ack_cost_memo
        if cost is None:
            cost = self.unicast_radio.transmission_cost(ACK_WIRE_BYTES)
            self._ack_cost_memo = cost
        return cost

    def _charge_ack(self, hop_sender: int, receiver: int) -> None:
        """Charge the per-message ACK of a recovered reliable delivery.

        The receiver transmits a small ACK unicast; the retransmitting
        sender receives it.  First-attempt deliveries stay ACK-free (the
        sublayer is lazy: it only engages explicit acknowledgements once
        a loss is suspected), so the baseline energy model is unchanged.
        """
        cost = self._ack_cost()
        now = self.sim.now
        receiver_meter = self._meter(receiver)
        tracing = receiver_meter.trace_enabled or self.eager_annotations
        receiver_meter.charge_transmit(
            cost.sender_energy_j, now, detail=f"ack->{hop_sender}" if tracing else ""
        )
        sender_meter = self._meter(hop_sender)
        sender_meter.charge_receive(
            cost.receiver_energy_j, now, detail=f"ack from {receiver}" if tracing else ""
        )
        self.stats.record_transmission(receiver, ACK_WIRE_BYTES)

    def _deliver(
        self, flood_id: int, origin: int, receiver: int, message: Any, local: bool = False
    ) -> None:
        self._delivered[flood_id].add(receiver)
        process = self.processes.get(receiver)
        if process is None:
            return
        self.stats.deliveries += 1
        process.deliver(origin, message)

    # -------------------------------------------------------------- unicast
    def send(self, src: int, dst: int, message: Any) -> None:
        """Point-to-point send from ``src`` to ``dst`` over the unicast radio.

        The base system model assumes point-to-point links exist between all
        node pairs; the CPS instantiation realises them as (serialised) GATT
        connections.  Energy is charged to both endpoints; delivery happens
        after at most one hop delay.
        """
        self._require_registered(src)
        if dst not in self.hypergraph.nodes:
            raise ValueError(f"destination {dst} is not a node of the topology")
        if src in self._partition or dst in self._partition:
            return
        size = default_wire_size(message)
        cost = self.unicast_radio.transmission_cost(size)
        src_meter = self._meter(src)
        detail = (
            f"unicast->{dst} {size}B"
            if src_meter.trace_enabled or self.eager_annotations
            else ""
        )
        src_meter.charge_transmit(cost.sender_energy_j, self.sim.now, detail=detail)
        self.stats.unicasts += 1
        self.stats.record_transmission(src, size)
        latency = self._hop_latency()

        imp = self.impairment
        if imp is not None and imp.engaged(self.sim.now):
            dropped, duplicated, extra = imp.judge(dst, cost, self.sim.now, self.hop_delay)
            if dropped:
                self._begin_unicast_retransmit(src, dst, message, cost, size, imp)
                return
            if extra:
                latency += extra
            self._schedule_unicast_arrival(src, dst, message, cost, latency)
            if duplicated:
                dup_latency = latency + self.hop_delay * imp.rng.uniform(0.25, 0.75)
                self._schedule_unicast_arrival(src, dst, message, cost, dup_latency)
            return
        self._schedule_unicast_arrival(src, dst, message, cost, latency)

    def _schedule_unicast_arrival(
        self, src: int, dst: int, message: Any, cost, latency: float
    ) -> None:
        def arrive() -> None:
            meter = self._meter(dst)
            detail = (
                f"unicast from {src}"
                if meter.trace_enabled or self.eager_annotations
                else ""
            )
            meter.charge_receive(cost.receiver_energy_j, self.sim.now, detail=detail)
            process = self.processes.get(dst)
            if process is not None:
                self.stats.deliveries += 1
                process.deliver(src, message)

        if self.sim.trace_enabled or self.eager_annotations:
            label = f"net:uni {src}->{dst}"
        else:
            label = "net:uni"
        self.sim.schedule(latency, arrive, label=label)

    def _begin_unicast_retransmit(
        self, src: int, dst: int, message: Any, cost, size: int, imp: ImpairmentModel
    ) -> None:
        if self.reliability.max_retries <= 0:
            imp.note_giveup(dst)
            if self.retransmit_observer is not None:
                self.retransmit_observer(
                    dst, "gave_up", f"unicast from {src}", self.sim.now
                )
            return
        self._schedule_unicast_retransmit(src, dst, message, cost, size, imp, attempt=0)

    def _schedule_unicast_retransmit(
        self, src: int, dst: int, message: Any, cost, size: int, imp: ImpairmentModel, attempt: int
    ) -> None:
        policy = self.reliability
        delay = policy.retry_delay(attempt, imp.rng)
        if self.sim.trace_enabled or self.eager_annotations:
            label = f"net:rtx-uni {src}->{dst}"
        else:
            label = "net:rtx-uni"

        def resend() -> None:
            if src in self._partition or dst in self._partition:
                return
            meter = self._meter(src)
            tracing = meter.trace_enabled or self.eager_annotations
            meter.charge_transmit(
                cost.sender_energy_j,
                self.sim.now,
                detail=f"retransmit->{dst} {size}B" if tracing else "",
            )
            self.stats.record_transmission(src, size)
            imp.note_retransmit(dst)
            if self.retransmit_observer is not None:
                self.retransmit_observer(
                    dst, "retry", f"unicast retry {attempt + 1} from {src}", self.sim.now
                )
            if imp.rng.chance(imp.loss_probability(dst, cost, self.sim.now)):
                if attempt + 1 >= policy.max_retries:
                    imp.note_giveup(dst)
                    if self.retransmit_observer is not None:
                        self.retransmit_observer(
                            dst, "gave_up", f"unicast from {src}", self.sim.now
                        )
                else:
                    self._schedule_unicast_retransmit(
                        src, dst, message, cost, size, imp, attempt + 1
                    )
                return
            latency = (
                self.hop_delay * imp.rng.uniform(0.5, 1.0) if self.jitter else self.hop_delay
            )
            self._charge_ack(src, dst)
            imp.note_recovered(dst)
            if self.retransmit_observer is not None:
                self.retransmit_observer(
                    dst, "recovered", f"unicast retry {attempt + 1} from {src}", self.sim.now
                )
            self._schedule_unicast_arrival(src, dst, message, cost, latency)

        self.sim.schedule(delay, resend, label=label)

    # ------------------------------------------------------------- helpers
    def multicast_neighbors(self, origin: int, message: Any) -> None:
        """One-hop k-cast (no flooding) — used by leader-to-neighbour patterns."""
        self._require_registered(origin)
        flood_id = next(self._flood_counter)
        self._relayed[flood_id] = {origin}
        self._delivered[flood_id] = {origin}
        self._single_hop.add(flood_id)
        self._in_flight[flood_id] = 0
        size = default_wire_size(message)
        for edge in self.hypergraph.out_edges(origin):
            self._transmit_edge(flood_id, edge, origin, message, size)
        self._maybe_retire_flood(flood_id)

    def _require_registered(self, pid: int) -> None:
        if pid not in self.processes:
            raise ValueError(f"process {pid} is not registered with the network")

    # -------------------------------------------------------------- queries
    def transmissions_by(self, pid: int) -> int:
        """Physical transmissions performed by ``pid``."""
        return self.stats.per_node_transmissions.get(pid, 0)

    def bytes_sent_by(self, pid: int) -> int:
        """Physical bytes transmitted by ``pid``."""
        return self.stats.per_node_bytes.get(pid, 0)
