"""Bounded-synchronous simulated network over a hypergraph.

This is the transport that every protocol in :mod:`repro.core` runs on.
It emulates the paper's CPS deployment:

* the topology is a :class:`repro.net.hypergraph.Hypergraph` of k-casts;
* a protocol-level *broadcast* is realised by flooding: the origin
  transmits on its outgoing hyper-edges and every correct node relays each
  unique message exactly once, so a single protocol message reaches all
  nodes with O(n * d) physical transmissions — the property EESMR exploits
  in the steady state;
* every physical transmission charges radio energy to the sender and to
  each receiver on the hyper-edge (receivers pay even for duplicates — the
  radio does not know the payload is old until it has received it), which
  is why measured energy grows linearly with the in-degree k, as in
  Fig. 2c;
* deliveries respect bounded synchrony: with per-hop delay at most
  ``hop_delay`` the end-to-end delay after flooding is bounded by
  ``diameter * hop_delay``, and experiments choose the protocol Δ above
  that bound (see :meth:`SimulatedNetwork.recommended_delta`);
* Byzantine nodes may silently refuse to relay (their relay policy is
  pluggable), which is exactly the partitioning threat the hypergraph fault
  bound (Appendix A) protects against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.crypto.hashing import canonical_bytes
from repro.energy.ledger import ClusterEnergyLedger
from repro.net.hypergraph import HyperEdge, Hypergraph
from repro.radio.ble import BleAdvertisementKCast
from repro.radio.gatt import BleGattUnicast
from repro.sim.process import Process
from repro.sim.scheduler import Simulator
from repro.sim.rng import SeededRNG

#: Relay policy signature: (origin, message) -> should this node forward it?
RelayPolicy = Callable[[int, Any], bool]


def default_wire_size(message: Any) -> int:
    """Wire size of a message in bytes.

    Messages that know their own size expose ``wire_size_bytes``; anything
    else is serialized canonically and measured.
    """
    size = getattr(message, "wire_size_bytes", None)
    if size is not None:
        return int(size)
    return len(canonical_bytes(message))


@dataclass
class NetworkStats:
    """Counters used for communication-complexity measurements (Table 3)."""

    broadcasts: int = 0
    unicasts: int = 0
    physical_transmissions: int = 0
    physical_bytes: int = 0
    deliveries: int = 0
    per_node_transmissions: Dict[int, int] = field(default_factory=dict)
    per_node_bytes: Dict[int, int] = field(default_factory=dict)

    def record_transmission(self, sender: int, size_bytes: int) -> None:
        self.physical_transmissions += 1
        self.physical_bytes += size_bytes
        self.per_node_transmissions[sender] = self.per_node_transmissions.get(sender, 0) + 1
        self.per_node_bytes[sender] = self.per_node_bytes.get(sender, 0) + size_bytes


class SimulatedNetwork:
    """Flooding network over a hypergraph with energy accounting."""

    def __init__(
        self,
        sim: Simulator,
        hypergraph: Hypergraph,
        ledger: ClusterEnergyLedger,
        rng: Optional[SeededRNG] = None,
        kcast_radio: Optional[BleAdvertisementKCast] = None,
        unicast_radio: Optional[BleGattUnicast] = None,
        hop_delay: float = 1.0,
        jitter: bool = True,
        charge_duplicate_receptions: bool = True,
    ) -> None:
        self.sim = sim
        self.hypergraph = hypergraph
        self.ledger = ledger
        self.rng = rng or SeededRNG(0)
        self.kcast_radio = kcast_radio or BleAdvertisementKCast()
        self.unicast_radio = unicast_radio or BleGattUnicast()
        self.hop_delay = hop_delay
        self.jitter = jitter
        self.charge_duplicate_receptions = charge_duplicate_receptions

        self.processes: Dict[int, Process] = {}
        self.relay_policies: Dict[int, RelayPolicy] = {}
        self.stats = NetworkStats()
        self._flood_counter = itertools.count()
        # flood id -> set of node ids that have already relayed it
        self._relayed: Dict[int, set[int]] = {}
        # flood ids that must not be relayed beyond the first hop
        self._single_hop: set[int] = set()
        # flood id -> set of node ids that have already had it delivered
        self._delivered: Dict[int, set[int]] = {}
        self._partition: set[int] = set()

    # ---------------------------------------------------------- registration
    def register(self, process: Process) -> None:
        """Attach a process (replica, client, control node) to the network."""
        if process.pid in self.processes:
            raise ValueError(f"process {process.pid} already registered")
        if process.pid not in self.hypergraph.nodes:
            raise ValueError(f"process {process.pid} is not a node of the topology")
        self.processes[process.pid] = process

    def set_relay_policy(self, pid: int, policy: RelayPolicy) -> None:
        """Override the relay behaviour of one node (used for Byzantine nodes)."""
        self.relay_policies[pid] = policy

    def isolate(self, pid: int) -> None:
        """Disconnect a node entirely (failure injection helper)."""
        self._partition.add(pid)

    def reconnect(self, pid: int) -> None:
        """Undo :meth:`isolate`."""
        self._partition.discard(pid)

    # -------------------------------------------------------------- timing
    def _hop_latency(self) -> float:
        if not self.jitter:
            return self.hop_delay
        return self.hop_delay * self.rng.uniform(0.5, 1.0)

    def recommended_delta(self, safety_factor: float = 2.0) -> float:
        """A Δ that upper-bounds flooding delivery time on this topology."""
        diameter = self.hypergraph.diameter()
        return max(1, diameter) * self.hop_delay * safety_factor

    # ------------------------------------------------------------ broadcast
    def broadcast(self, origin: int, message: Any) -> int:
        """Flood ``message`` from ``origin`` to every node; returns the flood id.

        The origin is delivered its own message immediately (protocols rely
        on "the leader also acts as a node"); everyone else receives it when
        the flood first reaches them.
        """
        self._require_registered(origin)
        flood_id = next(self._flood_counter)
        self._relayed[flood_id] = set()
        self._delivered[flood_id] = set()
        self.stats.broadcasts += 1
        # Local delivery to the origin (no radio energy).
        self._deliver(flood_id, origin, origin, message, local=True)
        self._relay_from(flood_id, origin, origin, message)
        return flood_id

    def _relay_from(self, flood_id: int, node: int, origin: int, message: Any) -> None:
        """Transmit ``message`` on all of ``node``'s outgoing hyper-edges."""
        if node in self._partition:
            return
        if node in self._relayed[flood_id]:
            return
        if node != origin and flood_id in self._single_hop:
            # One-hop multicast: receivers do not forward.
            self._relayed[flood_id].add(node)
            return
        policy = self.relay_policies.get(node)
        if node != origin and policy is not None and not policy(origin, message):
            # Byzantine (or misconfigured) nodes may silently drop relays;
            # the hypergraph fault bound guarantees correct nodes still
            # receive the flood via other paths.
            self._relayed[flood_id].add(node)
            return
        self._relayed[flood_id].add(node)
        size = default_wire_size(message)
        for edge in self.hypergraph.out_edges(node):
            self._transmit_edge(flood_id, edge, origin, message, size)

    def _transmit_edge(
        self, flood_id: int, edge: HyperEdge, origin: int, message: Any, size: int
    ) -> None:
        k = edge.degree
        cost = self.kcast_radio.transmission_cost(size, k)
        sender_meter = self.ledger.meter(edge.sender)
        sender_meter.charge_transmit(
            cost.sender_energy_j, self.sim.now, detail=f"kcast k={k} {size}B"
        )
        self.stats.record_transmission(edge.sender, size)
        latency = self._hop_latency()
        for receiver in sorted(edge.receivers):
            if receiver in self._partition:
                continue
            self._schedule_reception(flood_id, edge.sender, receiver, origin, message, cost, latency)

    def _schedule_reception(
        self,
        flood_id: int,
        hop_sender: int,
        receiver: int,
        origin: int,
        message: Any,
        cost,
        latency: float,
    ) -> None:
        def arrive() -> None:
            already_delivered = receiver in self._delivered[flood_id]
            if self.charge_duplicate_receptions or not already_delivered:
                self.ledger.meter(receiver).charge_receive(
                    cost.per_receiver_energy_j,
                    self.sim.now,
                    detail=f"kcast from {hop_sender}",
                )
            if not already_delivered:
                self._deliver(flood_id, origin, receiver, message)
                self._relay_from(flood_id, receiver, origin, message)

        self.sim.schedule(latency, arrive, label=f"net:flood{flood_id}->{receiver}")

    def _deliver(
        self, flood_id: int, origin: int, receiver: int, message: Any, local: bool = False
    ) -> None:
        self._delivered[flood_id].add(receiver)
        process = self.processes.get(receiver)
        if process is None:
            return
        self.stats.deliveries += 1
        process.deliver(origin, message)

    # -------------------------------------------------------------- unicast
    def send(self, src: int, dst: int, message: Any) -> None:
        """Point-to-point send from ``src`` to ``dst`` over the unicast radio.

        The base system model assumes point-to-point links exist between all
        node pairs; the CPS instantiation realises them as (serialised) GATT
        connections.  Energy is charged to both endpoints; delivery happens
        after at most one hop delay.
        """
        self._require_registered(src)
        if dst not in self.hypergraph.nodes:
            raise ValueError(f"destination {dst} is not a node of the topology")
        if src in self._partition or dst in self._partition:
            return
        size = default_wire_size(message)
        cost = self.unicast_radio.transmission_cost(size)
        self.ledger.meter(src).charge_transmit(
            cost.sender_energy_j, self.sim.now, detail=f"unicast->{dst} {size}B"
        )
        self.stats.unicasts += 1
        self.stats.record_transmission(src, size)
        latency = self._hop_latency()

        def arrive() -> None:
            self.ledger.meter(dst).charge_receive(
                cost.receiver_energy_j, self.sim.now, detail=f"unicast from {src}"
            )
            process = self.processes.get(dst)
            if process is not None:
                self.stats.deliveries += 1
                process.deliver(src, message)

        self.sim.schedule(latency, arrive, label=f"net:uni {src}->{dst}")

    # ------------------------------------------------------------- helpers
    def multicast_neighbors(self, origin: int, message: Any) -> None:
        """One-hop k-cast (no flooding) — used by leader-to-neighbour patterns."""
        self._require_registered(origin)
        flood_id = next(self._flood_counter)
        self._relayed[flood_id] = {origin}
        self._delivered[flood_id] = {origin}
        self._single_hop.add(flood_id)
        size = default_wire_size(message)
        for edge in self.hypergraph.out_edges(origin):
            self._transmit_edge(flood_id, edge, origin, message, size)

    def _require_registered(self, pid: int) -> None:
        if pid not in self.processes:
            raise ValueError(f"process {pid} is not registered with the network")

    # -------------------------------------------------------------- queries
    def transmissions_by(self, pid: int) -> int:
        """Physical transmissions performed by ``pid``."""
        return self.stats.per_node_transmissions.get(pid, 0)

    def bytes_sent_by(self, pid: int) -> int:
        """Physical bytes transmitted by ``pid``."""
        return self.stats.per_node_bytes.get(pid, 0)
