"""Seeded wire-level impairments: loss, duplication, jitter and reordering.

The simulated medium was historically perfect — every scheduled delivery
arrived.  The BLE loss model in :mod:`repro.radio.reliability` priced
loss *analytically* (Fig. 2a redundancy-vs-energy) but never exercised
the protocols against an actually-lossy wire.  This module closes that
gap:

* :class:`ImpairmentSpec` is the declarative, serialisable description of
  a wire impairment — drop/duplicate/jitter/reorder probabilities, an
  optional active window, and the calibrated-BLE mode where per-receiver
  loss is ``p_loss ** redundancy`` from the Fig. 2a operating point;
* :class:`ImpairmentModel` is the runtime: it holds the spec, a stack of
  per-node overlays installed by the timed fault atoms
  (:class:`~repro.testkit.faults.LossWindow` and friends), the delivery
  counters surfaced through metrics/trace/CLI, and its **own**
  :class:`~repro.sim.rng.SeededRNG` child stream so impairment draws can
  never perturb the network's hop-jitter stream (golden fingerprints stay
  byte-identical with impairments off, and byte-deterministic per seed
  with them on).

The reliable-delivery sublayer that retransmits dropped protocol
messages lives in :class:`repro.recovery.reliable.ReliabilityPolicy` and
the network's retransmission chain (see ``docs/impairments.md``).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

from repro.radio.reliability import AdvertisementLossModel
from repro.sim.rng import SeededRNG

#: Impairment kinds a per-node overlay (fault atom) may install.
IMPAIRMENT_KINDS = ("loss", "duplicate", "jitter", "reorder")

#: Default retransmission budget of the reliable-delivery sublayer; kept in
#: sync with :class:`repro.recovery.reliable.ReliabilityPolicy.max_retries`.
DEFAULT_MAX_RETRIES = 3


def _probability(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"impairment {name} must be a number, got {value!r}")
    value = float(value)
    if not 0.0 <= value <= 1.0 or math.isnan(value):
        raise ValueError(f"impairment {name} must be within [0, 1], got {value}")
    return value


def compose_loss(first: float, second: float) -> float:
    """Compose two independent loss probabilities: survive both or drop."""
    return 1.0 - (1.0 - first) * (1.0 - second)


@dataclass(frozen=True)
class ImpairmentSpec:
    """A declarative wire impairment, serialisable into deployment specs.

    All probabilities are per *hop delivery* (one scheduled reception of
    one physical transmission by one receiver).  ``jitter`` is a delay
    magnitude: an affected delivery is held back by up to ``jitter``
    extra hop delays.  ``reorder`` delays a delivery past at least one
    full hop so later traffic can overtake it.  With ``ble_calibrated``
    the drop probability additionally composes in the Fig. 2a residual
    miss probability ``p_loss ** redundancy`` of the k-cast radio —
    redundancy ``r`` stops being an assumption of success and becomes a
    sampled outcome, with the reliable sublayer retransmitting (and
    charging energy for) the misses.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    jitter: float = 0.0
    reorder: float = 0.0
    start: float = 0.0
    end: float = math.inf
    ble_calibrated: bool = False
    max_retries: int = DEFAULT_MAX_RETRIES

    def __post_init__(self) -> None:
        for name in ("loss", "duplicate", "reorder"):
            object.__setattr__(self, name, _probability(name, getattr(self, name)))
        jitter = self.jitter
        if isinstance(jitter, bool) or not isinstance(jitter, (int, float)):
            raise TypeError(f"impairment jitter must be a number, got {jitter!r}")
        if jitter < 0 or math.isnan(jitter):
            raise ValueError(f"impairment jitter must be non-negative, got {jitter}")
        object.__setattr__(self, "jitter", float(jitter))
        for name in ("start", "end"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(f"impairment {name} must be a number, got {value!r}")
            object.__setattr__(self, name, float(value))
        if self.start < 0:
            raise ValueError(f"impairment start cannot be negative, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"impairment window must end after it starts, got [{self.start}, {self.end})"
            )
        if not isinstance(self.ble_calibrated, bool):
            raise TypeError(f"ble_calibrated must be a bool, got {self.ble_calibrated!r}")
        if isinstance(self.max_retries, bool) or not isinstance(self.max_retries, int):
            raise TypeError(f"max_retries must be an int, got {self.max_retries!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries cannot be negative, got {self.max_retries}")

    def enabled(self) -> bool:
        """Whether this spec impairs anything at all."""
        return bool(
            self.ble_calibrated
            or self.loss
            or self.duplicate
            or self.jitter
            or self.reorder
        )

    def active(self, now: float) -> bool:
        """Whether the spec's window covers virtual time ``now``."""
        return self.enabled() and self.start <= now < self.end

    def describe(self) -> Dict[str, Any]:
        """Canonical dict form; defaults are omitted so the round-trip is a
        fixed point and spec fingerprints stay minimal."""
        entry: Dict[str, Any] = {}
        for name in ("loss", "duplicate", "jitter", "reorder"):
            value = getattr(self, name)
            if value:
                entry[name] = value
        if self.ble_calibrated:
            entry["ble_calibrated"] = True
        if self.start:
            entry["start"] = self.start
        if self.end != math.inf:
            entry["end"] = self.end
        if self.max_retries != DEFAULT_MAX_RETRIES:
            entry["max_retries"] = self.max_retries
        return entry


_SPEC_KEYS = frozenset(
    ("loss", "duplicate", "jitter", "reorder", "start", "end", "ble_calibrated", "max_retries")
)


def impairment_from_dict(entry: Optional[Dict[str, Any]]) -> Optional[ImpairmentSpec]:
    """Rebuild an :class:`ImpairmentSpec` from :meth:`ImpairmentSpec.describe`."""
    if entry is None:
        return None
    if not isinstance(entry, dict):
        raise TypeError(f"impairment entry must be a dict, got {entry!r}")
    unknown = set(entry) - _SPEC_KEYS
    if unknown:
        raise ValueError(f"unknown impairment keys: {sorted(unknown)}")
    return ImpairmentSpec(**entry)


def parse_impairment(clauses: Iterable[str]) -> Optional[ImpairmentSpec]:
    """Parse CLI ``--impair`` clauses into one merged :class:`ImpairmentSpec`.

    Grammar (one clause per ``--impair`` flag, all merged into one spec)::

        loss:<p>[:<start>:<end>]        drop each hop delivery with prob. p
        duplicate:<p>[:<start>:<end>]   deliver twice with probability p
        jitter:<j>[:<start>:<end>]      up to j extra hop delays per delivery
        reorder:<p>[:<start>:<end>]     delay past a full hop with prob. p
        ble[:<start>:<end>]             Fig. 2a calibrated residual BLE loss
        retries:<n>                     reliable-sublayer retransmission budget

    A window given on any clause applies to the whole spec; conflicting
    windows are an error.
    """
    merged: Dict[str, Any] = {}
    window: Optional[tuple] = None
    for clause in clauses:
        parts = str(clause).split(":")
        kind = parts[0]
        try:
            if kind == "ble":
                merged["ble_calibrated"] = True
                window_parts = parts[1:]
            elif kind == "retries":
                if len(parts) != 2:
                    raise ValueError("expected retries:<n>")
                merged["max_retries"] = int(parts[1])
                continue
            elif kind in IMPAIRMENT_KINDS:
                if len(parts) < 2:
                    raise ValueError(f"expected {kind}:<value>")
                # Repeating a kind overrides the earlier clause.
                merged[kind] = float(parts[1])
                window_parts = parts[2:]
            else:
                raise ValueError(
                    f"unknown impairment kind {kind!r} "
                    f"(expected one of {IMPAIRMENT_KINDS + ('ble', 'retries')})"
                )
            if window_parts:
                if len(window_parts) != 2:
                    raise ValueError("window must be <start>:<end>")
                this_window = (float(window_parts[0]), float(window_parts[1]))
                if window is not None and window != this_window:
                    raise ValueError(
                        f"conflicting impairment windows {window} and {this_window}"
                    )
                window = this_window
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad --impair clause {clause!r}: {exc}") from exc
    if not merged:
        return None
    if window is not None:
        merged["start"], merged["end"] = window
    return ImpairmentSpec(**merged)


class ImpairmentModel:
    """Runtime impairment state for one :class:`~repro.net.network.SimulatedNetwork`.

    Holds the global :class:`ImpairmentSpec`, per-node overlay stacks
    installed by the timed fault atoms, the delivery counters, and a
    dedicated seeded RNG stream.  Per-node overlays compose with the
    global spec: loss/duplicate/reorder probabilities combine as
    independent events, jitter magnitudes add.
    """

    def __init__(
        self,
        spec: Optional[ImpairmentSpec],
        rng: SeededRNG,
        loss_model: Optional[AdvertisementLossModel] = None,
    ) -> None:
        self.spec = spec or ImpairmentSpec(loss=0.0)
        self.rng = rng
        self.loss_model = loss_model or AdvertisementLossModel()
        # kind -> pid -> stack of overlay values (fault windows may nest).
        self._overlays: Dict[str, Dict[int, list]] = {k: {} for k in IMPAIRMENT_KINDS}
        self._overlay_count = 0
        # Delivery counters (surfaced via metrics, trace and RunResult).
        self.attempts = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.retransmits = 0
        self.recovered = 0
        self.giveups = 0
        self.drops_by_node: Counter = Counter()
        self.retransmits_by_node: Counter = Counter()
        self.giveups_by_node: Counter = Counter()

    # ------------------------------------------------------------- overlays
    def push(self, pid: int, kind: str, value: float) -> None:
        """Install one per-node overlay (a fault window opening)."""
        if kind not in IMPAIRMENT_KINDS:
            raise ValueError(f"unknown impairment kind {kind!r}")
        self._overlays[kind].setdefault(pid, []).append(float(value))
        self._overlay_count += 1

    def pop(self, pid: int, kind: str) -> None:
        """Remove the most recent overlay of ``kind`` on ``pid`` (window closing).

        Unbalanced pops are a no-op, mirroring the network's refcounted
        fault mutators: healing an already-healed window must not raise.
        """
        stack = self._overlays.get(kind, {}).get(pid)
        if not stack:
            return
        stack.pop()
        if not stack:
            del self._overlays[kind][pid]
        self._overlay_count -= 1

    def _composed(self, kind: str, pid: int, base: float) -> float:
        stack = self._overlays[kind].get(pid)
        if stack:
            if kind == "jitter":
                return base + sum(stack)
            for value in stack:
                base = compose_loss(base, value)
        return base

    # -------------------------------------------------------------- queries
    def engaged(self, now: float) -> bool:
        """Whether any impairment applies right now (cheap hot-path gate)."""
        return self._overlay_count > 0 or self.spec.active(now)

    @property
    def max_retries(self) -> int:
        return self.spec.max_retries

    def loss_probability(self, receiver: int, cost: Any, now: float) -> float:
        """Composed drop probability for one hop delivery to ``receiver``."""
        p = 0.0
        if self.spec.active(now):
            if self.spec.ble_calibrated:
                redundancy = getattr(cost, "redundancy", 1)
                p = self.loss_model.receiver_miss_probability(max(1, redundancy))
            p = compose_loss(p, self.spec.loss)
        return self._composed("loss", receiver, p)

    def judge(self, receiver: int, cost: Any, now: float, hop_delay: float):
        """Sample one hop delivery's fate: ``(dropped, duplicated, extra_delay)``.

        Draw order is fixed (loss, duplicate, jitter, reorder) and all
        draws come from the model's own stream, so a run's verdicts are a
        pure function of (seed, spec, schedule) — byte-deterministic.
        """
        self.attempts += 1
        if self.rng.chance(self.loss_probability(receiver, cost, now)):
            self.dropped += 1
            self.drops_by_node[receiver] += 1
            return True, False, 0.0
        active = self.spec.active(now)
        duplicated = self.rng.chance(
            self._composed("duplicate", receiver, self.spec.duplicate if active else 0.0)
        )
        if duplicated:
            self.duplicated += 1
        extra = 0.0
        jitter = self._composed("jitter", receiver, self.spec.jitter if active else 0.0)
        if jitter > 0.0:
            extra += hop_delay * self.rng.uniform(0.0, jitter)
        if self.rng.chance(
            self._composed("reorder", receiver, self.spec.reorder if active else 0.0)
        ):
            # Hold the delivery back past at least one full hop so traffic
            # transmitted later can overtake it.
            extra += hop_delay * self.rng.uniform(1.0, 2.0)
        if extra > 0.0:
            self.delayed += 1
        return False, duplicated, extra

    # ------------------------------------------------------------- counters
    def note_retransmit(self, receiver: int) -> None:
        self.retransmits += 1
        self.retransmits_by_node[receiver] += 1

    def note_recovered(self, _receiver: int) -> None:
        self.recovered += 1

    def note_giveup(self, receiver: int) -> None:
        self.giveups += 1
        self.giveups_by_node[receiver] += 1

    def delivery_ratio(self) -> float:
        """First-attempt delivery ratio over every judged hop delivery."""
        if self.attempts == 0:
            return 1.0
        return 1.0 - self.dropped / self.attempts

    def stats_dict(self) -> Dict[str, Any]:
        """Aggregate counters for the trace's ``network`` section."""
        return {
            "attempts": self.attempts,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "retransmits": self.retransmits,
            "recovered": self.recovered,
            "giveups": self.giveups,
        }
