"""Network substrate: hypergraph model, topologies and the simulated transport."""

from repro.net.hypergraph import HyperEdge, Hypergraph
from repro.net.topology import (
    ring_kcast_topology,
    fully_connected_topology,
    unicast_ring_topology,
    star_topology,
    random_kcast_topology,
)
from repro.net.network import (
    DisseminationPlan,
    SimulatedNetwork,
    NetworkStats,
    default_wire_size,
)
from repro.net.impairment import (
    ImpairmentModel,
    ImpairmentSpec,
    impairment_from_dict,
    parse_impairment,
)

__all__ = [
    "HyperEdge",
    "Hypergraph",
    "ring_kcast_topology",
    "fully_connected_topology",
    "unicast_ring_topology",
    "star_topology",
    "random_kcast_topology",
    "DisseminationPlan",
    "SimulatedNetwork",
    "NetworkStats",
    "default_wire_size",
    "ImpairmentModel",
    "ImpairmentSpec",
    "impairment_from_dict",
    "parse_impairment",
]
