"""Signature-scheme energy costs measured by the paper (Table 2).

The paper measures signing and verification energy for a range of ECDSA
curves, RSA moduli, and HMAC on the NUCLEO-F401RE (ARM Cortex-M4) test
board using MbedTLS.  These constants are the reproduction's calibration
points: the simulated schemes in :mod:`repro.crypto.signatures` charge
exactly these Joule costs per operation, so any protocol-level energy
number inherits the paper's measured primitive costs.

All values are in Joules per operation, copied from Table 2:

=====================  =========  ==========
Algorithm / parameters  Sign (J)   Verify (J)
=====================  =========  ==========
ECDSA BP160R1              5.80      11.03
ECDSA BP256R1             13.88      27.34
ECDSA SECP192R1            0.84       1.50
ECDSA SECP192K1            1.16       2.24
ECDSA SECP224R1            1.10       2.14
ECDSA SECP256R1            1.60       3.04
ECDSA SECP256K1            1.72       3.35
RSA 1024-bit               0.40       0.02
RSA 1260-bit               0.79       0.03
RSA 2048-bit               2.41       0.06
HMAC (SHA-256)             0.19       0.19
=====================  =========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass(frozen=True)
class SignatureEnergyCost:
    """Measured per-operation cost for one signature scheme configuration."""

    name: str
    family: str
    parameters: str
    sign_joules: float
    verify_joules: float
    signature_size_bytes: int
    public_key_size_bytes: int

    @property
    def verify_to_sign_ratio(self) -> float:
        """How much cheaper (or more expensive) verification is than signing."""
        return self.verify_joules / self.sign_joules

    def total_for(self, signs: int, verifies: int) -> float:
        """Total Joules for the given operation counts."""
        if signs < 0 or verifies < 0:
            raise ValueError("operation counts must be non-negative")
        return signs * self.sign_joules + verifies * self.verify_joules


def _cost(
    name: str,
    family: str,
    parameters: str,
    sign_j: float,
    verify_j: float,
    sig_size: int,
    pk_size: int,
) -> SignatureEnergyCost:
    return SignatureEnergyCost(
        name=name,
        family=family,
        parameters=parameters,
        sign_joules=sign_j,
        verify_joules=verify_j,
        signature_size_bytes=sig_size,
        public_key_size_bytes=pk_size,
    )


ECDSA_BP160R1 = _cost("ecdsa-bp160r1", "ecdsa", "BP160R1", 5.80, 11.03, 48, 40)
ECDSA_BP256R1 = _cost("ecdsa-bp256r1", "ecdsa", "BP256R1", 13.88, 27.34, 64, 64)
ECDSA_SECP192R1 = _cost("ecdsa-secp192r1", "ecdsa", "SECP192R1", 0.84, 1.50, 48, 48)
ECDSA_SECP192K1 = _cost("ecdsa-secp192k1", "ecdsa", "SECP192K1", 1.16, 2.24, 48, 48)
ECDSA_SECP224R1 = _cost("ecdsa-secp224r1", "ecdsa", "SECP224R1", 1.10, 2.14, 56, 56)
ECDSA_SECP256R1 = _cost("ecdsa-secp256r1", "ecdsa", "SECP256R1", 1.60, 3.04, 64, 64)
ECDSA_SECP256K1 = _cost("ecdsa-secp256k1", "ecdsa", "SECP256K1", 1.72, 3.35, 64, 64)
RSA_1024 = _cost("rsa-1024", "rsa", "1024-bit modulus", 0.40, 0.02, 128, 128)
RSA_1260 = _cost("rsa-1260", "rsa", "1260-bit modulus", 0.79, 0.03, 158, 158)
RSA_2048 = _cost("rsa-2048", "rsa", "2048-bit modulus", 2.41, 0.06, 256, 256)
HMAC_COST = _cost("hmac-sha256", "hmac", "64-byte key", 0.19, 0.19, 32, 0)

#: All measured schemes, keyed by canonical name (Table 2 of the paper).
SIGNATURE_ENERGY_TABLE: Dict[str, SignatureEnergyCost] = {
    cost.name: cost
    for cost in (
        ECDSA_BP160R1,
        ECDSA_BP256R1,
        ECDSA_SECP192R1,
        ECDSA_SECP192K1,
        ECDSA_SECP224R1,
        ECDSA_SECP256R1,
        ECDSA_SECP256K1,
        RSA_1024,
        RSA_1260,
        RSA_2048,
        HMAC_COST,
    )
}


def signature_cost(name: str) -> SignatureEnergyCost:
    """Look up a scheme's measured cost by name (raises ``KeyError`` if unknown)."""
    key = name.lower()
    if key not in SIGNATURE_ENERGY_TABLE:
        known = ", ".join(sorted(SIGNATURE_ENERGY_TABLE))
        raise KeyError(f"unknown signature scheme {name!r}; known: {known}")
    return SIGNATURE_ENERGY_TABLE[key]


def schemes_by_family(family: str) -> list[SignatureEnergyCost]:
    """All measured configurations of one family ('ecdsa', 'rsa', 'hmac')."""
    return [c for c in SIGNATURE_ENERGY_TABLE.values() if c.family == family]


def cheapest_verification(candidates: Iterable[SignatureEnergyCost] | None = None) -> SignatureEnergyCost:
    """The scheme with the lowest verification energy.

    The paper's observation that "verification-efficient RSA signatures are
    more energy-efficient than the ECDSA signature scheme" for the
    one-signer/many-verifiers pattern of SMR is exactly this query.
    """
    pool = list(candidates) if candidates is not None else list(SIGNATURE_ENERGY_TABLE.values())
    if not pool:
        raise ValueError("no candidate schemes supplied")
    return min(pool, key=lambda c: c.verify_joules)


def best_for_leader_pattern(
    verifiers: int,
    candidates: Iterable[SignatureEnergyCost] | None = None,
) -> SignatureEnergyCost:
    """The cheapest scheme for the "one leader signs, n-1 nodes verify" pattern.

    Args:
        verifiers: Number of verification operations per signing operation.
    """
    if verifiers < 0:
        raise ValueError("verifiers must be non-negative")
    pool = list(candidates) if candidates is not None else list(SIGNATURE_ENERGY_TABLE.values())
    if not pool:
        raise ValueError("no candidate schemes supplied")
    return min(pool, key=lambda c: c.sign_joules + verifiers * c.verify_joules)
