"""Simulated digital-signature schemes with measured energy costs.

Each scheme is *functionally* a MAC keyed by the signer's secret (so forging
fails inside the simulation) but is *priced* as the real primitive the
paper measured (Table 2): RSA-1024, ECDSA over the NIST and Brainpool
curves, or plain HMAC.  The distinction the paper draws between digital
signatures (transferable authentication, equivocation provable to third
parties) and MACs (cheaper, but equivocation hard to prove) is captured by
:attr:`SchemeSpec.transferable`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.crypto.energy_costs import (
    SIGNATURE_ENERGY_TABLE,
    SignatureEnergyCost,
    signature_cost,
)
from repro.crypto.hashing import canonical_cache
from repro.crypto.keys import KeyStore


@dataclass(frozen=True)
class Signature:
    """A signature on a payload by a specific node.

    Attributes:
        signer: Node id of the signer.
        scheme: Canonical scheme name (e.g. ``"rsa-1024"``).
        tag: Authentication tag binding payload and signer.
        payload_digest: Hex digest of the signed payload (for debugging and
            size accounting; verification recomputes the tag from the actual
            payload, not from this digest).
    """

    signer: int
    scheme: str
    tag: str
    payload_digest: str

    @property
    def size_bytes(self) -> int:
        """Wire size of the signature (scheme dependent)."""
        return signature_cost(self.scheme).signature_size_bytes


@dataclass(frozen=True)
class SchemeSpec:
    """Static description of a signature scheme configuration."""

    name: str
    cost: SignatureEnergyCost
    transferable: bool

    @property
    def signature_size_bytes(self) -> int:
        return self.cost.signature_size_bytes


class SignatureScheme:
    """Signing/verification service bound to one scheme and one key store.

    The scheme keeps per-node operation counters so experiments can report
    public-key operation counts (Table 3) and the energy meter can charge
    sign/verify energy.
    """

    #: Class-wide switch for the sign/verify memoization below; the
    #: ``repro.perf`` legacy mode flips it off to measure the uncached path.
    cache_operations = True

    #: Bound on the memo tables; cleared wholesale when exceeded.
    max_cache_entries = 16384

    def __init__(self, spec: SchemeSpec, keystore: KeyStore) -> None:
        self.spec = spec
        self.keystore = keystore
        self.sign_counts: Counter[int] = Counter()
        self.verify_counts: Counter[int] = Counter()
        # (signer, payload bytes) -> tag; deterministic MACs make signing a
        # pure function, so the same payload signed for n recipients costs
        # one HMAC.
        self._sign_memo: Dict[Tuple[int, bytes], str] = {}
        # (signer, tag, payload bytes) -> bool; once one replica has checked
        # a (payload, signature) pair, the other n-1 verifiers pay a lookup.
        self._verify_memo: Dict[Tuple[int, str, bytes], bool] = {}

    # ------------------------------------------------------------ operations
    def sign(self, signer: int, payload: Any) -> Signature:
        """Sign ``payload`` with ``signer``'s secret key."""
        data = canonical_cache.bytes_for(payload)
        self.sign_counts[signer] += 1
        key = (signer, data)
        tag = self._sign_memo.get(key) if self.cache_operations else None
        if tag is None:
            pair = self.keystore.key_pair(signer)
            tag = pair.sign_tag(self._domain_separated(data))
            if self.cache_operations:
                if len(self._sign_memo) >= self.max_cache_entries:
                    self._sign_memo.clear()
                self._sign_memo[key] = tag
        return Signature(
            signer=signer,
            scheme=self.spec.name,
            tag=tag,
            payload_digest=_short_digest(data),
        )

    def note_verify(self, verifier: int, operations: int = 1) -> None:
        """Count verification operations satisfied from a higher-level memo.

        When a whole-message verification result is reused across replicas,
        each replica still *logically* performed the operations — the
        paper's Table 3 counts and the energy charges must not change just
        because the simulator skipped redundant HMAC work.
        """
        self.verify_counts[verifier] += operations

    def verify(self, verifier: int, payload: Any, signature: Signature) -> bool:
        """Verify ``signature`` over ``payload``; counts the operation for ``verifier``."""
        self.verify_counts[verifier] += 1
        if signature.scheme != self.spec.name:
            return False
        data = canonical_cache.bytes_for(payload)
        if not self.cache_operations:
            return self.keystore.verify_tag(
                signature.signer, self._domain_separated(data), signature.tag
            )
        key = (signature.signer, signature.tag, data)
        cached = self._verify_memo.get(key)
        if cached is not None:
            return cached
        result = self.keystore.verify_tag(
            signature.signer, self._domain_separated(data), signature.tag
        )
        if len(self._verify_memo) >= self.max_cache_entries:
            self._verify_memo.clear()
        self._verify_memo[key] = result
        return result

    # -------------------------------------------------------------- energies
    @property
    def sign_energy_j(self) -> float:
        """Energy (J) of one signing operation."""
        return self.spec.cost.sign_joules

    @property
    def verify_energy_j(self) -> float:
        """Energy (J) of one verification operation."""
        return self.spec.cost.verify_joules

    def total_sign_operations(self) -> int:
        """Total signing operations performed across all nodes."""
        return sum(self.sign_counts.values())

    def total_verify_operations(self) -> int:
        """Total verification operations performed across all nodes."""
        return sum(self.verify_counts.values())

    # -------------------------------------------------------------- internal
    def _domain_separated(self, data: bytes) -> bytes:
        return self.spec.name.encode("utf-8") + b"|" + data


def _short_digest(data: bytes) -> str:
    import hashlib

    return hashlib.sha256(data).hexdigest()[:16]


def available_schemes() -> list[str]:
    """Names of every scheme configuration measured by the paper."""
    return sorted(SIGNATURE_ENERGY_TABLE)


def make_scheme(name: str, keystore: Optional[KeyStore] = None, seed: int = 0) -> SignatureScheme:
    """Build a :class:`SignatureScheme` by name.

    Args:
        name: One of :func:`available_schemes` (e.g. ``"rsa-1024"``,
            ``"ecdsa-secp256k1"``, ``"hmac-sha256"``).
        keystore: Optional pre-populated key store; a fresh one (with the
            given seed) is created otherwise.
        seed: Seed for the key store when one is created here.
    """
    cost = signature_cost(name)
    spec = SchemeSpec(name=cost.name, cost=cost, transferable=cost.family != "hmac")
    store = keystore if keystore is not None else KeyStore(seed=seed)
    return SignatureScheme(spec, store)
