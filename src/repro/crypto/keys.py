"""Key material and the PKI setup assumed by the paper.

The paper assumes "PKI is used to setup (possibly threshold) keys before
starting the protocol".  :class:`KeyStore` plays that role in the
reproduction: it deterministically derives a key pair for every node from
the experiment seed, and every node can look up every other node's public
key.  Secret keys are random hex strings; signatures are HMACs over the
message keyed by the secret, which is unforgeable inside the simulation for
anyone who does not hold the secret.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Dict, Iterable


@dataclass(frozen=True)
class KeyPair:
    """A node's signing key pair."""

    owner: int
    secret_key: bytes
    public_key: bytes

    def sign_tag(self, payload: bytes) -> str:
        """Compute the authentication tag for ``payload`` under the secret key."""
        return hmac.new(self.secret_key, payload, hashlib.sha256).hexdigest()


def _derive_secret(seed: int, owner: int) -> bytes:
    material = f"eesmr-key-seed:{seed}:node:{owner}".encode("utf-8")
    return hashlib.sha256(material).digest()


def _public_from_secret(secret: bytes) -> bytes:
    # A one-way mapping; the "public key" only serves as an identifier that
    # the verification routine can bind signatures to.
    return hashlib.sha256(b"public:" + secret).digest()


class KeyStore:
    """PKI registry mapping node ids to key pairs.

    In a deployment this is the offline trusted setup phase; in the
    reproduction it is created by the experiment runner and shared (by
    reference) with every replica, which mirrors the paper's assumption that
    "the public information is agreed upon by all the nodes as part of the
    setup before the start of the protocol".
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._pairs: Dict[int, KeyPair] = {}

    def generate(self, node_ids: Iterable[int]) -> None:
        """Generate key pairs for every node id (idempotent)."""
        for node_id in node_ids:
            if node_id not in self._pairs:
                secret = _derive_secret(self.seed, node_id)
                self._pairs[node_id] = KeyPair(
                    owner=node_id,
                    secret_key=secret,
                    public_key=_public_from_secret(secret),
                )

    def key_pair(self, node_id: int) -> KeyPair:
        """The full key pair for ``node_id`` (only its owner should call this)."""
        if node_id not in self._pairs:
            raise KeyError(f"no key pair generated for node {node_id}")
        return self._pairs[node_id]

    def public_key(self, node_id: int) -> bytes:
        """The public key of ``node_id`` (available to everyone)."""
        return self.key_pair(node_id).public_key

    def known_nodes(self) -> list[int]:
        """Node ids with registered key material."""
        return sorted(self._pairs)

    def verify_tag(self, node_id: int, payload: bytes, tag: str) -> bool:
        """Check an authentication tag against ``node_id``'s key.

        This is the simulation's stand-in for public-key verification: the
        key store (acting as the PKI oracle) recomputes the tag with the
        owner's secret.  Protocol code never touches other nodes' secrets
        directly — it always goes through a :class:`SignatureScheme`.
        """
        if node_id not in self._pairs:
            return False
        expected = self._pairs[node_id].sign_tag(payload)
        return hmac.compare_digest(expected, tag)
